file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_accelerators.dir/bench_fig16_accelerators.cpp.o"
  "CMakeFiles/bench_fig16_accelerators.dir/bench_fig16_accelerators.cpp.o.d"
  "bench_fig16_accelerators"
  "bench_fig16_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
