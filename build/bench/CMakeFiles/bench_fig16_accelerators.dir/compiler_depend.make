# Empty compiler generated dependencies file for bench_fig16_accelerators.
# This may be replaced when dependencies are built.
