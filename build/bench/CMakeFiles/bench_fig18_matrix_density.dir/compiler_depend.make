# Empty compiler generated dependencies file for bench_fig18_matrix_density.
# This may be replaced when dependencies are built.
