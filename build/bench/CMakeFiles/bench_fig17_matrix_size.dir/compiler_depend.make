# Empty compiler generated dependencies file for bench_fig17_matrix_size.
# This may be replaced when dependencies are built.
