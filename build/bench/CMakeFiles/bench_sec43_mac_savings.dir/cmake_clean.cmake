file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_mac_savings.dir/bench_sec43_mac_savings.cpp.o"
  "CMakeFiles/bench_sec43_mac_savings.dir/bench_sec43_mac_savings.cpp.o.d"
  "bench_sec43_mac_savings"
  "bench_sec43_mac_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_mac_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
