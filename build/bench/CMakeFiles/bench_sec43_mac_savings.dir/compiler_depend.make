# Empty compiler generated dependencies file for bench_sec43_mac_savings.
# This may be replaced when dependencies are built.
