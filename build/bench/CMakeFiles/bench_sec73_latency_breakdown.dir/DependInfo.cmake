
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec73_latency_breakdown.cpp" "bench/CMakeFiles/bench_sec73_latency_breakdown.dir/bench_sec73_latency_breakdown.cpp.o" "gcc" "bench/CMakeFiles/bench_sec73_latency_breakdown.dir/bench_sec73_latency_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/orianna_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/orianna_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/orianna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/orianna_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/hwgen/CMakeFiles/orianna_hwgen.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/orianna_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/orianna_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/fg/CMakeFiles/orianna_fg.dir/DependInfo.cmake"
  "/root/repo/build/src/lie/CMakeFiles/orianna_lie.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/orianna_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
