# Empty dependencies file for bench_sec73_latency_breakdown.
# This may be replaced when dependencies are built.
