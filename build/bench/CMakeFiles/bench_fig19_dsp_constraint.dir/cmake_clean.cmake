file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_dsp_constraint.dir/bench_fig19_dsp_constraint.cpp.o"
  "CMakeFiles/bench_fig19_dsp_constraint.dir/bench_fig19_dsp_constraint.cpp.o.d"
  "bench_fig19_dsp_constraint"
  "bench_fig19_dsp_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_dsp_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
