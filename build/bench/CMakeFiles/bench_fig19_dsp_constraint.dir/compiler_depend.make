# Empty compiler generated dependencies file for bench_fig19_dsp_constraint.
# This may be replaced when dependencies are built.
