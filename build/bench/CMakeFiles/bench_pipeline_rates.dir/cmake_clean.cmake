file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_rates.dir/bench_pipeline_rates.cpp.o"
  "CMakeFiles/bench_pipeline_rates.dir/bench_pipeline_rates.cpp.o.d"
  "bench_pipeline_rates"
  "bench_pipeline_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
