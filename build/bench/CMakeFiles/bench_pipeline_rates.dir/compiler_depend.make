# Empty compiler generated dependencies file for bench_pipeline_rates.
# This may be replaced when dependencies are built.
