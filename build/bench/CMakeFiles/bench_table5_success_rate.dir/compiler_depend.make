# Empty compiler generated dependencies file for bench_table5_success_rate.
# This may be replaced when dependencies are built.
