# Empty dependencies file for bench_fig20_energy_constraint.
# This may be replaced when dependencies are built.
