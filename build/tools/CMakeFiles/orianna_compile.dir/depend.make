# Empty dependencies file for orianna_compile.
# This may be replaced when dependencies are built.
