file(REMOVE_RECURSE
  "CMakeFiles/orianna_compile.dir/orianna_compile.cpp.o"
  "CMakeFiles/orianna_compile.dir/orianna_compile.cpp.o.d"
  "orianna_compile"
  "orianna_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
