file(REMOVE_RECURSE
  "CMakeFiles/test_hwgen.dir/test_hwgen.cpp.o"
  "CMakeFiles/test_hwgen.dir/test_hwgen.cpp.o.d"
  "test_hwgen"
  "test_hwgen.pdb"
  "test_hwgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
