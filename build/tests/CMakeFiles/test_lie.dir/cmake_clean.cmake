file(REMOVE_RECURSE
  "CMakeFiles/test_lie.dir/test_lie.cpp.o"
  "CMakeFiles/test_lie.dir/test_lie.cpp.o.d"
  "test_lie"
  "test_lie.pdb"
  "test_lie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
