# Empty dependencies file for test_lie.
# This may be replaced when dependencies are built.
