file(REMOVE_RECURSE
  "CMakeFiles/test_fg.dir/test_fg.cpp.o"
  "CMakeFiles/test_fg.dir/test_fg.cpp.o.d"
  "test_fg"
  "test_fg.pdb"
  "test_fg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
