# Empty compiler generated dependencies file for test_fg.
# This may be replaced when dependencies are built.
