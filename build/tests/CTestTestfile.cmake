# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_lie[1]_include.cmake")
include("/root/repo/build/tests/test_fg[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_hwgen[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_robust[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
