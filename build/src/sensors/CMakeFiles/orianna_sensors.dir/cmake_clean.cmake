file(REMOVE_RECURSE
  "CMakeFiles/orianna_sensors.dir/imu.cpp.o"
  "CMakeFiles/orianna_sensors.dir/imu.cpp.o.d"
  "CMakeFiles/orianna_sensors.dir/scan_matching.cpp.o"
  "CMakeFiles/orianna_sensors.dir/scan_matching.cpp.o.d"
  "liborianna_sensors.a"
  "liborianna_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
