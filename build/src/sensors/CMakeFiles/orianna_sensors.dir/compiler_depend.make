# Empty compiler generated dependencies file for orianna_sensors.
# This may be replaced when dependencies are built.
