file(REMOVE_RECURSE
  "liborianna_sensors.a"
)
