file(REMOVE_RECURSE
  "CMakeFiles/orianna_fg.dir/dfg.cpp.o"
  "CMakeFiles/orianna_fg.dir/dfg.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/dot.cpp.o"
  "CMakeFiles/orianna_fg.dir/dot.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/eliminate.cpp.o"
  "CMakeFiles/orianna_fg.dir/eliminate.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/factor.cpp.o"
  "CMakeFiles/orianna_fg.dir/factor.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/factors.cpp.o"
  "CMakeFiles/orianna_fg.dir/factors.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/graph.cpp.o"
  "CMakeFiles/orianna_fg.dir/graph.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/incremental.cpp.o"
  "CMakeFiles/orianna_fg.dir/incremental.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/io_g2o.cpp.o"
  "CMakeFiles/orianna_fg.dir/io_g2o.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/marginals.cpp.o"
  "CMakeFiles/orianna_fg.dir/marginals.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/optimizer.cpp.o"
  "CMakeFiles/orianna_fg.dir/optimizer.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/ordering.cpp.o"
  "CMakeFiles/orianna_fg.dir/ordering.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/sdf_map.cpp.o"
  "CMakeFiles/orianna_fg.dir/sdf_map.cpp.o.d"
  "CMakeFiles/orianna_fg.dir/values.cpp.o"
  "CMakeFiles/orianna_fg.dir/values.cpp.o.d"
  "liborianna_fg.a"
  "liborianna_fg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
