# Empty dependencies file for orianna_fg.
# This may be replaced when dependencies are built.
