
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fg/dfg.cpp" "src/fg/CMakeFiles/orianna_fg.dir/dfg.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/dfg.cpp.o.d"
  "/root/repo/src/fg/dot.cpp" "src/fg/CMakeFiles/orianna_fg.dir/dot.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/dot.cpp.o.d"
  "/root/repo/src/fg/eliminate.cpp" "src/fg/CMakeFiles/orianna_fg.dir/eliminate.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/eliminate.cpp.o.d"
  "/root/repo/src/fg/factor.cpp" "src/fg/CMakeFiles/orianna_fg.dir/factor.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/factor.cpp.o.d"
  "/root/repo/src/fg/factors.cpp" "src/fg/CMakeFiles/orianna_fg.dir/factors.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/factors.cpp.o.d"
  "/root/repo/src/fg/graph.cpp" "src/fg/CMakeFiles/orianna_fg.dir/graph.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/graph.cpp.o.d"
  "/root/repo/src/fg/incremental.cpp" "src/fg/CMakeFiles/orianna_fg.dir/incremental.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/incremental.cpp.o.d"
  "/root/repo/src/fg/io_g2o.cpp" "src/fg/CMakeFiles/orianna_fg.dir/io_g2o.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/io_g2o.cpp.o.d"
  "/root/repo/src/fg/marginals.cpp" "src/fg/CMakeFiles/orianna_fg.dir/marginals.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/marginals.cpp.o.d"
  "/root/repo/src/fg/optimizer.cpp" "src/fg/CMakeFiles/orianna_fg.dir/optimizer.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/optimizer.cpp.o.d"
  "/root/repo/src/fg/ordering.cpp" "src/fg/CMakeFiles/orianna_fg.dir/ordering.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/ordering.cpp.o.d"
  "/root/repo/src/fg/sdf_map.cpp" "src/fg/CMakeFiles/orianna_fg.dir/sdf_map.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/sdf_map.cpp.o.d"
  "/root/repo/src/fg/values.cpp" "src/fg/CMakeFiles/orianna_fg.dir/values.cpp.o" "gcc" "src/fg/CMakeFiles/orianna_fg.dir/values.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lie/CMakeFiles/orianna_lie.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/orianna_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
