file(REMOVE_RECURSE
  "liborianna_fg.a"
)
