# Empty compiler generated dependencies file for orianna_core.
# This may be replaced when dependencies are built.
