file(REMOVE_RECURSE
  "liborianna_core.a"
)
