file(REMOVE_RECURSE
  "CMakeFiles/orianna_core.dir/application.cpp.o"
  "CMakeFiles/orianna_core.dir/application.cpp.o.d"
  "liborianna_core.a"
  "liborianna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
