# Empty compiler generated dependencies file for orianna_matrix.
# This may be replaced when dependencies are built.
