
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/block_sparse.cpp" "src/matrix/CMakeFiles/orianna_matrix.dir/block_sparse.cpp.o" "gcc" "src/matrix/CMakeFiles/orianna_matrix.dir/block_sparse.cpp.o.d"
  "/root/repo/src/matrix/dense.cpp" "src/matrix/CMakeFiles/orianna_matrix.dir/dense.cpp.o" "gcc" "src/matrix/CMakeFiles/orianna_matrix.dir/dense.cpp.o.d"
  "/root/repo/src/matrix/qr.cpp" "src/matrix/CMakeFiles/orianna_matrix.dir/qr.cpp.o" "gcc" "src/matrix/CMakeFiles/orianna_matrix.dir/qr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
