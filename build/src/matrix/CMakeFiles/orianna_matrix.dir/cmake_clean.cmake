file(REMOVE_RECURSE
  "CMakeFiles/orianna_matrix.dir/block_sparse.cpp.o"
  "CMakeFiles/orianna_matrix.dir/block_sparse.cpp.o.d"
  "CMakeFiles/orianna_matrix.dir/dense.cpp.o"
  "CMakeFiles/orianna_matrix.dir/dense.cpp.o.d"
  "CMakeFiles/orianna_matrix.dir/qr.cpp.o"
  "CMakeFiles/orianna_matrix.dir/qr.cpp.o.d"
  "liborianna_matrix.a"
  "liborianna_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
