file(REMOVE_RECURSE
  "liborianna_matrix.a"
)
