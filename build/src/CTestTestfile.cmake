# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("matrix")
subdirs("lie")
subdirs("sensors")
subdirs("fg")
subdirs("compiler")
subdirs("hw")
subdirs("hwgen")
subdirs("baselines")
subdirs("core")
subdirs("apps")
