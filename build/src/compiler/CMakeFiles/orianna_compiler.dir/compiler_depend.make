# Empty compiler generated dependencies file for orianna_compiler.
# This may be replaced when dependencies are built.
