file(REMOVE_RECURSE
  "liborianna_compiler.a"
)
