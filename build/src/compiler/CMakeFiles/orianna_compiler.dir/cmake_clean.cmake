file(REMOVE_RECURSE
  "CMakeFiles/orianna_compiler.dir/codegen.cpp.o"
  "CMakeFiles/orianna_compiler.dir/codegen.cpp.o.d"
  "CMakeFiles/orianna_compiler.dir/encoding.cpp.o"
  "CMakeFiles/orianna_compiler.dir/encoding.cpp.o.d"
  "CMakeFiles/orianna_compiler.dir/executor.cpp.o"
  "CMakeFiles/orianna_compiler.dir/executor.cpp.o.d"
  "CMakeFiles/orianna_compiler.dir/isa.cpp.o"
  "CMakeFiles/orianna_compiler.dir/isa.cpp.o.d"
  "CMakeFiles/orianna_compiler.dir/optimize.cpp.o"
  "CMakeFiles/orianna_compiler.dir/optimize.cpp.o.d"
  "liborianna_compiler.a"
  "liborianna_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
