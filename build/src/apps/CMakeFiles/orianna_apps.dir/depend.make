# Empty dependencies file for orianna_apps.
# This may be replaced when dependencies are built.
