file(REMOVE_RECURSE
  "CMakeFiles/orianna_apps.dir/auto_vehicle.cpp.o"
  "CMakeFiles/orianna_apps.dir/auto_vehicle.cpp.o.d"
  "CMakeFiles/orianna_apps.dir/benchmark_apps.cpp.o"
  "CMakeFiles/orianna_apps.dir/benchmark_apps.cpp.o.d"
  "CMakeFiles/orianna_apps.dir/manipulator.cpp.o"
  "CMakeFiles/orianna_apps.dir/manipulator.cpp.o.d"
  "CMakeFiles/orianna_apps.dir/mobile_robot.cpp.o"
  "CMakeFiles/orianna_apps.dir/mobile_robot.cpp.o.d"
  "CMakeFiles/orianna_apps.dir/quadrotor.cpp.o"
  "CMakeFiles/orianna_apps.dir/quadrotor.cpp.o.d"
  "CMakeFiles/orianna_apps.dir/sphere.cpp.o"
  "CMakeFiles/orianna_apps.dir/sphere.cpp.o.d"
  "liborianna_apps.a"
  "liborianna_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
