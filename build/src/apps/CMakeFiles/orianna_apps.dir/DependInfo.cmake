
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/auto_vehicle.cpp" "src/apps/CMakeFiles/orianna_apps.dir/auto_vehicle.cpp.o" "gcc" "src/apps/CMakeFiles/orianna_apps.dir/auto_vehicle.cpp.o.d"
  "/root/repo/src/apps/benchmark_apps.cpp" "src/apps/CMakeFiles/orianna_apps.dir/benchmark_apps.cpp.o" "gcc" "src/apps/CMakeFiles/orianna_apps.dir/benchmark_apps.cpp.o.d"
  "/root/repo/src/apps/manipulator.cpp" "src/apps/CMakeFiles/orianna_apps.dir/manipulator.cpp.o" "gcc" "src/apps/CMakeFiles/orianna_apps.dir/manipulator.cpp.o.d"
  "/root/repo/src/apps/mobile_robot.cpp" "src/apps/CMakeFiles/orianna_apps.dir/mobile_robot.cpp.o" "gcc" "src/apps/CMakeFiles/orianna_apps.dir/mobile_robot.cpp.o.d"
  "/root/repo/src/apps/quadrotor.cpp" "src/apps/CMakeFiles/orianna_apps.dir/quadrotor.cpp.o" "gcc" "src/apps/CMakeFiles/orianna_apps.dir/quadrotor.cpp.o.d"
  "/root/repo/src/apps/sphere.cpp" "src/apps/CMakeFiles/orianna_apps.dir/sphere.cpp.o" "gcc" "src/apps/CMakeFiles/orianna_apps.dir/sphere.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/orianna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/orianna_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/orianna_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/orianna_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/fg/CMakeFiles/orianna_fg.dir/DependInfo.cmake"
  "/root/repo/build/src/lie/CMakeFiles/orianna_lie.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/orianna_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
