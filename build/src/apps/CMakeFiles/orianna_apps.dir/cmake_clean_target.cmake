file(REMOVE_RECURSE
  "liborianna_apps.a"
)
