file(REMOVE_RECURSE
  "liborianna_hwgen.a"
)
