# Empty dependencies file for orianna_hwgen.
# This may be replaced when dependencies are built.
