file(REMOVE_RECURSE
  "CMakeFiles/orianna_hwgen.dir/generator.cpp.o"
  "CMakeFiles/orianna_hwgen.dir/generator.cpp.o.d"
  "liborianna_hwgen.a"
  "liborianna_hwgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_hwgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
