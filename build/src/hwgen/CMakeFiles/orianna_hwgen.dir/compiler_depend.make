# Empty compiler generated dependencies file for orianna_hwgen.
# This may be replaced when dependencies are built.
