file(REMOVE_RECURSE
  "liborianna_lie.a"
)
