
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lie/pose.cpp" "src/lie/CMakeFiles/orianna_lie.dir/pose.cpp.o" "gcc" "src/lie/CMakeFiles/orianna_lie.dir/pose.cpp.o.d"
  "/root/repo/src/lie/quaternion.cpp" "src/lie/CMakeFiles/orianna_lie.dir/quaternion.cpp.o" "gcc" "src/lie/CMakeFiles/orianna_lie.dir/quaternion.cpp.o.d"
  "/root/repo/src/lie/se3.cpp" "src/lie/CMakeFiles/orianna_lie.dir/se3.cpp.o" "gcc" "src/lie/CMakeFiles/orianna_lie.dir/se3.cpp.o.d"
  "/root/repo/src/lie/so.cpp" "src/lie/CMakeFiles/orianna_lie.dir/so.cpp.o" "gcc" "src/lie/CMakeFiles/orianna_lie.dir/so.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/orianna_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
