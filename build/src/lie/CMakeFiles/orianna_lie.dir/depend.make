# Empty dependencies file for orianna_lie.
# This may be replaced when dependencies are built.
