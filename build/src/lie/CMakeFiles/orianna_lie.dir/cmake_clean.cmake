file(REMOVE_RECURSE
  "CMakeFiles/orianna_lie.dir/pose.cpp.o"
  "CMakeFiles/orianna_lie.dir/pose.cpp.o.d"
  "CMakeFiles/orianna_lie.dir/quaternion.cpp.o"
  "CMakeFiles/orianna_lie.dir/quaternion.cpp.o.d"
  "CMakeFiles/orianna_lie.dir/se3.cpp.o"
  "CMakeFiles/orianna_lie.dir/se3.cpp.o.d"
  "CMakeFiles/orianna_lie.dir/so.cpp.o"
  "CMakeFiles/orianna_lie.dir/so.cpp.o.d"
  "liborianna_lie.a"
  "liborianna_lie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_lie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
