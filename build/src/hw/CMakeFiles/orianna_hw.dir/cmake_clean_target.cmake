file(REMOVE_RECURSE
  "liborianna_hw.a"
)
