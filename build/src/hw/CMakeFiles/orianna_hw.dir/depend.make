# Empty dependencies file for orianna_hw.
# This may be replaced when dependencies are built.
