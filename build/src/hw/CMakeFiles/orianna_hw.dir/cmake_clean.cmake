file(REMOVE_RECURSE
  "CMakeFiles/orianna_hw.dir/accelerator.cpp.o"
  "CMakeFiles/orianna_hw.dir/accelerator.cpp.o.d"
  "CMakeFiles/orianna_hw.dir/cost_model.cpp.o"
  "CMakeFiles/orianna_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/orianna_hw.dir/frame_pipeline.cpp.o"
  "CMakeFiles/orianna_hw.dir/frame_pipeline.cpp.o.d"
  "CMakeFiles/orianna_hw.dir/trace.cpp.o"
  "CMakeFiles/orianna_hw.dir/trace.cpp.o.d"
  "liborianna_hw.a"
  "liborianna_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
