file(REMOVE_RECURSE
  "liborianna_baselines.a"
)
