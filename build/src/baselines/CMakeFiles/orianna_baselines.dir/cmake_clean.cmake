file(REMOVE_RECURSE
  "CMakeFiles/orianna_baselines.dir/platform_models.cpp.o"
  "CMakeFiles/orianna_baselines.dir/platform_models.cpp.o.d"
  "CMakeFiles/orianna_baselines.dir/stack_model.cpp.o"
  "CMakeFiles/orianna_baselines.dir/stack_model.cpp.o.d"
  "liborianna_baselines.a"
  "liborianna_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orianna_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
