# Empty compiler generated dependencies file for orianna_baselines.
# This may be replaced when dependencies are built.
