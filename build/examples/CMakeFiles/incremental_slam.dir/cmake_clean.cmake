file(REMOVE_RECURSE
  "CMakeFiles/incremental_slam.dir/incremental_slam.cpp.o"
  "CMakeFiles/incremental_slam.dir/incremental_slam.cpp.o.d"
  "incremental_slam"
  "incremental_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
