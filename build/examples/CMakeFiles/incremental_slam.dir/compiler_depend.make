# Empty compiler generated dependencies file for incremental_slam.
# This may be replaced when dependencies are built.
