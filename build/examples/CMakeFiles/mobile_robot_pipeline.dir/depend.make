# Empty dependencies file for mobile_robot_pipeline.
# This may be replaced when dependencies are built.
