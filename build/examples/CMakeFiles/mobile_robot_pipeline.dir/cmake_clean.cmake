file(REMOVE_RECURSE
  "CMakeFiles/mobile_robot_pipeline.dir/mobile_robot_pipeline.cpp.o"
  "CMakeFiles/mobile_robot_pipeline.dir/mobile_robot_pipeline.cpp.o.d"
  "mobile_robot_pipeline"
  "mobile_robot_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_robot_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
