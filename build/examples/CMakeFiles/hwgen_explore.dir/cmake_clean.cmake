file(REMOVE_RECURSE
  "CMakeFiles/hwgen_explore.dir/hwgen_explore.cpp.o"
  "CMakeFiles/hwgen_explore.dir/hwgen_explore.cpp.o.d"
  "hwgen_explore"
  "hwgen_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgen_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
