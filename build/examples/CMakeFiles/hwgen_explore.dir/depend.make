# Empty dependencies file for hwgen_explore.
# This may be replaced when dependencies are built.
