file(REMOVE_RECURSE
  "CMakeFiles/custom_factor.dir/custom_factor.cpp.o"
  "CMakeFiles/custom_factor.dir/custom_factor.cpp.o.d"
  "custom_factor"
  "custom_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
