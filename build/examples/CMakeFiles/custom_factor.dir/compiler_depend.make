# Empty compiler generated dependencies file for custom_factor.
# This may be replaced when dependencies are built.
