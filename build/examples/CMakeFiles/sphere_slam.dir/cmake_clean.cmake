file(REMOVE_RECURSE
  "CMakeFiles/sphere_slam.dir/sphere_slam.cpp.o"
  "CMakeFiles/sphere_slam.dir/sphere_slam.cpp.o.d"
  "sphere_slam"
  "sphere_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
