# Empty dependencies file for sphere_slam.
# This may be replaced when dependencies are built.
