// orianna-compile: command-line front end of the ORIANNA toolchain.
//
// Load a pose graph in g2o format, compile it into the ORIANNA ISA
// (anchoring the first vertex, minimum-degree ordering, cleanup
// passes), report the instruction mix, optionally run Gauss-Newton
// steps on the simulated accelerator, and save the binary program.
//
// With --threads, the tool also demonstrates the parallel serving
// path: one EngineGroup with a replica per worker, one session pinned
// to each replica's worker, all sessions stepped concurrently on a
// ServerPool behind admission control and asserted byte-identical to
// the sequential session (one compile, deduped by the group's shared
// single-flight table).
//
// Usage:
//   orianna_compile <input.g2o> [-o out.oprog] [--simulate]
//                   [--iterate N] [--threads N] [--trace out.json]
//                   [--metrics out.json] [--dot out.dot]
//                   [--passes LIST] [--list-passes]
//                   [--dump-ir PREFIX] [--verify-passes]
//                   [--inject-faults SPEC] [--fallback]
//
// --inject-faults arms the deterministic hardware fault injector for
// the simulated steps (SPEC = [SEED@]kind:unit:rate[:cycles],...;
// kinds stall/spike/corrupt, unit a functional-unit name or "all");
// --fallback lets a faulty frame degrade to the cleanup-only
// reference program instead of failing after the retry budget.
//
// --trace writes the unified observability trace (DESIGN.md §6):
// session -> frame -> stage spans of the Gauss-Newton loop nested
// above the per-unit hardware schedule rows, loadable in
// https://ui.perfetto.dev. --metrics dumps the serving metrics
// registry (compile times, per-stage frame p50/p99, utilization)
// after the run. --passes selects the optimization pipeline
// ("default", "none", or a comma-separated pass list, DESIGN.md §7);
// --verify-passes runs the per-pass equivalence check; --dump-ir
// writes PREFIX.{before,after}.ir listings and matching .dot
// instruction-dependence graphs. --iterate and --threads reject zero
// or negative counts; unknown flags print usage and exit nonzero.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "compiler/codegen.hpp"
#include "compiler/encoding.hpp"
#include "compiler/ir_dump.hpp"
#include "compiler/pass_manager.hpp"
#include "fg/dot.hpp"
#include "fg/factors.hpp"
#include "fg/io_g2o.hpp"
#include "fg/ordering.hpp"
#include "hw/trace.hpp"
#include "matrix/simd.hpp"
#include "runtime/admission.hpp"
#include "runtime/engine.hpp"
#include "runtime/engine_group.hpp"
#include "runtime/metrics.hpp"
#include "runtime/program_store.hpp"
#include "runtime/server_pool.hpp"
#include "runtime/trace_sink.hpp"

#include <fstream>

using namespace orianna;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <input.g2o> [-o out.oprog] [--simulate] "
                 "[--iterate N] [--threads N] [--trace out.json] "
                 "[--metrics out.json] [--dot out.dot] "
                 "[--passes LIST] [--list-passes] "
                 "[--dump-ir PREFIX] [--verify-passes] "
                 "[--inject-faults SPEC] [--fallback] [--simd TIER] "
                 "[--precision P] [--cache-dir DIR] [--no-store]\n"
                 "  --iterate N and --threads N require N >= 1\n"
                 "  --precision takes fp64 or fp32 (default: "
                 "ORIANNA_PRECISION, else fp64); fp32 compiles for "
                 "the single-precision datapath and provisions the "
                 "fp64 reference fallback\n"
                 "  --cache-dir DIR reuses compiled programs from the "
                 "persistent store in DIR (created if absent); "
                 "--no-store ignores it\n"
                 "  --simd takes scalar, avx2, neon or auto "
                 "(overrides ORIANNA_SIMD; unavailable tiers fall "
                 "back to the best supported one)\n"
                 "  --passes takes \"default\", \"none\", or a "
                 "comma-separated pass list (see --list-passes)\n"
                 "  --inject-faults takes "
                 "[SEED@]kind:unit:rate[:cycles],... with kinds "
                 "stall, spike, corrupt\n"
                 "  --fallback degrades faulty frames to the "
                 "reference program instead of failing\n",
                 argv0);
    return 2;
}

/** Parse a strictly positive integer; returns 0 on any malformation. */
unsigned long
parsePositive(const char *text)
{
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0)
        return 0;
    return static_cast<unsigned long>(value);
}

/** Exact (bitwise) equality of two value sets over @p keys. */
bool
identicalValues(const fg::Values &a, const fg::Values &b)
{
    for (fg::Key key : a.keys()) {
        if (a.isPose(key)) {
            if (mat::maxDifference(a.pose(key).phi(),
                                   b.pose(key).phi()) != 0.0 ||
                mat::maxDifference(a.pose(key).t(),
                                   b.pose(key).t()) != 0.0)
                return false;
        } else if (mat::maxDifference(a.vector(key),
                                      b.vector(key)) != 0.0) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);

    std::string input;
    std::string output;
    std::string trace_path;
    std::string metrics_path;
    std::string dot_path;
    std::string passes_spec = "default";
    std::string dump_ir_prefix;
    bool simulate = false;
    bool serve = false;
    bool verify_passes = false;
    std::string fault_spec;
    bool fallback = false;
    std::string cache_dir;
    bool no_store = false;
    comp::Precision precision = comp::Precision::Fp64;
    {
        // Same resolution order as the Engine: flag > env > fp64.
        const char *env = std::getenv("ORIANNA_PRECISION");
        if (env != nullptr)
            comp::parsePrecision(env, precision);
    }
    std::size_t iterations = 1;
    unsigned threads = 0; // 0: hardware_concurrency.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-passes") {
            for (const auto &[name, description] :
                 comp::PassManager::availablePasses())
                std::printf("%-8s %s\n", name.c_str(),
                            description.c_str());
            return 0;
        }
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--passes" && i + 1 < argc) {
            passes_spec = argv[++i];
        } else if (arg == "--dump-ir" && i + 1 < argc) {
            dump_ir_prefix = argv[++i];
        } else if (arg == "--verify-passes") {
            verify_passes = true;
        } else if (arg == "--simulate") {
            simulate = true;
        } else if (arg == "--iterate" && i + 1 < argc) {
            simulate = true;
            iterations = parsePositive(argv[++i]);
            if (iterations == 0)
                return usage(argv[0]);
        } else if (arg == "--threads" && i + 1 < argc) {
            simulate = true;
            serve = true;
            threads = static_cast<unsigned>(parsePositive(argv[++i]));
            if (threads == 0)
                return usage(argv[0]);
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--metrics" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (arg == "--dot" && i + 1 < argc) {
            dot_path = argv[++i];
        } else if (arg == "--inject-faults" && i + 1 < argc) {
            simulate = true;
            fault_spec = argv[++i];
        } else if (arg == "--fallback") {
            fallback = true;
        } else if (arg == "--precision" && i + 1 < argc) {
            if (!comp::parsePrecision(argv[++i], precision)) {
                std::fprintf(stderr,
                             "error: --precision: unknown mode "
                             "\"%s\"\n",
                             argv[i]);
                return usage(argv[0]);
            }
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg == "--no-store") {
            no_store = true;
        } else if (arg == "--simd" && i + 1 < argc) {
            const auto selection =
                mat::kernels::selectTierFromSpec(argv[++i]);
            if (!selection.ok) {
                std::fprintf(stderr, "error: --simd: %s\n",
                             selection.message.c_str());
                return usage(argv[0]);
            }
            if (!selection.message.empty())
                std::fprintf(stderr, "warning: --simd: %s\n",
                             selection.message.c_str());
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (input.empty()) {
            input = arg;
        } else {
            return usage(argv[0]); // A second positional argument.
        }
    }
    if (input.empty())
        return usage(argv[0]);
    if (!trace_path.empty())
        runtime::TraceCollector::setEnabled(true);
    std::printf("simd: %s\n",
                mat::kernels::simdCapabilityString().c_str());
    std::printf("precision: %s\n", comp::precisionName(precision));

    try {
        fg::PoseGraphData data = fg::loadG2o(input);
        std::printf("loaded %s: %zu vertices, %zu edges\n",
                    input.c_str(), data.initial.size(),
                    data.graph.size());
        for (const std::string &warning : data.warnings)
            std::fprintf(stderr, "warning: %s\n", warning.c_str());
        if (data.initial.size() == 0)
            throw std::runtime_error("empty pose graph");

        // Anchor the gauge at the first vertex.
        const fg::Key first = data.initial.keys().front();
        const std::size_t dof = data.initial.dof(first);
        data.graph.emplace<fg::PriorFactor>(
            first, data.initial.pose(first),
            fg::isotropicSigmas(dof, 1e-3));

        comp::CompileOptions options;
        options.name = input;
        options.ordering = fg::ordering::minDegree(data.graph);
        options.precision = precision;
        const comp::PassManager pipeline =
            comp::PassManager::parse(passes_spec);

        // Persistent store tier (--cache-dir): the fingerprint is
        // computed over the anchored graph, exactly what the Engine
        // keys its own caches by, so tool-written and server-written
        // entries interoperate on one directory.
        std::unique_ptr<runtime::ProgramStore> store;
        std::uint64_t fingerprint = 0;
        if (!cache_dir.empty() && !no_store) {
            store =
                std::make_unique<runtime::ProgramStore>(cache_dir);
            fingerprint =
                runtime::graphFingerprint(data.graph, data.initial);
            // Same precision salt the Engine applies, so fp32 and
            // fp64 artifacts of one graph coexist in one directory.
            if (precision == comp::Precision::Fp32)
                fingerprint ^= runtime::Engine::kFp32Salt;
        }

        comp::Program program;
        bool from_store = false;
        if (store != nullptr) {
            if (auto stored =
                    store->load(fingerprint, pipeline.spec())) {
                program = *stored;
                from_store = true;
                std::printf("store: hit %s (pipeline \"%s\"), "
                            "compile skipped\n",
                            store->entryPath(fingerprint).c_str(),
                            pipeline.spec().c_str());
                std::printf("compiled: %zu instructions (from "
                            "store), %zu value slots\n",
                            program.instructions.size(),
                            program.valueSlots);
            }
        }

        comp::PassManager::RunOptions pass_options;
        pass_options.probe = &data.initial;
        pass_options.verify =
            verify_passes || comp::PassManager::verifyFromEnv();

        if (!from_store) {
            program =
                comp::compileGraph(data.graph, data.initial, options);
            const std::size_t raw_instructions =
                program.instructions.size();

            auto dumpIr = [&](const char *tag) {
                const std::string base = dump_ir_prefix + "." + tag;
                std::ofstream listing(base + ".ir");
                listing << comp::programListing(program);
                std::ofstream dot(base + ".dot");
                dot << comp::programToDot(program);
                if (!listing || !dot)
                    throw std::runtime_error("cannot write " + base +
                                             ".{ir,dot}");
                std::printf("wrote %s.ir, %s.dot\n", base.c_str(),
                            base.c_str());
            };
            if (!dump_ir_prefix.empty())
                dumpIr("before");

            const std::vector<comp::PassStats> pass_stats =
                pipeline.run(program, pass_options);

            std::printf("compiled: %zu instructions (%zu before "
                        "pipeline \"%s\"), %zu value slots\n",
                        program.instructions.size(),
                        raw_instructions, pipeline.spec().c_str(),
                        program.valueSlots);
            for (const comp::PassStats &stat : pass_stats)
                std::printf(
                    "  pass %-6s %4zu -> %4zu instructions "
                    "(%zu rewrites, %llu us%s)\n",
                    stat.pass.c_str(), stat.before, stat.after,
                    stat.rewrites,
                    static_cast<unsigned long long>(stat.wallUs),
                    stat.verified ? ", verified" : "");
            if (!dump_ir_prefix.empty())
                dumpIr("after");
            if (store != nullptr &&
                store->store(fingerprint, pipeline.spec(), program))
                std::printf("store: wrote %s\n",
                            store->entryPath(fingerprint).c_str());
        }
        const auto histogram = program.opHistogram();
        std::printf("instruction mix:");
        for (std::size_t op = 0; op < histogram.size(); ++op)
            if (histogram[op] > 0)
                std::printf(" %s=%zu",
                            comp::isaOpName(
                                static_cast<comp::IsaOp>(op)),
                            histogram[op]);
        std::printf("\n");

        if (!output.empty()) {
            comp::saveProgram(output, program);
            std::printf("wrote %s\n", output.c_str());
        }
        if (!dot_path.empty()) {
            std::ofstream dot(dot_path);
            dot << fg::graphToDot(data.graph);
            std::printf("wrote %s\n", dot_path.c_str());
        }
        if (simulate || !trace_path.empty()) {
            hw::AcceleratorConfig config =
                hw::AcceleratorConfig::minimal(true);
            // A session keeps one execution context warm across
            // Gauss-Newton steps: schedule state and slot arenas are
            // built once, each step only re-runs the frame. Scoped so
            // its destructor closes the "session" span before the
            // unified trace is written.
            fg::Values sequential_values;
            {
                // With faults armed, the session gets the injector
                // plus (under --fallback) a cleanup-only reference
                // compile of the same graph as its degradation rung.
                runtime::SessionOptions sopts;
                if (!fault_spec.empty())
                    sopts.injector =
                        std::make_shared<const hw::FaultInjector>(
                            hw::FaultPlan::parse(fault_spec));
                sopts.policy.fallback = fallback;
                if (fallback &&
                    (sopts.injector != nullptr ||
                     precision == comp::Precision::Fp32)) {
                    // The fallback rung is always the fp64 reference.
                    comp::CompileOptions ref_options = options;
                    ref_options.precision = comp::Precision::Fp64;
                    comp::Program reference = comp::compileGraph(
                        data.graph, data.initial, ref_options);
                    comp::PassManager::parse("dedup,dce")
                        .run(reference, pass_options);
                    sopts.fallback =
                        std::make_shared<const comp::Program>(
                            std::move(reference));
                }
                runtime::Session session(
                    std::shared_ptr<const comp::Program>(
                        std::shared_ptr<const void>(), &program),
                    data.initial, config, std::move(sopts));
                const hw::SimResult first = session.step();
                std::printf("one Gauss-Newton step on the minimal "
                            "OoO accelerator: %llu cycles (%.1f us "
                            "@167MHz), %.2f uJ\n",
                            static_cast<unsigned long long>(
                                first.cycles),
                            first.seconds() * 1e6,
                            first.totalEnergyJ() * 1e6);
                if (iterations > 1) {
                    session.iterate(iterations - 1);
                    const hw::SimResult &total = session.totals();
                    std::printf("%zu steps total: %llu cycles "
                                "(%.1f us @167MHz), %.2f uJ\n",
                                session.frames(),
                                static_cast<unsigned long long>(
                                    total.cycles),
                                total.seconds() * 1e6,
                                total.totalEnergyJ() * 1e6);
                }
                if (!fault_spec.empty())
                    std::printf(
                        "faults: %llu injected, %llu detected, "
                        "%llu retry(ies), %llu fallback frame(s)\n",
                        static_cast<unsigned long long>(
                            session.totals().faultsInjected),
                        static_cast<unsigned long long>(
                            session.faultsDetected()),
                        static_cast<unsigned long long>(
                            session.retries()),
                        static_cast<unsigned long long>(
                            session.fallbacks()));
                sequential_values = session.values();
            }
            if (serve) {
                // Parallel serving demo: an EngineGroup with one
                // replica per worker, one session pinned to each
                // replica's owning worker via admission control. The
                // graphs are identical, so the group's shared
                // single-flight table compiles once and every other
                // replica takes a shared hit; sessions step
                // concurrently and must land on exactly the
                // sequential session's values.
                runtime::ServerPool pool(threads);
                const unsigned n = pool.threads();
                runtime::EngineOptions engine_options;
                if (!fault_spec.empty())
                    engine_options.faultPlan =
                        hw::FaultPlan::parse(fault_spec);
                engine_options.degradation.fallback = fallback;
                engine_options.precision = precision;
                if (!no_store)
                    engine_options.storeDir = cache_dir;
                runtime::EngineGroup group(
                    hw::AcceleratorConfig::minimal(true),
                    std::move(engine_options), n);
                runtime::AdmissionController admission(pool, {});
                std::vector<std::unique_ptr<runtime::Session>>
                    sessions(n);
                std::vector<std::string> failures(n);
                for (unsigned c = 0; c < n; ++c)
                    admission.submit(/*worker=*/c, [&, c] {
                        try {
                            auto session = std::make_unique<
                                runtime::Session>(group.session(
                                /*replica=*/c, data.graph,
                                data.initial, 1.0, 0, input));
                            session->iterate(iterations);
                            sessions[c] = std::move(session);
                        } catch (const std::exception &error) {
                            failures[c] = error.what();
                        }
                    });
                admission.drain();

                bool identical = true;
                for (std::size_t c = 0; c < sessions.size(); ++c) {
                    if (!failures[c].empty() ||
                        sessions[c] == nullptr) {
                        std::fprintf(stderr,
                                     "client %zu failed: %s\n", c,
                                     failures[c].c_str());
                        identical = false;
                        continue;
                    }
                    identical = identical &&
                                identicalValues(sequential_values,
                                                sessions[c]->values());
                }
                const auto stats = group.stats();
                std::printf("served %u concurrent session(s) on %u "
                            "thread(s) via %u replica(s): %zu "
                            "compile(s), %zu shared hit(s), %zu "
                            "local hit(s), results %s\n",
                            n, n, group.replicas(), stats.compiles,
                            stats.sharedHits, stats.localHits,
                            identical
                                ? "identical to the sequential session"
                                : "DIVERGED");
                const auto totals = pool.tasksExecuted();
                for (std::size_t w = 0; w < totals.size(); ++w)
                    std::printf("  thread %zu: %llu task(s)\n", w,
                                static_cast<unsigned long long>(
                                    totals[w]));
                if (!fault_spec.empty())
                    std::printf("health: %s\n",
                                group.healthJson().c_str());
                if (!identical)
                    return 1;
            }
            if (!trace_path.empty()) {
                runtime::TraceCollector::global().write(trace_path);
                std::printf("wrote %s (unified runtime->hw trace)\n",
                            trace_path.c_str());
            }
        }
        if (!metrics_path.empty()) {
            std::ofstream out(metrics_path);
            out << runtime::Engine::metricsJson();
            if (!out)
                throw std::runtime_error("cannot write " +
                                         metrics_path);
            std::printf("wrote %s\n", metrics_path.c_str());
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
