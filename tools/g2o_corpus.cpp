// g2o_corpus: the pose-graph corpus in g2o interchange format.
//
// Generates the three scenario classes of DESIGN.md §13 — manhattan
// (M3500-style SE2 grid walk), sphere (sphere2500-style SE3 scan
// rings) and garage (parking-garage-style SE3 helix) — and writes
// them as g2o files, the same format the full published benchmarks
// ship in. The committed excerpts under data/g2o/ were produced by
// this tool at the default (lite) scale; re-running it reproduces
// them byte for byte.
//
// The tool never touches the network: --list prints where the
// canonical full-size datasets live so a user can fetch them
// themselves and feed them to orianna_compile / scenarioFromG2o
// unchanged.
//
// Usage:
//   g2o_corpus [--out DIR] [--poses N] [--seed S] [--list]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/pose_graph.hpp"
#include "fg/io_g2o.hpp"

using namespace orianna;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--out DIR] [--poses N] [--seed S] [--list]\n"
        "  --out DIR   write manhattan_lite.g2o, sphere_lite.g2o and\n"
        "              garage_lite.g2o into DIR (default: .)\n"
        "  --poses N   approximate poses per dataset, N >= 16\n"
        "              (default: 120 — the committed data/g2o scale)\n"
        "  --seed S    generator seed (default: 42)\n"
        "  --list      print the canonical full-size dataset sources\n"
        "              and exit (no network access; download them\n"
        "              yourself and load with scenarioFromG2o)\n",
        argv0);
    return 2;
}

int
listSources()
{
    std::printf(
        "The generated corpus models these published datasets; the\n"
        "full-size originals are available from:\n"
        "  manhattan (M3500, SE2)  "
        "https://lucacarlone.mit.edu/datasets/  [Olson 2006]\n"
        "  sphere2500 (SE3)        "
        "https://github.com/RainerKuemmerle/g2o (data/)\n"
        "  parking-garage (SE3)    "
        "https://lucacarlone.mit.edu/datasets/\n"
        "Any of them loads unchanged: orianna_compile <file.g2o>, or\n"
        "apps::scenarioFromG2o(fg::loadG2o(path), name) for the\n"
        "frame-by-frame incremental replay.\n");
    return 0;
}

void
writeScenario(const apps::PoseGraphScenario &scenario,
              const std::string &path)
{
    fg::saveG2o(path, scenario.graph(), scenario.initial);
    std::printf("wrote %s: %zu poses (SE%zu), %zu edges, "
                "%zu loop-closure frames\n",
                path.c_str(), scenario.initial.size(),
                scenario.spaceDim, scenario.graph().size() - 1,
                scenario.loopClosureFrames());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = ".";
    std::size_t poses = 120;
    unsigned seed = 42;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            return listSources();
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--poses" && i + 1 < argc) {
            char *end = nullptr;
            const long value = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || value < 16)
                return usage(argv[0]);
            poses = static_cast<std::size_t>(value);
        } else if (arg == "--seed" && i + 1 < argc) {
            char *end = nullptr;
            const long value = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || value < 0)
                return usage(argv[0]);
            seed = static_cast<unsigned>(value);
        } else {
            return usage(argv[0]);
        }
    }

    try {
        // Sphere rings hold ~20 poses each; garage laps ~24 — the
        // proportions of the published originals, scaled down.
        const std::size_t rings = std::max<std::size_t>(2, poses / 20);
        const std::size_t laps = std::max<std::size_t>(2, poses / 24);
        writeScenario(apps::makeManhattanWorld(poses, seed),
                      out_dir + "/manhattan_lite.g2o");
        writeScenario(apps::makeSphereWorld(rings, 20, seed),
                      out_dir + "/sphere_lite.g2o");
        writeScenario(apps::makeGarageWorld(laps, 24, seed),
                      out_dir + "/garage_lite.g2o");
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
