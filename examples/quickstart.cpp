// Quickstart: the Sec. 5.1 programming model.
//
// Build the Fig. 4 localization factor graph (three poses, two
// landmarks, camera + IMU + prior factors), optimize it with
// Gauss-Newton, and print the refined state. This mirrors the paper's
// listing:
//
//   graph.add(CameraFactor(x1, y1, m1))
//   ...
//   graph.optimize()

#include <cstdio>

#include "fg/factors.hpp"
#include "fg/optimizer.hpp"

using namespace orianna;
using fg::CameraModel;
using fg::Values;
using lie::Pose;
using mat::Vector;

int
main()
{
    // Ground truth used to synthesize the measurements.
    const std::vector<Pose> poses = {
        Pose(Vector{0.00, 0.0, 0.00}, Vector{0.0, 0.0, 0.0}),
        Pose(Vector{0.05, 0.0, 0.10}, Vector{0.8, 0.1, 0.0}),
        Pose(Vector{0.10, 0.0, 0.20}, Vector{1.6, 0.2, 0.0}),
    };
    const std::vector<Vector> landmarks = {Vector{0.8, 0.6, 3.5},
                                           Vector{2.2, -0.4, 4.0}};
    const CameraModel camera{400.0, 400.0, 320.0, 240.0};
    auto pixel = [&](const Pose &x, const Vector &l) {
        const Vector local = x.rotation().transpose() * (l - x.t());
        return Vector{camera.fx * local[0] / local[2] + camera.cx,
                      camera.fy * local[1] / local[2] + camera.cy};
    };

    // The Sec. 5.1 workflow: start from an empty graph and add
    // factors. Keys 1..3 are poses, 11..12 landmarks.
    fg::FactorGraph graph;
    graph.emplace<fg::CameraFactor>(1, 11, pixel(poses[0], landmarks[0]),
                                    camera, fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::CameraFactor>(2, 11, pixel(poses[1], landmarks[0]),
                                    camera, fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::CameraFactor>(3, 11, pixel(poses[2], landmarks[0]),
                                    camera, fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::CameraFactor>(2, 12, pixel(poses[1], landmarks[1]),
                                    camera, fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::CameraFactor>(3, 12, pixel(poses[2], landmarks[1]),
                                    camera, fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::IMUFactor>(1, 2, poses[1].ominus(poses[0]),
                                 fg::isotropicSigmas(6, 0.05));
    graph.emplace<fg::IMUFactor>(2, 3, poses[2].ominus(poses[1]),
                                 fg::isotropicSigmas(6, 0.05));
    graph.emplace<fg::PriorFactor>(1, poses[0],
                                   fg::isotropicSigmas(6, 0.01));

    // A deliberately wrong initial guess.
    Values initial;
    initial.insert(1, poses[0].retract(Vector{0.02, -0.01, 0.03,
                                              0.05, -0.04, 0.02}));
    initial.insert(2, poses[1].retract(Vector{-0.03, 0.02, -0.02,
                                              -0.06, 0.05, 0.03}));
    initial.insert(3, poses[2].retract(Vector{0.01, 0.03, -0.04,
                                              0.04, -0.06, -0.05}));
    initial.insert(11, landmarks[0] + Vector{0.1, -0.1, 0.2});
    initial.insert(12, landmarks[1] + Vector{-0.15, 0.1, -0.1});

    std::printf("initial objective: %.6f\n", graph.totalError(initial));
    const auto result = fg::optimize(graph, initial);
    std::printf("final objective:   %.2e after %zu iterations "
                "(converged: %s)\n",
                result.finalError, result.iterations,
                result.converged ? "yes" : "no");

    for (fg::Key key : {1, 2, 3}) {
        const Pose &estimate = result.values.pose(key);
        std::printf("pose %llu: %s (truth %s)\n",
                    static_cast<unsigned long long>(key),
                    estimate.str().c_str(),
                    poses[key - 1].str().c_str());
    }
    for (fg::Key key : {11, 12}) {
        std::printf("landmark %llu: %s\n",
                    static_cast<unsigned long long>(key),
                    result.values.vector(key).str().c_str());
    }
    return 0;
}
