// Design-space exploration with the constraint-based hardware
// generator (Sec. 6.2): sweep resource budgets and objectives for the
// Quadrotor application and print the Pareto-style trajectory of
// generated designs.

#include <cstdio>

#include "apps/benchmark_apps.hpp"
#include "hwgen/generator.hpp"
#include "runtime/server_pool.hpp"

using namespace orianna;

namespace {

void
printConfig(const hw::AcceleratorConfig &config)
{
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k)
        std::printf("%u%s", config.units[k],
                    k + 1 < hw::kUnitKindCount ? "/" : "");
}

} // namespace

int
main()
{
    apps::BenchmarkApp bench = apps::buildQuadrotor(/*seed=*/3);
    const auto work = bench.app.frameWork();

    // Candidate evaluation inside every greedy step fans out across
    // the pool; the selected designs match the sequential path.
    runtime::ServerPool pool;

    std::printf("unit kinds: matmul/transpose/qr/backsub/vector/"
                "special/buffer/dma\n\n");

    std::printf("latency objective, growing DSP budget:\n");
    std::printf("%8s %10s %10s %8s  %s\n", "DSP", "latency", "energy",
                "steps", "units");
    for (std::size_t dsp : {160u, 288u, 512u}) {
        hw::Resources budget{131000, 262000, 327, dsp};
        auto gen = hwgen::generate(work, budget,
                                   hwgen::Objective::AvgLatency, true,
                                   &pool);
        std::printf("%8zu %8.1fus %8.1fuJ %8zu  ", dsp,
                    gen.result.seconds() * 1e6,
                    gen.result.totalEnergyJ() * 1e6,
                    gen.trajectory.size());
        printConfig(gen.config);
        std::printf("\n");
    }

    std::printf("\nobjective comparison at 512 DSPs:\n");
    std::printf("%-12s %10s %10s  %s\n", "objective", "latency",
                "energy", "units");
    const hw::Resources budget{131000, 262000, 327, 512};
    for (auto objective : {hwgen::Objective::AvgLatency,
                           hwgen::Objective::MaxLatency,
                           hwgen::Objective::Energy}) {
        auto gen = hwgen::generate(work, budget, objective, true,
                                   &pool);
        const char *name =
            objective == hwgen::Objective::AvgLatency  ? "avg-latency"
            : objective == hwgen::Objective::MaxLatency ? "max-latency"
                                                        : "energy";
        std::printf("%-12s %8.1fus %8.1fuJ  ", name,
                    gen.result.seconds() * 1e6,
                    gen.result.totalEnergyJ() * 1e6);
        printConfig(gen.config);
        std::printf("\n");
    }

    std::printf("\ngreedy trajectory (avg-latency, 512 DSPs):\n");
    auto gen = hwgen::generate(work, budget,
                               hwgen::Objective::AvgLatency, true,
                               &pool);
    for (std::size_t i = 0; i < gen.trajectory.size(); ++i) {
        const auto &point = gen.trajectory[i];
        std::printf("  step %2zu: %8.1f us, %4zu DSP  ", i,
                    point.result.seconds() * 1e6, point.resources.dsp);
        printConfig(point.config);
        std::printf("\n");
    }
    return 0;
}
