// 3-D pose-graph SLAM on the multi-layer sphere of Sec. 4.3 / Fig. 9:
// generate a noisy dead-reckoned trajectory, optimize it with the
// unified <so(3),T(3)> representation, and report the accuracy and
// MAC statistics. Writes the trajectories as CSV for plotting.

#include <cstdio>
#include <fstream>

#include "apps/sphere.hpp"
#include "fg/factors.hpp"
#include "fg/io_g2o.hpp"
#include "matrix/mac_counter.hpp"

using namespace orianna;

namespace {

void
writeCsv(const char *path, const std::vector<lie::Pose> &trajectory)
{
    std::ofstream out(path);
    out << "x,y,z\n";
    for (const lie::Pose &pose : trajectory)
        out << pose.t()[0] << "," << pose.t()[1] << "," << pose.t()[2]
            << "\n";
    std::printf("  wrote %s (%zu poses)\n", path, trajectory.size());
}

} // namespace

int
main()
{
    std::printf("sphere SLAM: 10 rings x 16 poses, radius 10 m\n");
    auto data = apps::makeSphere(10, 16, 10.0, /*seed=*/1, 0.01, 0.05);
    std::printf("  %zu poses, %zu relative-pose edges\n",
                data.truth.size(), data.edges.size());

    const auto initial = apps::computeAte(data.initial, data.truth);
    std::printf("dead reckoning ATE: mean %.3f m, max %.3f m\n",
                initial.mean, initial.max);

    mat::MacCounter::reset();
    const auto optimized = apps::optimizeSphereUnified(data, 10);
    const std::uint64_t macs = mat::MacCounter::value();

    const auto ate = apps::computeAte(optimized, data.truth);
    std::printf("optimized ATE:      mean %.3f m, max %.3f m "
                "(%.0fx better, %.1f MMACs)\n",
                ate.mean, ate.max, initial.mean / ate.mean,
                static_cast<double>(macs) * 1e-6);

    writeCsv("sphere_truth.csv", data.truth);
    writeCsv("sphere_initial.csv", data.initial);
    writeCsv("sphere_optimized.csv", optimized);

    // Export the dataset in the standard g2o interchange format.
    fg::FactorGraph pose_graph;
    fg::Values initial_values;
    for (std::size_t i = 0; i < data.initial.size(); ++i)
        initial_values.insert(i, data.initial[i]);
    for (const auto &edge : data.edges)
        pose_graph.emplace<fg::BetweenFactor>(
            edge.i, edge.j, edge.measurement,
            fg::isotropicSigmas(6, edge.sigma));
    fg::saveG2o("sphere.g2o", pose_graph, initial_values);
    std::printf("  wrote sphere.g2o (%zu vertices, %zu edges)\n",
                data.initial.size(), data.edges.size());
    return 0;
}
