// Incremental (iSAM-style) smoothing on a growing pose graph: the
// square-root-SAM substrate the paper builds on ([10][11]), processed
// frame by frame. Each update re-eliminates only the ordering suffix
// the new measurements touch — watch the re-elimination counts stay
// flat for odometry and jump for loop closures.

#include <chrono>
#include <cstdio>
#include <random>

#include "apps/common.hpp"
#include "fg/factors.hpp"
#include "fg/incremental.hpp"
#include "fg/optimizer.hpp"

using namespace orianna;
using fg::IncrementalSmoother;
using lie::Pose;
using mat::Vector;

int
main()
{
    std::mt19937 rng(5);
    const std::size_t frames = 60;

    // Ground truth: a loop in the plane, revisiting the start.
    std::vector<Pose> truth;
    Pose current = Pose::identity(2);
    for (std::size_t i = 0; i < frames; ++i) {
        truth.push_back(current);
        current = current.oplus(
            Pose(Vector{6.28 / static_cast<double>(frames)},
                 Vector{0.5, 0.0}));
    }

    fg::IncrementalParams params;
    params.relinearizeInterval = 15;
    IncrementalSmoother smoother(params);
    smoother.addVariable(0u, truth[0]);
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        0u, truth[0], fg::isotropicSigmas(3, 0.01)));
    smoother.update();

    double total_ms = 0.0;
    std::size_t total_eliminations = 0;
    for (std::size_t i = 1; i < frames; ++i) {
        const Pose odom = apps::perturbPose(
            truth[i].ominus(truth[i - 1]), rng, 0.005, 0.02);
        const Pose guess = smoother.estimate().pose(i - 1).oplus(odom);
        smoother.addVariable(i, guess);
        smoother.addFactor(std::make_shared<fg::BetweenFactor>(
            i - 1, i, odom, fg::isotropicSigmas(3, 0.02)));
        // A loop closure back to the start at the end of the lap.
        if (i == frames - 1)
            smoother.addFactor(std::make_shared<fg::BetweenFactor>(
                0u, i,
                apps::perturbPose(truth[i].ominus(truth[0]), rng,
                                  0.002, 0.005),
                fg::isotropicSigmas(3, 0.005)));

        const auto start = std::chrono::steady_clock::now();
        const auto stats = smoother.update();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        total_ms += ms;
        total_eliminations += stats.eliminatedVariables;
        if (i % 10 == 0 || i == frames - 1 || stats.relinearized)
            std::printf("frame %2zu: re-eliminated %2zu/%zu variables"
                        "%s  (%.2f ms)\n",
                        i, stats.eliminatedVariables,
                        stats.totalVariables,
                        stats.relinearized ? " [relinearized]" : "",
                        ms);
    }

    // Accuracy against truth.
    double mean_err = 0.0;
    const fg::Values estimate = smoother.estimate();
    for (std::size_t i = 0; i < frames; ++i)
        mean_err += (estimate.pose(i).t() - truth[i].t()).norm();
    mean_err /= static_cast<double>(frames);

    std::printf("\n%zu frames: mean position error %.3f m, "
                "%.1f eliminations/frame (batch would be %zu), "
                "total %.1f ms\n",
                frames, mean_err,
                static_cast<double>(total_eliminations) /
                    static_cast<double>(frames - 1),
                frames, total_ms);

    // Compare against the full batch solve of the same graph.
    const auto t0 = std::chrono::steady_clock::now();
    auto batch = fg::optimize(smoother.graph(), estimate);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("batch re-solve of the final graph: %.1f ms "
                "(incremental amortizes this across frames)\n",
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count());
    return 0;
}
