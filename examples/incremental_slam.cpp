// Incremental (iSAM-style) smoothing on the accelerator path
// (DESIGN.md §13): a manhattan-world pose graph streamed frame by
// frame through the AcceleratedSmoother. Each odometry frame
// re-eliminates only the short ordering suffix the new measurements
// touch, compiled to an update program and served through the
// runtime Engine; loop closures reach deeper and relinearize-all
// frames fall back to the batch reference rung. Watch the session
// cache amortize compiles across frames that share a suffix shape.

#include <cstdio>

#include "apps/pose_graph.hpp"
#include "fg/incremental.hpp"
#include "fg/optimizer.hpp"
#include "runtime/engine.hpp"
#include "runtime/incremental.hpp"

using namespace orianna;

int
main()
{
    const apps::PoseGraphScenario scenario =
        apps::makeManhattanWorld(120, /*seed=*/5);
    std::printf("scenario %s: %zu frames, %zu loop closures\n",
                scenario.name.c_str(), scenario.frames.size(),
                scenario.loopClosureFrames());

    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    runtime::AcceleratedSmoother smoother(engine);

    std::uint64_t total_cycles = 0;
    for (std::size_t i = 0; i < scenario.frames.size(); ++i) {
        const apps::PoseGraphFrame &frame = scenario.frames[i];
        smoother.addVariable(frame.key,
                             scenario.initial.pose(frame.key));
        for (const fg::FactorPtr &factor : frame.factors)
            smoother.addFactor(factor);
        const fg::UpdateStats stats = smoother.update();
        total_cycles += smoother.stats().lastCycles;
        if (i % 20 == 0 || frame.loopClosure || stats.relinearized)
            std::printf("frame %3zu: suffix %3zu of %3zu%s%s, "
                        "%llu cycles\n",
                        i, smoother.stats().lastSuffix,
                        stats.totalVariables,
                        frame.loopClosure ? " [loop closure]" : "",
                        stats.relinearized ? " [relinearized]" : "",
                        static_cast<unsigned long long>(
                            smoother.stats().lastCycles));
    }

    const runtime::AcceleratedSmootherStats &stats = smoother.stats();
    const runtime::Engine::Stats engine_stats = engine.stats();
    std::printf("\n%zu accelerated suffix frames, %zu batch "
                "(relinearize-all) frames, %zu CPU frames\n",
                stats.acceleratedFrames, stats.batchFrames,
                stats.cpuFrames);
    std::printf("session cache: %zu opened, %zu reused; engine: "
                "%zu compile(s), %zu cache hit(s)\n",
                stats.sessionsOpened, stats.sessionReuses,
                engine_stats.compiles, engine_stats.cacheHits);
    std::printf("total %llu simulated cycles (%.1f us @167MHz)\n",
                static_cast<unsigned long long>(total_cycles),
                static_cast<double>(total_cycles) / 167.0);

    // The incremental answer lands on the batch Gauss-Newton solution
    // of the same graph.
    const auto batch =
        fg::optimize(scenario.graph(), smoother.estimate());
    double worst = 0.0;
    const fg::Values estimate = smoother.estimate();
    for (fg::Key key : estimate.keys())
        worst = std::max(worst, (estimate.pose(key).t() -
                                 batch.values.pose(key).t())
                                    .norm());
    std::printf("max position delta vs batch re-solve: %.2e m\n",
                worst);
    return 0;
}
