// End-to-end ORIANNA flow on a full robotic application (Sec. 3):
// build the MobileRobot application (localization + planning +
// control factor graphs), compile every algorithm to the ORIANNA ISA,
// generate an accelerator under a ZC706-scale resource budget, and
// run one mission on both the software reference path and the
// simulated accelerator.

#include <cstdio>

#include "apps/benchmark_apps.hpp"
#include "hw/trace.hpp"
#include "baselines/platform_models.hpp"
#include "hwgen/generator.hpp"
#include "runtime/execution_context.hpp"

using namespace orianna;

int
main()
{
    apps::BenchmarkApp bench = apps::buildMobileRobot(/*seed=*/42);
    core::Application &app = bench.app;

    std::printf("application %s: %zu algorithms\n", app.name().c_str(),
                app.size());
    for (std::size_t i = 0; i < app.size(); ++i) {
        const core::Algorithm &algo = app.algorithm(i);
        std::printf("  %-13s %4zu factors, %5zu instructions "
                    "(%zu dense), rate %.0f Hz\n",
                    algo.name.c_str(), algo.graph.size(),
                    algo.program.instructions.size(),
                    algo.denseProgram.instructions.size(), algo.rateHz);
    }

    // Generate the accelerator (Equ. 5) for the whole application.
    const hw::Resources budget{131000, 262000, 327, 540};
    auto gen = hwgen::generate(app.frameWork(), budget,
                               hwgen::Objective::AvgLatency, true);
    std::printf("\ngenerated accelerator (%zu greedy steps):\n",
                gen.trajectory.size());
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k)
        std::printf("  %-10s x%u\n",
                    hw::unitName(static_cast<hw::UnitKind>(k)),
                    gen.config.units[k]);
    const hw::Resources used = gen.config.resources();
    std::printf("  resources: %zu LUT, %zu FF, %zu BRAM, %zu DSP\n",
                used.lut, used.ff, used.bram, used.dsp);
    std::printf("  one frame: %.1f us, %.2f uJ (dyn %.2f + mem %.2f + "
                "static %.2f)\n",
                gen.result.seconds() * 1e6,
                gen.result.totalEnergyJ() * 1e6,
                gen.result.dynamicEnergyJ * 1e6,
                gen.result.memoryEnergyJ * 1e6,
                gen.result.staticEnergyJ * 1e6);

    const auto intel =
        baselines::runOnCpu(baselines::intel(), app.frameWork());
    std::printf("  Intel frame: %.1f us -> speedup %.1fx\n",
                intel.seconds * 1e6,
                intel.seconds / gen.result.seconds());

    // Dump the schedule of one frame for chrome://tracing or
    // ui.perfetto.dev: the coarse-grained interleaving of the three
    // algorithms is directly visible on the unit lanes.
    hw::AcceleratorConfig traced = gen.config;
    traced.recordTrace = true;
    runtime::ExecutionContext frame_context(app.frameWork());
    const hw::SimResult traced_frame = frame_context.run(traced);
    hw::writeChromeTrace("mobile_robot_schedule.json",
                         traced_frame.trace);
    std::printf("  schedule trace: mobile_robot_schedule.json (%zu "
                "events)\n", traced_frame.trace.size());

    // Run the mission on both paths.
    const auto sw = app.solveSoftware();
    const auto accel = app.solveAccelerated(gen.config);
    std::string sw_why = "ok";
    std::string hw_why = "ok";
    const bool sw_ok = bench.check(sw, &sw_why);
    const bool hw_ok = bench.check(accel, &hw_why);
    std::printf("\nmission: software %s (%s), accelerator %s (%s)\n",
                sw_ok ? "SUCCESS" : "FAIL", sw_why.c_str(),
                hw_ok ? "SUCCESS" : "FAIL", hw_why.c_str());

    // Show the planned trajectory bending around the obstacle.
    std::printf("\nplanned waypoints (x, y):\n ");
    for (std::size_t k = 0; k < 16; ++k) {
        const mat::Vector &state = accel[1].vector(100 + k);
        std::printf(" (%.2f, %+.2f)", state[0], state[1]);
        if (k % 4 == 3)
            std::printf("\n ");
    }
    std::printf("\n");
    return sw_ok && hw_ok ? 0 : 1;
}
