// The runtime serving model: one Engine, many Sessions.
//
// An Engine owns an accelerator configuration and a cache of compiled
// programs keyed by graph fingerprint. Each client opens a Session —
// private mutable state over a shared compiled program — and steps it
// frame by frame. Here three localization clients track the same
// measurement set from different initial hypotheses: the engine
// compiles once, the second and third sessions are cache hits, and
// every session converges to the same estimate through its own warm
// execution context.
//
// The clients run concurrently on a ServerPool (--threads N, default
// hardware concurrency): sessions never share mutable state, so the
// results match the interleaved sequential loop exactly.
//
// Observability (DESIGN.md §6):
//   --metrics out.json   dump the serving metrics registry (cache hit
//                        rate, per-stage frame p50/p99, steal counts,
//                        per-unit utilization) after the run;
//   --trace out.json     write the unified Perfetto trace: session ->
//                        frame -> stage spans above the per-unit
//                        hardware rows of every served frame.
//
// Fault tolerance (DESIGN.md §8):
//   --inject-faults SPEC arm the deterministic fault injector, e.g.
//                        "7@corrupt:matmul:0.05" or
//                        "stall:all:0.01:40000,spike:qr:0.02"
//                        ([SEED@]kind:unit:rate[:cycles],...);
//   --fallback           let faulty frames degrade to the cleanup-only
//                        reference program instead of failing the
//                        client after the retry budget.
//
// Usage:
//   runtime_server [--threads N] [--metrics out.json]
//                  [--trace out.json] [--inject-faults SPEC]
//                  [--fallback]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "fg/factors.hpp"
#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/server_pool.hpp"
#include "runtime/trace_sink.hpp"

using namespace orianna;
using lie::Pose;
using mat::Vector;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--metrics out.json] "
                 "[--trace out.json] [--inject-faults SPEC] "
                 "[--fallback]\n"
                 "  --threads N        worker threads, N >= 1 "
                 "(default: hardware concurrency)\n"
                 "  --metrics F        write the metrics registry "
                 "JSON to F after serving\n"
                 "  --trace F          write the unified Perfetto "
                 "trace JSON to F\n"
                 "  --inject-faults S  arm the fault injector, S = "
                 "[SEED@]kind:unit:rate[:cycles],...\n"
                 "                     kinds: stall, spike, corrupt; "
                 "unit: a unit name or \"all\"\n"
                 "  --fallback         degrade faulty frames to the "
                 "reference program instead of failing\n",
                 argv0);
    return 2;
}

/** Parse a strictly positive integer; returns 0 on any malformation. */
unsigned
parsePositive(const char *text)
{
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0)
        return 0;
    return static_cast<unsigned>(value);
}

/** A small odometry chain with a loop closure and an anchored start. */
fg::FactorGraph
buildGraph(const std::vector<Pose> &truth)
{
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    graph.emplace<fg::LiDARFactor>(
        1, truth.size(), truth.back().ominus(truth.front()),
        fg::isotropicSigmas(6, 0.02));
    return graph;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = 0; // 0: hardware_concurrency.
    std::string metrics_path;
    std::string trace_path;
    std::string fault_spec;
    bool fallback = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = parsePositive(argv[++i]);
            if (threads == 0)
                return usage(argv[0]);
        } else if (arg == "--metrics" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--inject-faults" && i + 1 < argc) {
            fault_spec = argv[++i];
        } else if (arg == "--fallback") {
            fallback = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (!trace_path.empty())
        runtime::TraceCollector::setEnabled(true);

    std::vector<Pose> truth;
    for (int i = 0; i < 6; ++i)
        truth.emplace_back(Vector{0.1 * i, 0.02 * i, 0.05 * i},
                           Vector{0.5 * i, 0.05 * i, 0.0});
    const fg::FactorGraph graph = buildGraph(truth);

    runtime::EngineOptions options;
    if (!fault_spec.empty()) {
        try {
            options.faultPlan = hw::FaultPlan::parse(fault_spec);
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: bad --inject-faults: %s\n",
                         error.what());
            return usage(argv[0]);
        }
    }
    options.degradation.fallback = fallback;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           std::move(options));

    // Three hypotheses: perturb the initial guess differently per
    // client. The graphs (and their measurements) are identical, so
    // the engine compiles one program and shares it.
    std::vector<runtime::Session> sessions;
    for (int client = 0; client < 3; ++client) {
        fg::Values initial;
        for (std::size_t i = 0; i < truth.size(); ++i) {
            const double p = 0.02 * (client + 1);
            initial.insert(i + 1,
                           truth[i].retract(Vector{p, -p, p, -p, p, -p}));
        }
        sessions.push_back(engine.session(graph, std::move(initial),
                                          /*step_scale=*/1.0));
    }
    std::printf("engine: %zu cached program(s), %zu compile(s), "
                "%zu cache hit(s)\n",
                engine.cachedPrograms(), engine.stats().compiles,
                engine.stats().cacheHits);

    // Serve the clients concurrently: one pool task per session,
    // each stepping its own private state over the shared program. A
    // frame that exhausts the degradation ladder (faults injected
    // without --fallback) fails only its own client.
    runtime::ServerPool pool(threads);
    std::vector<std::string> client_errors(sessions.size());
    pool.parallelFor(sessions.size(), [&](std::size_t c) {
        try {
            sessions[c].iterate(4);
        } catch (const std::exception &error) {
            client_errors[c] = error.what();
        }
    });

    const auto totals = pool.tasksExecuted();
    std::printf("pool: %u thread(s), %llu steal(s)", pool.threads(),
                static_cast<unsigned long long>(pool.steals()));
    for (std::size_t w = 0; w < totals.size(); ++w)
        std::printf("%s thread %zu ran %llu", w == 0 ? "," : ";", w,
                    static_cast<unsigned long long>(totals[w]));
    std::printf("\n");

    bool clients_ok = true;
    for (std::size_t c = 0; c < sessions.size(); ++c) {
        const runtime::Session &session = sessions[c];
        if (!client_errors[c].empty()) {
            std::printf("client %zu: FAILED after %zu frame(s): %s\n",
                        c, session.frames(),
                        client_errors[c].c_str());
            clients_ok = false;
            continue;
        }
        const double err = graph.totalError(session.values());
        std::printf("client %zu: %zu frames, %llu cycles total, "
                    "final objective %.3e",
                    c, session.frames(),
                    static_cast<unsigned long long>(
                        session.totals().cycles),
                    err);
        if (session.totals().faultsInjected > 0 ||
            session.fallbacks() > 0)
            std::printf(" (%llu fault(s) injected, %llu retr%s, "
                        "%llu fallback frame(s))",
                        static_cast<unsigned long long>(
                            session.totals().faultsInjected),
                        static_cast<unsigned long long>(
                            session.retries()),
                        session.retries() == 1 ? "y" : "ies",
                        static_cast<unsigned long long>(
                            session.fallbacks()));
        std::printf("\n");
    }
    std::printf("health: %s\n", engine.healthJson().c_str());

    // Two of the three sessions hit the cache — per artifact: with a
    // provisioned fallback every session also fetches the reference
    // program, doubling both compiles and hits.
    const bool fallback_armed = fallback && !fault_spec.empty();
    const bool cache_ok =
        engine.stats().cacheHits == (fallback_armed ? 4u : 2u);

    // Close the sessions before exporting: each destructor reports
    // its enclosing "session" span to the unified trace.
    sessions.clear();

    try {
        if (!metrics_path.empty()) {
            std::ofstream out(metrics_path);
            out << runtime::Engine::metricsJson();
            if (!out)
                throw std::runtime_error("cannot write " +
                                         metrics_path);
            std::printf("wrote %s\n", metrics_path.c_str());
        }
        if (!trace_path.empty()) {
            runtime::TraceCollector::global().write(trace_path);
            std::printf("wrote %s\n", trace_path.c_str());
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return cache_ok && clients_ok ? 0 : 1;
}
