// The runtime serving model: one EngineGroup, many Sessions.
//
// An EngineGroup owns per-worker engine replicas over one shared
// compile authority: a session is affinity-routed to the replica that
// owns its graph fingerprint, compiles once through the shared
// single-flight table, and every later session of that graph is a
// lock-free replica-local cache hit. Here three localization clients
// track the same measurement set from different initial hypotheses:
// the group compiles once, the second and third sessions are
// replica-local hits, and every session converges to the same
// estimate through its own warm execution context.
//
// The clients run concurrently on a ServerPool behind an
// AdmissionController: each client is pinned to its replica's worker
// through a bounded lane (--queue-cap N), so overload turns into
// typed rejections instead of unbounded queueing, and --edf switches
// the pool to earliest-deadline-first ordering.
//
// Observability (DESIGN.md §6):
//   --metrics out.json   dump the serving metrics registry (cache hit
//                        rate, per-stage frame p50/p99, steal counts,
//                        per-unit utilization) after the run;
//   --trace out.json     write the unified Perfetto trace: session ->
//                        frame -> stage spans above the per-unit
//                        hardware rows of every served frame.
//
// Fault tolerance (DESIGN.md §8):
//   --inject-faults SPEC arm the deterministic fault injector, e.g.
//                        "7@corrupt:matmul:0.05" or
//                        "stall:all:0.01:40000,spike:qr:0.02"
//                        ([SEED@]kind:unit:rate[:cycles],...);
//   --fallback           let faulty frames degrade to the cleanup-only
//                        reference program instead of failing the
//                        client after the retry budget.
//
// Usage:
//   runtime_server [--threads N] [--replicas N] [--queue-cap N]
//                  [--edf] [--metrics out.json] [--trace out.json]
//                  [--inject-faults SPEC] [--fallback]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "fg/factors.hpp"
#include "matrix/simd.hpp"
#include "runtime/admission.hpp"
#include "runtime/engine_group.hpp"
#include "runtime/metrics.hpp"
#include "runtime/server_pool.hpp"
#include "runtime/trace_sink.hpp"

using namespace orianna;
using lie::Pose;
using mat::Vector;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--replicas N] "
                 "[--queue-cap N] [--edf] [--metrics out.json] "
                 "[--trace out.json] [--inject-faults SPEC] "
                 "[--fallback] [--simd TIER]\n"
                 "  --threads N        worker threads, N >= 1 "
                 "(default: hardware concurrency)\n"
                 "  --replicas N       engine replicas, N >= 1 "
                 "(default: one per worker)\n"
                 "  --queue-cap N      per-worker admission queue "
                 "bound, N >= 1 (default: 64)\n"
                 "  --edf              earliest-deadline-first task "
                 "ordering (default: FIFO)\n"
                 "  --metrics F        write the metrics registry "
                 "JSON to F after serving\n"
                 "  --trace F          write the unified Perfetto "
                 "trace JSON to F\n"
                 "  --inject-faults S  arm the fault injector, S = "
                 "[SEED@]kind:unit:rate[:cycles],...\n"
                 "                     kinds: stall, spike, corrupt; "
                 "unit: a unit name or \"all\"\n"
                 "  --fallback         degrade faulty frames to the "
                 "reference program instead of failing\n"
                 "  --simd TIER        kernel tier: scalar, avx2, "
                 "neon or auto (overrides ORIANNA_SIMD)\n",
                 argv0);
    return 2;
}

/** Parse a strictly positive integer; returns 0 on any malformation. */
unsigned
parsePositive(const char *text)
{
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0)
        return 0;
    return static_cast<unsigned>(value);
}

/** A small odometry chain with a loop closure and an anchored start. */
fg::FactorGraph
buildGraph(const std::vector<Pose> &truth)
{
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    graph.emplace<fg::LiDARFactor>(
        1, truth.size(), truth.back().ominus(truth.front()),
        fg::isotropicSigmas(6, 0.02));
    return graph;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = 0;  // 0: hardware_concurrency.
    unsigned replicas = 0; // 0: one per worker.
    unsigned queue_cap = 64;
    bool edf = false;
    std::string metrics_path;
    std::string trace_path;
    std::string fault_spec;
    bool fallback = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = parsePositive(argv[++i]);
            if (threads == 0)
                return usage(argv[0]);
        } else if (arg == "--replicas" && i + 1 < argc) {
            replicas = parsePositive(argv[++i]);
            if (replicas == 0)
                return usage(argv[0]);
        } else if (arg == "--queue-cap" && i + 1 < argc) {
            queue_cap = parsePositive(argv[++i]);
            if (queue_cap == 0)
                return usage(argv[0]);
        } else if (arg == "--edf") {
            edf = true;
        } else if (arg == "--metrics" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--inject-faults" && i + 1 < argc) {
            fault_spec = argv[++i];
        } else if (arg == "--fallback") {
            fallback = true;
        } else if (arg == "--simd" && i + 1 < argc) {
            const auto selection =
                mat::kernels::selectTierFromSpec(argv[++i]);
            if (!selection.ok) {
                std::fprintf(stderr, "error: --simd: %s\n",
                             selection.message.c_str());
                return usage(argv[0]);
            }
            if (!selection.message.empty())
                std::fprintf(stderr, "warning: --simd: %s\n",
                             selection.message.c_str());
        } else {
            return usage(argv[0]);
        }
    }

    if (!trace_path.empty())
        runtime::TraceCollector::setEnabled(true);
    std::printf("simd: %s\n",
                mat::kernels::simdCapabilityString().c_str());

    std::vector<Pose> truth;
    for (int i = 0; i < 6; ++i)
        truth.emplace_back(Vector{0.1 * i, 0.02 * i, 0.05 * i},
                           Vector{0.5 * i, 0.05 * i, 0.0});
    const fg::FactorGraph graph = buildGraph(truth);

    runtime::EngineOptions options;
    if (!fault_spec.empty()) {
        try {
            options.faultPlan = hw::FaultPlan::parse(fault_spec);
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: bad --inject-faults: %s\n",
                         error.what());
            return usage(argv[0]);
        }
    }
    options.degradation.fallback = fallback;

    runtime::PoolOptions pool_options;
    pool_options.threads = threads;
    pool_options.edf = edf;
    runtime::ServerPool pool(pool_options);
    if (replicas == 0)
        replicas = pool.threads();
    runtime::EngineGroup group(hw::AcceleratorConfig::minimal(true),
                               std::move(options), replicas);
    runtime::AdmissionController admission(
        pool, {/*queueCapacity=*/queue_cap});

    // Three hypotheses: perturb the initial guess differently per
    // client. The graphs (and their measurements) are identical, so
    // all three route to one replica — the group compiles one program
    // there and the later sessions are lock-free local hits.
    const unsigned replica = group.route(graph, [&truth] {
        fg::Values shapes;
        for (std::size_t i = 0; i < truth.size(); ++i)
            shapes.insert(i + 1, truth[i]);
        return shapes;
    }());
    const unsigned worker = replica % pool.threads();
    std::printf("routing: fingerprint -> replica %u of %u, worker %u "
                "of %u (queue cap %u, %s order)\n",
                replica, group.replicas(), worker, pool.threads(),
                queue_cap, pool.edf() ? "EDF" : "FIFO");

    // Serve the clients concurrently: each client is one admitted
    // task pinned to the owning replica's worker, which opens the
    // session on the replica and steps its own private state over the
    // shared program. A frame that exhausts the degradation ladder
    // (faults injected without --fallback) fails only its own client.
    constexpr std::size_t kClients = 3;
    std::vector<std::unique_ptr<runtime::Session>> sessions(kClients);
    std::vector<std::string> client_errors(kClients);
    const std::uint64_t now_us = runtime::MetricsRegistry::nowUs();
    for (std::size_t c = 0; c < kClients; ++c) {
        fg::Values initial;
        for (std::size_t i = 0; i < truth.size(); ++i) {
            const double p = 0.02 * (c + 1);
            initial.insert(i + 1,
                           truth[i].retract(Vector{p, -p, p, -p, p, -p}));
        }
        const auto outcome = admission.submit(
            worker,
            [&, c, initial = std::move(initial)]() mutable {
                try {
                    auto session = std::make_unique<runtime::Session>(
                        group.session(replica, graph,
                                      std::move(initial),
                                      /*step_scale=*/1.0));
                    session->iterate(4);
                    sessions[c] = std::move(session);
                } catch (const std::exception &error) {
                    client_errors[c] = error.what();
                }
            },
            // Staggered deadlines: under --edf the earliest client
            // drains first; under FIFO they are recorded but ignored.
            /*deadlineUs=*/now_us + (c + 1) * 1000);
        if (!outcome.admitted())
            client_errors[c] = "rejected by admission control (lane " +
                               std::to_string(outcome.worker) +
                               " at depth " +
                               std::to_string(outcome.depth) + "/" +
                               std::to_string(outcome.capacity) + ")";
    }
    admission.drain();

    const auto stats = group.stats();
    std::printf("group: %zu compile(s), %zu shared hit(s), %zu "
                "replica-local hit(s); admission: %llu admitted, "
                "%llu rejected\n",
                stats.compiles, stats.sharedHits, stats.localHits,
                static_cast<unsigned long long>(admission.admitted()),
                static_cast<unsigned long long>(admission.rejected()));

    const auto totals = pool.tasksExecuted();
    std::printf("pool: %u thread(s), %llu steal(s)", pool.threads(),
                static_cast<unsigned long long>(pool.steals()));
    for (std::size_t w = 0; w < totals.size(); ++w)
        std::printf("%s thread %zu ran %llu", w == 0 ? "," : ";", w,
                    static_cast<unsigned long long>(totals[w]));
    std::printf("\n");

    bool clients_ok = true;
    for (std::size_t c = 0; c < kClients; ++c) {
        if (!client_errors[c].empty() || sessions[c] == nullptr) {
            std::printf("client %zu: FAILED: %s\n", c,
                        client_errors[c].empty()
                            ? "no session"
                            : client_errors[c].c_str());
            clients_ok = false;
            continue;
        }
        const runtime::Session &session = *sessions[c];
        const double err = graph.totalError(session.values());
        std::printf("client %zu: %zu frames, %llu cycles total, "
                    "final objective %.3e",
                    c, session.frames(),
                    static_cast<unsigned long long>(
                        session.totals().cycles),
                    err);
        if (session.totals().faultsInjected > 0 ||
            session.fallbacks() > 0)
            std::printf(" (%llu fault(s) injected, %llu retr%s, "
                        "%llu fallback frame(s))",
                        static_cast<unsigned long long>(
                            session.totals().faultsInjected),
                        static_cast<unsigned long long>(
                            session.retries()),
                        session.retries() == 1 ? "y" : "ies",
                        static_cast<unsigned long long>(
                            session.fallbacks()));
        std::printf("\n");
    }
    std::printf("health: %s\n", group.healthJson().c_str());

    // One compile, two replica-local hits — per artifact: with a
    // provisioned fallback the replica also fetches the reference
    // program once (a second compile), and the later clients hit the
    // replica's fallback cache.
    const bool fallback_armed = fallback && !fault_spec.empty();
    const auto expect_compiles =
        static_cast<std::size_t>(fallback_armed ? 2 : 1);
    const bool cache_ok = stats.compiles == expect_compiles &&
                          stats.localHits == 2 &&
                          stats.sharedHits == 0;
    if (!cache_ok)
        std::fprintf(stderr,
                     "unexpected cache traffic: %zu compiles (want "
                     "%zu), %zu local hits (want 2), %zu shared hits "
                     "(want 0)\n",
                     stats.compiles, expect_compiles, stats.localHits,
                     stats.sharedHits);

    // Close the sessions before exporting: each destructor reports
    // its enclosing "session" span to the unified trace.
    sessions.clear();

    try {
        if (!metrics_path.empty()) {
            std::ofstream out(metrics_path);
            out << runtime::Engine::metricsJson();
            if (!out)
                throw std::runtime_error("cannot write " +
                                         metrics_path);
            std::printf("wrote %s\n", metrics_path.c_str());
        }
        if (!trace_path.empty()) {
            runtime::TraceCollector::global().write(trace_path);
            std::printf("wrote %s\n", trace_path.c_str());
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return cache_ok && clients_ok ? 0 : 1;
}
