// The runtime serving model: one Engine, many Sessions.
//
// An Engine owns an accelerator configuration and a cache of compiled
// programs keyed by graph fingerprint. Each client opens a Session —
// private mutable state over a shared compiled program — and steps it
// frame by frame. Here three localization clients track the same
// measurement set from different initial hypotheses: the engine
// compiles once, the second and third sessions are cache hits, and
// every session converges to the same estimate through its own warm
// execution context.
//
// The clients run concurrently on a ServerPool (--threads N, default
// hardware concurrency): sessions never share mutable state, so the
// results match the interleaved sequential loop exactly.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fg/factors.hpp"
#include "runtime/engine.hpp"
#include "runtime/server_pool.hpp"

using namespace orianna;
using lie::Pose;
using mat::Vector;

namespace {

/** A small odometry chain with a loop closure and an anchored start. */
fg::FactorGraph
buildGraph(const std::vector<Pose> &truth)
{
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    graph.emplace<fg::LiDARFactor>(
        1, truth.size(), truth.back().ominus(truth.front()),
        fg::isotropicSigmas(6, 0.02));
    return graph;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = 0; // 0: hardware_concurrency.
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--threads") == 0)
            threads = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));

    std::vector<Pose> truth;
    for (int i = 0; i < 6; ++i)
        truth.emplace_back(Vector{0.1 * i, 0.02 * i, 0.05 * i},
                           Vector{0.5 * i, 0.05 * i, 0.0});
    const fg::FactorGraph graph = buildGraph(truth);

    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));

    // Three hypotheses: perturb the initial guess differently per
    // client. The graphs (and their measurements) are identical, so
    // the engine compiles one program and shares it.
    std::vector<runtime::Session> sessions;
    for (int client = 0; client < 3; ++client) {
        fg::Values initial;
        for (std::size_t i = 0; i < truth.size(); ++i) {
            const double p = 0.02 * (client + 1);
            initial.insert(i + 1,
                           truth[i].retract(Vector{p, -p, p, -p, p, -p}));
        }
        sessions.push_back(engine.session(graph, std::move(initial),
                                          /*step_scale=*/1.0));
    }
    std::printf("engine: %zu cached program(s), %zu compile(s), "
                "%zu cache hit(s)\n",
                engine.cachedPrograms(), engine.stats().compiles,
                engine.stats().cacheHits);

    // Serve the clients concurrently: one pool task per session,
    // each stepping its own private state over the shared program.
    runtime::ServerPool pool(threads);
    pool.parallelFor(sessions.size(), [&sessions](std::size_t c) {
        sessions[c].iterate(4);
    });

    const auto totals = pool.tasksExecuted();
    std::printf("pool: %u thread(s)", pool.threads());
    for (std::size_t w = 0; w < totals.size(); ++w)
        std::printf("%s thread %zu ran %llu", w == 0 ? "," : ";", w,
                    static_cast<unsigned long long>(totals[w]));
    std::printf("\n");

    for (std::size_t c = 0; c < sessions.size(); ++c) {
        const runtime::Session &session = sessions[c];
        const double err = graph.totalError(session.values());
        std::printf("client %zu: %zu frames, %llu cycles total, "
                    "final objective %.3e\n",
                    c, session.frames(),
                    static_cast<unsigned long long>(
                        session.totals().cycles),
                    err);
    }
    return engine.stats().cacheHits == 2 ? 0 : 1;
}
