// The runtime serving front-end.
//
// Default mode is the line-delimited JSON protocol of DESIGN.md §11:
// one request object per stdin line, one response object per stdout
// line (stdout carries ONLY JSON; diagnostics go to stderr). The four
// Tbl. 4 benchmark applications are registered as submittable graph
// sources, and the engine underneath optionally runs with the
// persistent program store armed (--cache-dir), so a restarted server
// re-serves every previously compiled program without compiling:
//
//   $ echo '{"op":"submit","app":"MobileRobot"}' |
//         runtime_server --cache-dir /tmp/orianna-cache
//   {"ok":true,"op":"submit","session":1,...}
//
// Exit status: 0 when every request succeeded, 3 when at least one
// request was answered with an error response (the server itself
// never tears down on a bad request), 2 on bad argv.
//
// --demo preserves the previous EngineGroup showcase: three
// localization clients on a ServerPool behind an AdmissionController,
// with affinity routing, optional fault injection (--inject-faults,
// --fallback), metrics/trace export (--metrics, --trace) and the
// per-worker admission lanes (--queue-cap, --edf). With --cache-dir
// the demo also arms the persistent store; on a warm directory the
// expected compile count is served from disk instead.
//
// Usage:
//   runtime_server [--cache-dir DIR] [--no-store] [--simd TIER]
//   runtime_server --demo [--threads N] [--replicas N] [--queue-cap N]
//                  [--edf] [--metrics out.json] [--trace out.json]
//                  [--inject-faults SPEC] [--fallback]
//                  [--cache-dir DIR] [--no-store] [--simd TIER]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "apps/benchmark_apps.hpp"
#include "apps/pose_graph.hpp"
#include "fg/factors.hpp"
#include "matrix/simd.hpp"
#include "runtime/admission.hpp"
#include "runtime/engine_group.hpp"
#include "runtime/metrics.hpp"
#include "runtime/program_store.hpp"
#include "runtime/server_pool.hpp"
#include "runtime/serving_protocol.hpp"
#include "runtime/trace_sink.hpp"

using namespace orianna;
using lie::Pose;
using mat::Vector;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--cache-dir DIR] [--no-store] [--simd TIER] "
        "[--precision P]\n"
        "       %s --demo [--threads N] [--replicas N] "
        "[--queue-cap N] [--edf] [--metrics out.json] "
        "[--trace out.json] [--inject-faults SPEC] [--fallback] "
        "[--cache-dir DIR] [--no-store] [--simd TIER] "
        "[--precision P]\n"
        "  (default)          serve the line-delimited JSON protocol "
        "on stdin/stdout\n"
        "  --cache-dir DIR    arm the persistent program store in "
        "DIR (created if absent)\n"
        "  --no-store         ignore --cache-dir; serve memory-only\n"
        "  --demo             run the EngineGroup/ServerPool "
        "showcase instead\n"
        "  --threads N        worker threads, N >= 1 "
        "(default: hardware concurrency)\n"
        "  --replicas N       engine replicas, N >= 1 "
        "(default: one per worker)\n"
        "  --queue-cap N      per-worker admission queue bound, "
        "N >= 1 (default: 64)\n"
        "  --edf              earliest-deadline-first task ordering "
        "(default: FIFO)\n"
        "  --metrics F        write the metrics registry JSON to F "
        "after serving\n"
        "  --trace F          write the unified Perfetto trace JSON "
        "to F\n"
        "  --inject-faults S  arm the fault injector, S = "
        "[SEED@]kind:unit:rate[:cycles],...\n"
        "  --fallback         degrade faulty frames to the reference "
        "program instead of failing\n"
        "  --simd TIER        kernel tier: scalar, avx2, neon or "
        "auto (overrides ORIANNA_SIMD)\n"
        "  --precision P      accelerator datapath: fp64 or fp32 "
        "(default: ORIANNA_PRECISION, else fp64); fp32 provisions "
        "the fp64 reference fallback\n",
        argv0, argv0);
    return 2;
}

/** Parse a strictly positive integer; returns 0 on any malformation. */
unsigned
parsePositive(const char *text)
{
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0)
        return 0;
    return static_cast<unsigned>(value);
}

/** Everything argv can say, for both modes. */
struct ServerArgs
{
    bool demo = false;
    std::string cacheDir;
    bool noStore = false;
    unsigned threads = 0;  // 0: hardware_concurrency.
    unsigned replicas = 0; // 0: one per worker.
    unsigned queueCap = 64;
    bool edf = false;
    std::string metricsPath;
    std::string tracePath;
    std::string faultSpec;
    bool fallback = false;
    /** Unset: the Engine resolves ORIANNA_PRECISION, else fp64. */
    std::optional<comp::Precision> precision;
};

/**
 * Register the four Tbl. 4 applications on @p server. Each submit
 * builds the requested mission fresh (deterministic per seed) and
 * exposes the named algorithm's graph — "" picks the application's
 * first algorithm (localization).
 */
void
registerBenchmarkApps(runtime::ProtocolServer &server)
{
    for (const apps::AppKind kind : apps::allApps()) {
        server.registerApp(
            apps::appName(kind),
            [kind](const std::string &algorithm, unsigned seed) {
                const apps::BenchmarkApp built =
                    apps::buildApp(kind, seed);
                const core::Application &app = built.app;
                const core::Algorithm *chosen =
                    algorithm.empty() ? &app.algorithm(0)
                                      : app.find(algorithm);
                if (chosen == nullptr)
                    throw std::invalid_argument(
                        "application \"" +
                        std::string(apps::appName(kind)) +
                        "\" has no algorithm \"" + algorithm + "\"");
                runtime::SubmittedGraph out;
                out.graph = chosen->graph;
                out.initial = chosen->values;
                out.stepScale = chosen->stepScale;
                return out;
            });
    }
}

/**
 * Register the pose-graph corpus scenarios (DESIGN.md §13) as
 * submittable graph sources. Each submit generates the scenario at
 * the lite (committed data/g2o) scale for the requested seed and
 * flattens the frame stream into one batch graph; the "algorithm"
 * field is unused and must stay empty or "batch".
 */
void
registerPoseGraphApps(runtime::ProtocolServer &server)
{
    using Maker = apps::PoseGraphScenario (*)(unsigned seed);
    static constexpr struct
    {
        const char *name;
        Maker make;
    } kScenarios[] = {
        {"Manhattan",
         [](unsigned seed) {
             return apps::makeManhattanWorld(120, seed);
         }},
        {"Sphere",
         [](unsigned seed) {
             return apps::makeSphereWorld(6, 20, seed);
         }},
        {"Garage", [](unsigned seed) {
             return apps::makeGarageWorld(5, 24, seed);
         }}};
    for (const auto &entry : kScenarios) {
        server.registerApp(
            entry.name,
            [&entry](const std::string &algorithm, unsigned seed) {
                if (!algorithm.empty() && algorithm != "batch")
                    throw std::invalid_argument(
                        "pose-graph scenario \"" +
                        std::string(entry.name) +
                        "\" has no algorithm \"" + algorithm + "\"");
                const apps::PoseGraphScenario scenario =
                    entry.make(seed);
                runtime::SubmittedGraph out;
                out.graph = scenario.graph();
                out.initial = scenario.initial;
                return out;
            });
    }
}

/** The JSON protocol loop: the default server mode. */
int
runProtocol(const ServerArgs &args)
{
    runtime::EngineOptions options;
    if (!args.noStore)
        options.storeDir = args.cacheDir;
    options.precision = args.precision;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           std::move(options));

    runtime::ProtocolServer server(engine);
    registerBenchmarkApps(server);
    registerPoseGraphApps(server);

    // Diagnostics strictly on stderr: stdout is the protocol channel.
    std::fprintf(stderr, "simd: %s\n",
                 mat::kernels::simdCapabilityString().c_str());
    std::fprintf(stderr, "precision: %s\n",
                 comp::precisionName(engine.precision()));
    if (engine.store() != nullptr)
        std::fprintf(stderr, "store: %s (%s)\n",
                     engine.store()->dir().c_str(),
                     engine.store()->available() ? "available"
                                                 : "unavailable");

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        std::fputs(server.handle(line).c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }
    std::fprintf(stderr,
                 "served %llu request(s), %llu error(s), "
                 "%zu session(s) left open\n",
                 static_cast<unsigned long long>(server.requests()),
                 static_cast<unsigned long long>(server.errors()),
                 server.openSessions());
    return server.errors() > 0 ? 3 : 0;
}

/** A small odometry chain with a loop closure and an anchored start. */
fg::FactorGraph
buildGraph(const std::vector<Pose> &truth)
{
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    graph.emplace<fg::LiDARFactor>(
        1, truth.size(), truth.back().ominus(truth.front()),
        fg::isotropicSigmas(6, 0.02));
    return graph;
}

/** The legacy EngineGroup/ServerPool showcase (--demo). */
int
runDemo(const ServerArgs &args, const char *argv0)
{
    if (!args.tracePath.empty())
        runtime::TraceCollector::setEnabled(true);
    std::printf("simd: %s\n",
                mat::kernels::simdCapabilityString().c_str());

    std::vector<Pose> truth;
    for (int i = 0; i < 6; ++i)
        truth.emplace_back(Vector{0.1 * i, 0.02 * i, 0.05 * i},
                           Vector{0.5 * i, 0.05 * i, 0.0});
    const fg::FactorGraph graph = buildGraph(truth);

    runtime::EngineOptions options;
    if (!args.faultSpec.empty()) {
        try {
            options.faultPlan = hw::FaultPlan::parse(args.faultSpec);
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: bad --inject-faults: %s\n",
                         error.what());
            return usage(argv0);
        }
    }
    options.degradation.fallback = args.fallback;
    if (!args.noStore)
        options.storeDir = args.cacheDir;
    options.precision = args.precision;

    runtime::PoolOptions pool_options;
    pool_options.threads = args.threads;
    pool_options.edf = args.edf;
    runtime::ServerPool pool(pool_options);
    unsigned replicas = args.replicas;
    if (replicas == 0)
        replicas = pool.threads();
    runtime::EngineGroup group(hw::AcceleratorConfig::minimal(true),
                               std::move(options), replicas);
    runtime::AdmissionController admission(
        pool, {/*queueCapacity=*/args.queueCap});

    // Three hypotheses: perturb the initial guess differently per
    // client. The graphs (and their measurements) are identical, so
    // all three route to one replica — the group compiles one program
    // there and the later sessions are lock-free local hits.
    const unsigned replica = group.route(graph, [&truth] {
        fg::Values shapes;
        for (std::size_t i = 0; i < truth.size(); ++i)
            shapes.insert(i + 1, truth[i]);
        return shapes;
    }());
    const unsigned worker = replica % pool.threads();
    std::printf("routing: fingerprint -> replica %u of %u, worker %u "
                "of %u (queue cap %u, %s order)\n",
                replica, group.replicas(), worker, pool.threads(),
                args.queueCap, pool.edf() ? "EDF" : "FIFO");

    // Serve the clients concurrently: each client is one admitted
    // task pinned to the owning replica's worker, which opens the
    // session on the replica and steps its own private state over the
    // shared program. A frame that exhausts the degradation ladder
    // (faults injected without --fallback) fails only its own client.
    constexpr std::size_t kClients = 3;
    std::vector<std::unique_ptr<runtime::Session>> sessions(kClients);
    std::vector<std::string> client_errors(kClients);
    const std::uint64_t now_us = runtime::MetricsRegistry::nowUs();
    for (std::size_t c = 0; c < kClients; ++c) {
        fg::Values initial;
        for (std::size_t i = 0; i < truth.size(); ++i) {
            const double p = 0.02 * (c + 1);
            initial.insert(i + 1,
                           truth[i].retract(Vector{p, -p, p, -p, p, -p}));
        }
        const auto outcome = admission.submit(
            worker,
            [&, c, initial = std::move(initial)]() mutable {
                try {
                    auto session = std::make_unique<runtime::Session>(
                        group.session(replica, graph,
                                      std::move(initial),
                                      /*step_scale=*/1.0));
                    session->iterate(4);
                    sessions[c] = std::move(session);
                } catch (const std::exception &error) {
                    client_errors[c] = error.what();
                }
            },
            // Staggered deadlines: under --edf the earliest client
            // drains first; under FIFO they are recorded but ignored.
            /*deadlineUs=*/now_us + (c + 1) * 1000);
        if (!outcome.admitted())
            client_errors[c] = "rejected by admission control (lane " +
                               std::to_string(outcome.worker) +
                               " at depth " +
                               std::to_string(outcome.depth) + "/" +
                               std::to_string(outcome.capacity) + ")";
    }
    admission.drain();

    const auto stats = group.stats();
    const auto engine_stats = group.sharedEngine().stats();
    std::printf("group: %zu compile(s), %zu store hit(s), %zu shared "
                "hit(s), %zu replica-local hit(s); admission: %llu "
                "admitted, %llu rejected\n",
                stats.compiles, engine_stats.storeHits,
                stats.sharedHits, stats.localHits,
                static_cast<unsigned long long>(admission.admitted()),
                static_cast<unsigned long long>(admission.rejected()));

    const auto totals = pool.tasksExecuted();
    std::printf("pool: %u thread(s), %llu steal(s)", pool.threads(),
                static_cast<unsigned long long>(pool.steals()));
    for (std::size_t w = 0; w < totals.size(); ++w)
        std::printf("%s thread %zu ran %llu", w == 0 ? "," : ";", w,
                    static_cast<unsigned long long>(totals[w]));
    std::printf("\n");

    bool clients_ok = true;
    for (std::size_t c = 0; c < kClients; ++c) {
        if (!client_errors[c].empty() || sessions[c] == nullptr) {
            std::printf("client %zu: FAILED: %s\n", c,
                        client_errors[c].empty()
                            ? "no session"
                            : client_errors[c].c_str());
            clients_ok = false;
            continue;
        }
        const runtime::Session &session = *sessions[c];
        const double err = graph.totalError(session.values());
        std::printf("client %zu: %zu frames, %llu cycles total, "
                    "final objective %.3e",
                    c, session.frames(),
                    static_cast<unsigned long long>(
                        session.totals().cycles),
                    err);
        if (session.totals().faultsInjected > 0 ||
            session.fallbacks() > 0)
            std::printf(" (%llu fault(s) injected, %llu retr%s, "
                        "%llu fallback frame(s))",
                        static_cast<unsigned long long>(
                            session.totals().faultsInjected),
                        static_cast<unsigned long long>(
                            session.retries()),
                        session.retries() == 1 ? "y" : "ies",
                        static_cast<unsigned long long>(
                            session.fallbacks()));
        std::printf("\n");
    }
    std::printf("health: %s\n", group.healthJson().c_str());

    // One artifact acquisition, two replica-local hits — per
    // artifact: with a provisioned fallback the replica also fetches
    // the reference program once (a second acquisition), and the
    // later clients hit the replica's fallback cache. With the store
    // armed an acquisition may be a disk load instead of a compile,
    // so the invariant is on their sum.
    const bool fallback_armed =
        args.fallback &&
        (!args.faultSpec.empty() ||
         group.sharedEngine().precision() == comp::Precision::Fp32);
    const auto expect_compiles =
        static_cast<std::size_t>(fallback_armed ? 2 : 1);
    const bool cache_ok =
        stats.compiles + engine_stats.storeHits == expect_compiles &&
        stats.localHits == 2 && stats.sharedHits == 0;
    if (!cache_ok)
        std::fprintf(stderr,
                     "unexpected cache traffic: %zu compiles + %zu "
                     "store hits (want %zu), %zu local hits (want 2), "
                     "%zu shared hits (want 0)\n",
                     stats.compiles, engine_stats.storeHits,
                     expect_compiles, stats.localHits,
                     stats.sharedHits);

    // Close the sessions before exporting: each destructor reports
    // its enclosing "session" span to the unified trace.
    sessions.clear();

    try {
        if (!args.metricsPath.empty()) {
            std::ofstream out(args.metricsPath);
            out << runtime::Engine::metricsJson();
            if (!out)
                throw std::runtime_error("cannot write " +
                                         args.metricsPath);
            std::printf("wrote %s\n", args.metricsPath.c_str());
        }
        if (!args.tracePath.empty()) {
            runtime::TraceCollector::global().write(args.tracePath);
            std::printf("wrote %s\n", args.tracePath.c_str());
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return cache_ok && clients_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ServerArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--demo") {
            args.demo = true;
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            args.cacheDir = argv[++i];
        } else if (arg == "--no-store") {
            args.noStore = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            args.threads = parsePositive(argv[++i]);
            if (args.threads == 0)
                return usage(argv[0]);
        } else if (arg == "--replicas" && i + 1 < argc) {
            args.replicas = parsePositive(argv[++i]);
            if (args.replicas == 0)
                return usage(argv[0]);
        } else if (arg == "--queue-cap" && i + 1 < argc) {
            args.queueCap = parsePositive(argv[++i]);
            if (args.queueCap == 0)
                return usage(argv[0]);
        } else if (arg == "--edf") {
            args.edf = true;
        } else if (arg == "--metrics" && i + 1 < argc) {
            args.metricsPath = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            args.tracePath = argv[++i];
        } else if (arg == "--inject-faults" && i + 1 < argc) {
            args.faultSpec = argv[++i];
        } else if (arg == "--fallback") {
            args.fallback = true;
        } else if (arg == "--simd" && i + 1 < argc) {
            const auto selection =
                mat::kernels::selectTierFromSpec(argv[++i]);
            if (!selection.ok) {
                std::fprintf(stderr, "error: --simd: %s\n",
                             selection.message.c_str());
                return usage(argv[0]);
            }
            if (!selection.message.empty())
                std::fprintf(stderr, "warning: --simd: %s\n",
                             selection.message.c_str());
        } else if (arg == "--precision" && i + 1 < argc) {
            comp::Precision parsed = comp::Precision::Fp64;
            if (!comp::parsePrecision(argv[++i], parsed)) {
                std::fprintf(stderr,
                             "error: --precision: unknown mode "
                             "\"%s\"\n",
                             argv[i]);
                return usage(argv[0]);
            }
            args.precision = parsed;
        } else {
            return usage(argv[0]);
        }
    }
    return args.demo ? runDemo(args, argv[0]) : runProtocol(args);
}
