// Customized factors (Sec. 5.1, Equ. 3) and what the compiler does
// with them (Sec. 5.2, Fig. 11).
//
// A user defines a new constraint factor by writing its error
// expression over the unified pose representation:
//
//   f(x_i, x_j) = (x_i (-) x_j) (-) z_ij
//
// The expression builder lowers it onto the Tbl. 3 primitives; the
// compiler then derives BOTH the error instructions (forward
// traversal) and the derivative instructions (backward propagation)
// automatically, and the listing below shows the level-parallel
// instruction stream of Fig. 11.

#include <algorithm>
#include <cstdio>
#include <map>

#include "compiler/codegen.hpp"
#include "compiler/executor.hpp"
#include "fg/factors.hpp"
#include "fg/optimizer.hpp"

using namespace orianna;
using fg::Dfg;
using fg::PoseExpr;
using fg::Values;
using lie::Pose;
using mat::Vector;

int
main()
{
    // The constraint z_ij between two poses.
    const Pose z(Vector{0.1, -0.05, 0.2}, Vector{1.0, 0.5, 0.0});

    // --- 1. Define the custom factor from its error expression ----
    Dfg dfg;
    PoseExpr xi = dfg.inputPose(1);
    PoseExpr xj = dfg.inputPose(2);
    PoseExpr ze = dfg.constPose(z);
    dfg.addPoseOutput(dfg.ominus(dfg.ominus(xi, xj), ze)); // Equ. 3.

    fg::FactorGraph graph;
    graph.emplace<fg::ExpressionFactor>(std::move(dfg),
                                        fg::isotropicSigmas(6, 0.1),
                                        "PoseConstraint");
    graph.emplace<fg::PriorFactor>(2, Pose::identity(3),
                                   fg::isotropicSigmas(6, 0.01));

    // --- 2. Optimize with it like any library factor --------------
    Values initial;
    initial.insert(1, Pose::identity(3));
    initial.insert(2, Pose::identity(3));
    auto result = fg::optimize(graph, initial);
    std::printf("optimized x1: %s\n", result.values.pose(1).str().c_str());
    std::printf("expected  x1 = x2 (+) z: %s\n",
                result.values.pose(2).oplus(z).str().c_str());
    std::printf("final objective %.2e after %zu iterations\n\n",
                result.finalError, result.iterations);

    // --- 3. Inspect the compiled MO-DFG instructions (Fig. 11) ----
    const comp::Program program = comp::compileGraph(graph, initial);
    std::printf("%s\n", program.str().c_str());

    // Level schedule: instructions whose dependences are satisfied at
    // the same depth can execute in parallel (the L1..Ln of Fig. 11).
    std::vector<std::size_t> level(program.instructions.size(), 0);
    std::map<std::size_t, std::size_t> width;
    for (std::size_t i = 0; i < program.instructions.size(); ++i) {
        for (std::uint32_t dep : program.instructions[i].deps)
            level[i] = std::max(level[i], level[dep] + 1);
        ++width[level[i]];
    }
    std::printf("dependence levels: %zu, widest level has %zu parallel "
                "instructions\n",
                width.size(),
                std::max_element(width.begin(), width.end(),
                                 [](auto &a, auto &b) {
                                     return a.second < b.second;
                                 })
                    ->second);
    return 0;
}
