#pragma once

// Shared workload-generation helpers for the benchmark applications.

#include <random>

#include "fg/factors.hpp"
#include "lie/pose.hpp"

namespace orianna::apps {

using fg::Key;
using lie::Pose;
using mat::Matrix;
using mat::Vector;

/** Uniform random vector in [-scale, scale]^n. */
inline Vector
uniformVector(std::size_t n, std::mt19937 &rng, double scale)
{
    std::uniform_real_distribution<double> dist(-scale, scale);
    Vector out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = dist(rng);
    return out;
}

/** Zero-mean Gaussian vector with per-entry sigma. */
inline Vector
gaussianVector(std::size_t n, std::mt19937 &rng, double sigma)
{
    std::normal_distribution<double> dist(0.0, sigma);
    Vector out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = dist(rng);
    return out;
}

/** Perturb a pose on-manifold with Gaussian rotation/translation. */
inline Pose
perturbPose(const Pose &pose, std::mt19937 &rng, double rot_sigma,
            double trans_sigma)
{
    const std::size_t tdim = pose.phi().size();
    Vector delta = gaussianVector(tdim, rng, rot_sigma)
                       .concat(gaussianVector(pose.t().size(), rng,
                                              trans_sigma));
    return pose.retract(delta);
}

/** Mean translational error between estimate and ground truth. */
inline double
meanPositionError(const fg::Values &estimate,
                  const std::vector<Pose> &truth, Key first_key)
{
    double total = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        total += (estimate.pose(first_key + i).t() - truth[i].t()).norm();
    return total / static_cast<double>(truth.size());
}

} // namespace orianna::apps
