#include <cmath>

#include "apps/benchmark_apps.hpp"
#include "apps/common.hpp"

namespace orianna::apps {

namespace {

constexpr std::size_t kPoses = 24;     //!< Localization window.
constexpr std::size_t kWaypoints = 16; //!< Planning horizon.
constexpr std::size_t kHorizon = 12;   //!< Control horizon.
constexpr double kDt = 0.2;

constexpr Key kPlanBase = 100;
constexpr Key kCtrlStateBase = 200;
constexpr Key kCtrlInputBase = 300;

} // namespace

/**
 * AUTOVEHICLE (Tbl. 4): four-wheeled vehicle with car dynamics.
 *   Localization: 3-dim poses, LiDAR + GPS factors.
 *   Planning: 6-dim states, collision-free + kinematics (speed
 *   limits) factors.
 *   Control: 5-dim state [x y theta v delta] / 2-dim input
 *   [accel, steering rate], kinematics + dynamics factors
 *   (linearized bicycle model).
 */
BenchmarkApp
buildAutoVehicle(unsigned seed)
{
    std::mt19937 rng(seed);
    core::Application app("AutoVehicle");

    // ---- Localization: lane-change trajectory, LiDAR + GPS ----
    std::vector<Pose> truth;
    {
        Pose current(Vector{0.0}, Vector{0.0, 0.0});
        for (std::size_t i = 0; i < kPoses; ++i) {
            truth.push_back(current);
            const double steer = (i < kPoses / 2) ? 0.03 : -0.03;
            current =
                current.oplus(Pose(Vector{steer}, Vector{1.2, 0.0}));
        }
    }
    fg::FactorGraph loc;
    fg::Values loc_init;
    for (std::size_t i = 0; i < kPoses; ++i) {
        loc_init.insert(i, perturbPose(truth[i], rng, 0.03, 0.12));
        if (i + 1 < kPoses) {
            const Pose odom = perturbPose(
                truth[i + 1].ominus(truth[i]), rng, 0.008, 0.03);
            loc.emplace<fg::LiDARFactor>(i, i + 1, odom,
                                         fg::isotropicSigmas(3, 0.03));
        }
        if (i % 4 == 0)
            loc.emplace<fg::GPSFactor>(
                i, truth[i].t() + gaussianVector(2, rng, 0.08),
                fg::isotropicSigmas(2, 0.08));
    }
    loc.emplace<fg::PriorFactor>(0u, truth[0],
                                 fg::isotropicSigmas(3, 0.01));
    app.add("localization", std::move(loc), loc_init, 20.0);

    // ---- Planning: overtaking around a parked car ----
    auto map = std::make_shared<fg::SdfMap>();
    // Parked car clipping the lane from one side.
    const double side = (seed % 2 == 0) ? 1.0 : -1.0;
    map->addObstacle(
        Vector{6.0, side * (0.8 + 0.2 * uniformVector(1, rng, 1)[0])},
        1.0);
    const Vector start{0.0, 0.0, 0.0, 2.0, 0.0, 0.0};
    const Vector goal{12.0, 0.0, 0.0, 2.0, 0.0, 0.0};
    const double vmax = 3.0;
    fg::FactorGraph plan;
    fg::Values plan_init;
    for (std::size_t k = 0; k < kWaypoints; ++k) {
        const double s = static_cast<double>(k) /
                         static_cast<double>(kWaypoints - 1);
        Vector state = start * (1.0 - s) + goal * s;
        plan_init.insert(kPlanBase + k, state);
        if (k + 1 < kWaypoints)
            plan.emplace<fg::SmoothFactor>(kPlanBase + k,
                                           kPlanBase + k + 1, 3, kDt,
                                           fg::isotropicSigmas(6, 0.5));
        plan.emplace<fg::CollisionFreeFactor>(kPlanBase + k, map, 6, 2,
                                              1.6, 0.15);
        plan.emplace<fg::KinematicsFactor>(kPlanBase + k, 6, 3, 3, vmax,
                                           0.2);
        plan.emplace<fg::VectorPriorFactor>(kPlanBase + k, state,
                                            fg::isotropicSigmas(6, 2.5));
    }
    plan.emplace<fg::VectorPriorFactor>(kPlanBase, start,
                                        fg::isotropicSigmas(6, 0.01));
    plan.emplace<fg::VectorPriorFactor>(kPlanBase + kWaypoints - 1, goal,
                                        fg::isotropicSigmas(6, 0.01));
    app.add("planning", std::move(plan), plan_init, 5.0);

    // ---- Control: linearized bicycle model about forward motion ----
    // State [x y theta v delta], input [a, d(delta)/dt], linearized
    // at theta0 = 0, v0 = 2, delta0 = 0, wheelbase L = 2.5.
    const double v0 = 2.0;
    const double wheelbase = 2.5;
    Matrix a = Matrix::identity(5);
    a(0, 3) = kDt;             // x += v dt.
    a(1, 2) = kDt * v0;        // y += v0 theta dt.
    a(2, 4) = kDt * v0 / wheelbase; // theta += v0/L delta dt.
    Matrix b(5, 2);
    b(3, 0) = kDt;
    b(4, 1) = kDt;

    const Vector x0 = Vector{0.0, -0.5, 0.08, 0.3, 0.0} +
                      gaussianVector(5, rng, 0.04);
    fg::FactorGraph ctrl;
    fg::Values ctrl_init;
    for (std::size_t k = 0; k <= kHorizon; ++k)
        ctrl_init.insert(kCtrlStateBase + k, Vector(5));
    for (std::size_t k = 0; k < kHorizon; ++k)
        ctrl_init.insert(kCtrlInputBase + k, Vector(2));
    ctrl_init.update(kCtrlStateBase, x0);

    ctrl.emplace<fg::VectorPriorFactor>(kCtrlStateBase, x0,
                                        fg::isotropicSigmas(5, 1e-3));
    for (std::size_t k = 0; k < kHorizon; ++k) {
        ctrl.emplace<fg::DynamicsFactor>(
            kCtrlStateBase + k, kCtrlInputBase + k,
            kCtrlStateBase + k + 1, a, b,
            fg::isotropicSigmas(5, 1e-3));
        // Kinematics constraint on the velocity entry of the state.
        ctrl.emplace<fg::KinematicsFactor>(kCtrlStateBase + k + 1, 5, 3,
                                           1, vmax, 0.5);
        ctrl.emplace<fg::VectorPriorFactor>(kCtrlStateBase + k + 1,
                                            Vector(5),
                                            fg::isotropicSigmas(5, 1.0));
        ctrl.emplace<fg::VectorPriorFactor>(kCtrlInputBase + k,
                                            Vector(2),
                                            fg::isotropicSigmas(2, 2.0));
    }
    app.add("control", std::move(ctrl), ctrl_init, 50.0);

    // Hinge (collision/kinematics) factors oscillate under full
    // Gauss-Newton steps; damp the planning algorithm's updates.
    app.algorithm(1).stepScale = 0.5;
    app.compile();

    BenchmarkApp bench{std::move(app), nullptr};
    bench.check = [truth, map, goal](
                      const std::vector<fg::Values> &solved,
                      std::string *why) {
        auto fail = [&](const char *reason) {
            if (why != nullptr)
                *why = reason;
            return false;
        };
        if (meanPositionError(solved[0], truth, 0) > 0.12)
            return fail("localization error");
        for (std::size_t k = 0; k < kWaypoints; ++k) {
            const Vector &state = solved[1].vector(kPlanBase + k);
            if (map->distance(state.segment(0, 2)) <= 0.0)
                return fail("plan collision");
            if (state.segment(3, 3).maxAbs() > 3.6) // Speed limit.
                return fail("plan speed limit");
        }
        const Vector &last = solved[1].vector(kPlanBase + kWaypoints - 1);
        if ((last.segment(0, 2) - goal.segment(0, 2)).norm() > 0.2)
            return fail("plan goal");
        if (solved[2].vector(kCtrlStateBase + kHorizon).norm() > 0.3)
            return fail("control convergence");
        return true;
    };
    return bench;
}

} // namespace orianna::apps
