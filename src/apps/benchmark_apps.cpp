#include "apps/benchmark_apps.hpp"

#include <stdexcept>

namespace orianna::apps {

const char *
appName(AppKind kind)
{
    switch (kind) {
      case AppKind::MobileRobot: return "MobileRobot";
      case AppKind::Manipulator: return "Manipulator";
      case AppKind::AutoVehicle: return "AutoVehicle";
      case AppKind::Quadrotor: return "Quadrotor";
    }
    return "?";
}

std::vector<AppKind>
allApps()
{
    return {AppKind::MobileRobot, AppKind::Manipulator,
            AppKind::AutoVehicle, AppKind::Quadrotor};
}

BenchmarkApp
buildApp(AppKind kind, unsigned seed)
{
    switch (kind) {
      case AppKind::MobileRobot: return buildMobileRobot(seed);
      case AppKind::Manipulator: return buildManipulator(seed);
      case AppKind::AutoVehicle: return buildAutoVehicle(seed);
      case AppKind::Quadrotor: return buildQuadrotor(seed);
    }
    throw std::invalid_argument("buildApp: unknown application");
}

} // namespace orianna::apps
