#include <cmath>

#include "apps/benchmark_apps.hpp"
#include "apps/common.hpp"
#include "sensors/imu.hpp"

namespace orianna::apps {

namespace {

constexpr std::size_t kPoses = 14;     //!< Localization window.
constexpr std::size_t kLandmarks = 10;
constexpr std::size_t kWaypoints = 12; //!< Planning horizon.
constexpr std::size_t kHorizon = 12;   //!< Control horizon.
constexpr double kDt = 0.15;

constexpr Key kLandmarkBase = 50;
constexpr Key kPlanBase = 100;
constexpr Key kCtrlStateBase = 200;
constexpr Key kCtrlInputBase = 300;

} // namespace

/**
 * QUADROTOR (Tbl. 4): four-rotor micro drone.
 *   Localization: 6-dim poses (3 orientation + 3 position), Camera +
 *   IMU factors over a sliding window with 3-D landmarks.
 *   Planning: 12-dim states [pose(6); velocity(6)], collision-free +
 *   kinematics + smooth factors.
 *   Control: 12-dim state / 5-dim input, kinematics + dynamics
 *   factors (linearized hover dynamics).
 */
BenchmarkApp
buildQuadrotor(unsigned seed)
{
    std::mt19937 rng(seed);
    core::Application app("Quadrotor");

    // ---- Localization: ascending arc with camera + IMU ----
    std::vector<Pose> truth;
    {
        Pose current(Vector{0.0, 0.0, 0.0}, Vector{0.0, 0.0, 1.0});
        for (std::size_t i = 0; i < kPoses; ++i) {
            truth.push_back(current);
            current = current.oplus(Pose(Vector{0.0, 0.0, 0.1},
                                         Vector{0.4, 0.0, 0.05}));
        }
    }
    std::vector<Vector> landmarks;
    for (std::size_t l = 0; l < kLandmarks; ++l) {
        landmarks.push_back(Vector{0.5 + 0.6 * l,
                                   -0.8 + 0.35 * l,
                                   4.0 + 0.3 * l});
    }

    const fg::CameraModel cam{420.0, 420.0, 320.0, 240.0};
    auto pixel = [&](const Pose &x, const Vector &l) {
        Vector local = x.rotation().transposeTimes(l - x.t());
        return Vector{cam.fx * local[0] / local[2] + cam.cx,
                      cam.fy * local[1] / local[2] + cam.cy};
    };

    fg::FactorGraph loc;
    fg::Values loc_init;
    for (std::size_t i = 0; i < kPoses; ++i) {
        loc_init.insert(i, perturbPose(truth[i], rng, 0.015, 0.06));
        if (i + 1 < kPoses) {
            // Preintegrate a burst of synthetic inertial samples
            // between the keyframes (the m4/m5 measurements of the
            // Sec. 5.1 listing).
            sensors::ImuPreintegrator integrator(3);
            for (const auto &sample : sensors::synthesizeImuSegment(
                     truth[i], truth[i + 1], 25, 1.0 / 30.0, rng,
                     0.02, 0.06))
                integrator.add(sample);
            loc.emplace<fg::IMUFactor>(i, i + 1, integrator.delta(),
                                       fg::isotropicSigmas(6, 0.015));
        }
        // Each pose observes three landmarks (round robin).
        for (std::size_t c = 0; c < 3; ++c) {
            const std::size_t l = (i + c) % kLandmarks;
            loc.emplace<fg::CameraFactor>(
                i, kLandmarkBase + l,
                pixel(truth[i], landmarks[l]) +
                    gaussianVector(2, rng, 0.8),
                cam, fg::isotropicSigmas(2, 0.8));
        }
    }
    for (std::size_t l = 0; l < kLandmarks; ++l)
        loc_init.insert(kLandmarkBase + l,
                        landmarks[l] + gaussianVector(3, rng, 0.08));
    loc.emplace<fg::PriorFactor>(0u, truth[0],
                                 fg::isotropicSigmas(6, 0.005));
    app.add("localization", std::move(loc), loc_init, 30.0);

    // ---- Planning: 3-D corridor with a floating obstacle ----
    auto map = std::make_shared<fg::SdfMap>();
    // Floating obstacle clipping the climb corridor from one side.
    const double side = (seed % 2 == 0) ? 1.0 : -1.0;
    map->addObstacle(
        Vector{2.0, side * (0.35 + 0.1 * uniformVector(1, rng, 1)[0]),
               1.5},
        0.5);
    Vector start(12);
    start[2] = 1.0;   // z.
    start[6] = 1.0;   // vx.
    Vector goal(12);
    goal[0] = 4.0;
    goal[2] = 2.0;
    goal[6] = 1.0;
    const double vmax = 2.5;
    fg::FactorGraph plan;
    fg::Values plan_init;
    for (std::size_t k = 0; k < kWaypoints; ++k) {
        const double s = static_cast<double>(k) /
                         static_cast<double>(kWaypoints - 1);
        Vector state = start * (1.0 - s) + goal * s;
        plan_init.insert(kPlanBase + k, state);
        if (k + 1 < kWaypoints)
            plan.emplace<fg::SmoothFactor>(kPlanBase + k,
                                           kPlanBase + k + 1, 6, kDt,
                                           fg::isotropicSigmas(12, 0.5));
        plan.emplace<fg::CollisionFreeFactor>(kPlanBase + k, map, 12, 3,
                                              0.8, 0.15);
        plan.emplace<fg::KinematicsFactor>(kPlanBase + k, 12, 6, 6,
                                           vmax, 0.3);
        plan.emplace<fg::VectorPriorFactor>(kPlanBase + k, state,
                                            fg::isotropicSigmas(12, 2.5));
    }
    plan.emplace<fg::VectorPriorFactor>(kPlanBase, start,
                                        fg::isotropicSigmas(12, 0.01));
    plan.emplace<fg::VectorPriorFactor>(kPlanBase + kWaypoints - 1, goal,
                                        fg::isotropicSigmas(12, 0.01));
    app.add("planning", std::move(plan), plan_init, 5.0);

    // ---- Control: linearized hover dynamics ----
    // State [p(3) v(3) rpy(3) omega(3)], input [thrust, mx, my, mz,
    // collective-trim] (5 inputs per Tbl. 4).
    const double g = 9.81;
    Matrix a = Matrix::identity(12);
    for (std::size_t i = 0; i < 3; ++i) {
        a(i, 3 + i) = kDt;     // p += v dt.
        a(6 + i, 9 + i) = kDt; // rpy += omega dt.
    }
    a(3, 7) = kDt * g;  // vx couples to pitch.
    a(4, 6) = -kDt * g; // vy couples to roll.
    Matrix b(12, 5);
    b(5, 0) = kDt;        // vz from thrust.
    b(9, 1) = 4.0 * kDt;  // omega_x from mx.
    b(10, 2) = 4.0 * kDt; // omega_y from my.
    b(11, 3) = 4.0 * kDt; // omega_z from mz.
    b(5, 4) = 0.2 * kDt; // Collective trim.

    Vector x0(12);
    x0[0] = 0.3;
    x0[2] = -0.2;
    x0[6] = 0.05;
    x0 = x0 + gaussianVector(12, rng, 0.02);
    fg::FactorGraph ctrl;
    fg::Values ctrl_init;
    for (std::size_t k = 0; k <= kHorizon; ++k)
        ctrl_init.insert(kCtrlStateBase + k, Vector(12));
    for (std::size_t k = 0; k < kHorizon; ++k)
        ctrl_init.insert(kCtrlInputBase + k, Vector(5));
    ctrl_init.update(kCtrlStateBase, x0);

    ctrl.emplace<fg::VectorPriorFactor>(kCtrlStateBase, x0,
                                        fg::isotropicSigmas(12, 1e-3));
    for (std::size_t k = 0; k < kHorizon; ++k) {
        ctrl.emplace<fg::DynamicsFactor>(
            kCtrlStateBase + k, kCtrlInputBase + k,
            kCtrlStateBase + k + 1, a, b,
            fg::isotropicSigmas(12, 1e-3));
        ctrl.emplace<fg::KinematicsFactor>(kCtrlStateBase + k + 1, 12,
                                           3, 3, vmax, 0.5);
        ctrl.emplace<fg::VectorPriorFactor>(
            kCtrlStateBase + k + 1, Vector(12),
            fg::isotropicSigmas(12, 1.0));
        ctrl.emplace<fg::VectorPriorFactor>(kCtrlInputBase + k,
                                            Vector(5),
                                            fg::isotropicSigmas(5, 2.0));
    }
    app.add("control", std::move(ctrl), ctrl_init, 100.0);

    // Hinge (collision/kinematics) factors oscillate under full
    // Gauss-Newton steps; damp the planning algorithm's updates.
    app.algorithm(1).stepScale = 0.5;
    app.compile();

    BenchmarkApp bench{std::move(app), nullptr};
    bench.check = [truth, map, goal](
                      const std::vector<fg::Values> &solved,
                      std::string *why) {
        auto fail = [&](const char *reason) {
            if (why != nullptr)
                *why = reason;
            return false;
        };
        if (meanPositionError(solved[0], truth, 0) > 0.105)
            return fail("localization error");
        for (std::size_t k = 0; k < kWaypoints; ++k) {
            const Vector &state = solved[1].vector(kPlanBase + k);
            if (map->distance(state.segment(0, 3)) <= 0.0)
                return fail("plan collision");
        }
        const Vector &last = solved[1].vector(kPlanBase + kWaypoints - 1);
        if ((last.segment(0, 3) - goal.segment(0, 3)).norm() > 0.2)
            return fail("plan goal");
        if (solved[2].vector(kCtrlStateBase + kHorizon).norm() > 0.35)
            return fail("control convergence");
        return true;
    };
    return bench;
}

} // namespace orianna::apps
