#pragma once

#include <vector>

#include "fg/graph.hpp"
#include "lie/se3.hpp"

namespace orianna::apps {

using lie::Pose;
using lie::Se3;
using mat::Vector;

/**
 * The Sec. 4.3 validation benchmark: a multi-layer sphere trajectory
 * (Fig. 9) with noisy odometry and inter-ring loop closures. Used to
 * show that <so(3),T(3)> optimization matches SE(3) optimization in
 * accuracy (Tbl. 1) while saving MACs (the 52.7% claim).
 */
struct SphereDataset
{
    std::vector<Pose> truth;     //!< Ground-truth poses.
    std::vector<Pose> initial;   //!< Dead-reckoned noisy trajectory.
    /** Relative-pose measurements (i, j, noisy j (-) i). */
    struct Edge
    {
        std::size_t i;
        std::size_t j;
        Pose measurement;
        double sigma; //!< Measurement noise scale (whitening weight).
    };
    std::vector<Edge> edges;
};

/**
 * Generate the sphere: @p rings layers, @p per_ring poses per layer,
 * odometry along the scan plus loop closures to the ring below.
 */
SphereDataset makeSphere(std::size_t rings, std::size_t per_ring,
                         double radius, unsigned seed,
                         double rot_noise = 0.01,
                         double trans_noise = 0.05);

/** Absolute-trajectory-error statistics (the Tbl. 1 columns). */
struct AteStats
{
    double max = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double stddev = 0.0;
};

/** Position ATE of @p estimate against @p truth. */
AteStats computeAte(const std::vector<Pose> &estimate,
                    const std::vector<Pose> &truth);

/**
 * Optimize the sphere with the unified <so(3),T(3)> representation
 * through the factor-graph library. Returns the optimized trajectory.
 */
std::vector<Pose> optimizeSphereUnified(const SphereDataset &data,
                                        std::size_t max_iterations = 8);

/**
 * Optimize the sphere with the classic SE(3) representation: a
 * dedicated pose-graph Gauss-Newton whose errors and Jacobians are
 * computed in SE(3) (padded 4x4 composition, 6-dim Exp/Log with the
 * V matrix, 6x6 adjoints). Numerically equivalent objective, more
 * MACs — the Sec. 4.1 efficiency argument.
 */
std::vector<Pose> optimizeSphereSe3(const SphereDataset &data,
                                    std::size_t max_iterations = 8);

} // namespace orianna::apps
