#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/application.hpp"

namespace orianna::apps {

/** The four evaluation applications of Tbl. 4. */
enum class AppKind : std::uint8_t {
    MobileRobot, //!< Two-wheeled robot on a plane.
    Manipulator, //!< Two-link robot arm.
    AutoVehicle, //!< Four-wheeled vehicle with car dynamics.
    Quadrotor,   //!< Four-rotor micro drone.
};

const char *appName(AppKind kind);
std::vector<AppKind> allApps();

/**
 * A benchmark application instance: the compiled ORIANNA application
 * (localization + planning + control algorithms with the Tbl. 4
 * variable dimensions and factor types) plus a mission-success
 * predicate evaluated on the per-algorithm optimized values
 * (Tbl. 5's metric).
 */
struct BenchmarkApp
{
    core::Application app;

    /**
     * Mission predicate given optimized values, one per algorithm in
     * registration order (localization, planning, control): the
     * estimated trajectory must track ground truth, the planned
     * trajectory must be collision-free and reach the goal, and the
     * controller must drive the state to the reference. When @p why
     * is non-null, a failing check writes its name there.
     */
    std::function<bool(const std::vector<fg::Values> &, std::string *)>
        check;

    /** Convenience wrapper: success without diagnostics. */
    bool
    success(const std::vector<fg::Values> &solved) const
    {
        return check(solved, nullptr);
    }
};

/**
 * Build one randomized mission of @p kind. The same seed produces the
 * same workload, so software and accelerator paths can be compared on
 * identical missions.
 */
BenchmarkApp buildApp(AppKind kind, unsigned seed);

// Per-application builders (same contract as buildApp).
BenchmarkApp buildMobileRobot(unsigned seed);
BenchmarkApp buildManipulator(unsigned seed);
BenchmarkApp buildAutoVehicle(unsigned seed);
BenchmarkApp buildQuadrotor(unsigned seed);

} // namespace orianna::apps
