#include <cmath>

#include "apps/benchmark_apps.hpp"
#include "apps/common.hpp"

namespace orianna::apps {

namespace {

constexpr std::size_t kStates = 14;    //!< Joint-state window.
constexpr std::size_t kWaypoints = 14; //!< Planning horizon.
constexpr std::size_t kHorizon = 10;   //!< Control horizon.
constexpr double kDt = 0.2;

constexpr Key kPlanBase = 100;
constexpr Key kCtrlStateBase = 200;
constexpr Key kCtrlInputBase = 300;

} // namespace

/**
 * MANIPULATOR (Tbl. 4): two-link robot arm.
 *   Localization (joint-state estimation): 2-dim variables, Prior
 *   factors from the joint encoders.
 *   Planning: 4-dim states [q1 q2 dq1 dq2] in joint space,
 *   collision-free + smooth factors.
 *   Control: 2-dim state / 2-dim input, dynamics factors (velocity
 *   control of the joints).
 */
BenchmarkApp
buildManipulator(unsigned seed)
{
    std::mt19937 rng(seed);
    core::Application app("Manipulator");

    // ---- Localization: encoder priors on each joint state ----
    std::vector<Vector> joint_truth;
    fg::FactorGraph loc;
    fg::Values loc_init;
    for (std::size_t i = 0; i < kStates; ++i) {
        const double s = 0.15 * static_cast<double>(i);
        Vector q{0.4 + 0.5 * std::sin(s), -0.3 + 0.4 * std::cos(s)};
        joint_truth.push_back(q);
        loc_init.insert(i, q + gaussianVector(2, rng, 0.08));
        // Two encoder readings per state (redundant sensing).
        loc.emplace<fg::VectorPriorFactor>(
            i, q + gaussianVector(2, rng, 0.02),
            fg::isotropicSigmas(2, 0.02), "Prior");
        loc.emplace<fg::VectorPriorFactor>(
            i, q + gaussianVector(2, rng, 0.02),
            fg::isotropicSigmas(2, 0.02), "Prior");
    }
    app.add("localization", std::move(loc), loc_init, 100.0);

    // ---- Planning: joint-space trajectory around a forbidden zone ----
    auto map = std::make_shared<fg::SdfMap>();
    // Joint-space forbidden zone clipping the straight-line plan.
    map->addObstacle(Vector{0.8, 0.35}, 0.35);
    const Vector start{0.0, -0.4, 0.0, 0.0};
    const Vector goal{1.6, 0.6, 0.0, 0.0};
    fg::FactorGraph plan;
    fg::Values plan_init;
    for (std::size_t k = 0; k < kWaypoints; ++k) {
        const double s = static_cast<double>(k) /
                         static_cast<double>(kWaypoints - 1);
        Vector state = start * (1.0 - s) + goal * s;
        plan_init.insert(kPlanBase + k, state);
        if (k + 1 < kWaypoints)
            plan.emplace<fg::SmoothFactor>(kPlanBase + k,
                                           kPlanBase + k + 1, 2, kDt,
                                           fg::isotropicSigmas(4, 0.3));
        plan.emplace<fg::CollisionFreeFactor>(kPlanBase + k, map, 4, 2,
                                              0.6, 0.15);
        plan.emplace<fg::VectorPriorFactor>(kPlanBase + k, state,
                                            fg::isotropicSigmas(4, 2.0));
    }
    plan.emplace<fg::VectorPriorFactor>(kPlanBase, start,
                                        fg::isotropicSigmas(4, 0.01));
    plan.emplace<fg::VectorPriorFactor>(kPlanBase + kWaypoints - 1, goal,
                                        fg::isotropicSigmas(4, 0.01));
    app.add("planning", std::move(plan), plan_init, 2.0);

    // ---- Control: joint velocity control, x_{k+1} = x_k + dt u_k ----
    Matrix a = Matrix::identity(2);
    Matrix b = Matrix::identity(2) * kDt;
    const Vector x0 = Vector{0.5, -0.35} + gaussianVector(2, rng, 0.05);
    fg::FactorGraph ctrl;
    fg::Values ctrl_init;
    for (std::size_t k = 0; k <= kHorizon; ++k)
        ctrl_init.insert(kCtrlStateBase + k, Vector(2));
    for (std::size_t k = 0; k < kHorizon; ++k)
        ctrl_init.insert(kCtrlInputBase + k, Vector(2));
    ctrl_init.update(kCtrlStateBase, x0);

    ctrl.emplace<fg::VectorPriorFactor>(kCtrlStateBase, x0,
                                        fg::isotropicSigmas(2, 1e-3));
    for (std::size_t k = 0; k < kHorizon; ++k) {
        ctrl.emplace<fg::DynamicsFactor>(
            kCtrlStateBase + k, kCtrlInputBase + k,
            kCtrlStateBase + k + 1, a, b,
            fg::isotropicSigmas(2, 1e-3));
        ctrl.emplace<fg::VectorPriorFactor>(kCtrlStateBase + k + 1,
                                            Vector(2),
                                            fg::isotropicSigmas(2, 1.0));
        ctrl.emplace<fg::VectorPriorFactor>(kCtrlInputBase + k,
                                            Vector(2),
                                            fg::isotropicSigmas(2, 2.0));
    }
    app.add("control", std::move(ctrl), ctrl_init, 100.0);

    // Hinge (collision/kinematics) factors oscillate under full
    // Gauss-Newton steps; damp the planning algorithm's updates.
    app.algorithm(1).stepScale = 0.5;
    app.compile();

    BenchmarkApp bench{std::move(app), nullptr};
    bench.check = [joint_truth, map, goal](
                      const std::vector<fg::Values> &solved,
                      std::string *why) {
        auto fail = [&](const char *reason) {
            if (why != nullptr)
                *why = reason;
            return false;
        };
        for (std::size_t i = 0; i < joint_truth.size(); ++i)
            if ((solved[0].vector(i) - joint_truth[i]).norm() > 0.045)
                return fail("localization error");
        for (std::size_t k = 0; k < kWaypoints; ++k) {
            const Vector &state = solved[1].vector(kPlanBase + k);
            if (map->distance(state.segment(0, 2)) <= 0.0)
                return fail("plan collision");
        }
        const Vector &last = solved[1].vector(kPlanBase + kWaypoints - 1);
        if ((last.segment(0, 2) - goal.segment(0, 2)).norm() > 0.1)
            return fail("plan goal");
        if (solved[2].vector(kCtrlStateBase + kHorizon).norm() > 0.2)
            return fail("control convergence");
        return true;
    };
    return bench;
}

} // namespace orianna::apps
