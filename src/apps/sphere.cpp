#include "apps/sphere.hpp"

#include <cmath>
#include <numbers>
#include <random>

#include "apps/common.hpp"
#include "fg/eliminate.hpp"
#include "fg/factors.hpp"
#include "fg/optimizer.hpp"

namespace orianna::apps {

SphereDataset
makeSphere(std::size_t rings, std::size_t per_ring, double radius,
           unsigned seed, double rot_noise, double trans_noise)
{
    constexpr double pi = std::numbers::pi;
    std::mt19937 rng(seed);
    SphereDataset data;

    // Ground truth: poses on ascending rings of a sphere, heading
    // tangentially along each ring.
    for (std::size_t r = 0; r < rings; ++r) {
        const double polar = pi * (0.15 + 0.7 * static_cast<double>(r) /
                                              static_cast<double>(
                                                  rings - 1));
        for (std::size_t k = 0; k < per_ring; ++k) {
            const double azimuth =
                2.0 * pi * static_cast<double>(k) /
                static_cast<double>(per_ring);
            Vector position{radius * std::sin(polar) * std::cos(azimuth),
                            radius * std::sin(polar) * std::sin(azimuth),
                            radius * std::cos(polar)};
            Vector heading{0.0, 0.0, azimuth + pi / 2.0};
            data.truth.emplace_back(heading, position);
        }
    }

    // Odometry edges along the scan; loop closures to the ring below.
    const std::size_t n = data.truth.size();
    auto relative = [&](std::size_t i, std::size_t j) {
        return data.truth[j].ominus(data.truth[i]);
    };
    for (std::size_t i = 0; i + 1 < n; ++i)
        data.edges.push_back(
            {i, i + 1,
             perturbPose(relative(i, i + 1), rng, rot_noise,
                         trans_noise),
             trans_noise});
    // Loop closures (scan-match style) are an order of magnitude more
    // accurate than dead-reckoned odometry, as in the Fig. 9 setup
    // where optimization recovers a near-perfect sphere from a badly
    // drifted initial trajectory.
    for (std::size_t i = per_ring; i < n; ++i)
        data.edges.push_back(
            {i - per_ring, i,
             perturbPose(relative(i - per_ring, i), rng,
                         0.1 * rot_noise, 0.1 * trans_noise),
             0.1 * trans_noise});

    // Dead reckoning along the odometry chain (the drifting blue line
    // of Fig. 9a).
    data.initial.push_back(data.truth[0]);
    for (std::size_t i = 0; i + 1 < n; ++i)
        data.initial.push_back(
            data.initial.back().oplus(data.edges[i].measurement));
    return data;
}

AteStats
computeAte(const std::vector<Pose> &estimate,
           const std::vector<Pose> &truth)
{
    AteStats stats;
    stats.min = 1e18;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double err = (estimate[i].t() - truth[i].t()).norm();
        stats.max = std::max(stats.max, err);
        stats.min = std::min(stats.min, err);
        sum += err;
        sum_sq += err * err;
    }
    const double n = static_cast<double>(truth.size());
    stats.mean = sum / n;
    stats.stddev = std::sqrt(std::max(0.0, sum_sq / n -
                                               stats.mean * stats.mean));
    return stats;
}

std::vector<Pose>
optimizeSphereUnified(const SphereDataset &data,
                      std::size_t max_iterations)
{
    fg::FactorGraph graph;
    fg::Values values;
    for (std::size_t i = 0; i < data.initial.size(); ++i)
        values.insert(i, data.initial[i]);
    for (const SphereDataset::Edge &edge : data.edges)
        graph.emplace<fg::BetweenFactor>(
            edge.i, edge.j, edge.measurement,
            fg::isotropicSigmas(6, edge.sigma));
    graph.emplace<fg::PriorFactor>(0u, data.truth[0],
                                   fg::isotropicSigmas(6, 1e-3));

    fg::GaussNewtonParams params;
    params.maxIterations = max_iterations;
    auto result = fg::optimize(graph, std::move(values), params);

    std::vector<Pose> out;
    out.reserve(data.initial.size());
    for (std::size_t i = 0; i < data.initial.size(); ++i)
        out.push_back(result.values.pose(i));
    return out;
}

std::vector<Pose>
optimizeSphereSe3(const SphereDataset &data, std::size_t max_iterations)
{
    const std::size_t n = data.initial.size();
    std::vector<Se3> poses;
    poses.reserve(n);
    for (const Pose &p : data.initial)
        poses.push_back(Se3::fromPose(p));
    std::vector<Se3> measurements;
    measurements.reserve(data.edges.size());
    for (const SphereDataset::Edge &edge : data.edges)
        measurements.push_back(Se3::fromPose(edge.measurement));
    const Se3 prior = Se3::fromPose(data.truth[0]);

    const double prior_sigma = 1e-3;

    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
        fg::LinearSystem system;
        for (std::size_t i = 0; i < n; ++i)
            system.dofs[i] = 6;

        // Between edges: e = Log(Z^-1 Xi^-1 Xj), right-perturbation
        // Jacobians J_j ~= I and J_i ~= -Ad((Xi^-1 Xj)^-1).
        for (std::size_t k = 0; k < data.edges.size(); ++k) {
            const auto &edge = data.edges[k];
            const double sigma = edge.sigma;
            const Se3 between = poses[edge.i].between(poses[edge.j]);
            const Vector e = measurements[k].between(between).log();
            fg::LinearRow row;
            row.blocks.emplace(edge.j,
                               mat::Matrix::identity(6) * (1.0 / sigma));
            row.blocks.emplace(
                edge.i, -between.inverse().adjoint() * (1.0 / sigma));
            row.rhs = -(e * (1.0 / sigma));
            system.rows.push_back(std::move(row));
        }
        // Prior on pose 0.
        {
            fg::LinearRow row;
            row.blocks.emplace(
                0u, mat::Matrix::identity(6) * (1.0 / prior_sigma));
            row.rhs = -(prior.between(poses[0]).log() *
                        (1.0 / prior_sigma));
            system.rows.push_back(std::move(row));
        }

        std::vector<fg::Key> ordering;
        for (std::size_t i = 0; i < n; ++i)
            ordering.push_back(i);
        auto delta = fg::solveLinearSystem(system, ordering);

        double step = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            poses[i] = poses[i].retract(delta.at(i));
            step = std::max(step, delta.at(i).maxAbs());
        }
        if (step < 1e-9)
            break;
    }

    std::vector<Pose> out;
    out.reserve(n);
    for (const Se3 &p : poses)
        out.push_back(p.toPose());
    return out;
}

} // namespace orianna::apps
