#pragma once

#include <string>
#include <vector>

#include "fg/graph.hpp"
#include "fg/io_g2o.hpp"
#include "lie/pose.hpp"

namespace orianna::apps {

/**
 * One frame of a pose-graph stream: the pose that becomes observable
 * this frame and the measurements that arrive with it. Frame 0
 * carries the anchoring prior; every later frame carries at least
 * the odometry edge from the previous pose, plus any loop closures
 * that close back to earlier poses.
 */
struct PoseGraphFrame
{
    fg::Key key = 0;
    std::vector<fg::FactorPtr> factors;
    /** Any edge reaching back beyond the previous pose. */
    bool loopClosure = false;
};

/**
 * A pose-graph SLAM scenario in streamable form, the corpus the
 * incremental benchmarks and tests run over (DESIGN.md §13). The
 * frame decomposition is what distinguishes it from a plain
 * FactorGraph: it replays the dataset the way a robot produced it,
 * which is the access pattern incremental smoothing is built for —
 * odometry frames touch a short ordering suffix, loop-closure
 * frames reach deep.
 *
 * Generated scenarios model the classic published datasets
 * (manhattan/M3500, sphere2500, parking-garage) at configurable
 * scale; scenarioFromG2o() derives the same structure from any g2o
 * file, so real downloaded corpora drop in unchanged.
 */
struct PoseGraphScenario
{
    std::string name;
    std::size_t spaceDim = 2; //!< 2 (SE2) or 3 (SE3).
    fg::Values initial;       //!< Dead-reckoned initial guesses.
    fg::Values truth;         //!< Ground truth (empty for g2o loads).
    std::vector<PoseGraphFrame> frames;

    /** All factors of all frames, flattened for a batch solve. */
    fg::FactorGraph graph() const;

    /** Loop-closure frames (for the bench's odometry/closure split). */
    std::size_t loopClosureFrames() const;
};

/**
 * Manhattan-world SE2 trajectory in the M3500 style [Olson06]: a
 * unit-grid random walk with 90-degree turns, loop closures whenever
 * the walk revisits a grid cell it has seen before. Deterministic in
 * @p seed.
 */
PoseGraphScenario makeManhattanWorld(std::size_t poses,
                                     unsigned seed,
                                     double rot_noise = 0.01,
                                     double trans_noise = 0.03);

/**
 * Sphere SE3 trajectory in the sphere2500 style: ascending rings
 * with odometry along the scan and scan-match closures to the ring
 * below (the Fig. 9 dataset, streamed).
 */
PoseGraphScenario makeSphereWorld(std::size_t rings,
                                  std::size_t per_ring,
                                  unsigned seed);

/**
 * Parking-garage SE3 trajectory in the parking-garage style: stacked
 * helical laps with vertical closures between floors.
 */
PoseGraphScenario makeGarageWorld(std::size_t laps,
                                  std::size_t per_lap,
                                  unsigned seed,
                                  double rot_noise = 0.005,
                                  double trans_noise = 0.02);

/**
 * Derive the frame stream of a loaded g2o dataset: poses in key
 * order, each edge attached to the frame of its later endpoint, an
 * anchoring prior on the first pose. Edges that reach further back
 * than the previous pose mark their frame as a loop closure.
 */
PoseGraphScenario scenarioFromG2o(const fg::PoseGraphData &data,
                                  std::string name);

} // namespace orianna::apps
