#include "apps/benchmark_apps.hpp"
#include "apps/common.hpp"
#include "sensors/scan_matching.hpp"

namespace orianna::apps {

namespace {

constexpr std::size_t kPoses = 24;      //!< Localization window.
constexpr std::size_t kWaypoints = 16;  //!< Planning horizon.
constexpr std::size_t kHorizon = 12;    //!< Control horizon.
constexpr double kDt = 0.25;

constexpr Key kPlanBase = 100;
constexpr Key kCtrlStateBase = 200;
constexpr Key kCtrlInputBase = 300;

} // namespace

/**
 * MOBILEROBOT (Tbl. 4): two-wheeled robot on a plane.
 *   Localization: 3-dim poses, LiDAR (scan-match) + GPS factors.
 *   Planning: 6-dim states [x y theta vx vy omega], collision-free +
 *   smooth factors.
 *   Control: 3-dim state / 2-dim input, dynamics factors (linearized
 *   unicycle).
 */
BenchmarkApp
buildMobileRobot(unsigned seed)
{
    std::mt19937 rng(seed);
    core::Application app("MobileRobot");

    // ---- Localization: arc trajectory with LiDAR + GPS ----
    std::vector<Pose> truth;
    {
        Pose current(Vector{0.0}, Vector{0.0, 0.0});
        for (std::size_t i = 0; i < kPoses; ++i) {
            truth.push_back(current);
            current = current.oplus(
                Pose(Vector{0.05}, Vector{0.5, 0.0}));
        }
    }
    // LiDAR odometry comes from actual scan matching: render scans of
    // a scattered landmark field at each pose and align consecutive
    // ones with ICP (the Tbl. 2 LiDAR-factor front end).
    std::vector<Vector> field;
    {
        std::uniform_real_distribution<double> fx(-3.0, 16.0);
        std::uniform_real_distribution<double> fy(-6.0, 10.0);
        for (int i = 0; i < 70; ++i)
            field.push_back(Vector{fx(rng), fy(rng)});
    }
    std::vector<sensors::Scan> scans;
    for (std::size_t i = 0; i < kPoses; ++i)
        scans.push_back(
            sensors::renderScan(truth[i], field, 15.0, 0.01, rng));

    fg::FactorGraph loc;
    fg::Values loc_init;
    for (std::size_t i = 0; i < kPoses; ++i) {
        loc_init.insert(i, perturbPose(truth[i], rng, 0.03, 0.08));
        if (i + 1 < kPoses) {
            const auto match = sensors::icp2d(
                scans[i], scans[i + 1],
                truth[i + 1].ominus(truth[i]).retract(
                    gaussianVector(3, rng, 0.02)));
            loc.emplace<fg::LiDARFactor>(i, i + 1, match.relative,
                                         fg::isotropicSigmas(3, 0.02));
        }
        if (i % 3 == 0) {
            loc.emplace<fg::GPSFactor>(
                i, truth[i].t() + gaussianVector(2, rng, 0.05),
                fg::isotropicSigmas(2, 0.05));
        }
    }
    loc.emplace<fg::PriorFactor>(0u, truth[0],
                                 fg::isotropicSigmas(3, 0.01));
    app.add("localization", std::move(loc), loc_init, 20.0);

    // ---- Planning: around one obstacle between start and goal ----
    auto map = std::make_shared<fg::SdfMap>();
    // The obstacle clips the nominal straight-line path from one side
    // (symmetric head-on obstacles are degenerate for any local
    // planner).
    const double side = (seed % 2 == 0) ? 1.0 : -1.0;
    map->addObstacle(Vector{2.5 + 0.2 * uniformVector(1, rng, 1.0)[0],
                            side * (0.45 + 0.1 *
                                    uniformVector(1, rng, 1.0)[0])},
                     0.6);
    const Vector start{0.0, 0.0, 0.0, 1.0, 0.0, 0.0};
    const Vector goal{5.0, 0.0, 0.0, 1.0, 0.0, 0.0};
    fg::FactorGraph plan;
    fg::Values plan_init;
    for (std::size_t k = 0; k < kWaypoints; ++k) {
        const double s = static_cast<double>(k) /
                         static_cast<double>(kWaypoints - 1);
        Vector state{5.0 * s, 0.0, 0.0, 1.0, 0.0, 0.0};
        plan_init.insert(kPlanBase + k, state);
        if (k + 1 < kWaypoints)
            plan.emplace<fg::SmoothFactor>(kPlanBase + k,
                                           kPlanBase + k + 1, 3, kDt,
                                           fg::isotropicSigmas(6, 0.4));
        plan.emplace<fg::CollisionFreeFactor>(kPlanBase + k, map, 6, 2,
                                              1.0, 0.15);
        // Weak anchor: keeps the hinge-regularized Gauss-Newton steps
        // well conditioned (compiled into the program, so software and
        // accelerator stay identical).
        plan.emplace<fg::VectorPriorFactor>(kPlanBase + k, state,
                                            fg::isotropicSigmas(6, 2.0));
    }
    plan.emplace<fg::VectorPriorFactor>(kPlanBase, start,
                                        fg::isotropicSigmas(6, 0.01));
    plan.emplace<fg::VectorPriorFactor>(kPlanBase + kWaypoints - 1, goal,
                                        fg::isotropicSigmas(6, 0.01));
    app.add("planning", std::move(plan), plan_init, 5.0);

    // ---- Control: unicycle linearized about forward motion ----
    const double v0 = 1.0;
    Matrix a = Matrix::identity(3);
    a(0, 2) = -kDt * v0 * 0.0; // sin(theta0) with theta0 = 0.
    a(1, 2) = kDt * v0;        // cos(theta0).
    Matrix b(3, 2);
    b(0, 0) = kDt;
    b(2, 1) = kDt;

    const Vector x0 =
        Vector{0.4, -0.3, 0.15} + gaussianVector(3, rng, 0.05);
    fg::FactorGraph ctrl;
    fg::Values ctrl_init;
    for (std::size_t k = 0; k <= kHorizon; ++k)
        ctrl_init.insert(kCtrlStateBase + k, Vector(3));
    for (std::size_t k = 0; k < kHorizon; ++k)
        ctrl_init.insert(kCtrlInputBase + k, Vector(2));
    ctrl_init.update(kCtrlStateBase, x0);

    ctrl.emplace<fg::VectorPriorFactor>(kCtrlStateBase, x0,
                                        fg::isotropicSigmas(3, 1e-3));
    for (std::size_t k = 0; k < kHorizon; ++k) {
        ctrl.emplace<fg::DynamicsFactor>(
            kCtrlStateBase + k, kCtrlInputBase + k,
            kCtrlStateBase + k + 1, a, b,
            fg::isotropicSigmas(3, 1e-3));
        ctrl.emplace<fg::VectorPriorFactor>(kCtrlStateBase + k + 1,
                                            Vector(3),
                                            fg::isotropicSigmas(3, 1.0));
        ctrl.emplace<fg::VectorPriorFactor>(kCtrlInputBase + k,
                                            Vector(2),
                                            fg::isotropicSigmas(2, 2.5));
    }
    app.add("control", std::move(ctrl), ctrl_init, 50.0);

    // Hinge (collision/kinematics) factors oscillate under full
    // Gauss-Newton steps; damp the planning algorithm's updates.
    app.algorithm(1).stepScale = 0.5;
    app.compile();

    BenchmarkApp bench{std::move(app), nullptr};
    bench.check = [truth, map, goal](
                      const std::vector<fg::Values> &solved,
                      std::string *why) {
        auto fail = [&](const char *reason) {
            if (why != nullptr)
                *why = reason;
            return false;
        };
        // Localization: track ground truth.
        if (meanPositionError(solved[0], truth, 0) > 0.08)
            return fail("localization error");
        // Planning: collision-free waypoints reaching the goal.
        for (std::size_t k = 0; k < kWaypoints; ++k) {
            const Vector &state = solved[1].vector(kPlanBase + k);
            if (map->distance(state.segment(0, 2)) <= 0.0)
                return fail("plan collision");
        }
        const Vector &last = solved[1].vector(kPlanBase + kWaypoints - 1);
        if ((last.segment(0, 2) - goal.segment(0, 2)).norm() > 0.15)
            return fail("plan goal");
        // Control: the horizon end reaches the reference.
        if (solved[2].vector(kCtrlStateBase + kHorizon).norm() > 0.25)
            return fail("control convergence");
        return true;
    };
    return bench;
}

} // namespace orianna::apps
