#include "apps/pose_graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <random>
#include <stdexcept>

#include "apps/common.hpp"
#include "apps/sphere.hpp"
#include "fg/factors.hpp"

namespace orianna::apps {

fg::FactorGraph
PoseGraphScenario::graph() const
{
    fg::FactorGraph out;
    for (const PoseGraphFrame &frame : frames)
        for (const fg::FactorPtr &factor : frame.factors)
            out.add(factor);
    return out;
}

std::size_t
PoseGraphScenario::loopClosureFrames() const
{
    std::size_t n = 0;
    for (const PoseGraphFrame &frame : frames)
        n += frame.loopClosure ? 1 : 0;
    return n;
}

namespace {

/** Shared scenario assembly from truth + edges (generators only). */
struct EdgeSpec
{
    std::size_t i;
    std::size_t j;
    Pose measurement;
    double sigma;
};

PoseGraphScenario
assemble(std::string name, const std::vector<Pose> &truth,
         const std::vector<EdgeSpec> &edges, double prior_sigma)
{
    PoseGraphScenario scenario;
    scenario.name = std::move(name);
    scenario.spaceDim = truth.front().spaceDim();
    const std::size_t dof = truth.front().dof();

    // Edges grouped by their later endpoint: the frame they arrive
    // in when the dataset is replayed pose by pose.
    std::map<std::size_t, std::vector<const EdgeSpec *>> by_frame;
    for (const EdgeSpec &edge : edges)
        by_frame[std::max(edge.i, edge.j)].push_back(&edge);

    for (std::size_t k = 0; k < truth.size(); ++k) {
        scenario.truth.insert(k, truth[k]);
        PoseGraphFrame frame;
        frame.key = k;
        if (k == 0) {
            scenario.initial.insert(0u, truth[0]);
            frame.factors.push_back(
                std::make_shared<fg::PriorFactor>(
                    0u, truth[0],
                    fg::isotropicSigmas(dof, prior_sigma)));
        }
        for (const EdgeSpec *edge : by_frame[k]) {
            frame.factors.push_back(
                std::make_shared<fg::BetweenFactor>(
                    edge->i, edge->j, edge->measurement,
                    fg::isotropicSigmas(dof, edge->sigma)));
            if (std::max(edge->i, edge->j) -
                    std::min(edge->i, edge->j) >
                1)
                frame.loopClosure = true;
            // Dead-reckon the initial guess along the odometry chain.
            if (edge->j == k && edge->i + 1 == k)
                scenario.initial.insert(
                    k, scenario.initial.pose(k - 1).oplus(
                           edge->measurement));
        }
        if (!scenario.initial.exists(k))
            throw std::logic_error(
                "pose_graph: pose " + std::to_string(k) +
                " has no incoming odometry edge");
        scenario.frames.push_back(std::move(frame));
    }
    return scenario;
}

} // namespace

PoseGraphScenario
makeManhattanWorld(std::size_t poses, unsigned seed,
                   double rot_noise, double trans_noise)
{
    if (poses < 2)
        throw std::invalid_argument(
            "makeManhattanWorld: need at least 2 poses");
    constexpr double pi = std::numbers::pi;
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> turn(0, 3);

    // Unit-grid random walk with 90-degree turns, staying in a
    // bounded block so the walk actually revisits intersections.
    std::vector<Pose> truth;
    std::vector<int> cell_x;
    std::vector<int> cell_y;
    double heading = 0.0;
    int x = 0;
    int y = 0;
    for (std::size_t i = 0; i < poses; ++i) {
        truth.emplace_back(Vector{heading},
                           Vector{static_cast<double>(x),
                                  static_cast<double>(y)});
        cell_x.push_back(x);
        cell_y.push_back(y);
        // Turn at every third intersection on average; bounce off
        // the walls of a city block sized to the trajectory.
        const int bound = std::max(
            3, static_cast<int>(std::sqrt(
                   static_cast<double>(poses))) /
                   2);
        const int t = turn(rng);
        if (t == 0)
            heading += pi / 2.0;
        else if (t == 1)
            heading -= pi / 2.0;
        const int dx = static_cast<int>(std::round(std::cos(heading)));
        const int dy = static_cast<int>(std::round(std::sin(heading)));
        if (std::abs(x + dx) > bound || std::abs(y + dy) > bound) {
            heading += pi; // Dead end: turn around.
            x -= dx;
            y -= dy;
        } else {
            x += dx;
            y += dy;
        }
    }

    auto relative = [&](std::size_t i, std::size_t j) {
        return truth[j].ominus(truth[i]);
    };
    std::vector<EdgeSpec> edges;
    for (std::size_t i = 0; i + 1 < poses; ++i)
        edges.push_back({i, i + 1,
                         perturbPose(relative(i, i + 1), rng,
                                     rot_noise, trans_noise),
                         trans_noise});

    // Loop closures: revisiting an intersection seen at least ten
    // poses ago produces a scan-match edge to the earlier visit.
    std::map<std::pair<int, int>, std::size_t> last_visit;
    for (std::size_t i = 0; i < poses; ++i) {
        const std::pair<int, int> cell{cell_x[i], cell_y[i]};
        auto it = last_visit.find(cell);
        if (it != last_visit.end() && i - it->second >= 10)
            edges.push_back({it->second, i,
                             perturbPose(relative(it->second, i), rng,
                                         0.1 * rot_noise,
                                         0.1 * trans_noise),
                             0.1 * trans_noise});
        last_visit[cell] = i;
    }

    return assemble("manhattan-" + std::to_string(poses), truth,
                    edges, 1e-3);
}

PoseGraphScenario
makeSphereWorld(std::size_t rings, std::size_t per_ring,
                unsigned seed)
{
    const SphereDataset data =
        makeSphere(rings, per_ring, /*radius=*/5.0, seed);
    std::vector<EdgeSpec> edges;
    edges.reserve(data.edges.size());
    for (const SphereDataset::Edge &edge : data.edges)
        edges.push_back(
            {edge.i, edge.j, edge.measurement, edge.sigma});
    return assemble("sphere-" +
                        std::to_string(rings * per_ring),
                    data.truth, edges, 1e-3);
}

PoseGraphScenario
makeGarageWorld(std::size_t laps, std::size_t per_lap, unsigned seed,
                double rot_noise, double trans_noise)
{
    if (laps < 2 || per_lap < 4)
        throw std::invalid_argument(
            "makeGarageWorld: need >= 2 laps of >= 4 poses");
    constexpr double pi = std::numbers::pi;
    std::mt19937 rng(seed);

    // Helical ramp: each lap circles the garage once and climbs one
    // floor, as in the parking-garage dataset.
    const double radius = 8.0;
    const double floor_height = 2.5;
    std::vector<Pose> truth;
    for (std::size_t lap = 0; lap < laps; ++lap) {
        for (std::size_t k = 0; k < per_lap; ++k) {
            const double frac = static_cast<double>(k) /
                                static_cast<double>(per_lap);
            const double azimuth = 2.0 * pi * frac;
            Vector position{radius * std::cos(azimuth),
                            radius * std::sin(azimuth),
                            floor_height *
                                (static_cast<double>(lap) + frac)};
            Vector heading{0.0, 0.0, azimuth + pi / 2.0};
            truth.emplace_back(heading, position);
        }
    }

    const std::size_t n = truth.size();
    auto relative = [&](std::size_t i, std::size_t j) {
        return truth[j].ominus(truth[i]);
    };
    std::vector<EdgeSpec> edges;
    for (std::size_t i = 0; i + 1 < n; ++i)
        edges.push_back({i, i + 1,
                         perturbPose(relative(i, i + 1), rng,
                                     rot_noise, trans_noise),
                         trans_noise});
    // Vertical closures: the ramp passes directly over the pose one
    // lap below.
    for (std::size_t i = per_lap; i < n; ++i)
        edges.push_back({i - per_lap, i,
                         perturbPose(relative(i - per_lap, i), rng,
                                     0.1 * rot_noise,
                                     0.1 * trans_noise),
                         0.1 * trans_noise});

    return assemble("garage-" + std::to_string(n), truth, edges,
                    1e-3);
}

PoseGraphScenario
scenarioFromG2o(const fg::PoseGraphData &data, std::string name)
{
    const std::vector<fg::Key> keys = data.initial.keys();
    if (keys.empty())
        throw std::invalid_argument(
            "scenarioFromG2o: dataset has no poses");
    std::map<fg::Key, std::size_t> order;
    for (std::size_t i = 0; i < keys.size(); ++i)
        order[keys[i]] = i;

    PoseGraphScenario scenario;
    scenario.name = std::move(name);
    scenario.spaceDim = data.initial.pose(keys.front()).spaceDim();
    scenario.initial = data.initial;

    // Group each factor under its latest endpoint (the frame it
    // becomes evaluable in when poses arrive in key order).
    std::vector<std::vector<fg::FactorPtr>> by_frame(keys.size());
    std::vector<bool> closure(keys.size(), false);
    for (std::size_t f = 0; f < data.graph.size(); ++f) {
        const fg::FactorPtr factor = data.graph.factorPtr(f);
        std::size_t latest = 0;
        std::size_t earliest = keys.size();
        for (fg::Key key : factor->keys()) {
            auto it = order.find(key);
            if (it == order.end())
                throw std::invalid_argument(
                    "scenarioFromG2o: factor references a pose "
                    "without a vertex record");
            latest = std::max(latest, it->second);
            earliest = std::min(earliest, it->second);
        }
        by_frame[latest].push_back(factor);
        if (latest - earliest > 1)
            closure[latest] = true;
    }

    for (std::size_t i = 0; i < keys.size(); ++i) {
        PoseGraphFrame frame;
        frame.key = keys[i];
        frame.loopClosure = closure[i];
        if (i == 0)
            frame.factors.push_back(
                std::make_shared<fg::PriorFactor>(
                    keys[0], data.initial.pose(keys[0]),
                    fg::isotropicSigmas(
                        data.initial.dof(keys[0]), 1e-3)));
        for (fg::FactorPtr &factor : by_frame[i])
            frame.factors.push_back(std::move(factor));
        scenario.frames.push_back(std::move(frame));
    }
    return scenario;
}

} // namespace orianna::apps
