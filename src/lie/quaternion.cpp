#include "lie/quaternion.hpp"

#include <cmath>
#include <stdexcept>

#include "lie/so.hpp"

namespace orianna::lie {

Vector
toQuaternion(const Matrix &r)
{
    if (!isRotation(r, 1e-6) || r.rows() != 3)
        throw std::invalid_argument(
            "toQuaternion: input must be a 3-D rotation");

    // Shepperd's method: pick the numerically largest component.
    const double trace = r(0, 0) + r(1, 1) + r(2, 2);
    Vector q(4); // (x, y, z, w).
    if (trace > 0.0) {
        const double s = std::sqrt(trace + 1.0) * 2.0;
        q[3] = 0.25 * s;
        q[0] = (r(2, 1) - r(1, 2)) / s;
        q[1] = (r(0, 2) - r(2, 0)) / s;
        q[2] = (r(1, 0) - r(0, 1)) / s;
    } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
        const double s =
            std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;
        q[3] = (r(2, 1) - r(1, 2)) / s;
        q[0] = 0.25 * s;
        q[1] = (r(0, 1) + r(1, 0)) / s;
        q[2] = (r(0, 2) + r(2, 0)) / s;
    } else if (r(1, 1) > r(2, 2)) {
        const double s =
            std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;
        q[3] = (r(0, 2) - r(2, 0)) / s;
        q[0] = (r(0, 1) + r(1, 0)) / s;
        q[1] = 0.25 * s;
        q[2] = (r(1, 2) + r(2, 1)) / s;
    } else {
        const double s =
            std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;
        q[3] = (r(1, 0) - r(0, 1)) / s;
        q[0] = (r(0, 2) + r(2, 0)) / s;
        q[1] = (r(1, 2) + r(2, 1)) / s;
        q[2] = 0.25 * s;
    }
    // Canonical sign: w >= 0.
    if (q[3] < 0.0)
        q = -q;
    return q;
}

Matrix
fromQuaternion(const Vector &q_in)
{
    if (q_in.size() != 4)
        throw std::invalid_argument(
            "fromQuaternion: quaternion must be 4-dim (x, y, z, w)");
    const double norm = q_in.norm();
    if (norm < 1e-12)
        throw std::invalid_argument("fromQuaternion: zero quaternion");
    const Vector q = q_in * (1.0 / norm);
    const double x = q[0];
    const double y = q[1];
    const double z = q[2];
    const double w = q[3];

    Matrix r(3, 3);
    r(0, 0) = 1.0 - 2.0 * (y * y + z * z);
    r(0, 1) = 2.0 * (x * y - z * w);
    r(0, 2) = 2.0 * (x * z + y * w);
    r(1, 0) = 2.0 * (x * y + z * w);
    r(1, 1) = 1.0 - 2.0 * (x * x + z * z);
    r(1, 2) = 2.0 * (y * z - x * w);
    r(2, 0) = 2.0 * (x * z - y * w);
    r(2, 1) = 2.0 * (y * z + x * w);
    r(2, 2) = 1.0 - 2.0 * (x * x + y * y);
    return r;
}

} // namespace orianna::lie
