#pragma once

#include "lie/so.hpp"
#include "matrix/dense.hpp"

namespace orianna::lie {

/**
 * The unified pose representation <so(n), T(n)> of Sec. 4.2.
 *
 * A pose stores the orientation as a Lie-algebra vector phi in so(n)
 * (1 number in the plane, 3 in space) and the position as a plain
 * translation vector t in T(n). Unlike SE(n), no padded homogeneous
 * rows are carried, which is where the paper's 52.7% MAC saving
 * comes from.
 *
 * The composition operators of Equ. 2 are exposed as oplus() and
 * ominus() and are treated as *primitive* operations by the rest of
 * the framework: factor error functions are compositions of them, and
 * the compiler lowers them onto the nine Tbl. 3 primitives.
 */
class Pose
{
  public:
    /** Identity pose in an @p n dimensional space (n = 2 or 3). */
    explicit Pose(std::size_t n)
        : phi_(tangentDim(n)), t_(n)
    {}

    /** Pose from explicit orientation and position components. */
    Pose(Vector phi, Vector t);

    /** Identity pose in n-dimensional space. */
    static Pose identity(std::size_t n) { return Pose(n); }

    /** Space dimension n (2 or 3). */
    std::size_t spaceDim() const { return t_.size(); }

    /** Degrees of freedom: 3 for planar poses, 6 for spatial ones. */
    std::size_t dof() const { return phi_.size() + t_.size(); }

    /** Orientation component in so(n). */
    const Vector &phi() const { return phi_; }

    /** Position component in T(n). */
    const Vector &t() const { return t_; }

    /** Orientation as a rotation matrix Exp(phi). */
    Matrix rotation() const { return expSo(phi_); }

    /**
     * Pose composition (Equ. 2):
     *   this (+) other = < Log(R1 R2), t1 + R1 t2 >.
     */
    Pose oplus(const Pose &other) const;

    /**
     * Pose difference (Equ. 2):
     *   this (-) other = < Log(R2^T R1), R2^T (t1 - t2) >.
     */
    Pose ominus(const Pose &other) const;

    /** Inverse pose: identity == inverse().oplus(*this). */
    Pose inverse() const;

    /**
     * Gauss-Newton retraction: apply a dof()-dimensional tangent
     * update delta = [dphi; dt], with a right perturbation on the
     * orientation and plain addition on the position:
     *   phi' = Log(Exp(phi) Exp(dphi)),  t' = t + dt.
     */
    Pose retract(const Vector &delta) const;

    /**
     * Inverse of retract(): the tangent delta such that
     * this->retract(delta) == other (up to angle wrapping).
     */
    Vector localCoordinates(const Pose &other) const;

    /** Stacked [phi; t] vector of length dof(). */
    Vector asVector() const { return phi_.concat(t_); }

    /** Pose from a stacked [phi; t] vector in n-dimensional space. */
    static Pose fromVector(std::size_t n, const Vector &stacked);

    /** Human-readable rendering, for logs and tests. */
    std::string str() const;

  private:
    Vector phi_; //!< Orientation, so(n).
    Vector t_;   //!< Position, T(n).
};

/**
 * Max-abs difference between two poses (orientation compared through
 * the relative rotation angle so that wrapped representations agree).
 */
double poseDistance(const Pose &a, const Pose &b);

} // namespace orianna::lie
