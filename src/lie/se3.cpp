#include "lie/se3.hpp"

#include <cmath>
#include <stdexcept>

#include "matrix/qr.hpp"

namespace orianna::lie {

namespace {

constexpr double kSmallAngle = 1e-10;

} // namespace

Se3::Se3(Matrix m) : m_(std::move(m))
{
    if (m_.rows() != 4 || m_.cols() != 4)
        throw std::invalid_argument("Se3: matrix must be 4x4");
    if (!isRotation(m_.block(0, 0, 3, 3), 1e-6))
        throw std::invalid_argument("Se3: upper-left block not a rotation");
}

Se3
Se3::fromRt(const Matrix &r, const Vector &t)
{
    Matrix m = Matrix::identity(4);
    m.setBlock(0, 0, r);
    for (std::size_t i = 0; i < 3; ++i)
        m(i, 3) = t[i];
    return Se3(std::move(m));
}

Matrix
se3TranslationJacobian(const Vector &phi)
{
    const double theta = phi.norm();
    const Matrix w = hat(phi);
    if (theta < kSmallAngle)
        return Matrix::identity(3) + w * 0.5 + (w * w) * (1.0 / 6.0);
    const double t2 = theta * theta;
    const double a = (1.0 - std::cos(theta)) / t2;
    const double b = (theta - std::sin(theta)) / (t2 * theta);
    return Matrix::identity(3) + w * a + (w * w) * b;
}

Se3
Se3::exp(const Vector &twist)
{
    if (twist.size() != 6)
        throw std::invalid_argument("Se3::exp: twist must be 6-dim");
    const Vector phi = twist.segment(0, 3);
    const Vector rho = twist.segment(3, 3);
    const Matrix r = expSo(phi);
    const Vector t = se3TranslationJacobian(phi) * rho;
    return fromRt(r, t);
}

Vector
Se3::log() const
{
    const Vector phi = logSo(rotation());
    const Matrix v = se3TranslationJacobian(phi);
    // Solve V rho = t by least squares (V is well conditioned away
    // from theta = 2 pi, which retract() keeps us away from).
    const Vector rho = mat::leastSquares(v, translation());
    return phi.concat(rho);
}

Se3
Se3::compose(const Se3 &other) const
{
    // Deliberate full 4x4 product: this is the padded-representation
    // cost the unified <so(3),T(3)> representation avoids.
    return Se3(m_ * other.m_);
}

Se3
Se3::inverse() const
{
    const Matrix rt = rotation().transpose();
    return fromRt(rt, -(rt * translation()));
}

Se3
Se3::between(const Se3 &other) const
{
    return inverse().compose(other);
}

Se3
Se3::retract(const Vector &delta) const
{
    return compose(exp(delta));
}

Vector
Se3::localCoordinates(const Se3 &other) const
{
    return between(other).log();
}

Vector
Se3::translation() const
{
    Vector t(3);
    for (std::size_t i = 0; i < 3; ++i)
        t[i] = m_(i, 3);
    return t;
}

Matrix
Se3::adjoint() const
{
    const Matrix r = rotation();
    const Matrix th = hat(translation()) * r;
    Matrix ad(6, 6);
    ad.setBlock(0, 0, r);
    ad.setBlock(3, 0, th);
    ad.setBlock(3, 3, r);
    return ad;
}

Se3
Se3::fromPose(const Pose &pose)
{
    if (pose.spaceDim() != 3)
        throw std::invalid_argument("Se3::fromPose: pose must be 3-D");
    return fromRt(expSo(pose.phi()), pose.t());
}

Pose
Se3::toPose() const
{
    return Pose(logSo(rotation()), translation());
}

double
se3Distance(const Se3 &a, const Se3 &b)
{
    return mat::maxDifference(a.matrix(), b.matrix());
}

} // namespace orianna::lie
