#include "lie/pose.hpp"

#include <sstream>
#include <stdexcept>

namespace orianna::lie {

Pose::Pose(Vector phi, Vector t) : phi_(std::move(phi)), t_(std::move(t))
{
    if (tangentDim(t_.size()) != phi_.size())
        throw std::invalid_argument("Pose: phi/t dimension mismatch");
}

Pose
Pose::oplus(const Pose &other) const
{
    if (spaceDim() != other.spaceDim())
        throw std::invalid_argument("Pose::oplus: dimension mismatch");
    const Matrix r1 = expSo(phi_);
    const Matrix r2 = expSo(other.phi_);
    return Pose(logSo(r1 * r2), t_ + r1 * other.t_);
}

Pose
Pose::ominus(const Pose &other) const
{
    if (spaceDim() != other.spaceDim())
        throw std::invalid_argument("Pose::ominus: dimension mismatch");
    const Matrix r1 = expSo(phi_);
    const Matrix r2t = expSo(other.phi_).transpose();
    return Pose(logSo(r2t * r1), r2t * (t_ - other.t_));
}

Pose
Pose::inverse() const
{
    const Matrix rt = expSo(phi_).transpose();
    return Pose(logSo(rt), -(rt * t_));
}

Pose
Pose::retract(const Vector &delta) const
{
    if (delta.size() != dof())
        throw std::invalid_argument("Pose::retract: bad delta size");
    const Vector dphi = delta.segment(0, phi_.size());
    const Vector dt = delta.segment(phi_.size(), t_.size());
    return Pose(logSo(expSo(phi_) * expSo(dphi)), t_ + dt);
}

Vector
Pose::localCoordinates(const Pose &other) const
{
    if (spaceDim() != other.spaceDim())
        throw std::invalid_argument(
            "Pose::localCoordinates: dimension mismatch");
    const Vector dphi =
        logSo(expSo(phi_).transposeTimes(expSo(other.phi_)));
    const Vector dt = other.t_ - t_;
    return dphi.concat(dt);
}

Pose
Pose::fromVector(std::size_t n, const Vector &stacked)
{
    const std::size_t tdim = tangentDim(n);
    if (stacked.size() != tdim + n)
        throw std::invalid_argument("Pose::fromVector: bad vector size");
    return Pose(stacked.segment(0, tdim), stacked.segment(tdim, n));
}

std::string
Pose::str() const
{
    std::ostringstream os;
    os << "<phi=" << phi_.str() << ", t=" << t_.str() << ">";
    return os.str();
}

double
poseDistance(const Pose &a, const Pose &b)
{
    const Vector relative =
        logSo(expSo(a.phi()).transposeTimes(expSo(b.phi())));
    return std::max(relative.maxAbs(), (a.t() - b.t()).maxAbs());
}

} // namespace orianna::lie
