#pragma once

#include "matrix/dense.hpp"

namespace orianna::lie {

using mat::Matrix;
using mat::Vector;

/**
 * Unit-quaternion conversions. Quaternions are one of the classic
 * pose representations the paper's unified form replaces (Sec. 4.1,
 * "a combination of a 4-dimensional quaternion q and a position
 * vector"); we provide the conversions for interoperability with
 * datasets and libraries that use them (e.g. the g2o file format).
 *
 * Storage order is (x, y, z, w), matching g2o.
 */

/** Rotation matrix -> unit quaternion (x, y, z, w). */
Vector toQuaternion(const Matrix &r);

/**
 * Unit quaternion (x, y, z, w) -> rotation matrix. The input is
 * normalized first; a zero quaternion throws.
 */
Matrix fromQuaternion(const Vector &q);

} // namespace orianna::lie
