#pragma once

#include "matrix/dense.hpp"

namespace orianna::lie {

using mat::Matrix;
using mat::Vector;

/**
 * Tangent-space dimension of SO(n): 1 for n=2, 3 for n=3.
 *
 * @throws std::invalid_argument for any other n; the paper's unified
 * representation <so(n),T(n)> is only instantiated for planar and
 * spatial robots.
 */
std::size_t tangentDim(std::size_t n);

/** Space dimension n recovered from a tangent vector (1 -> 2, 3 -> 3). */
std::size_t spaceDimFromTangent(std::size_t tangent_dim);

/**
 * Hat operator: map a tangent vector to the corresponding
 * skew-symmetric matrix (the (.)^ primitive of Tbl. 3).
 *
 * For so(2) the input is a single angle; for so(3) a 3-vector.
 */
Matrix hat(const Vector &phi);

/** Vee operator: inverse of hat for skew-symmetric input. */
Vector vee(const Matrix &omega);

/**
 * Exponential map so(n) -> SO(n) (the Exp primitive of Tbl. 3).
 * Uses Rodrigues' formula for n=3 and the planar rotation for n=2.
 */
Matrix expSo(const Vector &phi);

/**
 * Logarithmic map SO(n) -> so(n) (the Log primitive of Tbl. 3).
 * The returned rotation angle lies in (-pi, pi].
 */
Vector logSo(const Matrix &r);

/**
 * Right Jacobian J_r of SO(n) [Sola et al.], the J_r primitive of
 * Tbl. 3: Exp(phi + dphi) ~= Exp(phi) Exp(J_r(phi) dphi).
 * For n=2 this is the 1x1 identity.
 */
Matrix rightJacobian(const Vector &phi);

/** Inverse right Jacobian, the J_r^-1 primitive of Tbl. 3. */
Matrix rightJacobianInv(const Vector &phi);

/** True when r is orthogonal with determinant +1 (within tol). */
bool isRotation(const Matrix &r, double tol = 1e-9);

} // namespace orianna::lie
