#include "lie/so.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "matrix/mac_counter.hpp"

namespace orianna::lie {

namespace {

constexpr double kSmallAngle = 1e-10;

} // namespace

std::size_t
tangentDim(std::size_t n)
{
    if (n == 2)
        return 1;
    if (n == 3)
        return 3;
    throw std::invalid_argument("tangentDim: only SO(2)/SO(3) supported");
}

std::size_t
spaceDimFromTangent(std::size_t tangent_dim)
{
    if (tangent_dim == 1)
        return 2;
    if (tangent_dim == 3)
        return 3;
    throw std::invalid_argument("spaceDimFromTangent: bad tangent dim");
}

Matrix
hat(const Vector &phi)
{
    if (phi.size() == 1) {
        Matrix out(2, 2);
        out(0, 1) = -phi[0];
        out(1, 0) = phi[0];
        return out;
    }
    if (phi.size() == 3) {
        Matrix out(3, 3);
        out(0, 1) = -phi[2];
        out(0, 2) = phi[1];
        out(1, 0) = phi[2];
        out(1, 2) = -phi[0];
        out(2, 0) = -phi[1];
        out(2, 1) = phi[0];
        return out;
    }
    throw std::invalid_argument("hat: tangent must be 1- or 3-dim");
}

Vector
vee(const Matrix &omega)
{
    if (omega.rows() == 2 && omega.cols() == 2)
        return Vector{omega(1, 0)};
    if (omega.rows() == 3 && omega.cols() == 3)
        return Vector{omega(2, 1), omega(0, 2), omega(1, 0)};
    throw std::invalid_argument("vee: matrix must be 2x2 or 3x3");
}

Matrix
expSo(const Vector &phi)
{
    if (phi.size() == 1) {
        const double c = std::cos(phi[0]);
        const double s = std::sin(phi[0]);
        mat::MacCounter::add(4);
        Matrix out(2, 2);
        out(0, 0) = c;
        out(0, 1) = -s;
        out(1, 0) = s;
        out(1, 1) = c;
        return out;
    }
    if (phi.size() == 3) {
        const double theta = phi.norm();
        const Matrix w = hat(phi);
        if (theta < kSmallAngle) {
            // First-order expansion near the identity.
            return Matrix::identity(3) + w + w * w * 0.5;
        }
        const double a = std::sin(theta) / theta;
        const double b = (1.0 - std::cos(theta)) / (theta * theta);
        mat::MacCounter::add(6);
        return Matrix::identity(3) + w * a + (w * w) * b;
    }
    throw std::invalid_argument("expSo: tangent must be 1- or 3-dim");
}

Vector
logSo(const Matrix &r)
{
    if (r.rows() == 2 && r.cols() == 2)
        return Vector{std::atan2(r(1, 0), r(0, 0))};
    if (r.rows() == 3 && r.cols() == 3) {
        const double trace = r(0, 0) + r(1, 1) + r(2, 2);
        double cos_theta = 0.5 * (trace - 1.0);
        cos_theta = std::clamp(cos_theta, -1.0, 1.0);
        const double theta = std::acos(cos_theta);
        mat::MacCounter::add(4);
        if (theta < kSmallAngle) {
            // Log ~= vee(R - R^T)/2 near the identity.
            return vee((r - r.transpose()) * 0.5);
        }
        constexpr double pi = std::numbers::pi;
        if (theta > pi - 1e-6) {
            // Near-pi branch: recover the axis from R + I.
            Matrix s = r + Matrix::identity(3);
            // The column of R+I with the largest norm is parallel to
            // the rotation axis.
            std::size_t best = 0;
            double best_norm = -1.0;
            for (std::size_t j = 0; j < 3; ++j) {
                const double n = s.col(j).norm();
                if (n > best_norm) {
                    best_norm = n;
                    best = j;
                }
            }
            Vector axis = s.col(best);
            axis = axis * (1.0 / axis.norm());
            // Fix the sign so that Exp(theta * axis) == r.
            Vector candidate = axis * theta;
            if (mat::maxDifference(expSo(candidate), r) >
                mat::maxDifference(expSo(-candidate), r))
                candidate = -candidate;
            return candidate;
        }
        const double scale = theta / (2.0 * std::sin(theta));
        return vee(r - r.transpose()) * scale;
    }
    throw std::invalid_argument("logSo: matrix must be 2x2 or 3x3");
}

Matrix
rightJacobian(const Vector &phi)
{
    if (phi.size() == 1)
        return Matrix::identity(1);
    if (phi.size() == 3) {
        const double theta = phi.norm();
        const Matrix w = hat(phi);
        if (theta < kSmallAngle)
            return Matrix::identity(3) - w * 0.5 + (w * w) * (1.0 / 6.0);
        const double t2 = theta * theta;
        const double a = (1.0 - std::cos(theta)) / t2;
        const double b = (theta - std::sin(theta)) / (t2 * theta);
        mat::MacCounter::add(8);
        return Matrix::identity(3) - w * a + (w * w) * b;
    }
    throw std::invalid_argument("rightJacobian: tangent must be 1- or 3-dim");
}

Matrix
rightJacobianInv(const Vector &phi)
{
    if (phi.size() == 1)
        return Matrix::identity(1);
    if (phi.size() == 3) {
        const double theta = phi.norm();
        const Matrix w = hat(phi);
        if (theta < kSmallAngle)
            return Matrix::identity(3) + w * 0.5 + (w * w) * (1.0 / 12.0);
        const double cot_term =
            (1.0 / (theta * theta)) - (1.0 + std::cos(theta)) /
                                          (2.0 * theta * std::sin(theta));
        mat::MacCounter::add(8);
        return Matrix::identity(3) + w * 0.5 + (w * w) * cot_term;
    }
    throw std::invalid_argument(
        "rightJacobianInv: tangent must be 1- or 3-dim");
}

bool
isRotation(const Matrix &r, double tol)
{
    if (r.rows() != r.cols())
        return false;
    const Matrix should_be_identity = r * r.transpose();
    if (mat::maxDifference(should_be_identity,
                           Matrix::identity(r.rows())) > tol)
        return false;
    // Determinant check for 2x2 / 3x3.
    double det = 0.0;
    if (r.rows() == 2) {
        det = r(0, 0) * r(1, 1) - r(0, 1) * r(1, 0);
    } else if (r.rows() == 3) {
        det = r(0, 0) * (r(1, 1) * r(2, 2) - r(1, 2) * r(2, 1)) -
              r(0, 1) * (r(1, 0) * r(2, 2) - r(1, 2) * r(2, 0)) +
              r(0, 2) * (r(1, 0) * r(2, 1) - r(1, 1) * r(2, 0));
    } else {
        return false;
    }
    return std::abs(det - 1.0) <= tol;
}

} // namespace orianna::lie
