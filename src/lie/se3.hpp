#pragma once

#include "lie/pose.hpp"
#include "matrix/dense.hpp"

namespace orianna::lie {

/**
 * Classic SE(3) pose representation, kept as the *baseline* the paper
 * compares <so(3),T(3)> against (Sec. 4.1/4.3 and Tbl. 1).
 *
 * The pose is stored as the padded 4x4 homogeneous matrix, and
 * composition is implemented as a full 4x4 matrix product on purpose:
 * the extra multiply-accumulates caused by the padded zeros/ones are
 * exactly the overhead the unified representation eliminates, and the
 * MacCounter instrumentation makes that overhead measurable
 * (bench_sec43_mac_savings).
 */
class Se3
{
  public:
    /** Identity transform. */
    Se3() : m_(Matrix::identity(4)) {}

    /** From an explicit homogeneous matrix (must be a rigid motion). */
    explicit Se3(Matrix m);

    /** From rotation matrix and translation vector. */
    static Se3 fromRt(const Matrix &r, const Vector &t);

    /**
     * Exponential map se(3) -> SE(3). The twist is ordered
     * [phi(3); rho(3)] (rotation first) to match Pose::retract.
     */
    static Se3 exp(const Vector &twist);

    /** Logarithmic map SE(3) -> se(3), ordered [phi; rho]. */
    Vector log() const;

    /** Full 4x4 homogeneous product (deliberately padded). */
    Se3 compose(const Se3 &other) const;

    /** Inverse rigid motion. */
    Se3 inverse() const;

    /** Relative transform: this^-1 * other. */
    Se3 between(const Se3 &other) const;

    /** Right-perturbation retraction: this * Exp(delta). */
    Se3 retract(const Vector &delta) const;

    /** Tangent delta such that this->retract(delta) == other. */
    Vector localCoordinates(const Se3 &other) const;

    Matrix rotation() const { return m_.block(0, 0, 3, 3); }
    Vector translation() const;

    /**
     * 6x6 adjoint in [phi; rho] twist order:
     * Exp(Ad(T) xi) == T Exp(xi) T^-1.
     */
    Matrix adjoint() const;

    const Matrix &matrix() const { return m_; }

    /** Conversion from the unified representation (Fig. 8, top). */
    static Se3 fromPose(const Pose &pose);

    /** Conversion to the unified representation (Fig. 8, top). */
    Pose toPose() const;

  private:
    Matrix m_; //!< 4x4 homogeneous transform.
};

/**
 * The linear map V(phi) relating se(3)'s translational component to
 * T(3): t = V(phi) rho (the J map of Fig. 8, bottom).
 */
Matrix se3TranslationJacobian(const Vector &phi);

/** Max-abs difference between two SE(3) transforms. */
double se3Distance(const Se3 &a, const Se3 &b);

} // namespace orianna::lie
