#include "baselines/stack_model.hpp"

#include <algorithm>

namespace orianna::baselines {

StackResult
runStack(const std::vector<WorkItem> &work,
         const Resources &per_accelerator_budget)
{
    StackResult out;
    double dynamic_energy = 0.0;
    for (const WorkItem &item : work) {
        auto gen = hwgen::generate({item}, per_accelerator_budget,
                                   hwgen::Objective::AvgLatency, true);
        gen.config.name = "stack-" + item.program->name;
        out.totalResources =
            out.totalResources + gen.config.resources();
        out.frameSeconds =
            std::max(out.frameSeconds, gen.result.seconds());
        dynamic_energy +=
            gen.result.dynamicEnergyJ + gen.result.memoryEnergyJ;
        out.perAlgorithm.push_back(gen.result);
        out.configs.push_back(std::move(gen.config));
    }
    // Every die stays powered for the whole (parallel) frame.
    out.frameEnergyJ = dynamic_energy +
                       static_cast<double>(work.size()) *
                           hw::CostModel::staticPowerW * out.frameSeconds;
    return out;
}

} // namespace orianna::baselines
