#include "baselines/platform_models.hpp"

#include <algorithm>

namespace orianna::baselines {

namespace {

using comp::Instruction;
using comp::IsaOp;

/** MACs of an instruction as seen by a software implementation. */
double
softwareMacs(const Instruction &inst, double construction_inflation)
{
    double macs = static_cast<double>(hw::instructionMacs(inst));
    if (inst.phase == 0)
        macs *= construction_inflation;
    return macs;
}

bool
isDataMovement(const Instruction &inst)
{
    switch (inst.op) {
      case IsaOp::LOADC:
      case IsaOp::LOADV:
      case IsaOp::STORE:
        return true;
      default:
        return false;
    }
}

} // namespace

PlatformSpec
intel()
{
    // i7-11700 class: fast caches, short dispatch, strong scalar FPU,
    // but classic padded pose representations in the software stack.
    return {"Intel", 25.6, 4.0, 9.4, 2.11};
}

PlatformSpec
arm()
{
    // Cortex-A57 class: long per-op overhead on tiny matrices, modest
    // FPU rate, low power.
    return {"ARM", 214.0, 0.49, 0.26, 2.11};
}

PlatformSpec
oriannaSw()
{
    // Intel hardware, unified <so(n),T(n)> representation: the
    // construction-phase MAC inflation disappears, everything else is
    // unchanged (the Sec. 7.3 observation that software alone gains
    // less than 10%).
    PlatformSpec spec = intel();
    spec.name = "Orianna-SW";
    spec.constructionInflation = 1.0;
    return spec;
}

GpuSpec
embeddedGpu()
{
    return {};
}

PlatformResult
runOnCpu(const PlatformSpec &platform, const std::vector<WorkItem> &work)
{
    PlatformResult out;
    for (const WorkItem &item : work) {
        for (const Instruction &inst : item.program->instructions) {
            if (isDataMovement(inst))
                continue; // Folded into the per-op overhead.
            const double macs =
                softwareMacs(inst, platform.constructionInflation);
            const double ns =
                platform.opOverheadNs + macs / platform.macRateGmacs;
            out.seconds += ns * 1e-9;
            out.phaseSeconds[std::min<std::size_t>(inst.phase, 2)] +=
                ns * 1e-9;
        }
    }
    out.energyJ = out.seconds * platform.powerW;
    return out;
}

PlatformResult
runOnGpu(const GpuSpec &gpu, const std::vector<WorkItem> &work)
{
    PlatformResult out;
    for (const WorkItem &item : work) {
        const auto &instructions = item.program->instructions;

        // Construction: dependence levels batch into one kernel each
        // (the cuBLAS batched-small-matrix pattern).
        std::vector<std::size_t> level(instructions.size(), 0);
        std::size_t construction_levels = 0;
        double construction_macs = 0.0;
        for (std::size_t i = 0; i < instructions.size(); ++i) {
            const Instruction &inst = instructions[i];
            if (inst.phase != 0)
                continue;
            for (std::uint32_t dep : inst.deps)
                if (instructions[dep].phase == 0)
                    level[i] = std::max(level[i], level[dep] + 1);
            construction_levels =
                std::max(construction_levels, level[i] + 1);
            if (!isDataMovement(inst))
                construction_macs +=
                    static_cast<double>(hw::instructionMacs(inst));
        }
        const double construction_ns =
            static_cast<double>(construction_levels) *
                gpu.launchOverheadNs +
            construction_macs / gpu.denseRateGmacs;
        out.phaseSeconds[0] += construction_ns * 1e-9;
        out.seconds += construction_ns * 1e-9;

        // Decomposition and back substitution: per-call solver
        // overhead plus a poor rate on tiny, irregular panels
        // (cuSolverSP on non-structural sparsity, Sec. 7.3).
        for (const Instruction &inst : instructions) {
            if (inst.phase == 0)
                continue;
            double ns = 0.0;
            switch (inst.op) {
              case IsaOp::QR:
              case IsaOp::BSUB:
                ns = gpu.solverCallOverheadNs +
                     static_cast<double>(hw::instructionMacs(inst)) /
                         gpu.solverRateGmacs;
                break;
              case IsaOp::GATHER:
              case IsaOp::EXTRACT:
                ns = static_cast<double>(
                         hw::instructionWords(inst) * 8) /
                     gpu.memcpyBytesPerNs;
                break;
              default:
                // MV/VSUB chains in back substitution run as tiny
                // kernels.
                ns = gpu.launchOverheadNs * 0.15 +
                     static_cast<double>(hw::instructionMacs(inst)) /
                         gpu.solverRateGmacs;
                break;
            }
            out.seconds += ns * 1e-9;
            out.phaseSeconds[std::min<std::size_t>(inst.phase, 2)] +=
                ns * 1e-9;
        }
    }
    out.energyJ = out.seconds * gpu.powerW;
    return out;
}

} // namespace orianna::baselines
