#pragma once

#include <array>
#include <string>
#include <vector>

#include "hw/accelerator.hpp"

namespace orianna::baselines {

using hw::WorkItem;

/**
 * Analytic CPU platform model (DESIGN.md Sec. 1): executes the same
 * instruction mix the accelerator runs, sequentially, with a fixed
 * per-operation overhead (dispatch, cache misses on tiny operands)
 * plus MAC throughput, and a platform power for energy.
 *
 * Calibration constants target the relative performance the paper
 * reports for these platforms on small irregular sparse workloads
 * (Intel i7-11700 about 8x a Cortex-A57 core; see EXPERIMENTS.md).
 */
struct PlatformSpec
{
    std::string name;
    double opOverheadNs;   //!< Fixed cost per matrix operation.
    double macRateGmacs;   //!< Sustained small-op MAC rate (GMAC/s).
    double powerW;         //!< Average package power while solving.
    /**
     * Inflation of the construction-phase MAC count for platforms
     * running the classic (padded SE(n)/quaternion) representations
     * instead of <so(n),T(n)> (Sec. 4.3: 52.7% more construction
     * MACs, i.e. a factor of ~2.11 on that phase).
     */
    double constructionInflation = 1.0;
};

/** High-end desktop CPU ("Intel", i7-11700 class). */
PlatformSpec intel();

/** Mobile CPU ("ARM", Cortex-A57 class). */
PlatformSpec arm();

/** Intel running the unified pose representation (ORIANNA-SW). */
PlatformSpec oriannaSw();

/**
 * Embedded-GPU model ("GPU", Maxwell class driven through
 * cuBLAS/cuSolverSP): construction levels batch into kernels with a
 * per-launch overhead; decomposition and back substitution pay a
 * per-call sparse-solver overhead and a poor effective rate, because
 * the sparsity is non-structural (Sec. 7.3).
 */
struct GpuSpec
{
    std::string name = "GPU";
    double launchOverheadNs = 2800.0;   //!< Kernel launch latency.
    double denseRateGmacs = 26.5;       //!< Batched construction rate.
    double solverCallOverheadNs = 2450.0;
    double solverRateGmacs = 4.1;       //!< Tiny irregular QR/BSUB.
    double memcpyBytesPerNs = 12.0;     //!< Gather/extract traffic.
    double powerW = 1.75;
};

GpuSpec embeddedGpu();

/** Outcome of a platform run. */
struct PlatformResult
{
    double seconds = 0.0;
    double energyJ = 0.0;
    /** Construction / decomposition / back-substitution split. */
    std::array<double, 3> phaseSeconds{};
};

/**
 * Run the work items' instruction streams through the sequential CPU
 * model. The numerics are not re-executed (the reference executor
 * already validates them); only time and energy are modelled.
 */
PlatformResult runOnCpu(const PlatformSpec &platform,
                        const std::vector<WorkItem> &work);

/** Run the work items through the GPU model. */
PlatformResult runOnGpu(const GpuSpec &gpu,
                        const std::vector<WorkItem> &work);

} // namespace orianna::baselines
