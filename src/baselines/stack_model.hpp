#pragma once

#include <vector>

#include "hwgen/generator.hpp"

namespace orianna::baselines {

using hw::AcceleratorConfig;
using hw::Resources;
using hw::SimResult;
using hw::WorkItem;

/**
 * The STACK baseline (Sec. 7.1): one dedicated accelerator per
 * algorithm, each generated for its own workload and given its own
 * (unshared) resources, running in parallel. Reproduces the
 * structural properties the paper measures: per-algorithm tailoring
 * (fast), summed resources (expensive), and parallel frame latency.
 */
struct StackResult
{
    std::vector<AcceleratorConfig> configs; //!< One per algorithm.
    std::vector<SimResult> perAlgorithm;    //!< Standalone runs.
    Resources totalResources;               //!< Sum over accelerators.
    double frameSeconds = 0.0; //!< max over algorithms (parallel).
    double frameEnergyJ = 0.0; //!< All dies powered for the frame.
};

/**
 * Build and run the STACK baseline: each work item gets its own
 * generated accelerator under @p per_accelerator_budget.
 */
StackResult runStack(const std::vector<WorkItem> &work,
                     const Resources &per_accelerator_budget);

} // namespace orianna::baselines
