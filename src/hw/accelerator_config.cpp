#include "hw/accelerator.hpp"

namespace orianna::hw {

AcceleratorConfig
AcceleratorConfig::minimal(bool out_of_order)
{
    AcceleratorConfig config;
    config.units.fill(1);
    config.outOfOrder = out_of_order;
    config.name = out_of_order ? "orianna-ooo" : "orianna-io";
    return config;
}

Resources
AcceleratorConfig::resources() const
{
    Resources total = CostModel::controllerResources();
    for (std::size_t k = 0; k < kUnitKindCount; ++k)
        total = total + CostModel::unitResources(
                            static_cast<UnitKind>(k)) *
                            units[k];
    return total;
}

} // namespace orianna::hw
