#pragma once

#include <cstdint>

#include "compiler/isa.hpp"

namespace orianna::hw {

using comp::Instruction;
using comp::IsaOp;

/**
 * Functional-unit templates of the ORIANNA accelerator (Sec. 6.1).
 * Every ISA opcode maps to exactly one unit kind; the hardware
 * generator replicates units per kind (the p_i of Equ. 5).
 */
enum class UnitKind : std::uint8_t {
    MatMul,   //!< Systolic-array multiplier (RR/MM/RV/MV).
    Transpose,//!< Rotation/general transpose (RT).
    Qr,       //!< Givens-array QR decomposition.
    BackSub,  //!< Back-substitution unit.
    VectorAlu,//!< Vector add/sub/scale/hinge/hat lane array (VP).
    Special,  //!< Exp/Log/J_r/projection/SDF pipeline (CORDIC-style).
    Buffer,   //!< On-chip buffer gather/extract engine.
    Dma,      //!< Host <-> accelerator streaming.
};

constexpr std::size_t kUnitKindCount = 8;

/** Unit kind executing an opcode. */
UnitKind unitFor(IsaOp op);

/** Display name of a unit kind. */
const char *unitName(UnitKind kind);

/**
 * FPGA resource vector in the style of a Vivado utilization report
 * (the Fig. 16c axes).
 */
struct Resources
{
    std::size_t lut = 0;
    std::size_t ff = 0;
    std::size_t bram = 0; //!< 36Kb blocks.
    std::size_t dsp = 0;

    Resources operator+(const Resources &other) const;
    Resources operator*(std::size_t count) const;
    bool fitsIn(const Resources &budget) const;
};

/**
 * All calibration constants of the hardware model in one place
 * (DESIGN.md Sec. 1). Latencies are in cycles at 167 MHz; energies in
 * nanojoules per operation; resources are per unit instance, set to
 * magnitudes representative of the ZC706's Zynq-7045 fabric.
 */
struct CostModel
{
    // --- Per-unit resources (one instance) ---
    static Resources unitResources(UnitKind kind);

    /** Fixed overhead: controller, scoreboard, host interface. */
    static Resources controllerResources();

    /** Latency of @p inst on its unit, in cycles (fp64 datapath). */
    static std::uint64_t latency(const Instruction &inst);

    /**
     * Precision-aware latency (DESIGN.md §12). Fp64 is exactly
     * latency(inst). Fp32 halves the word size, so the word-streaming
     * terms (vector lanes, buffer ports, DMA bursts, the QR rotation
     * work spread over the Givens lanes) move two words per
     * port-cycle; fill/drain and pipeline-depth terms are
     * dimension-bound and unchanged, as is the special-function
     * pipeline, which evaluates in extended precision either way.
     */
    static std::uint64_t latency(const Instruction &inst,
                                 comp::Precision precision);

    /**
     * Compute (datapath) energy of @p inst, in nanojoules. Memory
     * energy is charged by the simulator, which knows whether operands
     * live in the on-chip buffer (OoO operand capture) or round-trip
     * through DRAM (in-order controller).
     */
    static double dynamicEnergyNj(const Instruction &inst);

    /** Precision-aware datapath energy (fp32 MACs are cheaper). */
    static double dynamicEnergyNj(const Instruction &inst,
                                  comp::Precision precision);

    /**
     * Scale factor on per-word memory energy: fp32 words are half the
     * bytes, so buffer and DRAM traffic cost half per word moved.
     */
    static double
    wordEnergyScale(comp::Precision precision)
    {
        return precision == comp::Precision::Fp32 ? 0.5 : 1.0;
    }

    /** Accelerator static power in watts (clock tree + leakage). */
    static constexpr double staticPowerW = 0.9;

    /** Clock frequency (the prototype's 167 MHz). */
    static constexpr double frequencyHz = 167e6;

    /** Off-chip DRAM energy per 8-byte word, nanojoules. */
    static constexpr double dramEnergyPerWordNj = 1.9;

    /**
     * In-order forwarding window: an in-order controller keeps a
     * value in its local register file only while the consumer is
     * within this many program slots; farther consumers re-read the
     * value from DRAM. The OoO scoreboard captures operands in the
     * on-chip buffer instead.
     */
    static constexpr std::size_t inOrderForwardWindow = 40;

    /** On-chip buffer energy per 8-byte word, nanojoules. */
    static constexpr double bufferEnergyPerWordNj = 0.08;

    /** Energy per scalar MAC on the fabric, nanojoules. */
    static constexpr double macEnergyNj = 0.22;

    /**
     * Energy per fp32 MAC, nanojoules. A single-precision multiply
     * maps to one DSP slice instead of the cascaded quad a double
     * multiplier needs, so it is ~4x cheaper.
     */
    static constexpr double macEnergyFp32Nj = 0.06;

    /** Energy per special-function evaluation, nanojoules. */
    static constexpr double specialEnergyNj = 0.35;
};

/** Approximate MAC count of an instruction (energy model input). */
std::uint64_t instructionMacs(const Instruction &inst);

/** Words moved by an instruction (buffer/DMA energy model input). */
std::uint64_t instructionWords(const Instruction &inst);

} // namespace orianna::hw
