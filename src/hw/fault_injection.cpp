#include "hw/fault_injection.hpp"

#include <stdexcept>

namespace orianna::hw {

namespace {

/** SplitMix64: the standard 64-bit finalizer-style mixer. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from the top 53 bits of a hash. */
double
uniform(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

UnitKind
unitFromName(const std::string &name)
{
    for (std::size_t k = 0; k < kUnitKindCount; ++k)
        if (name == unitName(static_cast<UnitKind>(k)))
            return static_cast<UnitKind>(k);
    throw std::invalid_argument("FaultPlan: unknown unit \"" + name +
                                "\"");
}

FaultKind
kindFromName(const std::string &name)
{
    if (name == "stall")
        return FaultKind::Stall;
    if (name == "spike")
        return FaultKind::LatencySpike;
    if (name == "corrupt")
        return FaultKind::CorruptOutput;
    throw std::invalid_argument("FaultPlan: unknown fault kind \"" +
                                name + "\"");
}

std::uint64_t
defaultCycles(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Stall: return 50000;
      case FaultKind::LatencySpike: return 2000;
      case FaultKind::CorruptOutput: return 0;
    }
    return 0;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find(sep, begin);
        if (end == std::string::npos) {
            parts.push_back(text.substr(begin));
            break;
        }
        parts.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return parts;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Stall: return "stall";
      case FaultKind::LatencySpike: return "spike";
      case FaultKind::CorruptOutput: return "corrupt";
    }
    return "?";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::string body = spec;
    const std::size_t at = spec.find('@');
    if (at != std::string::npos) {
        try {
            std::size_t used = 0;
            plan.seed = std::stoull(spec.substr(0, at), &used);
            if (used != at)
                throw std::invalid_argument("trailing characters");
        } catch (const std::exception &) {
            throw std::invalid_argument(
                "FaultPlan: bad seed in \"" + spec + "\"");
        }
        body = spec.substr(at + 1);
    }
    if (body.empty())
        throw std::invalid_argument("FaultPlan: empty spec");

    for (const std::string &item : split(body, ',')) {
        const std::vector<std::string> fields = split(item, ':');
        if (fields.size() < 3 || fields.size() > 4)
            throw std::invalid_argument(
                "FaultPlan: expected kind:unit:rate[:cycles], got \"" +
                item + "\"");
        FaultSpec base;
        base.kind = kindFromName(fields[0]);
        try {
            base.rate = std::stod(fields[2]);
        } catch (const std::exception &) {
            throw std::invalid_argument("FaultPlan: bad rate \"" +
                                        fields[2] + "\"");
        }
        if (!(base.rate >= 0.0) || base.rate > 1.0)
            throw std::invalid_argument(
                "FaultPlan: rate must be in [0, 1]");
        base.cycles = defaultCycles(base.kind);
        if (fields.size() == 4) {
            try {
                base.cycles = std::stoull(fields[3]);
            } catch (const std::exception &) {
                throw std::invalid_argument(
                    "FaultPlan: bad cycle count \"" + fields[3] +
                    "\"");
            }
        }
        if (fields[1] == "all") {
            for (std::size_t k = 0; k < kUnitKindCount; ++k) {
                FaultSpec per_unit = base;
                per_unit.unit = static_cast<UnitKind>(k);
                plan.faults.push_back(per_unit);
            }
        } else {
            base.unit = unitFromName(fields[1]);
            plan.faults.push_back(base);
        }
    }
    return plan;
}

FaultDecision
FaultInjector::decide(std::uint64_t frame, std::uint64_t attempt,
                      std::uint64_t g, UnitKind kind) const
{
    FaultDecision decision;
    for (std::size_t s = 0; s < plan_.faults.size(); ++s) {
        const FaultSpec &spec = plan_.faults[s];
        if (spec.unit != kind || spec.rate <= 0.0)
            continue;
        // Independent coordinates-keyed draw per spec: pure function
        // of (seed, frame, attempt, instruction, spec index).
        std::uint64_t h = splitmix64(plan_.seed ^ splitmix64(frame));
        h = splitmix64(h ^ splitmix64(attempt ^ 0x5bf0375a00000000ull));
        h = splitmix64(h ^ splitmix64(g));
        h = splitmix64(h ^ static_cast<std::uint64_t>(s));
        if (uniform(h) >= spec.rate)
            continue;
        decision.fired[static_cast<std::size_t>(spec.kind)] += 1;
        if (spec.kind == FaultKind::CorruptOutput)
            decision.corrupt = true;
        else
            decision.extraCycles += spec.cycles;
    }
    return decision;
}

std::vector<FaultDecision>
FaultInjector::schedule(std::uint64_t frame, std::uint64_t attempt,
                        const std::vector<std::uint8_t> &unit_kinds)
    const
{
    std::vector<FaultDecision> decisions;
    decisions.reserve(unit_kinds.size());
    for (std::size_t g = 0; g < unit_kinds.size(); ++g)
        decisions.push_back(decide(frame, attempt, g,
                                   static_cast<UnitKind>(
                                       unit_kinds[g])));
    return decisions;
}

} // namespace orianna::hw
