#include "hw/cost_model.hpp"

#include <algorithm>

namespace orianna::hw {

UnitKind
unitFor(IsaOp op)
{
    switch (op) {
      case IsaOp::RR:
      case IsaOp::MM:
      case IsaOp::RV:
      case IsaOp::MV:
        return UnitKind::MatMul;
      case IsaOp::RT:
        return UnitKind::Transpose;
      case IsaOp::QR:
        return UnitKind::Qr;
      case IsaOp::BSUB:
        return UnitKind::BackSub;
      case IsaOp::VADD:
      case IsaOp::VSUB:
      case IsaOp::NEG:
      case IsaOp::HAT:
      case IsaOp::HINGE:
      case IsaOp::HINGEJ:
      case IsaOp::SCALER:
        return UnitKind::VectorAlu;
      case IsaOp::EXP:
      case IsaOp::LOG:
      case IsaOp::JR:
      case IsaOp::JRINV:
      case IsaOp::PROJ:
      case IsaOp::PROJJ:
      case IsaOp::SDF:
      case IsaOp::SDFJ:
      case IsaOp::NORM:
      case IsaOp::NORMJ:
      case IsaOp::HUBERW:
        return UnitKind::Special;
      case IsaOp::SMUL:
        return UnitKind::VectorAlu;
      case IsaOp::GATHER:
      case IsaOp::GSCALE:
      case IsaOp::EXTRACT:
        return UnitKind::Buffer;
      case IsaOp::MVSUB:
        return UnitKind::MatMul;
      case IsaOp::LOADC:
      case IsaOp::LOADV:
      case IsaOp::STORE:
        return UnitKind::Dma;
    }
    return UnitKind::Dma;
}

const char *
unitName(UnitKind kind)
{
    switch (kind) {
      case UnitKind::MatMul: return "matmul";
      case UnitKind::Transpose: return "transpose";
      case UnitKind::Qr: return "qr";
      case UnitKind::BackSub: return "backsub";
      case UnitKind::VectorAlu: return "vector";
      case UnitKind::Special: return "special";
      case UnitKind::Buffer: return "buffer";
      case UnitKind::Dma: return "dma";
    }
    return "?";
}

Resources
Resources::operator+(const Resources &other) const
{
    return {lut + other.lut, ff + other.ff, bram + other.bram,
            dsp + other.dsp};
}

Resources
Resources::operator*(std::size_t count) const
{
    return {lut * count, ff * count, bram * count, dsp * count};
}

bool
Resources::fitsIn(const Resources &budget) const
{
    return lut <= budget.lut && ff <= budget.ff && bram <= budget.bram &&
           dsp <= budget.dsp;
}

Resources
CostModel::unitResources(UnitKind kind)
{
    // Magnitudes representative of small double-precision units on a
    // Zynq-7045 (ZC706): a systolic multiplier tile, a Givens QR
    // array, CORDIC-style special pipeline, vector lanes, and the
    // buffer/DMA engines.
    switch (kind) {
      case UnitKind::MatMul:   return {5200, 6100, 4, 28};
      case UnitKind::Transpose:return {700, 900, 1, 0};
      case UnitKind::Qr:       return {9800, 11400, 8, 36};
      case UnitKind::BackSub:  return {3100, 3600, 2, 14};
      case UnitKind::VectorAlu:return {1600, 1900, 1, 8};
      case UnitKind::Special:  return {4400, 5200, 2, 18};
      case UnitKind::Buffer:   return {2300, 2800, 12, 0};
      case UnitKind::Dma:      return {1500, 2100, 2, 0};
    }
    return {};
}

Resources
CostModel::controllerResources()
{
    // Scoreboard, instruction queue and host interface.
    return {6800, 7900, 6, 0};
}

std::uint64_t
instructionMacs(const Instruction &inst)
{
    const std::uint64_t m = inst.rows;
    const std::uint64_t n = inst.cols;
    const std::uint64_t k = std::max<std::size_t>(inst.depth, 1);
    switch (inst.op) {
      case IsaOp::RR:
      case IsaOp::MM:
      case IsaOp::RV:
      case IsaOp::MV:
        return m * n * k;
      case IsaOp::QR: {
        // Givens triangularization of an m x n panel: ~4 MACs per
        // rotated element, column j rotates (m - j - 1) rows of
        // length (n - j).
        const std::uint64_t cols = std::max<std::size_t>(inst.depth, 1);
        std::uint64_t macs = 0;
        for (std::uint64_t j = 0; j < cols && j + 1 < m; ++j)
            macs += 4 * (m - j - 1) * (n - j);
        return macs;
      }
      case IsaOp::BSUB:
        return m * m / 2 + m;
      case IsaOp::VADD:
      case IsaOp::VSUB:
      case IsaOp::NEG:
      case IsaOp::SCALER:
      case IsaOp::HINGE:
      case IsaOp::HINGEJ:
      case IsaOp::HAT:
        return m * n;
      case IsaOp::EXP:
      case IsaOp::LOG:
      case IsaOp::JR:
      case IsaOp::JRINV:
        return 40; // Rodrigues-style evaluation.
      case IsaOp::PROJ:
      case IsaOp::PROJJ:
      case IsaOp::SDF:
      case IsaOp::SDFJ:
      case IsaOp::NORM:
      case IsaOp::NORMJ:
      case IsaOp::HUBERW:
        return 16;
      case IsaOp::SMUL:
        return m * n;
      case IsaOp::GSCALE:
        // GATHER (0) + SCALER (m * n).
        return m * n;
      case IsaOp::MVSUB:
        // MV (m * 1 * k) + VSUB (m * 1).
        return m * k + m;
      default:
        return 0;
    }
}

std::uint64_t
instructionWords(const Instruction &inst)
{
    return static_cast<std::uint64_t>(inst.rows) *
           std::max<std::size_t>(inst.cols, 1);
}

std::uint64_t
CostModel::latency(const Instruction &inst)
{
    const std::uint64_t m = std::max<std::size_t>(inst.rows, 1);
    const std::uint64_t n = std::max<std::size_t>(inst.cols, 1);
    const std::uint64_t k = std::max<std::size_t>(inst.depth, 1);
    // Fused opcodes: the second half of the pair is applied in the
    // first half's existing output stage (a multiplier folded into
    // the gather write path, an adder on the systolic drain), so the
    // fused instruction occupies its unit exactly as long as the
    // unfused first half did — fusion deletes the second occupancy
    // outright and the fused stream is never slower than the pair.
    if (inst.op == IsaOp::GSCALE) {
        // GATHER streaming latency, scale folded into the write path.
        return (m * n + 7) / 8 + 1;
    }
    if (inst.op == IsaOp::MVSUB) {
        // MV fill/drain latency, subtract folded into the drain.
        return (m + 1 + k) / 2 + 3;
    }
    switch (unitFor(inst.op)) {
      case UnitKind::MatMul:
        // Systolic array wider than the small operands: fill + drain
        // overlap with streaming.
        return (m + n + k) / 2 + 3;
      case UnitKind::Transpose:
        return m / 2 + 2;
      case UnitKind::Qr: {
        // Givens array with a fixed number of rotation lanes: fill +
        // drain plus the rotation work divided across the lanes. For
        // panels larger than the array the work term dominates, which
        // is what makes one whole-system QR (VANILLA-HLS) slower than
        // many small factor-graph QRs.
        constexpr std::uint64_t lanes = 64;
        return 2 * m + n + 12 + instructionMacs(inst) / (4 * lanes);
      }
      case UnitKind::BackSub:
        // Divide-accumulate per unknown, two lanes.
        return 2 * m + 6;
      case UnitKind::VectorAlu:
        return (m * n + 7) / 8 + 1;
      case UnitKind::Special:
        return 10; // CORDIC/LUT pipeline depth.
      case UnitKind::Buffer:
        // One word per cycle per port, 8 ports.
        return (m * n + 7) / 8 + 1;
      case UnitKind::Dma:
        // Burst streaming plus host handshake.
        return (m * n + 7) / 8 + 8;
    }
    return 1;
}

std::uint64_t
CostModel::latency(const Instruction &inst, comp::Precision precision)
{
    if (precision == comp::Precision::Fp64)
        return latency(inst);

    const std::uint64_t m = std::max<std::size_t>(inst.rows, 1);
    const std::uint64_t n = std::max<std::size_t>(inst.cols, 1);
    const std::uint64_t k = std::max<std::size_t>(inst.depth, 1);
    // fp32 word-streaming terms move two 4-byte words per port-cycle.
    // Systolic fill/drain, back-substitution divide chains and the
    // special-function pipeline depth are dimension-bound, not
    // word-bound, and keep their fp64 cycle counts.
    if (inst.op == IsaOp::GSCALE)
        return (m * n + 15) / 16 + 1;
    if (inst.op == IsaOp::MVSUB)
        return (m + 1 + k) / 2 + 3;
    switch (unitFor(inst.op)) {
      case UnitKind::MatMul:
        return (m + n + k) / 2 + 3;
      case UnitKind::Transpose:
        return m / 2 + 2;
      case UnitKind::Qr: {
        // Twice the rotation throughput per Givens lane.
        constexpr std::uint64_t lanes = 64;
        return 2 * m + n + 12 + instructionMacs(inst) / (8 * lanes);
      }
      case UnitKind::BackSub:
        return 2 * m + 6;
      case UnitKind::VectorAlu:
        return (m * n + 15) / 16 + 1;
      case UnitKind::Special:
        return 10;
      case UnitKind::Buffer:
        return (m * n + 15) / 16 + 1;
      case UnitKind::Dma:
        return (m * n + 15) / 16 + 8;
    }
    return 1;
}

double
CostModel::dynamicEnergyNj(const Instruction &inst)
{
    const double macs = static_cast<double>(instructionMacs(inst));
    double energy = macs * macEnergyNj;
    if (unitFor(inst.op) == UnitKind::Special)
        energy += specialEnergyNj;
    return energy;
}

double
CostModel::dynamicEnergyNj(const Instruction &inst,
                           comp::Precision precision)
{
    if (precision == comp::Precision::Fp64)
        return dynamicEnergyNj(inst);
    const double macs = static_cast<double>(instructionMacs(inst));
    double energy = macs * macEnergyFp32Nj;
    // Special-function units evaluate in extended precision in either
    // mode, so their energy does not scale with the datapath width.
    if (unitFor(inst.op) == UnitKind::Special)
        energy += specialEnergyNj;
    return energy;
}

} // namespace orianna::hw
