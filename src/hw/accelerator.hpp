#pragma once

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <vector>

#include "compiler/executor.hpp"
#include "hw/cost_model.hpp"
#include "hw/trace.hpp"

namespace orianna::hw {

/**
 * Configuration of a generated accelerator: how many instances of
 * each functional-unit template are instantiated (the p_1..p_n of
 * Equ. 5) and whether the controller dispatches out of order.
 */
struct AcceleratorConfig
{
    std::array<unsigned, kUnitKindCount> units{};
    bool outOfOrder = true;
    std::string name = "orianna";
    /** Record a per-instruction schedule trace (writeChromeTrace). */
    bool recordTrace = false;

    /** Smallest viable accelerator: one unit of each kind. */
    static AcceleratorConfig minimal(bool out_of_order = true);

    unsigned count(UnitKind kind) const
    {
        return units[static_cast<std::size_t>(kind)];
    }

    unsigned &count(UnitKind kind)
    {
        return units[static_cast<std::size_t>(kind)];
    }

    /** Total resources: units plus the fixed controller overhead. */
    Resources resources() const;
};

/** One algorithm's compiled program bound to its current values. */
struct WorkItem
{
    const comp::Program *program;
    const fg::Values *values;
};

/** Outcome of one simulated frame (all work items executed once). */
struct SimResult
{
    std::uint64_t cycles = 0;

    double
    seconds() const
    {
        return static_cast<double>(cycles) / CostModel::frequencyHz;
    }

    double dynamicEnergyJ = 0.0; //!< Datapath (compute) energy.
    double memoryEnergyJ = 0.0;  //!< Operand traffic: on-chip buffer
                                 //!< (OoO operand capture) or DRAM
                                 //!< round trips (in-order controller).
    double staticEnergyJ = 0.0;  //!< Idle/clock power over the makespan.

    double
    totalEnergyJ() const
    {
        return dynamicEnergyJ + memoryEnergyJ + staticEnergyJ;
    }

    /** Busy cycles accumulated per unit kind (utilization). */
    std::array<std::uint64_t, kUnitKindCount> unitBusyCycles{};

    /** Busy cycles per phase: construction / decomposition / backsub. */
    std::array<std::uint64_t, 3> phaseBusyCycles{};

    /** Completion cycle of the last instruction per algorithm tag. */
    std::map<std::uint8_t, std::uint64_t> algorithmFinishCycle;

    /**
     * Faults the injection harness fired this frame, total and per
     * FaultKind (stall / spike / corrupt, in enum order). Always zero
     * without an armed hw::FaultInjector.
     */
    std::uint64_t faultsInjected = 0;
    std::array<std::uint64_t, 3> faultsByKind{};

    /** Functional results: delta per variable, one map per work item. */
    std::vector<std::map<fg::Key, mat::Vector>> deltas;

    /** Schedule trace (only when config.recordTrace is set). */
    std::vector<TraceEvent> trace;

    /**
     * Fold another frame's cycles, energies and busy-cycle counters
     * into this result (per-algorithm finish cycles are maxed).
     * Deltas and traces are per-frame data and are not merged.
     */
    void
    accumulate(const SimResult &other)
    {
        cycles += other.cycles;
        dynamicEnergyJ += other.dynamicEnergyJ;
        memoryEnergyJ += other.memoryEnergyJ;
        staticEnergyJ += other.staticEnergyJ;
        for (std::size_t k = 0; k < kUnitKindCount; ++k)
            unitBusyCycles[k] += other.unitBusyCycles[k];
        for (std::size_t p = 0; p < phaseBusyCycles.size(); ++p)
            phaseBusyCycles[p] += other.phaseBusyCycles[p];
        for (const auto &[tag, cycle] : other.algorithmFinishCycle) {
            auto &finish = algorithmFinishCycle[tag];
            finish = std::max(finish, cycle);
        }
        faultsInjected += other.faultsInjected;
        for (std::size_t k = 0; k < faultsByKind.size(); ++k)
            faultsByKind[k] += other.faultsByKind[k];
    }
};

/**
 * Cycle-level, functional simulation of the ORIANNA accelerator.
 *
 * Instructions are issued by a scoreboard: out-of-order configurations
 * dispatch any instruction whose operands are ready to any free unit
 * of the right kind (fine-grained OoO inside an algorithm and
 * coarse-grained OoO across the work items, Sec. 6.3); in-order
 * configurations issue strictly in program order (work items
 * concatenated), stalling on the oldest unissued instruction.
 *
 * The numerics run through comp::Executor at issue time, so the
 * simulation also produces the actual Gauss-Newton updates.
 *
 * This is a convenience wrapper kept for API compatibility: it
 * builds a fresh runtime::ExecutionContext and runs one frame.
 * Frame-loop callers should build the context once and reuse it
 * (src/runtime), which skips the per-call dependence-graph and
 * executor setup this wrapper pays.
 */
SimResult simulate(const std::vector<WorkItem> &work,
                   const AcceleratorConfig &config);

/**
 * Convenience: run @p iterations Gauss-Newton steps of a single
 * program on the accelerator, retracting between steps, through one
 * reused runtime::Session. Returns the final values plus the
 * accumulated simulation statistics.
 */
struct IteratedResult
{
    fg::Values values;
    SimResult total; //!< Cycles/energy accumulated over iterations.
};

IteratedResult simulateIterated(const comp::Program &program,
                                const fg::Values &initial,
                                std::size_t iterations,
                                const AcceleratorConfig &config,
                                double step_scale = 1.0);

} // namespace orianna::hw
