#pragma once

#include <vector>

#include "hw/accelerator.hpp"

namespace orianna::hw {

/**
 * One periodic algorithm stream feeding the accelerator: a compiled
 * program re-executed at a fixed rate (the localization / planning /
 * control frequencies of Sec. 6.3, e.g. control at 100 Hz but
 * planning at 2 Hz in an industrial manipulator).
 */
struct PeriodicStream
{
    const comp::Program *program;
    const fg::Values *values;
    double rateHz = 10.0;
    /** Phase offset of the first frame release, in seconds. */
    double offsetS = 0.0;
};

/** Latency statistics of one stream over a pipeline run. */
struct StreamStats
{
    std::size_t frames = 0;
    double meanLatencyS = 0.0;
    double maxLatencyS = 0.0;  //!< The long-tail metric of Sec. 6.2.
    double meanWaitS = 0.0;    //!< Queueing before first issue.
    std::size_t deadlineMisses = 0; //!< Latency beyond the period.
};

/** Outcome of a pipeline simulation. */
struct PipelineResult
{
    std::vector<StreamStats> streams; //!< One per input stream.
    std::uint64_t cycles = 0;         //!< Total simulated horizon.
    double utilization = 0.0; //!< Busy-cycle share of the hot unit.
};

/**
 * Rate-aware multi-frame simulation: release frames of every stream
 * periodically over @p horizon_s seconds and schedule them all on one
 * accelerator. A frame's instructions only become eligible at its
 * release time; out-of-order configurations interleave frames of
 * different algorithms (coarse-grained OoO), in-order configurations
 * drain frames strictly in release order.
 *
 * This is the experiment behind the paper's claim that one shared
 * ORIANNA accelerator sustains an application whose algorithms run at
 * very different frequencies, with frame latencies comparable to
 * dedicated per-algorithm hardware (Sec. 6.3).
 */
PipelineResult simulatePipeline(const std::vector<PeriodicStream> &streams,
                                const AcceleratorConfig &config,
                                double horizon_s);

} // namespace orianna::hw
