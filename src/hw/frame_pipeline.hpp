#pragma once

#include <vector>

#include "hw/accelerator.hpp"

namespace orianna::hw {

/**
 * One periodic algorithm stream feeding the accelerator: a compiled
 * program re-executed at a fixed rate (the localization / planning /
 * control frequencies of Sec. 6.3, e.g. control at 100 Hz but
 * planning at 2 Hz in an industrial manipulator).
 */
struct PeriodicStream
{
    const comp::Program *program;
    const fg::Values *values;
    double rateHz = 10.0;
    /** Phase offset of the first frame release, in seconds. */
    double offsetS = 0.0;
};

/** Latency statistics of one stream over a pipeline run. */
struct StreamStats
{
    std::size_t frames = 0;
    double meanLatencyS = 0.0;
    double maxLatencyS = 0.0;  //!< The long-tail metric of Sec. 6.2.
    double meanWaitS = 0.0;    //!< Queueing before first issue.
    std::size_t deadlineMisses = 0; //!< Latency beyond the period.
};

/** Outcome of a pipeline simulation. */
struct PipelineResult
{
    std::vector<StreamStats> streams; //!< One per input stream.
    std::uint64_t cycles = 0;         //!< Total simulated horizon.
    double utilization = 0.0; //!< Busy-cycle share of the hot unit.
};

/**
 * Rate-aware multi-frame simulation: release frames of every stream
 * periodically over a horizon and schedule them all on one
 * accelerator. A frame's instructions only become eligible at its
 * release time; out-of-order configurations interleave frames of
 * different algorithms (coarse-grained OoO), in-order configurations
 * drain frames strictly in release order.
 *
 * The pipeline is a long-lived context in the same spirit as
 * runtime::ExecutionContext: construction validates the workload and
 * builds the per-stream functional executors and dependence
 * adjacency once; run() re-executes any number of horizons against
 * that state without rebuilding it. A stream's frames are serialized
 * (each consumes the previous frame's state), so one warm executor
 * per stream suffices.
 *
 * This is the experiment behind the paper's claim that one shared
 * ORIANNA accelerator sustains an application whose algorithms run at
 * very different frequencies, with frame latencies comparable to
 * dedicated per-algorithm hardware (Sec. 6.3).
 */
class FramePipeline
{
  public:
    FramePipeline(std::vector<PeriodicStream> streams,
                  AcceleratorConfig config);

    const AcceleratorConfig &config() const { return config_; }
    std::size_t streamCount() const { return streams_.size(); }

    /** Simulate @p horizon_s seconds of periodic frame releases. */
    PipelineResult run(double horizon_s);

  private:
    std::vector<PeriodicStream> streams_;
    AcceleratorConfig config_;
    /** Per-stream functional executors, warm across frames/runs. */
    std::vector<comp::Executor> executors_;
    /** Per-stream dependents adjacency (shared by all its frames). */
    std::vector<std::vector<std::vector<std::uint32_t>>> dependents_;
};

/** One-shot convenience wrapper kept for API compatibility. */
PipelineResult simulatePipeline(const std::vector<PeriodicStream> &streams,
                                const AcceleratorConfig &config,
                                double horizon_s);

} // namespace orianna::hw
