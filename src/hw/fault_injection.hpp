#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"

namespace orianna::hw {

/**
 * Hardware fault classes the harness can inject into the simulated
 * accelerator (the deployment failure modes the reconfigurable
 * localization and LiDAR-inertial accelerator papers stress):
 *
 *   - Stall: a functional unit wedges for many cycles before its
 *     result lands (arbitration bug, buffer backpressure). Detected
 *     by the runtime's frame-timeout policy.
 *   - LatencySpike: a short transient slowdown of one operation
 *     (voltage droop, DRAM refresh collision). Usually benign; large
 *     spikes trip the same timeout.
 *   - CorruptOutput: the unit produces garbage (SEU in the datapath).
 *     The harness poisons the output slot with quiet NaNs, which is
 *     what a parity-protected datapath raises on a detected upset;
 *     the runtime sees the non-finite deltas and degrades.
 */
enum class FaultKind : std::uint8_t {
    Stall,
    LatencySpike,
    CorruptOutput,
};

constexpr std::size_t kFaultKindCount = 3;

/** Display name ("stall" / "spike" / "corrupt"). */
const char *faultKindName(FaultKind kind);

/** One fault source: a kind bound to a unit kind with a firing rate. */
struct FaultSpec
{
    FaultKind kind = FaultKind::CorruptOutput;
    UnitKind unit = UnitKind::MatMul;
    /** Per-issued-instruction firing probability in [0, 1]. */
    double rate = 0.0;
    /** Extra cycles for Stall / LatencySpike (ignored for corrupt). */
    std::uint64_t cycles = 0;
};

/**
 * A deterministic, seeded fault campaign: every FaultSpec is evaluated
 * independently for every issued instruction. The schedule is a pure
 * function of (seed, frame, attempt, instruction, spec), so the same
 * plan replays byte-identically regardless of host thread timing or
 * issue order — which is what makes schedule and robustness claims
 * testable.
 */
struct FaultPlan
{
    std::uint64_t seed = 0;
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /**
     * Parse a command-line campaign spec:
     *
     *   [SEED@]FAULT[,FAULT...]
     *   FAULT = kind:unit:rate[:cycles]
     *
     * kind is stall|spike|corrupt, unit is a unit name (matmul, qr,
     * backsub, vector, special, buffer, dma, transpose) or "all"
     * (one spec per unit kind), rate is a probability, cycles the
     * stall/spike length (default 50000 stall / 2000 spike).
     * Example: "42@corrupt:all:0.02,stall:qr:0.01:100000".
     *
     * @throws std::invalid_argument on malformed input.
     */
    static FaultPlan parse(const std::string &spec);
};

/** What decide() injects into one instruction issue. */
struct FaultDecision
{
    std::uint64_t extraCycles = 0; //!< Added to the unit latency.
    bool corrupt = false;          //!< Poison the output slot.
    /** Fault count per kind fired on this issue (for the counters). */
    std::uint64_t fired[kFaultKindCount] = {0, 0, 0};

    bool
    any() const
    {
        return extraCycles != 0 || corrupt;
    }
};

/**
 * Stateless evaluator of a FaultPlan. decide() hashes the coordinates
 * of an instruction issue (frame number, retry attempt, global
 * instruction index) with the plan seed, so:
 *
 *   - the same seed replays the exact same fault schedule,
 *   - retries of a faulted frame (attempt + 1) roll fresh outcomes,
 *     which is what gives a retry a chance of clearing a transient.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    const FaultPlan &plan() const { return plan_; }

    /**
     * Faults firing on instruction @p g (global index, executing on a
     * unit of @p kind) in frame @p frame, retry @p attempt.
     */
    FaultDecision decide(std::uint64_t frame, std::uint64_t attempt,
                         std::uint64_t g, UnitKind kind) const;

    /**
     * The full fault schedule of one frame attempt over @p unit_kinds
     * (unit kind per global instruction index), serialized as one
     * decision per instruction. Replays are byte-identical by
     * construction; tests assert exactly that.
     */
    std::vector<FaultDecision>
    schedule(std::uint64_t frame, std::uint64_t attempt,
             const std::vector<std::uint8_t> &unit_kinds) const;

  private:
    FaultPlan plan_;
};

} // namespace orianna::hw
