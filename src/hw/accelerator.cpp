// Thin API-compatibility wrappers over the orianna::runtime layer.
//
// The scoreboard that used to live here as one monolithic simulate()
// is now a pluggable runtime::Scheduler driven by a reusable
// runtime::ExecutionContext; see src/runtime. These entry points
// build a context per call so existing one-shot callers keep working
// unchanged; frame loops should hold a context (or a
// runtime::Session) and reuse it.

#include "hw/accelerator.hpp"

#include "runtime/engine.hpp"
#include "runtime/execution_context.hpp"

namespace orianna::hw {

SimResult
simulate(const std::vector<WorkItem> &work,
         const AcceleratorConfig &config)
{
    runtime::ExecutionContext context(work);
    return context.run(config);
}

IteratedResult
simulateIterated(const comp::Program &program, const fg::Values &initial,
                 std::size_t iterations, const AcceleratorConfig &config,
                 double step_scale)
{
    runtime::Session session(program, initial, config, step_scale);
    session.iterate(iterations);
    return {session.values(), session.totals()};
}

} // namespace orianna::hw
