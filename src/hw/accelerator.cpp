#include "hw/accelerator.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace orianna::hw {

namespace {

/** Global instruction reference across concatenated work items. */
struct InstrRef
{
    std::uint32_t work;
    std::uint32_t index;
};

} // namespace

AcceleratorConfig
AcceleratorConfig::minimal(bool out_of_order)
{
    AcceleratorConfig config;
    config.units.fill(1);
    config.outOfOrder = out_of_order;
    config.name = out_of_order ? "orianna-ooo" : "orianna-io";
    return config;
}

Resources
AcceleratorConfig::resources() const
{
    Resources total = CostModel::controllerResources();
    for (std::size_t k = 0; k < kUnitKindCount; ++k)
        total = total + CostModel::unitResources(
                            static_cast<UnitKind>(k)) *
                            units[k];
    return total;
}

SimResult
simulate(const std::vector<WorkItem> &work, const AcceleratorConfig &config)
{
    for (unsigned count : config.units)
        if (count == 0)
            throw std::invalid_argument(
                "simulate: every unit kind needs at least one instance");

    // Flatten the work items into one global instruction list.
    std::vector<InstrRef> order;
    std::vector<comp::Executor> executors;
    executors.reserve(work.size());
    for (std::uint32_t w = 0; w < work.size(); ++w) {
        executors.emplace_back(*work[w].program);
        executors.back().reset();
        const auto &instrs = work[w].program->instructions;
        for (std::uint32_t i = 0; i < instrs.size(); ++i)
            order.push_back({w, i});
    }
    const std::size_t total = order.size();

    // Dependence bookkeeping (deps are intra-program).
    std::vector<std::size_t> base(work.size(), 0);
    for (std::size_t w = 1; w < work.size(); ++w)
        base[w] =
            base[w - 1] + work[w - 1].program->instructions.size();

    auto instruction = [&](std::size_t g) -> const comp::Instruction & {
        const InstrRef &ref = order[g];
        return work[ref.work].program->instructions[ref.index];
    };

    std::vector<std::uint32_t> pending(total, 0);
    std::vector<std::vector<std::uint32_t>> dependents(total);
    for (std::size_t g = 0; g < total; ++g) {
        const comp::Instruction &inst = instruction(g);
        pending[g] = static_cast<std::uint32_t>(inst.deps.size());
        for (std::uint32_t dep : inst.deps)
            dependents[base[order[g].work] + dep].push_back(
                static_cast<std::uint32_t>(g));
    }

    std::vector<std::uint64_t> finishCycle(total, 0);
    std::vector<bool> issued(total, false);
    std::vector<bool> done(total, false);

    // Unit occupancy, tracked per instance so traces can show lanes.
    std::array<std::vector<unsigned>, kUnitKindCount> freeInstances;
    for (std::size_t k = 0; k < kUnitKindCount; ++k)
        for (unsigned u = 0; u < config.units[k]; ++u)
            freeInstances[k].push_back(config.units[k] - 1 - u);
    std::vector<unsigned> assignedInstance(total, 0);

    // Event queue of completions: (finish cycle, global index).
    using Event = std::pair<std::uint64_t, std::size_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    SimResult result;
    result.deltas.resize(work.size());

    std::uint64_t now = 0;
    std::size_t issuedCount = 0;
    std::size_t nextInOrder = 0;

    auto tryIssueAt = [&](std::size_t g) -> bool {
        if (issued[g] || pending[g] != 0)
            return false;
        const comp::Instruction &inst = instruction(g);
        const UnitKind kind = unitFor(inst.op);
        auto &pool = freeInstances[static_cast<std::size_t>(kind)];
        if (pool.empty())
            return false;

        assignedInstance[g] = pool.back();
        pool.pop_back();
        issued[g] = true;
        ++issuedCount;

        // Functional execution happens at issue: operands are final
        // because all producers completed.
        executors[order[g].work].step(order[g].index,
                                      *work[order[g].work].values);

        const std::uint64_t latency = CostModel::latency(inst);
        finishCycle[g] = now + latency;
        events.emplace(finishCycle[g], g);

        if (config.recordTrace) {
            TraceEvent event;
            event.name = std::string(comp::isaOpName(inst.op)) + " " +
                         std::to_string(inst.rows) + "x" +
                         std::to_string(inst.cols);
            event.unit = kind;
            event.instance = assignedInstance[g];
            event.startCycle = now;
            event.endCycle = finishCycle[g];
            event.algorithm = inst.algorithm;
            event.phase = inst.phase;
            result.trace.push_back(std::move(event));
        }

        result.unitBusyCycles[static_cast<std::size_t>(kind)] += latency;
        result.phaseBusyCycles[std::min<std::size_t>(inst.phase, 2)] +=
            latency;
        result.dynamicEnergyJ +=
            CostModel::dynamicEnergyNj(inst) * 1e-9;

        // Memory energy. The OoO scoreboard captures every operand in
        // the on-chip buffer. The in-order controller forwards only
        // within a short program window (local register file); any
        // operand produced farther back is re-read from DRAM, and the
        // result of an instruction with such a distant consumer is
        // written back - the "data stored on-chip and reused" effect
        // of Sec. 7.3. Host DMA is off-chip in either mode.
        const double dram = CostModel::dramEnergyPerWordNj * 1e-9;
        const double buffer = CostModel::bufferEnergyPerWordNj * 1e-9;
        result.memoryEnergyJ +=
            instructionWords(inst) *
            (kind == UnitKind::Dma ? dram : buffer);
        for (std::uint32_t dep : inst.deps) {
            const std::size_t producer = base[order[g].work] + dep;
            const bool spilled =
                !config.outOfOrder &&
                g - producer > CostModel::inOrderForwardWindow;
            result.memoryEnergyJ +=
                instructionWords(instruction(producer)) *
                (spilled ? 2.0 * dram : buffer);
        }

        return true;
    };

    // Ready list for OoO scanning; scanned oldest-first so dispatch
    // behaves like a real age-ordered scoreboard.
    std::vector<std::size_t> ready;
    for (std::size_t g = 0; g < total; ++g)
        if (pending[g] == 0)
            ready.push_back(g);

    while (issuedCount < total || !events.empty()) {
        // Issue as much as possible at the current cycle.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            if (config.outOfOrder) {
                std::sort(ready.begin(), ready.end());
                std::vector<std::size_t> still;
                still.reserve(ready.size());
                for (std::size_t g : ready) {
                    if (issued[g])
                        continue;
                    if (tryIssueAt(g))
                        progressed = true;
                    else
                        still.push_back(g);
                }
                ready.swap(still);
            } else {
                // Blocking sequential controller: the next instruction
                // issues only after the previous one completes (no
                // dispatch window at all - the paper's ORIANNA-IO).
                while (nextInOrder < total && issued[nextInOrder])
                    ++nextInOrder;
                if (nextInOrder < total &&
                    (nextInOrder == 0 || done[nextInOrder - 1]) &&
                    tryIssueAt(nextInOrder)) {
                    progressed = true;
                    ++nextInOrder;
                }
            }
        }

        if (events.empty()) {
            if (issuedCount < total)
                throw std::logic_error(
                    "simulate: deadlock (circular dependences?)");
            break;
        }

        // Advance to the next completion.
        const auto [when, g] = events.top();
        events.pop();
        now = std::max(now, when);
        done[g] = true;
        const comp::Instruction &inst = instruction(g);
        freeInstances[static_cast<std::size_t>(unitFor(inst.op))]
            .push_back(assignedInstance[g]);
        for (std::uint32_t dep_user : dependents[g]) {
            if (--pending[dep_user] == 0 && config.outOfOrder)
                ready.push_back(dep_user);
        }
        // Drain every completion at this same cycle.
        while (!events.empty() && events.top().first == when) {
            const auto [w2, g2] = events.top();
            events.pop();
            (void)w2;
            done[g2] = true;
            const comp::Instruction &i2 = instruction(g2);
            freeInstances[static_cast<std::size_t>(unitFor(i2.op))]
                .push_back(assignedInstance[g2]);
            for (std::uint32_t dep_user : dependents[g2]) {
                if (--pending[dep_user] == 0 && config.outOfOrder)
                    ready.push_back(dep_user);
            }
        }
    }

    result.cycles = now;
    for (std::size_t g = 0; g < total; ++g) {
        const comp::Instruction &inst = instruction(g);
        auto &finish = result.algorithmFinishCycle[inst.algorithm];
        finish = std::max(finish, finishCycle[g]);
    }
    result.staticEnergyJ = CostModel::staticPowerW * result.seconds();

    // Read back the deltas.
    for (std::size_t w = 0; w < work.size(); ++w)
        for (const comp::DeltaBinding &binding : work[w].program->deltas)
            result.deltas[w].emplace(
                binding.key,
                std::get<mat::Vector>(executors[w].slot(binding.slot)));
    return result;
}

IteratedResult
simulateIterated(const comp::Program &program, const fg::Values &initial,
                 std::size_t iterations, const AcceleratorConfig &config,
                 double step_scale)
{
    IteratedResult out{initial, {}};
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        SimResult step = simulate({{&program, &out.values}}, config);
        if (step_scale != 1.0)
            for (auto &[key, d] : step.deltas[0])
                d = d * step_scale;
        out.values.retractAll(step.deltas[0]);
        out.total.cycles += step.cycles;
        out.total.dynamicEnergyJ += step.dynamicEnergyJ;
        out.total.memoryEnergyJ += step.memoryEnergyJ;
        out.total.staticEnergyJ += step.staticEnergyJ;
        for (std::size_t k = 0; k < kUnitKindCount; ++k)
            out.total.unitBusyCycles[k] += step.unitBusyCycles[k];
        for (std::size_t p = 0; p < 3; ++p)
            out.total.phaseBusyCycles[p] += step.phaseBusyCycles[p];
    }
    return out;
}

} // namespace orianna::hw
