#pragma once

#include <string>
#include <vector>

#include "hw/cost_model.hpp"

namespace orianna::hw {

/** One scheduled instruction occurrence, for timeline visualization. */
struct TraceEvent
{
    std::string name;       //!< Opcode mnemonic + shape.
    UnitKind unit;          //!< Functional-unit kind.
    unsigned instance = 0;  //!< Which replica of the unit.
    std::uint64_t startCycle = 0;
    std::uint64_t endCycle = 0;
    std::uint8_t algorithm = 0; //!< Coarse-grained OoO tag.
    std::uint8_t phase = 0;     //!< Construction / decomp / back-sub.
};

/**
 * Write a schedule as a Chrome trace (chrome://tracing /
 * https://ui.perfetto.dev JSON). Each functional-unit instance
 * becomes a timeline row; colors follow the algorithm tag, so the
 * coarse-grained out-of-order interleaving of Sec. 6.3 is directly
 * visible.
 *
 * @throws std::runtime_error when the file cannot be written.
 */
void writeChromeTrace(const std::string &path,
                      const std::vector<TraceEvent> &events,
                      double frequency_hz = CostModel::frequencyHz);

} // namespace orianna::hw
