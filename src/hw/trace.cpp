#include "hw/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace orianna::hw {

void
writeChromeTrace(const std::string &path,
                 const std::vector<TraceEvent> &events,
                 double frequency_hz)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeChromeTrace: cannot open " +
                                 path);

    const double us_per_cycle = 1e6 / frequency_hz;
    out << "[\n";
    bool first = true;
    for (const TraceEvent &event : events) {
        if (!first)
            out << ",\n";
        first = false;
        // pid = unit kind, tid = instance; complete ("X") events.
        out << "  {\"name\": \"" << event.name << "\", \"cat\": \"alg"
            << static_cast<int>(event.algorithm)
            << "\", \"ph\": \"X\", \"ts\": "
            << static_cast<double>(event.startCycle) * us_per_cycle
            << ", \"dur\": "
            << static_cast<double>(event.endCycle - event.startCycle) *
                   us_per_cycle
            << ", \"pid\": " << static_cast<int>(event.unit)
            << ", \"tid\": " << event.instance
            << ", \"args\": {\"phase\": "
            << static_cast<int>(event.phase) << "}}";
    }
    // Name the process rows after the unit kinds.
    for (std::size_t k = 0; k < kUnitKindCount; ++k) {
        out << ",\n  {\"name\": \"process_name\", \"ph\": \"M\", "
            << "\"pid\": " << k << ", \"args\": {\"name\": \""
            << unitName(static_cast<UnitKind>(k)) << "\"}}";
    }
    out << "\n]\n";
    if (!out)
        throw std::runtime_error("writeChromeTrace: write failed");
}

} // namespace orianna::hw
