#include "hw/frame_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "runtime/metrics.hpp"

namespace orianna::hw {

namespace {

/** One released frame of one stream. */
struct Frame
{
    std::size_t stream;
    std::size_t index;         //!< Frame number within the stream.
    std::uint64_t releaseCycle;
    std::size_t firstInstr;    //!< Global id of its first instruction.
    std::size_t instrCount;
    std::uint64_t firstIssue = 0;
    std::uint64_t finish = 0;
    std::size_t remaining = 0; //!< Unfinished instructions.
    bool started = false;      //!< First instruction has issued.
};

} // namespace

FramePipeline::FramePipeline(std::vector<PeriodicStream> streams,
                             AcceleratorConfig config)
    : streams_(std::move(streams)), config_(std::move(config))
{
    if (streams_.empty())
        throw std::invalid_argument("FramePipeline: empty workload");
    for (unsigned count : config_.units)
        if (count == 0)
            throw std::invalid_argument(
                "FramePipeline: zero-count unit kind");
    for (const PeriodicStream &stream : streams_)
        if (stream.rateHz <= 0.0)
            throw std::invalid_argument(
                "FramePipeline: rate must be positive");

    // Long-lived per-stream state: one warm functional executor and
    // the dependence adjacency shared by all of a stream's frames.
    executors_.reserve(streams_.size());
    for (const PeriodicStream &stream : streams_)
        executors_.emplace_back(*stream.program);

    dependents_.resize(streams_.size());
    for (std::size_t s = 0; s < streams_.size(); ++s) {
        const auto &instrs = streams_[s].program->instructions;
        dependents_[s].resize(instrs.size());
        for (std::size_t j = 0; j < instrs.size(); ++j)
            for (std::uint32_t dep : instrs[j].deps)
                dependents_[s][dep].push_back(
                    static_cast<std::uint32_t>(j));
    }
}

PipelineResult
FramePipeline::run(double horizon_s)
{
    if (horizon_s <= 0.0)
        throw std::invalid_argument(
            "FramePipeline: horizon must be positive");

    const double f = CostModel::frequencyHz;

    // Release all frames inside the horizon.
    std::vector<Frame> frames;
    for (std::size_t s = 0; s < streams_.size(); ++s) {
        const PeriodicStream &stream = streams_[s];
        const double period = 1.0 / stream.rateHz;
        for (std::size_t k = 0;; ++k) {
            const double t =
                stream.offsetS + static_cast<double>(k) * period;
            if (t >= horizon_s)
                break;
            Frame frame;
            frame.stream = s;
            frame.index = k;
            frame.releaseCycle =
                static_cast<std::uint64_t>(std::llround(t * f));
            frame.instrCount =
                stream.program->instructions.size();
            frames.push_back(frame);
        }
    }
    std::sort(frames.begin(), frames.end(),
              [](const Frame &a, const Frame &b) {
                  if (a.releaseCycle != b.releaseCycle)
                      return a.releaseCycle < b.releaseCycle;
                  return a.stream < b.stream;
              });

    // Global instruction instances.
    std::size_t total = 0;
    for (Frame &frame : frames) {
        frame.firstInstr = total;
        frame.remaining = frame.instrCount;
        total += frame.instrCount;
    }

    auto frameOf = [&](std::size_t g) -> std::size_t {
        // Frames are laid out contiguously; binary search the owner.
        std::size_t lo = 0;
        std::size_t hi = frames.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi + 1) / 2;
            if (frames[mid].firstInstr <= g)
                lo = mid;
            else
                hi = mid - 1;
        }
        return lo;
    };
    auto instruction = [&](std::size_t g) -> const comp::Instruction & {
        const Frame &frame = frames[frameOf(g)];
        return streams_[frame.stream]
            .program->instructions[g - frame.firstInstr];
    };

    std::vector<std::uint32_t> pending(total, 0);
    std::vector<bool> issued(total, false);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const Frame &frame = frames[i];
        const auto &instrs =
            streams_[frame.stream].program->instructions;
        for (std::size_t j = 0; j < instrs.size(); ++j)
            pending[frame.firstInstr + j] =
                static_cast<std::uint32_t>(instrs[j].deps.size());
    }

    // Gate: a frame may start only after the previous frame of the
    // same stream completed.
    std::vector<std::size_t> prevFrame(frames.size(), SIZE_MAX);
    {
        std::vector<std::size_t> last(streams_.size(), SIZE_MAX);
        for (std::size_t i = 0; i < frames.size(); ++i) {
            prevFrame[i] = last[frames[i].stream];
            last[frames[i].stream] = i;
        }
    }

    std::array<unsigned, kUnitKindCount> freeUnits = config_.units;
    using Event = std::pair<std::uint64_t, std::size_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> done;

    std::array<std::uint64_t, kUnitKindCount> busy{};
    std::uint64_t now = 0;
    std::size_t issuedCount = 0;
    std::size_t frameCursor = 0; //!< First frame not yet fully done.

    auto frameEligible = [&](std::size_t fi) {
        const Frame &frame = frames[fi];
        if (frame.releaseCycle > now)
            return false;
        if (prevFrame[fi] != SIZE_MAX &&
            frames[prevFrame[fi]].remaining > 0)
            return false;
        if (!config_.outOfOrder) {
            // Blocking in-order controller: drain frames strictly in
            // release order.
            for (std::size_t e = frameCursor; e < fi; ++e)
                if (frames[e].remaining > 0)
                    return false;
        }
        return true;
    };

    auto tryIssue = [&](std::size_t g) -> bool {
        if (issued[g] || pending[g] != 0)
            return false;
        const std::size_t fi = frameOf(g);
        if (!frameEligible(fi))
            return false;
        const comp::Instruction &inst = instruction(g);
        const UnitKind kind = unitFor(inst.op);
        if (freeUnits[static_cast<std::size_t>(kind)] == 0)
            return false;
        if (!config_.outOfOrder) {
            // Within a frame: blocking sequential issue.
            const std::size_t local = g - frames[fi].firstInstr;
            if (local > 0 && frames[fi].remaining !=
                                 frames[fi].instrCount - local)
                return false;
        }
        --freeUnits[static_cast<std::size_t>(kind)];
        issued[g] = true;
        ++issuedCount;
        Frame &frame = frames[fi];
        if (!frame.started) {
            frame.started = true;
            frame.firstIssue = now;
        }
        // The warm per-stream executor carries state frame to frame;
        // programs write every slot before reading it, so no reset.
        executors_[frame.stream].step(g - frame.firstInstr,
                                      *streams_[frame.stream].values);
        const std::uint64_t latency = CostModel::latency(
            inst, streams_[frame.stream].program->precision);
        busy[static_cast<std::size_t>(kind)] += latency;
        done.emplace(now + latency, g);
        return true;
    };

    while (issuedCount < total || !done.empty()) {
        bool progressed = true;
        while (progressed) {
            progressed = false;
            // Scan unissued instructions of eligible frames,
            // oldest-first. (Frames are release-sorted.)
            for (std::size_t fi = frameCursor; fi < frames.size();
                 ++fi) {
                Frame &frame = frames[fi];
                if (frame.remaining == 0)
                    continue;
                if (frame.releaseCycle > now)
                    break; // Later frames release even later.
                for (std::size_t j = 0; j < frame.instrCount; ++j) {
                    const std::size_t g = frame.firstInstr + j;
                    if (!issued[g] && tryIssue(g))
                        progressed = true;
                }
                if (!config_.outOfOrder)
                    break; // One frame at a time.
            }
        }

        if (done.empty()) {
            // Advance to the next frame release.
            std::uint64_t next = UINT64_MAX;
            for (std::size_t fi = frameCursor; fi < frames.size();
                 ++fi)
                if (frames[fi].remaining > 0)
                    next = std::min(next, frames[fi].releaseCycle);
            if (next == UINT64_MAX)
                break;
            now = std::max(now, next);
            continue;
        }

        const auto [when, g] = done.top();
        done.pop();
        now = std::max(now, when);
        ++freeUnits[static_cast<std::size_t>(
            unitFor(instruction(g).op))];
        Frame &frame = frames[frameOf(g)];
        if (--frame.remaining == 0)
            frame.finish = when;
        const std::size_t local = g - frame.firstInstr;
        for (std::uint32_t user : dependents_[frame.stream][local])
            --pending[frame.firstInstr + user];
        while (frameCursor < frames.size() &&
               frames[frameCursor].remaining == 0)
            ++frameCursor;
    }

    PipelineResult result;
    result.cycles = now;
    result.streams.resize(streams_.size());
    const bool metrics_on = runtime::MetricsRegistry::enabled();
    for (const Frame &frame : frames) {
        StreamStats &stats = result.streams[frame.stream];
        const double latency =
            static_cast<double>(frame.finish - frame.releaseCycle) / f;
        const double wait =
            static_cast<double>(frame.firstIssue - frame.releaseCycle) /
            f;
        ++stats.frames;
        stats.meanLatencyS += latency;
        stats.meanWaitS += wait;
        stats.maxLatencyS = std::max(stats.maxLatencyS, latency);
        const bool missed =
            latency > 1.0 / streams_[frame.stream].rateHz;
        if (missed)
            ++stats.deadlineMisses;
        if (metrics_on) {
            // Model-time frame latency/wait: the per-stage visibility
            // of the rate-aware pipeline (p50/p99 via the registry).
            auto &metrics = runtime::MetricsRegistry::global();
            metrics.histogram("pipeline.frame_latency_us")
                .observe(static_cast<std::uint64_t>(latency * 1e6));
            metrics.histogram("pipeline.frame_wait_us")
                .observe(static_cast<std::uint64_t>(wait * 1e6));
            metrics.counter("pipeline.frames").add();
            if (missed)
                metrics.counter("pipeline.deadline_misses").add();
        }
    }
    std::uint64_t hottest = 0;
    for (std::uint64_t b : busy)
        hottest = std::max(hottest, b);
    result.utilization =
        now == 0 ? 0.0
                 : static_cast<double>(hottest) /
                       static_cast<double>(now);
    for (StreamStats &stats : result.streams) {
        if (stats.frames > 0) {
            stats.meanLatencyS /= static_cast<double>(stats.frames);
            stats.meanWaitS /= static_cast<double>(stats.frames);
        }
    }
    return result;
}

PipelineResult
simulatePipeline(const std::vector<PeriodicStream> &streams,
                 const AcceleratorConfig &config, double horizon_s)
{
    if (horizon_s <= 0.0)
        throw std::invalid_argument(
            "simulatePipeline: horizon must be positive");
    return FramePipeline(streams, config).run(horizon_s);
}

} // namespace orianna::hw
