#include "core/application.hpp"

#include <stdexcept>

#include "fg/optimizer.hpp"
#include "compiler/optimize.hpp"
#include "fg/ordering.hpp"
#include "runtime/engine.hpp"

namespace orianna::core {

void
Application::add(std::string algorithm_name, fg::FactorGraph graph,
                 fg::Values initial, double rate_hz)
{
    if (rate_hz <= 0.0)
        throw std::invalid_argument("Application::add: rate must be > 0");
    auto algo = std::make_unique<Algorithm>();
    algo->name = std::move(algorithm_name);
    algo->graph = std::move(graph);
    algo->values = std::move(initial);
    algo->rateHz = rate_hz;
    algorithms_.push_back(std::move(algo));
    compiled_ = false;
}

const Algorithm *
Application::find(const std::string &algorithm_name) const
{
    for (const auto &algo : algorithms_)
        if (algo->name == algorithm_name)
            return algo.get();
    return nullptr;
}

void
Application::compile(comp::Precision precision)
{
    // The default pipeline, split at the cleanup/optimization seam so
    // the post-cleanup stream can be kept as the platform-model
    // reference (see Algorithm::referenceProgram).
    const comp::PassManager cleanup =
        comp::PassManager::parse("dedup,dce");
    const comp::PassManager optimize =
        comp::PassManager::parse("cse,fuse");
    for (std::size_t i = 0; i < algorithms_.size(); ++i) {
        Algorithm &algo = *algorithms_[i];
        comp::CompileOptions options;
        options.algorithmTag = static_cast<std::uint8_t>(i);
        options.name = name_ + "/" + algo.name;
        options.precision = precision;
        // Minimum-degree ordering eliminates independent leaves first,
        // exposing the out-of-order elimination parallelism of
        // Sec. 6.3 (and keeping QR panels small).
        options.ordering = fg::ordering::minDegree(algo.graph);

        // The algorithm's initial values double as the probe input
        // for the (opt-in) per-pass equivalence check.
        comp::PassManager::RunOptions pass_options;
        pass_options.probe = &algo.values;
        pass_options.verify = comp::PassManager::verifyFromEnv();

        algo.program =
            comp::compileGraph(algo.graph, algo.values, options);
        algo.passStats = cleanup.run(algo.program, pass_options);
        algo.referenceProgram = algo.program;
        // The reference stream is the fp64 ground truth whatever the
        // accelerator datapath runs; instructions are precision-
        // independent so retagging is exact.
        algo.referenceProgram.precision = comp::Precision::Fp64;
        const std::vector<comp::PassStats> opt_stats =
            optimize.run(algo.program, pass_options);
        algo.passStats.insert(algo.passStats.end(),
                              opt_stats.begin(), opt_stats.end());
        // The VANILLA-HLS baseline stays on the historical cleanup
        // pair too: it models a dense flow without ORIANNA's
        // optimizing pipeline.
        algo.denseProgram = comp::optimizeProgram(
            comp::compileDenseGraph(algo.graph, algo.values, options));
    }
    compiled_ = true;
}

std::vector<hw::WorkItem>
Application::frameWork() const
{
    if (!compiled_)
        throw std::logic_error("Application: compile() first");
    std::vector<hw::WorkItem> work;
    work.reserve(algorithms_.size());
    for (const auto &algo : algorithms_)
        work.push_back({&algo->program, &algo->values});
    return work;
}

std::vector<hw::WorkItem>
Application::denseFrameWork() const
{
    if (!compiled_)
        throw std::logic_error("Application: compile() first");
    std::vector<hw::WorkItem> work;
    work.reserve(algorithms_.size());
    for (const auto &algo : algorithms_)
        work.push_back({&algo->denseProgram, &algo->values});
    return work;
}

std::vector<hw::WorkItem>
Application::referenceFrameWork() const
{
    if (!compiled_)
        throw std::logic_error("Application: compile() first");
    std::vector<hw::WorkItem> work;
    work.reserve(algorithms_.size());
    for (const auto &algo : algorithms_)
        work.push_back({&algo->referenceProgram, &algo->values});
    return work;
}

std::vector<fg::Values>
Application::solveSoftware(std::size_t max_iterations) const
{
    std::vector<fg::Values> out;
    out.reserve(algorithms_.size());
    for (const auto &algo : algorithms_) {
        fg::GaussNewtonParams params;
        params.maxIterations = max_iterations;
        params.stepScale = algo->stepScale;
        params.ordering = fg::ordering::minDegree(algo->graph);
        out.push_back(
            fg::optimize(algo->graph, algo->values, params).values);
    }
    return out;
}

std::vector<fg::Values>
Application::solveAccelerated(const hw::AcceleratorConfig &config,
                              std::size_t iterations,
                              hw::SimResult *total) const
{
    if (!compiled_)
        throw std::logic_error("Application: compile() first");
    std::vector<fg::Values> out;
    out.reserve(algorithms_.size());
    for (const auto &algo : algorithms_) {
        runtime::Session session(algo->program, algo->values, config,
                                 algo->stepScale);
        session.iterate(iterations);
        if (total != nullptr)
            total->accumulate(session.totals());
        out.push_back(session.values());
    }
    return out;
}

} // namespace orianna::core
