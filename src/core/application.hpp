#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compiler/codegen.hpp"
#include "compiler/pass_manager.hpp"
#include "hw/accelerator.hpp"

namespace orianna::core {

/**
 * One optimization-based algorithm inside a robotic application:
 * a factor graph, its initial values, its execution rate, and (after
 * Application::compile) its instruction stream.
 */
struct Algorithm
{
    std::string name;
    fg::FactorGraph graph;
    fg::Values values;
    double rateHz = 10.0;
    /**
     * Gauss-Newton step scaling for this algorithm (1.0 = full
     * steps). Planning graphs with hinge factors use damped steps;
     * applied identically on the software and accelerator paths.
     */
    double stepScale = 1.0;
    comp::Program program;      //!< Filled by Application::compile().
    comp::Program denseProgram; //!< VANILLA-HLS variant of the same.
    /**
     * The stream after the historical cleanup pair (dedup, dce) but
     * before the optimizing passes (cse, fuse). The CPU/GPU platform
     * models run this one: the software baselines they represent do
     * not get ORIANNA's accelerator-IR optimization pipeline.
     */
    comp::Program referenceProgram;
    /** What each pipeline pass did when compiling this algorithm. */
    std::vector<comp::PassStats> passStats;
};

/**
 * The top-level ORIANNA programming model (Sec. 3): a robotic
 * application is a set of optimization-based algorithms (localization,
 * planning, control, ...), each expressed as a factor graph. The
 * application compiles every algorithm into an instruction stream and
 * can execute them on the software reference path or on a simulated
 * generated accelerator.
 */
class Application
{
  public:
    explicit Application(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /**
     * Register an algorithm. @p rate_hz is its frame rate in the
     * robot pipeline (used by coarse-grained scheduling analyses).
     */
    void add(std::string algorithm_name, fg::FactorGraph graph,
             fg::Values initial, double rate_hz);

    std::size_t size() const { return algorithms_.size(); }

    Algorithm &algorithm(std::size_t i) { return *algorithms_[i]; }
    const Algorithm &algorithm(std::size_t i) const
    {
        return *algorithms_[i];
    }

    /** Find an algorithm by name; nullptr when absent. */
    const Algorithm *find(const std::string &algorithm_name) const;

    /**
     * Compile every algorithm with the ORIANNA compiler (tagging each
     * with its index for coarse-grained OoO) and with the VANILLA-HLS
     * dense compiler for the baseline comparisons. @p precision
     * selects the accelerator datapath width stamped on the programs
     * (DESIGN.md §12); the referenceProgram stays fp64 regardless —
     * it is the platform-model / fallback ground truth.
     */
    void compile(comp::Precision precision = comp::Precision::Fp64);

    /**
     * One frame of work: every algorithm's compiled program bound to
     * its current values. Valid until the application is modified.
     */
    std::vector<hw::WorkItem> frameWork() const;

    /** Same, but the dense (VANILLA-HLS) programs. */
    std::vector<hw::WorkItem> denseFrameWork() const;

    /**
     * Same, but the pre-optimization reference streams (cleanup
     * passes only) — what the CPU/GPU platform models consume.
     */
    std::vector<hw::WorkItem> referenceFrameWork() const;

    /**
     * Software reference: optimize every algorithm with Gauss-Newton.
     * Returns the optimized values per algorithm (in registration
     * order) and leaves the application state untouched.
     */
    std::vector<fg::Values>
    solveSoftware(std::size_t max_iterations = 15) const;

    /**
     * Accelerator path: iterate every algorithm's compiled program on
     * the simulated accelerator. Returns the optimized values per
     * algorithm; @p total accumulates cycles and energy when provided.
     */
    std::vector<fg::Values>
    solveAccelerated(const hw::AcceleratorConfig &config,
                     std::size_t iterations = 15,
                     hw::SimResult *total = nullptr) const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Algorithm>> algorithms_;
    bool compiled_ = false;
};

} // namespace orianna::core
