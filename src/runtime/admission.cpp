#include "runtime/admission.hpp"

#include <stdexcept>

#include "runtime/metrics.hpp"

namespace orianna::runtime {

AdmissionController::AdmissionController(ServerPool &pool,
                                         AdmissionOptions options)
    : pool_(pool), options_(options)
{
    if (options_.queueCapacity == 0)
        throw std::invalid_argument(
            "AdmissionController: queueCapacity must be >= 1");
    lanes_.reserve(pool.threads());
    for (unsigned w = 0; w < pool.threads(); ++w)
        lanes_.push_back(std::make_unique<Lane>());
}

AdmissionController::~AdmissionController()
{
    // Admitted tasks borrow `this` for completion bookkeeping, so the
    // controller must not die before they do. Swallow a pending task
    // error here — a destructor cannot rethrow it.
    try {
        drain();
    } catch (...) {
    }
}

AdmissionController::Outcome
AdmissionController::submit(unsigned worker,
                            std::function<void()> task,
                            std::uint64_t deadlineUs)
{
    Lane &lane = *lanes_.at(worker);
    Outcome outcome;
    outcome.worker = worker;
    outcome.capacity = options_.queueCapacity;

    // Claim a queue slot optimistically; undo when over the bound.
    // The fetch_add keeps racing submitters honest: at most
    // queueCapacity claims can coexist, whoever exceeds it backs out.
    const std::size_t depth =
        lane.depth.fetch_add(1, std::memory_order_relaxed) + 1;
    if (depth > options_.queueCapacity) {
        lane.depth.fetch_sub(1, std::memory_order_relaxed);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        if (MetricsRegistry::enabled())
            MetricsRegistry::global()
                .counter("admission.rejected")
                .add();
        outcome.status = Status::Rejected;
        outcome.depth = depth - 1;
        return outcome;
    }

    admitted_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsRegistry::enabled()) {
        auto &metrics = MetricsRegistry::global();
        metrics.counter("admission.admitted").add();
        metrics.gauge("admission.inflight").add(1);
        metrics.gauge("admission.queue_depth_peak")
            .max(static_cast<std::int64_t>(depth));
    }

    pool_.submitPinned(
        worker,
        [this, &lane, fn = std::move(task)] {
            // The queue slot frees when the task *starts*: depth
            // counts waiting work, which is what the shedding bound
            // is about.
            lane.depth.fetch_sub(1, std::memory_order_relaxed);
            std::exception_ptr error;
            try {
                fn();
            } catch (...) {
                error = std::current_exception();
            }
            finishOne(std::move(error));
        },
        deadlineUs);

    outcome.status = Status::Admitted;
    outcome.depth = depth;
    return outcome;
}

void
AdmissionController::finishOne(std::exception_ptr error)
{
    if (MetricsRegistry::enabled()) {
        auto &metrics = MetricsRegistry::global();
        metrics.gauge("admission.inflight").add(-1);
        if (error)
            metrics.counter("admission.task_errors").add();
    }
    if (error) {
        std::lock_guard lock(drainMutex_);
        if (!firstError_)
            firstError_ = std::move(error);
    }
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(drainMutex_);
        drained_.notify_all();
    }
}

void
AdmissionController::drain()
{
    std::unique_lock lock(drainMutex_);
    drained_.wait(lock, [this] {
        return inflight_.load(std::memory_order_acquire) == 0;
    });
    if (firstError_) {
        std::exception_ptr error = std::move(firstError_);
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

std::size_t
AdmissionController::depth(unsigned worker) const
{
    return lanes_.at(worker)->depth.load(std::memory_order_relaxed);
}

} // namespace orianna::runtime
