#pragma once

#include <cstdint>
#include <list>

#include "fg/incremental.hpp"
#include "runtime/engine.hpp"

namespace orianna::runtime {

/** Knobs of the accelerated incremental smoother. */
struct AcceleratedSmootherOptions
{
    fg::IncrementalParams params;

    /**
     * Largest suffix (variable count) solved on the accelerator.
     * Oversize re-eliminations — typically relinearize-all frames of
     * a long trajectory — run on the CPU reference path instead of
     * compiling a one-off giant program. 0 accelerates everything.
     */
    std::size_t maxAcceleratedSuffix = 64;

    /**
     * Open sessions kept alive, one per distinct update shape (LRU).
     * A trajectory in steady state cycles through a handful of
     * shapes; evicted shapes re-open against the engine's program
     * cache, so eviction costs a session setup, never a recompile.
     */
    std::size_t sessionCacheCapacity = 16;
};

/** Counters of the accelerated smoother, for tests and telemetry. */
struct AcceleratedSmootherStats
{
    /** Suffix solves served by the optimized update program. */
    std::uint64_t acceleratedFrames = 0;
    /** Relinearize-all solves served by the batch reference rung. */
    std::uint64_t batchFrames = 0;
    /** Oversize suffixes solved on the CPU reference path. */
    std::uint64_t cpuFrames = 0;
    std::uint64_t sessionsOpened = 0; //!< Distinct shapes opened.
    std::uint64_t sessionReuses = 0;  //!< Frames served by a cached
                                      //!< session (no re-open).
    std::size_t lastSuffix = 0;       //!< Variables in the last solve.
    std::uint64_t lastCycles = 0;     //!< Simulated cycles of the last
                                      //!< accelerated frame.
    bool lastDegraded = false; //!< Last frame ran the fallback rung.
};

/**
 * Incremental smoothing on the accelerator (DESIGN.md §13): an
 * fg::IncrementalSmoother whose suffix re-eliminations execute as
 * compiled update programs through the Engine. The smoother owns the
 * bookkeeping and the schedule; this class translates each
 * SuffixSchedule into a shape-only comp::UpdateSpec, compiles it at
 * most once per shape (the Engine's cache, ProgramStore and replica
 * caches all key on comp::updateFingerprint), streams the frame's
 * numbers through LOADV bindings, and unpacks the device results
 * back into the smoother's SuffixSolution.
 *
 * Rungs: relinearize-all frames (schedule.start == 0) run on the
 * cleanup-only fp64 batch reference program; incremental frames run
 * the optimized update program with that reference program as the
 * degradation-ladder fallback whenever the engine can fault (armed
 * injector, frame deadline, fp32 datapath or divergence guard).
 * Suffixes above maxAcceleratedSuffix fall back to the CPU reference
 * path. All three rungs follow the same schedule literally, so every
 * path produces bit-identical conditionals and carries.
 */
class AcceleratedSmoother final : public fg::SuffixSolver
{
  public:
    explicit AcceleratedSmoother(Engine &engine,
                                 AcceleratedSmootherOptions options =
                                     {});
    ~AcceleratedSmoother() override;

    AcceleratedSmoother(const AcceleratedSmoother &) = delete;
    AcceleratedSmoother &
    operator=(const AcceleratedSmoother &) = delete;

    // The fg::IncrementalSmoother surface, with suffix solves routed
    // through the engine.
    void addVariable(fg::Key key, lie::Pose initial);
    void addVariable(fg::Key key, fg::Vector initial);
    void addFactor(fg::FactorPtr factor);
    fg::UpdateStats update();
    fg::Values estimate() const;
    void marginalizeLeading(std::size_t count);
    const fg::FactorGraph &graph() const;

    /** The wrapped smoother, for inspection in tests. */
    const fg::IncrementalSmoother &smoother() const
    {
        return smoother_;
    }

    const AcceleratedSmootherStats &stats() const { return stats_; }

    /** SuffixSolver: executes @p schedule on the accelerator. */
    fg::SuffixSolution
    solve(const fg::SuffixSchedule &schedule,
          const std::vector<const fg::LinearRow *> &rows) override;

  private:
    /** One cached session: a compiled update shape kept warm. */
    struct CachedSession
    {
        std::uint64_t fingerprint = 0;
        bool batch = false; //!< Reference-rung (start == 0) session.
        Session session;
    };

    Session &acquireSession(const comp::UpdateSpec &spec,
                            fg::Values streamed, bool batch);

    Engine &engine_;
    AcceleratedSmootherOptions options_;
    fg::IncrementalSmoother smoother_;
    std::list<CachedSession> sessions_; //!< Front = most recent.
    AcceleratedSmootherStats stats_;
};

} // namespace orianna::runtime
