#include "runtime/program_store.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "compiler/encoding.hpp"

namespace orianna::runtime {

namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kStoreMagic = 0x5453524f; // "ORST".
constexpr std::uint32_t kStoreVersion = 1;
constexpr const char *kEntrySuffix = ".oprog";
constexpr const char *kTempPrefix = ".tmp.";

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t state = 1469598103934665603ull;
    for (std::size_t i = 0; i < size; ++i) {
        state ^= data[i];
        state *= 1099511628211ull;
    }
    return state;
}

/** Little-endian POD append (mirrors the program encoding's writer). */
template <typename T>
void
putPod(std::vector<std::uint8_t> &out, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const auto *raw = reinterpret_cast<const std::uint8_t *>(&value);
    out.insert(out.end(), raw, raw + sizeof(T));
}

/** Bounds-checked POD read; false on truncation. */
template <typename T>
bool
getPod(const std::vector<std::uint8_t> &in, std::size_t &offset,
       T &value)
{
    if (offset + sizeof(T) > in.size())
        return false;
    std::memcpy(&value, in.data() + offset, sizeof(T));
    offset += sizeof(T);
    return true;
}

} // namespace

ProgramStore::ProgramStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    available_ = !ec && fs::is_directory(dir_, ec) && !ec;
    if (!available_)
        return;
    // Probe writability once: an unwritable directory behaves like a
    // permanently cold cache instead of failing every compile later.
    const fs::path probe =
        fs::path(dir_) / (std::string(kTempPrefix) + "probe");
    std::ofstream out(probe, std::ios::binary);
    available_ = static_cast<bool>(out);
    out.close();
    fs::remove(probe, ec);
    // Sweep temp files orphaned by a killed writer. Entries are never
    // dot-prefixed, so this cannot race a concurrent publish's target;
    // a temp file a live writer is still filling may be unlinked, in
    // which case its rename recreates the entry path — publishing
    // still succeeds or fails atomically.
    if (available_) {
        for (const auto &item : fs::directory_iterator(dir_, ec)) {
            const std::string name = item.path().filename().string();
            if (name.rfind(kTempPrefix, 0) == 0)
                fs::remove(item.path(), ec);
        }
    }
}

std::string
ProgramStore::entryName(std::uint64_t fingerprint)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return std::string(buffer) + kEntrySuffix;
}

std::string
ProgramStore::entryPath(std::uint64_t fingerprint) const
{
    return (fs::path(dir_) / entryName(fingerprint)).string();
}

std::shared_ptr<const comp::Program>
ProgramStore::load(std::uint64_t fingerprint,
                   const std::string &passSpec)
{
    const auto miss = [this](bool present) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (present)
            rejected_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    };
    if (!available_)
        return miss(/*present=*/false);

    std::ifstream in(entryPath(fingerprint), std::ios::binary);
    if (!in)
        return miss(/*present=*/false);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return miss(/*present=*/true);

    // Validation ladder: every rung is a clean miss, never an error.
    std::size_t offset = 0;
    std::uint32_t magic = 0;
    std::uint32_t store_version = 0;
    std::uint32_t encoding_version = 0;
    std::uint64_t stored_fingerprint = 0;
    if (!getPod(bytes, offset, magic) || magic != kStoreMagic)
        return miss(/*present=*/true);
    if (!getPod(bytes, offset, store_version) ||
        store_version != kStoreVersion)
        return miss(/*present=*/true);
    if (!getPod(bytes, offset, encoding_version) ||
        encoding_version < comp::minEncodingVersion() ||
        encoding_version > comp::encodingVersion())
        return miss(/*present=*/true);
    if (!getPod(bytes, offset, stored_fingerprint) ||
        stored_fingerprint != fingerprint)
        return miss(/*present=*/true);
    std::uint32_t spec_size = 0;
    if (!getPod(bytes, offset, spec_size) ||
        offset + spec_size > bytes.size())
        return miss(/*present=*/true);
    const std::string stored_spec(bytes.begin() + offset,
                                  bytes.begin() + offset + spec_size);
    offset += spec_size;
    if (stored_spec != passSpec)
        return miss(/*present=*/true);
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    if (!getPod(bytes, offset, payload_size) ||
        !getPod(bytes, offset, checksum))
        return miss(/*present=*/true);
    if (payload_size != bytes.size() - offset)
        return miss(/*present=*/true);
    if (checksum != fnv1a(bytes.data() + offset, payload_size))
        return miss(/*present=*/true);

    try {
        std::vector<std::uint8_t> payload(bytes.begin() + offset,
                                          bytes.end());
        auto program = std::make_shared<comp::Program>(
            comp::decodeProgram(payload));
        hits_.fetch_add(1, std::memory_order_relaxed);
        return program;
    } catch (const std::exception &) {
        // A checksum-clean payload the decoder rejects (e.g. written
        // by a newer encoder within the accepted version range).
        return miss(/*present=*/true);
    }
}

bool
ProgramStore::store(std::uint64_t fingerprint,
                    const std::string &passSpec,
                    const comp::Program &program)
{
    const auto fail = [this] {
        writeFailures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    };
    if (!available_)
        return fail();

    std::vector<std::uint8_t> bytes;
    try {
        const std::vector<std::uint8_t> payload =
            comp::encodeProgram(program);
        putPod(bytes, kStoreMagic);
        putPod(bytes, kStoreVersion);
        putPod(bytes, comp::encodingVersion());
        putPod(bytes, fingerprint);
        putPod(bytes, static_cast<std::uint32_t>(passSpec.size()));
        bytes.insert(bytes.end(), passSpec.begin(), passSpec.end());
        putPod(bytes, static_cast<std::uint64_t>(payload.size()));
        putPod(bytes, fnv1a(payload.data(), payload.size()));
        bytes.insert(bytes.end(), payload.begin(), payload.end());
    } catch (const std::exception &) {
        return fail();
    }

    // Unique temp name per (process, store, publish): concurrent
    // writers — other threads of this engine or other processes on
    // the same directory — never collide before the atomic rename.
    const std::string temp =
        (fs::path(dir_) /
         (std::string(kTempPrefix) +
          std::to_string(static_cast<unsigned long long>(
              ::getpid())) +
          "." +
          std::to_string(tempSeq_.fetch_add(
              1, std::memory_order_relaxed)) +
          "." + entryName(fingerprint)))
            .string();
    {
        std::ofstream out(temp, std::ios::binary);
        if (!out)
            return fail();
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        if (!out) {
            std::error_code ec;
            fs::remove(temp, ec);
            return fail();
        }
    }
    // rename(2) is atomic within a filesystem: readers see the old
    // entry (or none) right up until the complete new one appears.
    if (std::rename(temp.c_str(),
                    entryPath(fingerprint).c_str()) != 0) {
        std::error_code ec;
        fs::remove(temp, ec);
        return fail();
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

ProgramStore::Stats
ProgramStore::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.writeFailures =
        writeFailures_.load(std::memory_order_relaxed);
    return s;
}

} // namespace orianna::runtime
