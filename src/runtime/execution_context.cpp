#include "runtime/execution_context.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

#include "runtime/metrics.hpp"

namespace orianna::runtime {

using comp::Instruction;
using hw::CostModel;
using hw::UnitKind;

/** Adapter exposing engine state to the scheduling policy. */
struct ExecutionContext::IssueView final : IssueContext
{
    const ExecutionContext *ctx;
    std::size_t count;

    IssueView(const ExecutionContext *c, std::size_t n)
        : ctx(c), count(n)
    {
    }

    std::size_t total() const override { return count; }

    bool
    dataReady(std::size_t g) const override
    {
        return ctx->pending_[g] == 0 && ctx->issued_[g] == 0;
    }

    bool
    unitFree(std::size_t g) const override
    {
        return !ctx->freeInstances_[ctx->unitKind_[g]].empty();
    }

    bool
    completed(std::size_t g) const override
    {
        return ctx->done_[g] != 0;
    }
};

ExecutionContext::ExecutionContext(const std::vector<hw::WorkItem> &work)
{
    programs_.reserve(work.size());
    values_.reserve(work.size());
    for (const hw::WorkItem &item : work) {
        programs_.push_back(item.program);
        values_.push_back(item.values);
    }
    buildStatic();
}

ExecutionContext::ExecutionContext(
    std::vector<const comp::Program *> programs)
    : programs_(std::move(programs)), values_(programs_.size(), nullptr)
{
    buildStatic();
}

void
ExecutionContext::bindValues(std::size_t item, const fg::Values *values)
{
    values_.at(item) = values;
}

void
ExecutionContext::armFaults(const hw::FaultInjector *injector,
                            std::uint64_t frame, std::uint64_t attempt)
{
    faults_ = injector != nullptr && !injector->plan().empty()
                  ? injector
                  : nullptr;
    faultFrame_ = frame;
    faultAttempt_ = attempt;
}

void
ExecutionContext::buildStatic()
{
    for (const comp::Program *program : programs_)
        if (program == nullptr)
            throw std::invalid_argument(
                "ExecutionContext: null program");

    base_.resize(programs_.size());
    std::size_t total = 0;
    for (std::size_t w = 0; w < programs_.size(); ++w) {
        base_[w] = total;
        total += programs_[w]->instructions.size();
    }

    orderWork_.resize(total);
    orderIndex_.resize(total);
    depCount_.resize(total);
    unitKind_.resize(total);
    latency_.resize(total);
    dynamicNj_.resize(total);
    words_.resize(total);
    wordEnergyScale_.resize(programs_.size());
    for (std::size_t w = 0; w < programs_.size(); ++w) {
        const comp::Precision precision = programs_[w]->precision;
        wordEnergyScale_[w] = CostModel::wordEnergyScale(precision);
        const auto &instrs = programs_[w]->instructions;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            const std::size_t g = base_[w] + i;
            const Instruction &inst = instrs[i];
            orderWork_[g] = static_cast<std::uint32_t>(w);
            orderIndex_[g] = static_cast<std::uint32_t>(i);
            depCount_[g] = static_cast<std::uint32_t>(inst.deps.size());
            unitKind_[g] =
                static_cast<std::uint8_t>(hw::unitFor(inst.op));
            latency_[g] = CostModel::latency(inst, precision);
            dynamicNj_[g] = CostModel::dynamicEnergyNj(inst, precision);
            words_[g] = hw::instructionWords(inst);
        }
    }

    // Dependents adjacency in CSR form (deps are intra-program).
    dependentsBegin_.assign(total + 1, 0);
    for (std::size_t g = 0; g < total; ++g) {
        const Instruction &inst =
            programs_[orderWork_[g]]->instructions[orderIndex_[g]];
        for (std::uint32_t dep : inst.deps)
            ++dependentsBegin_[base_[orderWork_[g]] + dep + 1];
    }
    for (std::size_t g = 0; g < total; ++g)
        dependentsBegin_[g + 1] += dependentsBegin_[g];
    dependents_.resize(dependentsBegin_[total]);
    {
        std::vector<std::uint32_t> fill(dependentsBegin_.begin(),
                                        dependentsBegin_.end() - 1);
        for (std::size_t g = 0; g < total; ++g) {
            const Instruction &inst =
                programs_[orderWork_[g]]->instructions[orderIndex_[g]];
            for (std::uint32_t dep : inst.deps) {
                const std::size_t producer =
                    base_[orderWork_[g]] + dep;
                dependents_[fill[producer]++] =
                    static_cast<std::uint32_t>(g);
            }
        }
    }

    executors_.reserve(programs_.size());
    for (const comp::Program *program : programs_) {
        if (program->precision == comp::Precision::Fp32)
            executors_.emplace_back(
                std::in_place_type<comp::Executor32>, *program);
        else
            executors_.emplace_back(
                std::in_place_type<comp::Executor>, *program);
    }

    outOfOrder_ = makeScheduler(true);
    inOrder_ = makeScheduler(false);
}

hw::SimResult
ExecutionContext::run(const hw::AcceleratorConfig &config)
{
    return run(config, config.outOfOrder ? *outOfOrder_ : *inOrder_);
}

hw::SimResult
ExecutionContext::run(const hw::AcceleratorConfig &config,
                      Scheduler &scheduler)
{
    for (unsigned count : config.units)
        if (count == 0)
            throw std::invalid_argument(
                "runtime: every unit kind needs at least one instance");
    for (const fg::Values *values : values_)
        if (values == nullptr)
            throw std::logic_error(
                "ExecutionContext: bindValues before run");

    const std::size_t total = orderWork_.size();

    // Reset per-frame scratch in place: every container below keeps
    // its heap allocation from the previous frame.
    pending_.assign(depCount_.begin(), depCount_.end());
    finishCycle_.assign(total, 0);
    issued_.assign(total, 0);
    done_.assign(total, 0);
    assignedInstance_.assign(total, 0);
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
        freeInstances_[k].clear();
        for (unsigned u = 0; u < config.units[k]; ++u)
            freeInstances_[k].push_back(config.units[k] - 1 - u);
    }
    events_.clear();

    hw::SimResult result;
    result.deltas.resize(programs_.size());
    if (config.recordTrace)
        result.trace.reserve(total);

    scheduler.reset(total);
    for (std::size_t g = 0; g < total; ++g)
        if (pending_[g] == 0)
            scheduler.markReady(g);

    IssueView view(this, total);
    std::uint64_t now = 0;
    std::size_t issuedCount = 0;
    const double dram = CostModel::dramEnergyPerWordNj * 1e-9;
    const double buffer = CostModel::bufferEnergyPerWordNj * 1e-9;

    auto issue = [&](std::size_t g) {
        auto &pool = freeInstances_[unitKind_[g]];
        if (issued_[g] != 0 || pending_[g] != 0 || pool.empty())
            throw std::logic_error(
                "runtime: scheduler picked an unissuable instruction");
        assignedInstance_[g] = pool.back();
        pool.pop_back();
        issued_[g] = 1;
        ++issuedCount;

        // Functional execution happens at issue: operands are final
        // because all producers completed.
        const std::uint32_t w = orderWork_[g];
        std::visit(
            [&](auto &executor) {
                executor.step(orderIndex_[g], *values_[w]);
            },
            executors_[w]);

        const Instruction &inst =
            programs_[w]->instructions[orderIndex_[g]];
        std::uint64_t latency = latency_[g];
        if (faults_ != nullptr) {
            const hw::FaultDecision fault = faults_->decide(
                faultFrame_, faultAttempt_, g,
                static_cast<UnitKind>(unitKind_[g]));
            if (fault.any()) {
                latency += fault.extraCycles;
                if (fault.corrupt) {
                    // A STORE writes no slot — a corrupted store
                    // garbles what the host reads back, its source.
                    const std::uint32_t victim =
                        inst.op == comp::IsaOp::STORE &&
                                !inst.srcs.empty()
                            ? inst.srcs[0]
                            : inst.dst;
                    std::visit(
                        [&](auto &executor) {
                            executor.corruptSlot(victim);
                        },
                        executors_[w]);
                }
                for (std::size_t k = 0;
                     k < result.faultsByKind.size(); ++k) {
                    result.faultsByKind[k] += fault.fired[k];
                    result.faultsInjected += fault.fired[k];
                }
            }
        }
        finishCycle_[g] = now + latency;
        events_.emplace_back(finishCycle_[g], g);
        std::push_heap(events_.begin(), events_.end(),
                       std::greater<>{});

        if (config.recordTrace) {
            hw::TraceEvent event;
            event.name = std::string(comp::isaOpName(inst.op)) + " " +
                         std::to_string(inst.rows) + "x" +
                         std::to_string(inst.cols);
            event.unit = static_cast<UnitKind>(unitKind_[g]);
            event.instance = assignedInstance_[g];
            event.startCycle = now;
            event.endCycle = finishCycle_[g];
            event.algorithm = inst.algorithm;
            event.phase = inst.phase;
            result.trace.push_back(std::move(event));
        }

        result.unitBusyCycles[unitKind_[g]] += latency;
        result.phaseBusyCycles[std::min<std::size_t>(inst.phase, 2)] +=
            latency;
        result.dynamicEnergyJ += dynamicNj_[g] * 1e-9;

        // Memory energy. The OoO scoreboard captures every operand in
        // the on-chip buffer. The in-order controller forwards only
        // within a short program window (local register file); any
        // operand produced farther back is re-read from DRAM, and the
        // result of an instruction with such a distant consumer is
        // written back - the "data stored on-chip and reused" effect
        // of Sec. 7.3. Host DMA is off-chip in either mode.
        // fp32 work items move half the bytes per word
        // (wordEnergyScale_); deps are intra-program, so the
        // producer's scale is the same item's.
        result.memoryEnergyJ +=
            wordEnergyScale_[w] * static_cast<double>(words_[g]) *
            (static_cast<UnitKind>(unitKind_[g]) == UnitKind::Dma
                 ? dram
                 : buffer);
        for (std::uint32_t dep : inst.deps) {
            const std::size_t producer = base_[w] + dep;
            const bool spilled =
                !config.outOfOrder &&
                g - producer > CostModel::inOrderForwardWindow;
            result.memoryEnergyJ +=
                wordEnergyScale_[w] *
                static_cast<double>(words_[producer]) *
                (spilled ? 2.0 * dram : buffer);
        }
    };

    auto complete = [&](std::size_t g) {
        done_[g] = 1;
        freeInstances_[unitKind_[g]].push_back(assignedInstance_[g]);
        for (std::uint32_t e = dependentsBegin_[g];
             e < dependentsBegin_[g + 1]; ++e) {
            const std::uint32_t user = dependents_[e];
            if (--pending_[user] == 0)
                scheduler.markReady(user);
        }
        scheduler.markCompleted(g);
    };

    auto popEvent = [&]() {
        std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
        const auto event = events_.back();
        events_.pop_back();
        return event;
    };

    while (issuedCount < total || !events_.empty()) {
        // Issue as much as the policy allows at the current cycle.
        for (std::size_t g = scheduler.pick(view); g != kNoInstruction;
             g = scheduler.pick(view))
            issue(g);

        if (events_.empty()) {
            if (issuedCount < total)
                throw std::logic_error(
                    "runtime: deadlock (circular dependences?)");
            break;
        }

        // Advance to the next completion and drain every completion
        // at that same cycle.
        const auto [when, first] = popEvent();
        now = std::max(now, when);
        complete(first);
        while (!events_.empty() && events_.front().first == when)
            complete(popEvent().second);
    }

    result.cycles = now;
    for (std::size_t g = 0; g < total; ++g) {
        const Instruction &inst =
            programs_[orderWork_[g]]->instructions[orderIndex_[g]];
        auto &finish = result.algorithmFinishCycle[inst.algorithm];
        finish = std::max(finish, finishCycle_[g]);
    }
    result.staticEnergyJ = CostModel::staticPowerW * result.seconds();

    // Flush simulator-side observability off the hot path: the issue
    // loop above records nothing, everything here is reconstructed
    // from the per-instruction scratch arrays once per frame, and
    // only when metrics are enabled (one relaxed load otherwise).
    if (MetricsRegistry::enabled()) {
        auto &metrics = MetricsRegistry::global();
        metrics.counter("hw.frames").add();
        metrics.counter("hw.cycles").add(result.cycles);
        for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
            instanceBusy_[k].assign(config.units[k], 0);
        }
        for (std::size_t g = 0; g < total; ++g)
            instanceBusy_[unitKind_[g]][assignedInstance_[g]] +=
                latency_[g];
        for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
            if (config.units[k] == 0)
                continue;
            const std::string unit =
                hw::unitName(static_cast<UnitKind>(k));
            metrics.counter("hw.busy_cycles." + unit)
                .add(result.unitBusyCycles[k]);
            metrics.gauge("hw.units." + unit).set(config.units[k]);
            for (unsigned u = 0; u < config.units[k]; ++u)
                metrics
                    .counter("hw.busy_cycles." + unit + "." +
                             std::to_string(u))
                    .add(instanceBusy_[k][u]);
        }
    }

    // Read back the deltas (widened to double for fp32 work items).
    for (std::size_t w = 0; w < programs_.size(); ++w)
        for (const comp::DeltaBinding &binding : programs_[w]->deltas)
            result.deltas[w].emplace(
                binding.key,
                std::visit(
                    [&](const auto &executor) {
                        return executor.deltaAt(binding.slot);
                    },
                    executors_[w]));
    return result;
}

} // namespace orianna::runtime
