#include "runtime/trace_sink.hpp"

#include <fstream>
#include <stdexcept>

namespace orianna::runtime {

std::atomic<bool> TraceCollector::enabled_{false};

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

void
TraceCollector::clear()
{
    std::lock_guard lock(mutex_);
    trackLabels_.clear();
    spans_.clear();
    hwFrames_.clear();
}

std::uint64_t
TraceCollector::openTrack(const std::string &label)
{
    std::lock_guard lock(mutex_);
    trackLabels_.push_back(label);
    return trackLabels_.size() - 1;
}

void
TraceCollector::addSpan(std::uint64_t track, std::string name,
                        std::string category, std::uint64_t start_us,
                        std::uint64_t dur_us)
{
    std::lock_guard lock(mutex_);
    spans_.push_back({std::move(name), std::move(category), track,
                      start_us, dur_us});
}

void
TraceCollector::addHwFrame(
    std::uint64_t track, std::uint64_t anchor_us,
    std::vector<hw::TraceEvent> events,
    const std::array<unsigned, hw::kUnitKindCount> &units)
{
    std::lock_guard lock(mutex_);
    hwFrames_.push_back({track, anchor_us, units, std::move(events)});
}

std::vector<RuntimeSpan>
TraceCollector::spans() const
{
    std::lock_guard lock(mutex_);
    return spans_;
}

std::size_t
TraceCollector::hwEventCount() const
{
    std::lock_guard lock(mutex_);
    std::size_t total = 0;
    for (const HwFrame &frame : hwFrames_)
        total += frame.events.size();
    return total;
}

std::size_t
TraceCollector::trackCount() const
{
    std::lock_guard lock(mutex_);
    return trackLabels_.size();
}

namespace {

/** Escape the characters JSON strings cannot carry verbatim. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out += c;
    }
    return out;
}

// Process-id layout of the unified trace: pid 1 is the runtime
// process (one thread track per session); session s's hardware rows
// live in process kHwPidBase + s with one thread per unit instance.
constexpr std::uint64_t kRuntimePid = 1;
constexpr std::uint64_t kHwPidBase = 1000;
constexpr std::uint64_t kHwTidStride = 64; //!< Instances per kind row.

} // namespace

void
TraceCollector::write(const std::string &path,
                      double frequency_hz) const
{
    std::lock_guard lock(mutex_);
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("TraceCollector: cannot open " +
                                 path);

    const double us_per_cycle = 1e6 / frequency_hz;
    out << "[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",\n";
        first = false;
    };

    // Runtime process and one named thread row per session track.
    sep();
    out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
        << kRuntimePid << ", \"args\": {\"name\": \"runtime\"}}";
    for (std::size_t t = 0; t < trackLabels_.size(); ++t) {
        sep();
        out << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
            << kRuntimePid << ", \"tid\": " << t + 1
            << ", \"args\": {\"name\": \"" << escape(trackLabels_[t])
            << "\"}}";
    }

    // Runtime spans: complete events nested by time inclusion.
    for (const RuntimeSpan &span : spans_) {
        sep();
        out << "  {\"name\": \"" << escape(span.name)
            << "\", \"cat\": \"" << escape(span.category)
            << "\", \"ph\": \"X\", \"ts\": " << span.startUs
            << ", \"dur\": " << span.durUs
            << ", \"pid\": " << kRuntimePid
            << ", \"tid\": " << span.track + 1 << "}";
    }

    // Hardware rows: one process per session, one thread per unit
    // instance, events anchored at their frame's wall-clock start.
    std::vector<bool> hwNamed(trackLabels_.size(), false);
    for (const HwFrame &frame : hwFrames_) {
        const std::uint64_t pid = kHwPidBase + frame.track;
        if (frame.track < hwNamed.size() && !hwNamed[frame.track]) {
            hwNamed[frame.track] = true;
            sep();
            out << "  {\"name\": \"process_name\", \"ph\": \"M\", "
                << "\"pid\": " << pid << ", \"args\": {\"name\": \"hw "
                << escape(trackLabels_[frame.track]) << "\"}}";
            for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
                for (unsigned u = 0; u < frame.units[k]; ++u) {
                    sep();
                    out << "  {\"name\": \"thread_name\", \"ph\": "
                        << "\"M\", \"pid\": " << pid << ", \"tid\": "
                        << k * kHwTidStride + u + 1
                        << ", \"args\": {\"name\": \""
                        << hw::unitName(static_cast<hw::UnitKind>(k))
                        << "[" << u << "]\"}}";
                }
            }
        }
        for (const hw::TraceEvent &event : frame.events) {
            sep();
            out << "  {\"name\": \"" << escape(event.name)
                << "\", \"cat\": \"alg"
                << static_cast<int>(event.algorithm)
                << "\", \"ph\": \"X\", \"ts\": "
                << static_cast<double>(frame.anchorUs) +
                       static_cast<double>(event.startCycle) *
                           us_per_cycle
                << ", \"dur\": "
                << static_cast<double>(event.endCycle -
                                       event.startCycle) *
                       us_per_cycle
                << ", \"pid\": " << pid << ", \"tid\": "
                << static_cast<std::uint64_t>(event.unit) *
                           kHwTidStride +
                       event.instance + 1
                << ", \"args\": {\"phase\": "
                << static_cast<int>(event.phase) << "}}";
        }
    }
    out << "\n]\n";
    if (!out)
        throw std::runtime_error("TraceCollector: write failed: " +
                                 path);
}

} // namespace orianna::runtime
