#include "runtime/scheduler.hpp"

#include <algorithm>

namespace orianna::runtime {

void
OutOfOrderScheduler::reset(std::size_t total)
{
    ready_.clear();
    if (ready_.capacity() < total)
        ready_.reserve(total);
}

void
OutOfOrderScheduler::markReady(std::size_t g)
{
    // Keep the ready list age-sorted so dispatch scans oldest-first,
    // like a real age-ordered scoreboard. Frame-start ready marks
    // arrive ascending (O(1) appends); completions insert mid-list.
    if (ready_.empty() || ready_.back() < g) {
        ready_.push_back(g);
        return;
    }
    ready_.insert(std::lower_bound(ready_.begin(), ready_.end(), g), g);
}

std::size_t
OutOfOrderScheduler::pick(const IssueContext &ctx)
{
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (ctx.unitFree(*it)) {
            const std::size_t g = *it;
            ready_.erase(it);
            return g;
        }
    }
    return kNoInstruction;
}

void
InOrderScheduler::reset(std::size_t total)
{
    (void)total;
    next_ = 0;
}

std::size_t
InOrderScheduler::pick(const IssueContext &ctx)
{
    if (next_ >= ctx.total())
        return kNoInstruction;
    if (next_ > 0 && !ctx.completed(next_ - 1))
        return kNoInstruction;
    if (!ctx.dataReady(next_) || !ctx.unitFree(next_))
        return kNoInstruction;
    return next_++;
}

std::unique_ptr<Scheduler>
makeScheduler(bool out_of_order)
{
    if (out_of_order)
        return std::make_unique<OutOfOrderScheduler>();
    return std::make_unique<InOrderScheduler>();
}

} // namespace orianna::runtime
