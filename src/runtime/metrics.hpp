#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace orianna::runtime {

/**
 * Compile-time metrics gate. Building with -DORIANNA_METRICS=OFF
 * (CMake option, defines ORIANNA_METRICS_OFF globally) turns every
 * instrument into a constexpr no-op: recording calls compile to
 * nothing and snapshot queries return zeros, so a metrics-free build
 * carries no atomics on the frame hot path at all.
 */
#ifdef ORIANNA_METRICS_OFF
inline constexpr bool kMetricsCompiled = false;
#else
inline constexpr bool kMetricsCompiled = true;
#endif

/**
 * Sharded relaxed counter: adds go to a per-thread cache-line-padded
 * cell (threads are spread over the cells on first use), reads sum
 * the cells. Serving threads therefore never contend on one cache
 * line even when they all bump the same logical counter every frame.
 */
class Counter
{
  public:
    static constexpr std::size_t kCells = 16;

    void
    add(std::uint64_t n = 1)
    {
        if constexpr (kMetricsCompiled)
            cells_[threadCell()].value.fetch_add(
                n, std::memory_order_relaxed);
        else
            (void)n;
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        if constexpr (kMetricsCompiled)
            for (const Cell &cell : cells_)
                total += cell.value.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset()
    {
        if constexpr (kMetricsCompiled)
            for (Cell &cell : cells_)
                cell.value.store(0, std::memory_order_relaxed);
    }

    /** Cell index of the calling thread (exposed for tests). */
    static std::size_t threadCell();

  private:
    struct Cell
    {
        alignas(64) std::atomic<std::uint64_t> value{0};
    };

    std::array<Cell, kCells> cells_;
};

/** Last-write-wins instantaneous value (queue depths, unit counts). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if constexpr (kMetricsCompiled)
            value_.store(v, std::memory_order_relaxed);
        else
            (void)v;
    }

    void
    add(std::int64_t delta)
    {
        if constexpr (kMetricsCompiled)
            value_.fetch_add(delta, std::memory_order_relaxed);
        else
            (void)delta;
    }

    /** Raise to @p v if it exceeds the current value. */
    void
    max(std::int64_t v)
    {
        if constexpr (kMetricsCompiled) {
            std::int64_t cur = value_.load(std::memory_order_relaxed);
            while (v > cur && !value_.compare_exchange_weak(
                                  cur, v, std::memory_order_relaxed))
                ;
        } else {
            (void)v;
        }
    }

    std::int64_t
    value() const
    {
        if constexpr (kMetricsCompiled)
            return value_.load(std::memory_order_relaxed);
        return 0;
    }

    void reset() { set(0); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket latency histogram over microseconds: bucket k counts
 * samples in [2^k, 2^(k+1)) us (bucket 0 also takes 0), plus an
 * overflow bucket for anything at or beyond 2^kBuckets us (~67 s) —
 * extreme latencies are counted there, never dropped. Count and sum
 * are exact integers so tests can assert them against independently
 * accumulated span durations; percentiles interpolate inside the
 * winning bucket, which is the usual fixed-bucket estimate.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 26;

    void
    observe(std::uint64_t us)
    {
        if constexpr (kMetricsCompiled) {
            buckets_[bucketOf(us)].fetch_add(
                1, std::memory_order_relaxed);
            count_.fetch_add(1, std::memory_order_relaxed);
            sum_.fetch_add(us, std::memory_order_relaxed);
        } else {
            (void)us;
        }
    }

    std::uint64_t
    count() const
    {
        if constexpr (kMetricsCompiled)
            return count_.load(std::memory_order_relaxed);
        return 0;
    }

    std::uint64_t
    sumUs() const
    {
        if constexpr (kMetricsCompiled)
            return sum_.load(std::memory_order_relaxed);
        return 0;
    }

    std::uint64_t
    bucketCount(std::size_t bucket) const
    {
        if constexpr (kMetricsCompiled)
            return buckets_.at(bucket).load(std::memory_order_relaxed);
        return 0;
    }

    std::uint64_t
    overflowCount() const
    {
        return bucketCount(kBuckets);
    }

    /** Estimated p-quantile (p in [0,1]) in microseconds. */
    double percentile(double p) const;

    void
    reset()
    {
        if constexpr (kMetricsCompiled) {
            for (auto &bucket : buckets_)
                bucket.store(0, std::memory_order_relaxed);
            count_.store(0, std::memory_order_relaxed);
            sum_.store(0, std::memory_order_relaxed);
        }
    }

    /** Inclusive lower bound of @p bucket, in microseconds. */
    static std::uint64_t
    bucketLowerUs(std::size_t bucket)
    {
        return bucket == 0 ? 0 : (std::uint64_t{1} << bucket);
    }

    static std::size_t
    bucketOf(std::uint64_t us)
    {
        std::size_t b = 0;
        while (b < kBuckets && us >= (std::uint64_t{1} << (b + 1)))
            ++b;
        return us >= (std::uint64_t{1} << kBuckets) ? kBuckets : b;
    }

  private:
    /** One extra slot: the overflow bucket. */
    std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * Process-wide registry of named instruments. Components register
 * counters/gauges/histograms once (name lookup takes a shared lock on
 * the hit path, an exclusive lock only on first creation) and then
 * record through the returned reference, which stays valid for the
 * registry's lifetime.
 *
 * Recording is additionally gated by a runtime flag: instrument call
 * sites check MetricsRegistry::enabled() (one relaxed load) before
 * touching any instrument, so `setEnabled(false)` reduces the whole
 * observability layer to a branch per call site. The flag defaults to
 * on; benches that want the undisturbed hot path switch it off.
 *
 * Naming convention (see DESIGN.md §6): dotted lowercase paths,
 * "engine.*" for the program cache, "frame.*_us" histograms for
 * per-stage frame timings, "pool.*" for the work-stealing pool, and
 * "hw.*" for simulator-side totals ("hw.busy_cycles.<unit>[.i]").
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry every component records into. */
    static MetricsRegistry &global();

    static bool
    enabled()
    {
        if constexpr (!kMetricsCompiled)
            return false;
        return enabled_.load(std::memory_order_relaxed);
    }

    static void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Zero every registered instrument (names stay registered). */
    void reset();

    /**
     * Serialize every instrument plus derived serving indicators
     * (cache hit rate, per-unit utilization) as a JSON object. Always
     * valid JSON; before any instrument ever recorded it reports the
     * registered names with zero values and null derived rates.
     */
    std::string toJson() const;

    /** Wall-clock microseconds on the shared steady timebase. */
    static std::uint64_t nowUs();

  private:
    mutable std::shared_mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;

    static std::atomic<bool> enabled_;
};

/**
 * Stage timer for the frame hot path: captures a start timestamp only
 * when metrics are enabled, and elapsedUs() reports the integer
 * microseconds since then (0 when disabled). The same value feeds the
 * stage histogram and the trace span, which is what makes the
 * "histogram sum == sum of span durations" invariant exact.
 */
class StageTimer
{
  public:
    StageTimer() : armed_(MetricsRegistry::enabled())
    {
        if (armed_)
            startUs_ = MetricsRegistry::nowUs();
    }

    bool armed() const { return armed_; }

    std::uint64_t startUs() const { return startUs_; }

    std::uint64_t
    elapsedUs() const
    {
        return armed_ ? MetricsRegistry::nowUs() - startUs_ : 0;
    }

  private:
    bool armed_;
    std::uint64_t startUs_ = 0;
};

} // namespace orianna::runtime
