#include "runtime/metrics.hpp"

#include <cstdio>
#include <mutex>

#include "hw/cost_model.hpp"
#include "matrix/simd.hpp"

namespace orianna::runtime {

std::atomic<bool> MetricsRegistry::enabled_{true};

std::size_t
Counter::threadCell()
{
    // Spread threads round-robin over the cells on first use; the
    // assignment is sticky for the thread's lifetime.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t cell =
        next.fetch_add(1, std::memory_order_relaxed) % kCells;
    return cell;
}

double
Histogram::percentile(double p) const
{
    if constexpr (!kMetricsCompiled)
        return 0.0;
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    const double target = p * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t b = 0; b <= kBuckets; ++b) {
        const std::uint64_t in_bucket = bucketCount(b);
        if (in_bucket == 0)
            continue;
        if (cumulative + static_cast<double>(in_bucket) >= target) {
            const double lower =
                static_cast<double>(bucketLowerUs(b));
            if (b == kBuckets)
                return lower; // Overflow: clamp to its lower bound.
            const double upper =
                static_cast<double>(bucketLowerUs(b + 1));
            const double within =
                (target - cumulative) / static_cast<double>(in_bucket);
            return lower + (upper - lower) * within;
        }
        cumulative += static_cast<double>(in_bucket);
    }
    return static_cast<double>(bucketLowerUs(kBuckets));
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::uint64_t
MetricsRegistry::nowUs()
{
    using namespace std::chrono;
    // One process-wide epoch so timestamps from every thread land on
    // the same trace timebase.
    static const steady_clock::time_point epoch = steady_clock::now();
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(steady_clock::now() - epoch)
            .count());
}

namespace {

template <class Map, class Make>
auto &
findOrCreate(std::shared_mutex &mutex, Map &map, std::string_view name,
             Make make)
{
    {
        std::shared_lock lock(mutex);
        auto it = map.find(name);
        if (it != map.end())
            return *it->second;
    }
    std::unique_lock lock(mutex);
    auto it = map.find(name);
    if (it == map.end())
        it = map.emplace(std::string(name), make()).first;
    return *it->second;
}

} // namespace

Counter &
MetricsRegistry::counter(std::string_view name)
{
    return findOrCreate(mutex_, counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    return findOrCreate(mutex_, gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    return findOrCreate(mutex_, histograms_, name,
                        [] { return std::make_unique<Histogram>(); });
}

void
MetricsRegistry::reset()
{
    std::unique_lock lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
    // The per-kernel dispatch counters live in the matrix layer (it
    // cannot depend on this registry) but are exported and reset with
    // it so BENCH sections see a consistent zero point.
    mat::kernels::resetKernelCallCounts();
}

namespace {

void
appendNumber(std::string &out, double v)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    out += buffer;
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::shared_lock lock(mutex_);
    std::string out;
    out += "{\n  \"compiled\": ";
    out += kMetricsCompiled ? "true" : "false";
    out += ",\n  \"enabled\": ";
    out += enabled() ? "true" : "false";

    out += ",\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name +
               "\": " + std::to_string(counter->value());
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"gauges\": {";
    first = true;
    for (const auto &[name, gauge] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name +
               "\": " + std::to_string(gauge->value());
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, histogram] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"count\": " +
               std::to_string(histogram->count()) +
               ", \"sum_us\": " + std::to_string(histogram->sumUs()) +
               ", \"p50_us\": ";
        appendNumber(out, histogram->percentile(0.50));
        out += ", \"p99_us\": ";
        appendNumber(out, histogram->percentile(0.99));
        out += ", \"overflow\": " +
               std::to_string(histogram->overflowCount()) +
               ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t b = 0; b <= Histogram::kBuckets; ++b) {
            const std::uint64_t in_bucket = histogram->bucketCount(b);
            if (in_bucket == 0)
                continue;
            if (!first_bucket)
                out += ", ";
            first_bucket = false;
            out += "[" +
                   std::to_string(Histogram::bucketLowerUs(b)) + ", " +
                   std::to_string(in_bucket) + "]";
        }
        out += "]}";
    }
    out += first ? "}" : "\n  }";

    // SIMD dispatch state, mirrored from the matrix kernel layer
    // (DESIGN.md §10): which tier the process is running and how many
    // calls each kernel dispatched since the last reset.
    out += ",\n  \"kernels\": {\n    \"dispatch_tier\": \"";
    out += mat::kernels::simdTierName(mat::kernels::activeTier());
    out += "\",\n    \"calls\": {";
    first = true;
    for (std::size_t op = 0; op < mat::kernels::kKernelOpCount; ++op) {
        const auto kernel_op = static_cast<mat::kernels::KernelOp>(op);
        out += first ? "\n" : ",\n";
        first = false;
        out += "      \"";
        out += mat::kernels::kernelOpName(kernel_op);
        out += "\": " +
               std::to_string(mat::kernels::kernelCallCount(kernel_op));
    }
    out += first ? "}" : "\n    }";
    out += "\n  }";

    // Derived serving indicators, computed from the raw instruments
    // by naming convention so exporters need no extra wiring.
    out += ",\n  \"derived\": {\n    \"cache_hit_rate\": ";
    {
        std::uint64_t hits = 0;
        std::uint64_t compiles = 0;
        if (auto it = counters_.find("engine.cache_hits");
            it != counters_.end())
            hits = it->second->value();
        // Replica-local serves (EngineGroup) are cache hits of the
        // serving stack even though they never touch the shared
        // engine's counters.
        if (auto it = counters_.find("engine_group.local_hits");
            it != counters_.end())
            hits += it->second->value();
        if (auto it = counters_.find("engine.compiles");
            it != counters_.end())
            compiles = it->second->value();
        if (hits + compiles == 0)
            out += "null";
        else
            appendNumber(out, static_cast<double>(hits) /
                                  static_cast<double>(hits + compiles));
    }
    out += ",\n    \"utilization\": {";
    {
        std::uint64_t frame_cycles = 0;
        if (auto it = counters_.find("hw.cycles");
            it != counters_.end())
            frame_cycles = it->second->value();
        bool first_unit = true;
        for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
            const char *unit =
                hw::unitName(static_cast<hw::UnitKind>(k));
            const auto busy_it = counters_.find(
                std::string("hw.busy_cycles.") + unit);
            const auto units_it =
                gauges_.find(std::string("hw.units.") + unit);
            if (busy_it == counters_.end() ||
                units_it == gauges_.end() || frame_cycles == 0 ||
                units_it->second->value() <= 0)
                continue;
            out += first_unit ? "\n" : ",\n";
            first_unit = false;
            out += "      \"";
            out += unit;
            out += "\": ";
            appendNumber(
                out,
                static_cast<double>(busy_it->second->value()) /
                    (static_cast<double>(frame_cycles) *
                     static_cast<double>(units_it->second->value())));
        }
        out += first_unit ? "}" : "\n    }";
    }
    out += "\n  }\n}\n";
    return out;
}

} // namespace orianna::runtime
