#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/engine.hpp"

namespace orianna::runtime {

/**
 * Sharded serving front-end over the Engine: one *replica* program
 * cache per worker, with fingerprint-affinity routing between them
 * (DESIGN.md §5).
 *
 * A single shared Engine is thread-safe, but every session open still
 * crosses its sharded reader/writer locks, and under many workers the
 * shard mutexes and stat atomics become the one piece of shared state
 * every request touches. The group splits the steady state per
 * worker: each replica holds a plain (unlocked) fingerprint → Program
 * map that only its owning worker thread ever touches, so a hot
 * program is one hash lookup away — no shared mutex, no cache-line
 * ping-pong. The shared Engine underneath stays the compile
 * authority: a replica's first miss on a fingerprint goes through the
 * engine's single-flight table, so N replicas racing on one new graph
 * still trigger exactly one compile, and every replica hands out the
 * *same* std::shared_ptr<const Program> — replica-served results are
 * bit-identical to a shared-Engine session by construction, because
 * they run the identical program bytes.
 *
 * Routing: replicaOf(fingerprint) = fingerprint % replicas(), a pure
 * function — the same graph always lands on the same replica, which
 * is what makes the per-replica caches effective (each program is
 * warm on exactly one worker) and deterministic (tests can predict
 * placement). Callers pair the group with a ServerPool by pinning
 * session work to worker `replicaOf(fp) % pool.threads()` via
 * AdmissionController/submitPinned, so the single-owner contract
 * below holds by construction.
 *
 * Thread safety contract: session() and warm() for replica R must
 * only run on the one thread currently driving R (the pinned worker);
 * calls for *different* replicas may race freely. route(), stats(),
 * healthJson(), and the const queries may be called from any thread
 * at any time — the cross-thread-readable counters are atomic, and
 * replicas are cache-line aligned so two workers' hot state never
 * shares a line.
 *
 * Metrics: `engine_group.routes`, `engine_group.local_hits` counters
 * and the `engine_group.session_open_us` histogram, alongside the
 * shared engine's own `engine.compiles` / `engine.cache_hits` (the
 * latter now counts only replica misses that found the program in the
 * shared cache — "shared hits").
 */
class EngineGroup
{
  public:
    /** @p replicas must be >= 1. */
    EngineGroup(hw::AcceleratorConfig config, unsigned replicas)
        : EngineGroup(std::move(config), EngineOptions(), replicas)
    {
    }

    /** @throws std::invalid_argument on replicas == 0 or bad passes. */
    EngineGroup(hw::AcceleratorConfig config, EngineOptions options,
                unsigned replicas);

    unsigned replicas() const
    {
        return static_cast<unsigned>(replicas_.size());
    }

    /**
     * Replica a fingerprint is affine to: fingerprint % replicas().
     * Pure — same fingerprint, same replica, forever.
     */
    unsigned replicaOf(std::uint64_t fingerprint) const
    {
        return static_cast<unsigned>(
            fingerprint % replicas_.size());
    }

    /**
     * Affinity-route a graph: fingerprint it and return the owning
     * replica. Counts `engine_group.routes`.
     */
    unsigned route(const fg::FactorGraph &graph,
                   const fg::Values &shapes,
                   std::uint8_t algorithm_tag = 0) const;

    /**
     * Open a session on @p replica's local cache. Must be called from
     * the thread driving that replica (see the class contract); the
     * replica index does NOT have to equal replicaOf(fingerprint) —
     * affinity is the caller's routing policy, not an invariant the
     * group enforces — but cache locality only materializes when it
     * does.
     */
    Session session(unsigned replica, const fg::FactorGraph &graph,
                    fg::Values initial, double step_scale = 1.0,
                    std::uint8_t algorithm_tag = 0,
                    const std::string &name = "session");

    /**
     * Pre-populate @p replica's local cache for @p graph without
     * opening a session (compiles through the shared engine on a cold
     * fingerprint). Same threading contract as session().
     */
    void warm(unsigned replica, const fg::FactorGraph &graph,
              const fg::Values &shapes, std::uint8_t algorithm_tag = 0,
              const std::string &name = "session");

    /** Snapshot of the group-wide cache counters. */
    struct Stats
    {
        std::size_t compiles = 0;   //!< Programs actually built.
        std::size_t sharedHits = 0; //!< Replica misses served by the
                                    //!< shared engine cache.
        std::size_t localHits = 0;  //!< Sessions served lock-free from
                                    //!< a replica-local cache.
    };

    Stats stats() const;

    /** Programs cached in @p replica's local map right now. */
    std::size_t cachedPrograms(unsigned replica) const;

    /**
     * The shared compile authority (for health/metrics snapshots and
     * tests; sessions opened directly on it bypass the replicas but
     * share the same program cache).
     */
    Engine &sharedEngine() { return shared_; }
    const Engine &sharedEngine() const { return shared_; }

    /** Degradation/cache health of the shared engine (healthJson). */
    std::string healthJson() const { return shared_.healthJson(); }

  private:
    /**
     * One worker's private view of the program cache. The maps are
     * deliberately unsynchronized — single-owner by the class
     * contract — and the struct is cache-line aligned so two workers'
     * replicas never false-share. size_ mirrors programs.size() and
     * localHits counts lock-free serves; both are atomic because
     * stats() reads them from other threads.
     */
    struct alignas(64) Replica
    {
        std::unordered_map<std::uint64_t,
                           std::shared_ptr<const comp::Program>>
            programs;
        std::unordered_map<std::uint64_t,
                           std::shared_ptr<const comp::Program>>
            fallbacks;
        std::atomic<std::uint64_t> localHits{0};
        std::atomic<std::size_t> size{0};
    };

    /** Local-or-shared program fetch; the session()/warm() core. */
    std::shared_ptr<const comp::Program>
    fetch(Replica &rep, std::uint64_t fingerprint,
          const fg::FactorGraph &graph, const fg::Values &shapes,
          std::uint8_t algorithm_tag, const std::string &name);

    Engine shared_;
    std::vector<std::unique_ptr<Replica>> replicas_;
};

} // namespace orianna::runtime
