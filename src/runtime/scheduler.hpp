#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace orianna::runtime {

/** Returned by Scheduler::pick when nothing can issue this cycle. */
constexpr std::size_t kNoInstruction = static_cast<std::size_t>(-1);

/**
 * Engine-side facts a scheduling policy consults while picking
 * instructions. Instructions are identified by their global index in
 * the flattened (work-item-concatenated) program order; lower index
 * means older in program order.
 */
class IssueContext
{
  public:
    virtual ~IssueContext() = default;

    /** Number of instructions in the frame. */
    virtual std::size_t total() const = 0;

    /** All producers of @p g have completed. */
    virtual bool dataReady(std::size_t g) const = 0;

    /** A free instance of @p g's functional-unit kind exists. */
    virtual bool unitFree(std::size_t g) const = 0;

    /** @p g has finished executing. */
    virtual bool completed(std::size_t g) const = 0;
};

/**
 * Issue policy of the accelerator controller (Sec. 6.3), extracted
 * from the cycle-level simulation loop so it is pluggable and
 * unit-testable in isolation from the numerics and the cost model.
 *
 * Protocol, driven by the execution engine each frame:
 *   1. reset(total) once at frame start;
 *   2. markReady(g) whenever an instruction's last producer completes
 *      (and at frame start for instructions with no producers);
 *   3. pick(ctx) repeatedly at each cycle until it returns
 *      kNoInstruction; every returned instruction is issued
 *      unconditionally, so a policy must only return g with
 *      ctx.dataReady(g) && ctx.unitFree(g);
 *   4. markCompleted(g) when an instruction retires.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual std::string_view name() const = 0;

    virtual void reset(std::size_t total) = 0;

    virtual void markReady(std::size_t g) = 0;

    virtual void markCompleted(std::size_t g) = 0;

    virtual std::size_t pick(const IssueContext &ctx) = 0;
};

/**
 * Age-ordered scoreboard (ORIANNA-OoO): any data-ready instruction may
 * issue to any free unit of the right kind, oldest first — fine-grained
 * OoO inside an algorithm and coarse-grained OoO across work items.
 */
class OutOfOrderScheduler final : public Scheduler
{
  public:
    std::string_view name() const override { return "out-of-order"; }
    void reset(std::size_t total) override;
    void markReady(std::size_t g) override;
    void markCompleted(std::size_t /*g*/) override {}
    std::size_t pick(const IssueContext &ctx) override;

  private:
    /** Data-ready, unissued instructions, kept sorted by age. */
    std::vector<std::size_t> ready_;
};

/**
 * Blocking sequential controller (ORIANNA-IO): the next instruction in
 * program order issues only after the previous one has *completed* —
 * no dispatch window at all.
 */
class InOrderScheduler final : public Scheduler
{
  public:
    std::string_view name() const override { return "in-order"; }
    void reset(std::size_t total) override;
    void markReady(std::size_t /*g*/) override {}
    void markCompleted(std::size_t /*g*/) override {}
    std::size_t pick(const IssueContext &ctx) override;

  private:
    std::size_t next_ = 0;
};

/** Policy for an accelerator config's dispatch mode. */
std::unique_ptr<Scheduler> makeScheduler(bool out_of_order);

} // namespace orianna::runtime
