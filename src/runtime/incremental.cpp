#include "runtime/incremental.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace orianna::runtime {

namespace {

/**
 * Translate a smoother schedule into the shape-only UpdateSpec the
 * compiler fingerprints and compiles. Variables become suffix
 * positions; the per-row block order is the LinearRow's own map
 * (key) order, which is also the order the streamed Values are built
 * in, so spec and stream always agree.
 */
comp::UpdateSpec
specFromSchedule(const fg::SuffixSchedule &schedule,
                 const std::vector<const fg::LinearRow *> &rows)
{
    std::map<fg::Key, std::uint32_t> position;
    for (std::size_t i = 0; i < schedule.variables.size(); ++i)
        position[schedule.variables[i]] =
            static_cast<std::uint32_t>(i);

    comp::UpdateSpec spec;
    spec.dofs.reserve(schedule.dofs.size());
    for (std::size_t d : schedule.dofs)
        spec.dofs.push_back(static_cast<std::uint32_t>(d));

    spec.rows.reserve(rows.size());
    for (const fg::LinearRow *row : rows) {
        comp::UpdateSpec::Row r;
        r.dim = static_cast<std::uint32_t>(row->rhs.size());
        for (const auto &[key, block] : row->blocks) {
            auto it = position.find(key);
            if (it == position.end())
                throw std::logic_error(
                    "AcceleratedSmoother: input row references a "
                    "variable outside the suffix");
            r.blocks.push_back(it->second);
        }
        spec.rows.push_back(std::move(r));
    }

    spec.steps.reserve(schedule.steps.size());
    for (const fg::SuffixSchedule::Step &step : schedule.steps) {
        comp::UpdateSpec::Step s;
        s.rowRefs.reserve(step.rowRefs.size());
        for (std::size_t ref : step.rowRefs)
            s.rowRefs.push_back(static_cast<std::uint32_t>(ref));
        s.columns.reserve(step.columns.size());
        for (fg::Key key : step.columns)
            s.columns.push_back(position.at(key));
        s.kept = static_cast<std::uint32_t>(step.kept);
        spec.steps.push_back(std::move(s));
    }
    return spec;
}

/** The frame's numbers, bound to the layout's synthetic LOADV keys. */
fg::Values
streamInputs(const comp::UpdateLayout &layout,
             const std::vector<const fg::LinearRow *> &rows)
{
    fg::Values streamed;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const comp::UpdateLayout::RowKeys &keys = layout.inputs[r];
        std::size_t bi = 0;
        for (const auto &[key, block] : rows[r]->blocks) {
            const std::vector<comp::Key> &cols =
                keys.blockColumns[bi++];
            for (std::size_t j = 0; j < cols.size(); ++j)
                streamed.insert(cols[j], block.col(j));
        }
        streamed.insert(keys.rhs, rows[r]->rhs);
    }
    return streamed;
}

/**
 * Rebuild the SuffixSolution from the frame's delta bindings: the
 * per-step R-factor columns (conditional rows on top, carry rows
 * below) and the on-device back-substituted suffix deltas.
 */
fg::SuffixSolution
unpackFrame(const std::map<fg::Key, mat::Vector> &out,
            const comp::UpdateLayout &layout,
            const fg::SuffixSchedule &schedule)
{
    std::map<fg::Key, std::size_t> dof;
    for (std::size_t i = 0; i < schedule.variables.size(); ++i)
        dof[schedule.variables[i]] = schedule.dofs[i];

    fg::SuffixSolution sol;
    for (std::size_t si = 0; si < schedule.steps.size(); ++si) {
        const fg::SuffixSchedule::Step &step = schedule.steps[si];
        const comp::UpdateLayout::StepKeys &keys =
            layout.outputs[si];
        const std::size_t dv = keys.dv;

        // Reassemble column-by-column: column c of the R factor is
        // one streamed vector of `height` rows.
        auto column = [&](std::size_t c) -> const mat::Vector & {
            return out.at(keys.columns[c]);
        };

        fg::Conditional cond;
        cond.key = step.columns.front();
        cond.rSelf = mat::Matrix(dv, dv);
        for (std::size_t j = 0; j < dv; ++j) {
            const mat::Vector &col = column(j);
            for (std::size_t i = 0; i < dv; ++i)
                cond.rSelf(i, j) = col[i];
        }

        fg::LinearRow carry;
        std::size_t offset = dv;
        for (std::size_t c = 1; c < step.columns.size(); ++c) {
            const fg::Key parent = step.columns[c];
            const std::size_t w = dof.at(parent);
            mat::Matrix block(dv, w);
            mat::Matrix kept(step.kept, w);
            for (std::size_t j = 0; j < w; ++j) {
                const mat::Vector &col = column(offset + j);
                for (std::size_t i = 0; i < dv; ++i)
                    block(i, j) = col[i];
                for (std::size_t i = 0; i < step.kept; ++i)
                    kept(i, j) = col[dv + i];
            }
            cond.rParents.emplace(parent, std::move(block));
            if (step.kept > 0)
                carry.blocks.emplace(parent, std::move(kept));
            offset += w;
        }

        const mat::Vector &rhs = column(offset);
        cond.rhs = rhs.segment(0, dv);
        sol.conditionals.push_back(std::move(cond));
        if (step.kept > 0) {
            carry.rhs = rhs.segment(dv, step.kept);
            sol.carries.push_back(std::move(carry));
        }
    }

    for (std::size_t p = 0; p < schedule.variables.size(); ++p)
        sol.deltas.emplace(schedule.variables[p],
                           out.at(layout.deltaKeys[p]));
    return sol;
}

} // namespace

AcceleratedSmoother::AcceleratedSmoother(
    Engine &engine, AcceleratedSmootherOptions options)
    : engine_(engine), options_(options), smoother_(options.params)
{
    smoother_.setSuffixSolver(this);
}

AcceleratedSmoother::~AcceleratedSmoother()
{
    smoother_.setSuffixSolver(nullptr);
}

void
AcceleratedSmoother::addVariable(fg::Key key, lie::Pose initial)
{
    smoother_.addVariable(key, std::move(initial));
}

void
AcceleratedSmoother::addVariable(fg::Key key, fg::Vector initial)
{
    smoother_.addVariable(key, std::move(initial));
}

void
AcceleratedSmoother::addFactor(fg::FactorPtr factor)
{
    smoother_.addFactor(std::move(factor));
}

fg::UpdateStats
AcceleratedSmoother::update()
{
    return smoother_.update();
}

fg::Values
AcceleratedSmoother::estimate() const
{
    return smoother_.estimate();
}

void
AcceleratedSmoother::marginalizeLeading(std::size_t count)
{
    smoother_.marginalizeLeading(count);
}

const fg::FactorGraph &
AcceleratedSmoother::graph() const
{
    return smoother_.graph();
}

Session &
AcceleratedSmoother::acquireSession(const comp::UpdateSpec &spec,
                                    fg::Values streamed, bool batch)
{
    const std::uint64_t fingerprint = comp::updateFingerprint(spec);
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (it->fingerprint != fingerprint || it->batch != batch)
            continue;
        sessions_.splice(sessions_.begin(), sessions_, it);
        ++stats_.sessionReuses;
        sessions_.front().session.values() = std::move(streamed);
        return sessions_.front().session;
    }

    // Shape miss: compile (or fetch — the engine's cache and the
    // ProgramStore both key on the same fingerprint) and open a
    // compute-only session. Relinearize-all frames run the batch
    // reference rung directly; incremental frames get it as the
    // degradation-ladder fallback when a frame can actually fault.
    std::shared_ptr<const comp::Program> program;
    std::shared_ptr<const comp::Program> fallback;
    const DegradationPolicy &policy =
        engine_.engineOptions().degradation;
    const bool can_fault =
        engine_.injector() != nullptr ||
        policy.frameTimeoutCycles > 0 || policy.deltaAbsLimit > 0.0 ||
        engine_.precision() == comp::Precision::Fp32;
    if (batch) {
        program = engine_.referenceUpdateProgram(spec, streamed);
        // The batch rung already runs the reference program; its
        // fallback is the same program replayed with injection
        // disarmed, which is exactly what the ladder's last rung
        // does with it.
        if (can_fault)
            fallback = program;
    } else {
        program = engine_.updateProgram(spec, streamed);
        if (can_fault)
            fallback =
                engine_.referenceUpdateProgram(spec, streamed);
    }
    sessions_.push_front(
        {fingerprint, batch,
         engine_.openSession(std::move(program), std::move(streamed),
                             std::move(fallback), 1.0,
                             /*retract=*/false)});
    ++stats_.sessionsOpened;
    while (sessions_.size() > options_.sessionCacheCapacity &&
           options_.sessionCacheCapacity > 0)
        sessions_.pop_back();
    return sessions_.front().session;
}

fg::SuffixSolution
AcceleratedSmoother::solve(
    const fg::SuffixSchedule &schedule,
    const std::vector<const fg::LinearRow *> &rows)
{
    stats_.lastSuffix = schedule.variables.size();
    if (options_.maxAcceleratedSuffix > 0 &&
        schedule.variables.size() > options_.maxAcceleratedSuffix) {
        ++stats_.cpuFrames;
        stats_.lastCycles = 0; // No device frame ran.
        stats_.lastDegraded = false;
        return fg::solveSuffixOnCpu(schedule, rows);
    }

    const comp::UpdateSpec spec = specFromSchedule(schedule, rows);
    const comp::UpdateLayout layout = comp::updateLayout(spec);
    const bool batch = schedule.start == 0;

    Session &session =
        acquireSession(spec, streamInputs(layout, rows), batch);
    const hw::SimResult frame = session.step();
    stats_.lastCycles = frame.cycles;
    stats_.lastDegraded = session.lastFrameDegraded();
    ++(batch ? stats_.batchFrames : stats_.acceleratedFrames);

    return unpackFrame(frame.deltas.at(0), layout, schedule);
}

} // namespace orianna::runtime
