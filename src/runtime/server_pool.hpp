#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace orianna::runtime {

/**
 * Work-stealing thread pool for the serving runtime: drives many
 * Sessions (or any coarse batch of independent tasks) concurrently.
 *
 * Layout follows the ownership rules of the runtime layer (DESIGN.md
 * Sec. 5): each worker owns a private task deque and pops from its
 * back (LIFO, cache-warm); an idle worker steals from the front of a
 * victim's deque (FIFO, oldest task — the classic Chase-Lev
 * discipline, here with per-deque mutexes because tasks are coarse:
 * whole frames, sessions or candidate simulations, microseconds to
 * milliseconds each, so queue operations are not the bottleneck).
 *
 * Worker identity is exposed through currentWorker() so callers can
 * keep per-worker state — warm ExecutionContexts above all — without
 * any locking: a slot indexed by the worker id is only ever touched
 * by that worker's thread, and parallelFor()'s completion acts as the
 * release fence before the caller reads the slots back.
 *
 * parallelFor() is the only submission interface: deterministic index
 * space, caller blocks until every index ran, first exception is
 * rethrown on the caller. Parallelism is always *across* independent
 * tasks (sessions, candidates, missions) — never inside one frame's
 * scoreboard — so schedules and numeric outputs are byte-identical to
 * sequential execution by construction.
 */
class ServerPool
{
  public:
    /**
     * Start @p threads workers; 0 picks
     * std::thread::hardware_concurrency() (at least 1).
     */
    explicit ServerPool(unsigned threads = 0);

    ~ServerPool();

    ServerPool(const ServerPool &) = delete;
    ServerPool &operator=(const ServerPool &) = delete;

    /** Number of worker threads. */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Worker id of the calling thread: 0..threads()-1 on a pool
     * thread, -1 anywhere else (tasks always run on pool threads).
     */
    static int currentWorker();

    /**
     * Run @p body(i) for every i in [0, count) across the workers and
     * wait for all of them. Tasks are distributed round-robin and
     * rebalanced by stealing. The first exception thrown by any task
     * is rethrown here after the batch drains; remaining tasks still
     * run (they are independent by contract).
     *
     * Re-entrant: a task may itself call parallelFor on the same
     * pool. The submitting worker does not block on its nested batch
     * — it helps execute pending tasks until the batch completes, so
     * nesting from every worker at once cannot deadlock the pool.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Tasks executed per worker since construction (the per-thread
     * totals reported by the tools). Index = worker id.
     */
    std::vector<std::uint64_t> tasksExecuted() const;

    /**
     * Tasks a worker took from another worker's deque since
     * construction (the rebalancing traffic). Index = thief's id.
     */
    std::vector<std::uint64_t> stealsPerWorker() const;

    /** Total steals across all workers. */
    std::uint64_t steals() const;

  private:
    struct Batch;

    struct Worker
    {
        mutable std::mutex mutex;
        std::deque<std::function<void()>> queue;
        std::uint64_t executed = 0; //!< Guarded by mutex.
        std::uint64_t stolen = 0;   //!< Guarded by mutex.
    };

    bool popLocal(unsigned self, std::function<void()> &task);
    bool steal(unsigned self, std::function<void()> &task);
    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex wakeMutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace orianna::runtime
