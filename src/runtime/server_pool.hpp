#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace orianna::runtime {

/** Construction-time knobs of a ServerPool. */
struct PoolOptions
{
    /** Worker threads; 0 picks hardware_concurrency (at least 1). */
    unsigned threads = 0;

    /**
     * Earliest-deadline-first task ordering (opt-in). Off, the pool
     * keeps its historical discipline — LIFO local pop, FIFO steal,
     * FIFO pinned lanes — so existing schedules and digests are
     * untouched. On, every dequeue (local, steal, pinned) picks the
     * queued task with the smallest deadline, ties broken by
     * submission order; tasks without a deadline sort last.
     */
    bool edf = false;
};

/**
 * Work-stealing thread pool for the serving runtime: drives many
 * Sessions (or any coarse batch of independent tasks) concurrently.
 *
 * Layout follows the ownership rules of the runtime layer (DESIGN.md
 * Sec. 5): each worker owns a private task deque and pops from its
 * back (LIFO, cache-warm); an idle worker steals from the front of a
 * victim's deque (FIFO, oldest task — the classic Chase-Lev
 * discipline, here with per-deque mutexes because tasks are coarse:
 * whole frames, sessions or candidate simulations, microseconds to
 * milliseconds each, so queue operations are not the bottleneck).
 *
 * Besides the batch deque every worker owns a *pinned* lane
 * (submitPinned): tasks routed to a specific worker — the affinity
 * traffic of the EngineGroup serving path — which are never stolen,
 * so worker-local state (engine replicas, warm contexts) stays
 * single-owner without locks. A worker drains its pinned lane before
 * touching batch work.
 *
 * Worker identity is exposed through currentWorker() so callers can
 * keep per-worker state — warm ExecutionContexts above all — without
 * any locking: a slot indexed by the worker id is only ever touched
 * by that worker's thread, and parallelFor()'s completion acts as the
 * release fence before the caller reads the slots back.
 *
 * parallelFor() is the batch submission interface: deterministic
 * index space, caller blocks until every index ran, first exception
 * is rethrown on the caller. Parallelism is always *across*
 * independent tasks (sessions, candidates, missions) — never inside
 * one frame's scoreboard — so schedules and numeric outputs are
 * byte-identical to sequential execution by construction.
 */
class ServerPool
{
  public:
    /** Deadline value meaning "no deadline" (sorts last under EDF). */
    static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

    /**
     * Start @p threads workers; 0 picks
     * std::thread::hardware_concurrency() (at least 1).
     */
    explicit ServerPool(unsigned threads = 0)
        : ServerPool(PoolOptions{threads, false})
    {
    }

    explicit ServerPool(const PoolOptions &options);

    ~ServerPool();

    ServerPool(const ServerPool &) = delete;
    ServerPool &operator=(const ServerPool &) = delete;

    /** Number of worker threads. */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** True when earliest-deadline-first ordering is on. */
    bool edf() const { return edf_; }

    /**
     * Worker id of the calling thread: 0..threads()-1 on a pool
     * thread, -1 anywhere else (tasks always run on pool threads).
     */
    static int currentWorker();

    /**
     * Run @p body(i) for every i in [0, count) across the workers and
     * wait for all of them. Tasks are distributed round-robin and
     * rebalanced by stealing. The first exception thrown by any task
     * is rethrown here after the batch drains; remaining tasks still
     * run (they are independent by contract).
     *
     * Re-entrant: a task may itself call parallelFor on the same
     * pool. The submitting worker does not block on its nested batch
     * — it helps execute pending tasks until the batch completes, so
     * nesting from every worker at once cannot deadlock the pool.
     * While helping it *prefers tasks of the batch it is waiting on*
     * (its own queue first, then steals) over unrelated work, so the
     * waiter's latency is bounded by its own batch's stragglers, not
     * by whatever other task it happened to pick up.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * parallelFor with a batch deadline (absolute, on the
     * MetricsRegistry::nowUs timebase). Under an EDF pool the batch's
     * tasks are ordered against other queued work by this deadline;
     * on a FIFO pool the deadline is recorded but ignored.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body,
                     std::uint64_t deadlineUs);

    /**
     * Enqueue one task pinned to @p worker's lane. Pinned tasks are
     * never stolen and are drained before the worker's batch deque,
     * which is what gives EngineGroup replicas their single-owner
     * guarantee. Returns immediately; completion tracking (and
     * exception containment — a pinned task has no batch waiter to
     * rethrow into, so it must not throw) is the caller's job:
     * AdmissionController wraps both.
     */
    void submitPinned(unsigned worker, std::function<void()> task,
                      std::uint64_t deadlineUs = kNoDeadline);

    /**
     * Tasks executed per worker since construction (the per-thread
     * totals reported by the tools). Index = worker id.
     */
    std::vector<std::uint64_t> tasksExecuted() const;

    /**
     * Tasks a worker took from another worker's deque since
     * construction (the rebalancing traffic). Index = thief's id.
     */
    std::vector<std::uint64_t> stealsPerWorker() const;

    /** Total steals across all workers. */
    std::uint64_t steals() const;

  private:
    struct Batch;

    /** One queued unit of work plus its scheduling keys. */
    struct Task
    {
        std::function<void()> fn;
        const Batch *batch = nullptr; //!< Owning batch (null: pinned).
        std::uint64_t deadlineUs = kNoDeadline; //!< EDF key.
        std::uint64_t seq = 0; //!< Submission order, EDF tiebreak.
    };

    /**
     * Per-worker state, cache-line aligned: the mutex word and the
     * executed/stolen counters are written on every dequeue, so two
     * workers whose structs shared a line would false-share on the
     * hottest path of the pool. (Workers are also heap-allocated
     * individually, so the alignment is honored by aligned new.)
     */
    struct alignas(64) Worker
    {
        mutable std::mutex mutex;
        std::deque<Task> queue;  //!< Batch tasks: stealable.
        std::deque<Task> pinned; //!< Affinity tasks: never stolen.
        std::uint64_t executed = 0; //!< Guarded by mutex.
        std::uint64_t stolen = 0;   //!< Guarded by mutex.
    };

    bool popPinned(unsigned self, Task &task);
    bool popLocal(unsigned self, Task &task);
    /** Front-most local task belonging to @p batch, if any. */
    bool popLocalBatch(unsigned self, const Batch *batch, Task &task);
    bool steal(unsigned self, Task &task);
    /** Steal a task of @p batch specifically (helps drain it). */
    bool stealBatch(unsigned self, const Batch *batch, Task &task);
    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    bool edf_ = false;
    std::atomic<std::uint64_t> seq_{0};

    std::mutex wakeMutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace orianna::runtime
