#include "runtime/serving_protocol.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace orianna::runtime {

namespace {

std::string
errorResponse(const char *type, const std::string &message)
{
    return std::string("{\"ok\":false,\"error\":\"") + type +
           "\",\"message\":" + json::quote(message) + "}";
}

std::string
hexFingerprint(std::uint64_t fingerprint)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return buffer;
}

/**
 * Tolerant field extraction: absent fields fall back to the default,
 * present fields must have the right shape. @p error is filled with a
 * ready error response on failure.
 */
bool
readUint(const json::Value &request, const char *name,
         std::uint64_t fallback, bool required, std::uint64_t &out,
         std::string *error)
{
    const json::Value *field = request.field(name);
    if (field == nullptr) {
        if (required) {
            *error = errorResponse(
                "missing_field",
                std::string("required field \"") + name +
                    "\" is absent");
            return false;
        }
        out = fallback;
        return true;
    }
    if (!field->isNumber()) {
        *error = errorResponse("bad_type",
                               std::string("field \"") + name +
                                   "\" must be a number");
        return false;
    }
    const double value = field->number;
    if (!(value >= 0) || value != std::floor(value) ||
        value > 1e15) {
        *error = errorResponse("bad_value",
                               std::string("field \"") + name +
                                   "\" must be a non-negative "
                                   "integer");
        return false;
    }
    out = static_cast<std::uint64_t>(value);
    return true;
}

bool
readString(const json::Value &request, const char *name,
           const std::string &fallback, bool required,
           std::string &out, std::string *error)
{
    const json::Value *field = request.field(name);
    if (field == nullptr) {
        if (required) {
            *error = errorResponse(
                "missing_field",
                std::string("required field \"") + name +
                    "\" is absent");
            return false;
        }
        out = fallback;
        return true;
    }
    if (!field->isString()) {
        *error = errorResponse("bad_type",
                               std::string("field \"") + name +
                                   "\" must be a string");
        return false;
    }
    out = field->text;
    return true;
}

void
appendVector(std::string &out, const mat::Vector &v)
{
    out += "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            out += ",";
        out += json::numberToJson(v[i]);
    }
    out += "]";
}

} // namespace

ProtocolServer::ProtocolServer(Engine &engine, ProtocolOptions options)
    : engine_(engine), options_(options)
{
}

void
ProtocolServer::registerApp(std::string name, AppFactory factory)
{
    apps_[std::move(name)] = std::move(factory);
}

std::vector<std::string>
ProtocolServer::appNames() const
{
    std::vector<std::string> names;
    names.reserve(apps_.size());
    for (const auto &[name, factory] : apps_)
        names.push_back(name);
    return names;
}

std::string
ProtocolServer::handle(const std::string &line)
{
    ++requests_;
    const std::string response = dispatch(line);
    if (response.rfind("{\"ok\":false", 0) == 0)
        ++errors_;
    return response;
}

std::string
ProtocolServer::dispatch(const std::string &line)
{
    if (line.size() > options_.maxRequestBytes)
        return errorResponse(
            "oversized",
            "request of " + std::to_string(line.size()) +
                " bytes exceeds the " +
                std::to_string(options_.maxRequestBytes) +
                "-byte limit");

    json::ValuePtr request;
    try {
        request = json::parse(line);
    } catch (const std::exception &error) {
        return errorResponse("parse_error", error.what());
    }
    if (!request->isObject())
        return errorResponse("bad_request",
                             "request must be a JSON object");

    std::string op;
    std::string error;
    if (!readString(*request, "op", "", /*required=*/true, op,
                    &error))
        return error;

    try {
        if (op == "submit")
            return handleSubmit(*request);
        if (op == "step")
            return handleStep(*request);
        if (op == "values")
            return handleValues(*request);
        if (op == "close")
            return handleClose(*request);
        if (op == "apps") {
            std::string out = "{\"ok\":true,\"op\":\"apps\",\"apps\":[";
            bool first = true;
            for (const std::string &name : appNames()) {
                if (!first)
                    out += ",";
                first = false;
                out += json::quote(name);
            }
            out += "]}";
            return out;
        }
        if (op == "metrics")
            return "{\"ok\":true,\"op\":\"metrics\",\"metrics\":" +
                   Engine::metricsJson() +
                   ",\"tenants\":" + tenantsJson() + "}";
        if (op == "health")
            return "{\"ok\":true,\"op\":\"health\",\"health\":" +
                   engine_.healthJson() +
                   ",\"tenants\":" + tenantsJson() + "}";
        return errorResponse("unknown_op",
                             "unsupported op \"" + op + "\"");
    } catch (const std::exception &failure) {
        // A well-formed request whose serving threw — e.g. a frame
        // exhausted the degradation ladder, or a compile failed.
        return errorResponse("internal", failure.what());
    }
}

std::string
ProtocolServer::handleSubmit(const json::Value &request)
{
    std::string app;
    std::string algorithm;
    std::string precision;
    std::string tenant;
    std::uint64_t seed = 1;
    std::string error;
    if (!readString(request, "app", "", /*required=*/true, app,
                    &error) ||
        !readString(request, "algorithm", "", /*required=*/false,
                    algorithm, &error) ||
        !readString(request, "precision", "", /*required=*/false,
                    precision, &error) ||
        !readString(request, "tenant", "", /*required=*/false, tenant,
                    &error) ||
        !readUint(request, "seed", 1, /*required=*/false, seed,
                  &error)) {
        if (!tenant.empty())
            ++tenants_[tenant].rejects;
        return error;
    }

    auto reject = [&](const char *type, const std::string &message) {
        if (!tenant.empty())
            ++tenants_[tenant].rejects;
        return errorResponse(type, message);
    };

    if (!precision.empty()) {
        comp::Precision requested = comp::Precision::Fp64;
        if (!comp::parsePrecision(precision.c_str(), requested))
            return reject("bad_value",
                          "field \"precision\" must be \"fp64\" or "
                          "\"fp32\"");
        if (requested != engine_.precision())
            return reject(
                "precision_mismatch",
                std::string("engine serves ") +
                    comp::precisionName(engine_.precision()) +
                    ", request asserted " +
                    comp::precisionName(requested));
    }

    auto factory = apps_.find(app);
    if (factory == apps_.end())
        return reject("unknown_app",
                      "no application \"" + app + "\"");

    SubmittedGraph submitted;
    try {
        submitted = factory->second(
            algorithm, static_cast<unsigned>(seed));
    } catch (const std::invalid_argument &failure) {
        return reject("unknown_algorithm", failure.what());
    }

    const std::uint64_t fingerprint =
        graphFingerprint(submitted.graph, submitted.initial);
    auto state = std::make_unique<SessionState>(SessionState{
        app, tenant, fg::FactorGraph(),
        engine_.session(submitted.graph, std::move(submitted.initial),
                        submitted.stepScale, /*algorithm_tag=*/0,
                        app)});
    state->graph = std::move(submitted.graph);

    if (!tenant.empty())
        ++tenants_[tenant].sessions;
    const std::uint64_t id = nextSession_++;
    sessions_[id] = std::move(state);
    return "{\"ok\":true,\"op\":\"submit\",\"session\":" +
           std::to_string(id) + ",\"app\":" + json::quote(app) +
           ",\"fingerprint\":\"" + hexFingerprint(fingerprint) +
           "\",\"precision\":\"" +
           comp::precisionName(engine_.precision()) + "\"}";
}

std::string
ProtocolServer::handleStep(const json::Value &request)
{
    std::uint64_t id = 0;
    std::uint64_t frames = 1;
    std::string error;
    if (!readUint(request, "session", 0, /*required=*/true, id,
                  &error) ||
        !readUint(request, "frames", 1, /*required=*/false, frames,
                  &error))
        return error;
    if (frames < 1 || frames > 100000)
        return errorResponse("bad_value",
                             "field \"frames\" must be in [1, 1e5]");
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return errorResponse("unknown_session",
                             "no open session " + std::to_string(id));

    SessionState &state = *it->second;
    std::uint64_t cycles = 0;
    std::uint64_t stepped = 0;
    try {
        for (std::uint64_t frame = 0; frame < frames; ++frame) {
            cycles += state.session.step().cycles;
            ++stepped;
        }
    } catch (...) {
        // Attribute the work done and the rejection before the
        // dispatch-level handler turns the throw into "internal".
        if (!state.tenant.empty()) {
            TenantStats &stats = tenants_[state.tenant];
            stats.steps += stepped;
            ++stats.rejects;
        }
        throw;
    }
    if (!state.tenant.empty())
        tenants_[state.tenant].steps += stepped;
    return "{\"ok\":true,\"op\":\"step\",\"session\":" +
           std::to_string(id) +
           ",\"frames\":" + std::to_string(frames) +
           ",\"total_frames\":" +
           std::to_string(state.session.frames()) +
           ",\"cycles\":" + std::to_string(cycles) +
           ",\"objective\":" +
           json::numberToJson(
               state.graph.totalError(state.session.values())) +
           "}";
}

std::string
ProtocolServer::handleValues(const json::Value &request)
{
    std::uint64_t id = 0;
    std::string error;
    if (!readUint(request, "session", 0, /*required=*/true, id,
                  &error))
        return error;
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return errorResponse("unknown_session",
                             "no open session " + std::to_string(id));

    const fg::Values &values = it->second->session.values();
    std::string out = "{\"ok\":true,\"op\":\"values\",\"session\":" +
                      std::to_string(id) + ",\"values\":{";
    bool first = true;
    for (fg::Key key : values.keys()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + std::to_string(key) + "\":";
        if (values.isPose(key)) {
            out += "{\"phi\":";
            appendVector(out, values.pose(key).phi());
            out += ",\"t\":";
            appendVector(out, values.pose(key).t());
            out += "}";
        } else {
            appendVector(out, values.vector(key));
        }
    }
    out += "}}";
    return out;
}

std::string
ProtocolServer::tenantsJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[tenant, stats] : tenants_) {
        if (!first)
            out += ",";
        first = false;
        out += json::quote(tenant) + ":{\"sessions\":" +
               std::to_string(stats.sessions) +
               ",\"steps\":" + std::to_string(stats.steps) +
               ",\"rejects\":" + std::to_string(stats.rejects) + "}";
    }
    out += "}";
    return out;
}

std::string
ProtocolServer::handleClose(const json::Value &request)
{
    std::uint64_t id = 0;
    std::string error;
    if (!readUint(request, "session", 0, /*required=*/true, id,
                  &error))
        return error;
    if (sessions_.erase(id) == 0)
        return errorResponse("unknown_session",
                             "no open session " + std::to_string(id));
    return "{\"ok\":true,\"op\":\"close\",\"session\":" +
           std::to_string(id) + "}";
}

} // namespace orianna::runtime
