#include "runtime/server_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "runtime/metrics.hpp"

namespace orianna::runtime {

namespace {

/** Worker id of this thread within its owning pool; -1 elsewhere. */
thread_local int tls_worker = -1;

/** The pool owning this worker thread; nullptr on non-pool threads. */
thread_local const void *tls_pool = nullptr;

} // namespace

/** Completion state of one parallelFor call. */
struct ServerPool::Batch
{
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error; //!< First failure, rethrown by caller.

    explicit Batch(std::size_t count) : remaining(count) {}

    void
    finishOne(std::exception_ptr e)
    {
        std::lock_guard lock(mutex);
        if (e && !error)
            error = std::move(e);
        if (--remaining == 0)
            done.notify_all();
    }
};

ServerPool::ServerPool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ServerPool::~ServerPool()
{
    {
        std::lock_guard lock(wakeMutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

int
ServerPool::currentWorker()
{
    return tls_worker;
}

bool
ServerPool::popLocal(unsigned self, std::function<void()> &task)
{
    Worker &worker = *workers_[self];
    std::lock_guard lock(worker.mutex);
    if (worker.queue.empty())
        return false;
    task = std::move(worker.queue.back());
    worker.queue.pop_back();
    ++worker.executed;
    if (MetricsRegistry::enabled())
        MetricsRegistry::global().counter("pool.tasks").add();
    return true;
}

bool
ServerPool::steal(unsigned self, std::function<void()> &task)
{
    const unsigned n = threads();
    for (unsigned step = 1; step < n; ++step) {
        Worker &victim = *workers_[(self + step) % n];
        {
            std::lock_guard lock(victim.mutex);
            if (victim.queue.empty())
                continue;
            // Steal the oldest task: it is the farthest from the
            // victim's working set and the largest remaining chunk of
            // the batch.
            task = std::move(victim.queue.front());
            victim.queue.pop_front();
        }
        // Book the theft under the thief's own mutex — the victim's
        // lock guards the victim's counters, not ours.
        Worker &me = *workers_[self];
        {
            std::lock_guard lock(me.mutex);
            ++me.executed;
            ++me.stolen;
        }
        if (MetricsRegistry::enabled()) {
            auto &metrics = MetricsRegistry::global();
            metrics.counter("pool.tasks").add();
            metrics.counter("pool.steals").add();
        }
        return true;
    }
    return false;
}

void
ServerPool::workerLoop(unsigned self)
{
    tls_worker = static_cast<int>(self);
    tls_pool = this;
    std::function<void()> task;
    while (true) {
        if (popLocal(self, task) || steal(self, task)) {
            task();
            task = nullptr;
            continue;
        }
        std::unique_lock lock(wakeMutex_);
        if (stop_)
            return;
        // Re-check the queues under the wake lock: a submitter
        // publishes tasks before notifying, so missing a task here
        // would mean it was pushed after this check and the notify is
        // still pending.
        bool any = false;
        for (const auto &worker : workers_) {
            std::lock_guard inner(worker->mutex);
            if (!worker->queue.empty()) {
                any = true;
                break;
            }
        }
        if (any)
            continue;
        wake_.wait(lock);
    }
}

void
ServerPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    Batch batch(count);

    // Round-robin initial placement; stealing rebalances skew. Tasks
    // only borrow `body` and `batch`, both alive until the wait below
    // returns.
    const unsigned n = threads();
    const bool metrics_on = MetricsRegistry::enabled();
    std::size_t deepest = 0;
    for (std::size_t i = 0; i < count; ++i) {
        Worker &worker = *workers_[i % n];
        std::lock_guard lock(worker.mutex);
        worker.queue.emplace_back([&body, &batch, i] {
            std::exception_ptr error;
            try {
                body(i);
            } catch (...) {
                error = std::current_exception();
            }
            batch.finishOne(std::move(error));
        });
        deepest = std::max(deepest, worker.queue.size());
    }
    if (metrics_on) {
        auto &metrics = MetricsRegistry::global();
        metrics.counter("pool.batches").add();
        metrics.gauge("pool.queue_depth_peak")
            .max(static_cast<std::int64_t>(deepest));
    }
    // Synchronize with sleeping workers: a worker holds wakeMutex_
    // from its final empty-queue check until it blocks, so acquiring
    // it here guarantees either the worker re-checks after the pushes
    // above or the notification reaches its wait.
    {
        std::lock_guard lock(wakeMutex_);
    }
    wake_.notify_all();

    // A pool worker that submits a batch must not block on it: every
    // other worker may equally be a submitter waiting on its own
    // nested batch, leaving no thread to run any queued task — the
    // classic nested-fork-join deadlock. A waiting worker instead
    // helps drain the queues (its own batch's tasks included, plus
    // anything stealable) until its batch completes.
    if (tls_pool == this && tls_worker >= 0) {
        const unsigned self = static_cast<unsigned>(tls_worker);
        std::function<void()> task;
        for (;;) {
            {
                std::lock_guard done_lock(batch.mutex);
                if (batch.remaining == 0)
                    break;
            }
            if (popLocal(self, task) || steal(self, task)) {
                task();
                task = nullptr;
                continue;
            }
            // Nothing runnable anywhere: the batch's stragglers are
            // in flight on other workers. Doze on the batch condvar —
            // with a timeout, so work queued between the scan above
            // and this wait is picked up promptly.
            std::unique_lock done_lock(batch.mutex);
            batch.done.wait_for(
                done_lock, std::chrono::microseconds(200),
                [&batch] { return batch.remaining == 0; });
        }
    } else {
        std::unique_lock done_lock(batch.mutex);
        batch.done.wait(done_lock,
                        [&batch] { return batch.remaining == 0; });
    }
    if (batch.error)
        std::rethrow_exception(batch.error);
}

std::vector<std::uint64_t>
ServerPool::tasksExecuted() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(workers_.size());
    for (const auto &worker : workers_) {
        std::lock_guard lock(worker->mutex);
        counts.push_back(worker->executed);
    }
    return counts;
}

std::vector<std::uint64_t>
ServerPool::stealsPerWorker() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(workers_.size());
    for (const auto &worker : workers_) {
        std::lock_guard lock(worker->mutex);
        counts.push_back(worker->stolen);
    }
    return counts;
}

std::uint64_t
ServerPool::steals() const
{
    std::uint64_t total = 0;
    for (std::uint64_t s : stealsPerWorker())
        total += s;
    return total;
}

} // namespace orianna::runtime
