#include "runtime/server_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "runtime/metrics.hpp"

namespace orianna::runtime {

namespace {

/** Worker id of this thread within its owning pool; -1 elsewhere. */
thread_local int tls_worker = -1;

/** The pool owning this worker thread; nullptr on non-pool threads. */
thread_local const void *tls_pool = nullptr;

} // namespace

/** Completion state of one parallelFor call. */
struct ServerPool::Batch
{
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error; //!< First failure, rethrown by caller.

    explicit Batch(std::size_t count) : remaining(count) {}

    void
    finishOne(std::exception_ptr e)
    {
        std::lock_guard lock(mutex);
        if (e && !error)
            error = std::move(e);
        if (--remaining == 0)
            done.notify_all();
    }
};

ServerPool::ServerPool(const PoolOptions &options) : edf_(options.edf)
{
    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ServerPool::~ServerPool()
{
    {
        std::lock_guard lock(wakeMutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

int
ServerPool::currentWorker()
{
    return tls_worker;
}

namespace {

/**
 * Index of the EDF pick in @p queue: smallest deadline, ties broken
 * by submission order. Linear scan — tasks are coarse (whole frames
 * or sessions), queues are short, and the per-worker mutex is
 * already held.
 */
template <class Deque>
std::size_t
edfIndex(const Deque &queue)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
        const auto &candidate = queue[i];
        const auto &leader = queue[best];
        if (candidate.deadlineUs < leader.deadlineUs ||
            (candidate.deadlineUs == leader.deadlineUs &&
             candidate.seq < leader.seq))
            best = i;
    }
    return best;
}

} // namespace

bool
ServerPool::popPinned(unsigned self, Task &task)
{
    Worker &worker = *workers_[self];
    std::lock_guard lock(worker.mutex);
    if (worker.pinned.empty())
        return false;
    if (edf_) {
        const std::size_t pick = edfIndex(worker.pinned);
        task = std::move(worker.pinned[pick]);
        worker.pinned.erase(worker.pinned.begin() +
                            static_cast<std::ptrdiff_t>(pick));
    } else {
        task = std::move(worker.pinned.front());
        worker.pinned.pop_front();
    }
    ++worker.executed;
    if (MetricsRegistry::enabled()) {
        auto &metrics = MetricsRegistry::global();
        metrics.counter("pool.tasks").add();
        metrics.counter("pool.pinned_tasks").add();
    }
    return true;
}

bool
ServerPool::popLocal(unsigned self, Task &task)
{
    Worker &worker = *workers_[self];
    std::lock_guard lock(worker.mutex);
    if (worker.queue.empty())
        return false;
    if (edf_) {
        const std::size_t pick = edfIndex(worker.queue);
        task = std::move(worker.queue[pick]);
        worker.queue.erase(worker.queue.begin() +
                           static_cast<std::ptrdiff_t>(pick));
    } else {
        task = std::move(worker.queue.back());
        worker.queue.pop_back();
    }
    ++worker.executed;
    if (MetricsRegistry::enabled())
        MetricsRegistry::global().counter("pool.tasks").add();
    return true;
}

bool
ServerPool::popLocalBatch(unsigned self, const Batch *batch,
                          Task &task)
{
    Worker &worker = *workers_[self];
    std::lock_guard lock(worker.mutex);
    for (std::size_t i = 0; i < worker.queue.size(); ++i) {
        if (worker.queue[i].batch != batch)
            continue;
        task = std::move(worker.queue[i]);
        worker.queue.erase(worker.queue.begin() +
                           static_cast<std::ptrdiff_t>(i));
        ++worker.executed;
        if (MetricsRegistry::enabled())
            MetricsRegistry::global().counter("pool.tasks").add();
        return true;
    }
    return false;
}

bool
ServerPool::steal(unsigned self, Task &task)
{
    const unsigned n = threads();
    for (unsigned step = 1; step < n; ++step) {
        Worker &victim = *workers_[(self + step) % n];
        {
            std::lock_guard lock(victim.mutex);
            if (victim.queue.empty())
                continue;
            if (edf_) {
                const std::size_t pick = edfIndex(victim.queue);
                task = std::move(victim.queue[pick]);
                victim.queue.erase(
                    victim.queue.begin() +
                    static_cast<std::ptrdiff_t>(pick));
            } else {
                // Steal the oldest task: it is the farthest from the
                // victim's working set and the largest remaining
                // chunk of the batch.
                task = std::move(victim.queue.front());
                victim.queue.pop_front();
            }
        }
        // Book the theft under the thief's own mutex — the victim's
        // lock guards the victim's counters, not ours.
        Worker &me = *workers_[self];
        {
            std::lock_guard lock(me.mutex);
            ++me.executed;
            ++me.stolen;
        }
        if (MetricsRegistry::enabled()) {
            auto &metrics = MetricsRegistry::global();
            metrics.counter("pool.tasks").add();
            metrics.counter("pool.steals").add();
        }
        return true;
    }
    return false;
}

bool
ServerPool::stealBatch(unsigned self, const Batch *batch, Task &task)
{
    const unsigned n = threads();
    for (unsigned step = 1; step < n; ++step) {
        Worker &victim = *workers_[(self + step) % n];
        bool took = false;
        {
            std::lock_guard lock(victim.mutex);
            for (std::size_t i = 0; i < victim.queue.size(); ++i) {
                if (victim.queue[i].batch != batch)
                    continue;
                task = std::move(victim.queue[i]);
                victim.queue.erase(
                    victim.queue.begin() +
                    static_cast<std::ptrdiff_t>(i));
                took = true;
                break;
            }
        }
        if (!took)
            continue;
        Worker &me = *workers_[self];
        {
            std::lock_guard lock(me.mutex);
            ++me.executed;
            ++me.stolen;
        }
        if (MetricsRegistry::enabled()) {
            auto &metrics = MetricsRegistry::global();
            metrics.counter("pool.tasks").add();
            metrics.counter("pool.steals").add();
        }
        return true;
    }
    return false;
}

void
ServerPool::workerLoop(unsigned self)
{
    tls_worker = static_cast<int>(self);
    tls_pool = this;
    Task task;
    while (true) {
        // Pinned (affinity) work first: it is latency-sensitive
        // client traffic routed specifically to this worker, and
        // nobody else can run it.
        if (popPinned(self, task) || popLocal(self, task) ||
            steal(self, task)) {
            task.fn();
            task.fn = nullptr;
            continue;
        }
        std::unique_lock lock(wakeMutex_);
        if (stop_)
            return;
        // Re-check the queues under the wake lock: a submitter
        // publishes tasks before notifying, so missing a task here
        // would mean it was pushed after this check and the notify is
        // still pending.
        bool any = false;
        for (const auto &worker : workers_) {
            std::lock_guard inner(worker->mutex);
            if (!worker->queue.empty() || !worker->pinned.empty()) {
                any = true;
                break;
            }
        }
        if (any)
            continue;
        wake_.wait(lock);
    }
}

void
ServerPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    parallelFor(count, body, kNoDeadline);
}

void
ServerPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body,
                        std::uint64_t deadlineUs)
{
    if (count == 0)
        return;
    Batch batch(count);

    // Round-robin initial placement; stealing rebalances skew. Tasks
    // only borrow `body` and `batch`, both alive until the wait below
    // returns.
    const unsigned n = threads();
    const bool metrics_on = MetricsRegistry::enabled();
    std::size_t deepest = 0;
    for (std::size_t i = 0; i < count; ++i) {
        Worker &worker = *workers_[i % n];
        Task task;
        task.fn = [&body, &batch, i] {
            std::exception_ptr error;
            try {
                body(i);
            } catch (...) {
                error = std::current_exception();
            }
            batch.finishOne(std::move(error));
        };
        task.batch = &batch;
        task.deadlineUs = deadlineUs;
        task.seq = seq_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lock(worker.mutex);
        worker.queue.push_back(std::move(task));
        deepest = std::max(deepest, worker.queue.size());
    }
    if (metrics_on) {
        auto &metrics = MetricsRegistry::global();
        metrics.counter("pool.batches").add();
        metrics.gauge("pool.queue_depth_peak")
            .max(static_cast<std::int64_t>(deepest));
    }
    // Synchronize with sleeping workers: a worker holds wakeMutex_
    // from its final empty-queue check until it blocks, so acquiring
    // it here guarantees either the worker re-checks after the pushes
    // above or the notification reaches its wait.
    {
        std::lock_guard lock(wakeMutex_);
    }
    wake_.notify_all();

    // A pool worker that submits a batch must not block on it: every
    // other worker may equally be a submitter waiting on its own
    // nested batch, leaving no thread to run any queued task — the
    // classic nested-fork-join deadlock. A waiting worker instead
    // helps execute pending tasks until its batch completes — and it
    // prefers tasks *of the batch it is waiting on* (its own queue
    // first, then steals) over unrelated work, so its return is
    // delayed only by this batch's stragglers, never by a long
    // unrelated task it happened to pick up. Pinned tasks are left to
    // their owning worker: they are long-running client work and
    // never gate batch completion.
    if (tls_pool == this && tls_worker >= 0) {
        const unsigned self = static_cast<unsigned>(tls_worker);
        Task task;
        for (;;) {
            {
                std::lock_guard done_lock(batch.mutex);
                if (batch.remaining == 0)
                    break;
            }
            if (popLocalBatch(self, &batch, task) ||
                stealBatch(self, &batch, task) ||
                popLocal(self, task) || steal(self, task)) {
                task.fn();
                task.fn = nullptr;
                continue;
            }
            // Nothing runnable anywhere: the batch's stragglers are
            // in flight on other workers. Doze on the batch condvar —
            // with a timeout, so work queued between the scan above
            // and this wait is picked up promptly.
            std::unique_lock done_lock(batch.mutex);
            batch.done.wait_for(
                done_lock, std::chrono::microseconds(200),
                [&batch] { return batch.remaining == 0; });
        }
    } else {
        std::unique_lock done_lock(batch.mutex);
        batch.done.wait(done_lock,
                        [&batch] { return batch.remaining == 0; });
    }
    if (batch.error)
        std::rethrow_exception(batch.error);
}

void
ServerPool::submitPinned(unsigned worker, std::function<void()> task,
                         std::uint64_t deadlineUs)
{
    Task pinned;
    pinned.fn = std::move(task);
    pinned.batch = nullptr;
    pinned.deadlineUs = deadlineUs;
    pinned.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    {
        Worker &lane = *workers_.at(worker);
        std::lock_guard lock(lane.mutex);
        lane.pinned.push_back(std::move(pinned));
    }
    // Same wake protocol as parallelFor: publish, then synchronize
    // with any worker between its final queue check and its wait.
    {
        std::lock_guard lock(wakeMutex_);
    }
    wake_.notify_all();
}

std::vector<std::uint64_t>
ServerPool::tasksExecuted() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(workers_.size());
    for (const auto &worker : workers_) {
        std::lock_guard lock(worker->mutex);
        counts.push_back(worker->executed);
    }
    return counts;
}

std::vector<std::uint64_t>
ServerPool::stealsPerWorker() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(workers_.size());
    for (const auto &worker : workers_) {
        std::lock_guard lock(worker->mutex);
        counts.push_back(worker->stolen);
    }
    return counts;
}

std::uint64_t
ServerPool::steals() const
{
    std::uint64_t total = 0;
    for (std::uint64_t s : stealsPerWorker())
        total += s;
    return total;
}

} // namespace orianna::runtime
