#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/server_pool.hpp"

namespace orianna::runtime {

/** Construction-time knobs of an AdmissionController. */
struct AdmissionOptions
{
    /**
     * Maximum tasks queued (admitted but not yet started) per worker
     * lane. A submission that would exceed it is *rejected* — load is
     * shed at the front door with a typed outcome instead of growing
     * an unbounded queue whose tail latency grows with it. Must be
     * >= 1.
     */
    std::size_t queueCapacity = 64;
};

/**
 * Admission control / backpressure in front of a ServerPool's pinned
 * lanes: the overload valve of the serving stack (DESIGN.md §5).
 *
 * Callers route work to a worker (typically the EngineGroup replica
 * owner chosen by fingerprint affinity) through submit(), which
 * either admits the task into that worker's bounded lane or rejects
 * it outright. Overload therefore degrades into explicit, cheap
 * rejections the client can retry elsewhere — never into an
 * ever-deeper queue — and an admitted task's queueing delay is
 * bounded by queueCapacity predecessors.
 *
 * The controller also contains task exceptions (a pinned task has no
 * batch waiter to rethrow into): the first failure is captured and
 * rethrown from drain(), later ones are counted.
 *
 * Thread safety: submit()/drain()/queries may be called from any
 * thread; per-lane depth is a padded relaxed atomic so concurrent
 * submitters to different lanes never share a cache line.
 *
 * Metrics: `admission.admitted`, `admission.rejected`,
 * `admission.task_errors` counters; `admission.inflight` gauge;
 * `admission.queue_depth_peak` high-water gauge.
 */
class AdmissionController
{
  public:
    enum class Status
    {
        Admitted,
        Rejected
    };

    /** Typed outcome of one submission attempt. */
    struct Outcome
    {
        Status status = Status::Rejected;
        unsigned worker = 0;      //!< Lane the decision was made for.
        std::size_t depth = 0;    //!< Queue depth seen at decision.
        std::size_t capacity = 0; //!< The lane's configured bound.

        bool
        admitted() const
        {
            return status == Status::Admitted;
        }
    };

    explicit AdmissionController(ServerPool &pool,
                                 AdmissionOptions options = {});

    /** Blocks until every admitted task completed (drain()). */
    ~AdmissionController();

    AdmissionController(const AdmissionController &) = delete;
    AdmissionController &operator=(const AdmissionController &) =
        delete;

    /**
     * Admit @p task into @p worker's lane or reject it. On admission
     * the task is pinned to that worker (never stolen) with the given
     * EDF deadline; on rejection the task is dropped untouched — it
     * never runs, so whatever state it would have mutated stays
     * exactly as it was.
     */
    Outcome submit(unsigned worker, std::function<void()> task,
                   std::uint64_t deadlineUs = ServerPool::kNoDeadline);

    /**
     * Block until every admitted task has completed, then rethrow the
     * first task exception captured since the last drain (if any).
     */
    void drain();

    /** Queued-but-unstarted tasks in @p worker's lane right now. */
    std::size_t depth(unsigned worker) const;

    std::uint64_t admitted() const
    {
        return admitted_.load(std::memory_order_relaxed);
    }

    std::uint64_t rejected() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return options_.queueCapacity; }

  private:
    /**
     * Per-lane admission state, cache-line aligned so submitters and
     * completing workers of different lanes never false-share.
     */
    struct alignas(64) Lane
    {
        std::atomic<std::size_t> depth{0};
    };

    void finishOne(std::exception_ptr error);

    ServerPool &pool_;
    AdmissionOptions options_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::size_t> inflight_{0};
    mutable std::mutex drainMutex_;
    std::condition_variable drained_;
    std::exception_ptr firstError_; //!< Guarded by drainMutex_.
};

} // namespace orianna::runtime
