#include "runtime/engine.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "compiler/optimize.hpp"
#include "fg/factor.hpp"
#include "fg/ordering.hpp"
#include "matrix/simd.hpp"
#include "runtime/metrics.hpp"
#include "runtime/program_store.hpp"
#include "runtime/trace_sink.hpp"

namespace orianna::runtime {

namespace {

/** FNV-1a accumulator over heterogeneous fields. */
struct Fnv
{
    std::uint64_t state = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (int byte = 0; byte < 8; ++byte) {
            state ^= (v >> (8 * byte)) & 0xffu;
            state *= 1099511628211ull;
        }
    }

    void
    mix(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    void
    mix(const std::string &s)
    {
        mix(static_cast<std::uint64_t>(s.size()));
        for (char c : s) {
            state ^= static_cast<unsigned char>(c);
            state *= 1099511628211ull;
        }
    }

    void
    mix(const mat::Vector &v)
    {
        mix(static_cast<std::uint64_t>(v.size()));
        for (std::size_t i = 0; i < v.size(); ++i)
            mix(v[i]);
    }

    void
    mix(const mat::Matrix &m)
    {
        mix(static_cast<std::uint64_t>(m.rows()));
        mix(static_cast<std::uint64_t>(m.cols()));
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                mix(m(i, j));
    }
};

/** EngineOptions::precision, or ORIANNA_PRECISION, or Fp64. */
comp::Precision
resolvePrecision(const std::optional<comp::Precision> &requested)
{
    if (requested.has_value())
        return *requested;
    const char *env = std::getenv("ORIANNA_PRECISION");
    comp::Precision parsed = comp::Precision::Fp64;
    if (env != nullptr && comp::parsePrecision(env, parsed))
        return parsed;
    return comp::Precision::Fp64;
}

} // namespace

std::uint64_t
graphFingerprint(const fg::FactorGraph &graph, const fg::Values &shapes,
                 std::uint8_t algorithm_tag)
{
    Fnv h;
    h.mix(static_cast<std::uint64_t>(algorithm_tag));

    // Variable shapes: tangent dimension and kind per referenced key.
    const std::vector<fg::Key> keys = graph.allKeys();
    h.mix(static_cast<std::uint64_t>(keys.size()));
    for (fg::Key key : keys) {
        h.mix(static_cast<std::uint64_t>(key));
        h.mix(static_cast<std::uint64_t>(shapes.isPose(key) ? 1 : 0));
        h.mix(static_cast<std::uint64_t>(shapes.dof(key)));
    }

    // Factors: type, connectivity, noise, robust kernel, and the full
    // MO-DFG including constant payloads (they become LOADC contents).
    h.mix(static_cast<std::uint64_t>(graph.size()));
    for (const auto &factor : graph) {
        h.mix(factor->name());
        h.mix(static_cast<std::uint64_t>(factor->keys().size()));
        for (fg::Key key : factor->keys())
            h.mix(static_cast<std::uint64_t>(key));
        h.mix(factor->sigmas());
        h.mix(factor->robustK());
        const fg::Dfg &dfg = factor->dfg();
        h.mix(static_cast<std::uint64_t>(dfg.nodes().size()));
        for (const fg::DfgNode &node : dfg.nodes()) {
            h.mix(static_cast<std::uint64_t>(node.op));
            h.mix(static_cast<std::uint64_t>(node.inputs.size()));
            for (fg::NodeId input : node.inputs)
                h.mix(static_cast<std::uint64_t>(input));
            h.mix(static_cast<std::uint64_t>(node.key));
            h.mix(node.constMat);
            h.mix(node.constVec);
            h.mix(node.hingeEps);
            h.mix(node.camera.fx);
            h.mix(node.camera.fy);
            h.mix(node.camera.cx);
            h.mix(node.camera.cy);
            // SDF maps hash by obstacle content, not object identity:
            // the fingerprint doubles as the persistent-store key, so
            // it must be stable across processes.
            if (node.sdf != nullptr) {
                const auto obstacles = node.sdf->obstacles();
                h.mix(static_cast<std::uint64_t>(obstacles.size()));
                for (const auto &[center, radius] : obstacles) {
                    h.mix(center);
                    h.mix(radius);
                }
            } else {
                h.mix(static_cast<std::uint64_t>(0));
            }
        }
        h.mix(static_cast<std::uint64_t>(dfg.outputs().size()));
        for (fg::NodeId output : dfg.outputs())
            h.mix(static_cast<std::uint64_t>(output));
    }
    return h.state;
}

Engine::Engine(hw::AcceleratorConfig config, EngineOptions options)
    : config_(std::move(config)), options_(std::move(options)),
      precision_(resolvePrecision(options_.precision)),
      pipeline_(comp::PassManager::parse(options_.passes)),
      referencePipeline_(comp::PassManager::parse("dedup,dce")),
      health_(std::make_shared<EngineHealth>())
{
    if (!options_.faultPlan.empty())
        injector_ = std::make_shared<const hw::FaultInjector>(
            options_.faultPlan);
    if (!options_.storeDir.empty())
        store_ = std::make_unique<ProgramStore>(options_.storeDir);
}

Engine::~Engine() = default;

std::shared_ptr<const comp::Program>
Engine::program(const fg::FactorGraph &graph, const fg::Values &shapes,
                std::uint8_t algorithm_tag, const std::string &name)
{
    std::uint64_t key = graphFingerprint(graph, shapes, algorithm_tag);
    if (precision_ == comp::Precision::Fp32)
        key ^= kFp32Salt;
    const comp::Precision precision = precision_;
    return compileCached(
        key, name, pipeline_, &shapes, [&, precision]() {
            comp::CompileOptions options;
            options.algorithmTag = algorithm_tag;
            options.name = name;
            options.precision = precision;
            options.ordering = fg::ordering::minDegree(graph);
            return comp::compileGraph(graph, shapes, options);
        });
}

std::shared_ptr<const comp::Program>
Engine::referenceProgram(const fg::FactorGraph &graph,
                         const fg::Values &shapes,
                         std::uint8_t algorithm_tag,
                         const std::string &name)
{
    // Always fp64, whatever the engine's serving precision: this is
    // the ground-truth rung of the degradation ladder, and keeping it
    // unsalted lets fp32 and fp64 engines share one reference
    // artifact per graph.
    const std::uint64_t key =
        graphFingerprint(graph, shapes, algorithm_tag) ^ kReferenceSalt;
    return compileCached(
        key, name + " (reference)", referencePipeline_, &shapes, [&]() {
            comp::CompileOptions options;
            options.algorithmTag = algorithm_tag;
            options.name = name + " (reference)";
            options.precision = comp::Precision::Fp64;
            options.ordering = fg::ordering::minDegree(graph);
            return comp::compileGraph(graph, shapes, options);
        });
}

std::shared_ptr<const comp::Program>
Engine::updateProgram(const comp::UpdateSpec &spec,
                      const fg::Values &probe, const std::string &name)
{
    std::uint64_t key = comp::updateFingerprint(spec);
    if (precision_ == comp::Precision::Fp32)
        key ^= kFp32Salt;
    const comp::Precision precision = precision_;
    return compileCached(
        key, name, pipeline_, &probe, [&, precision]() {
            comp::UpdateSpec compiled = spec;
            compiled.precision = precision;
            compiled.name = name;
            return comp::compileUpdate(compiled);
        });
}

std::shared_ptr<const comp::Program>
Engine::referenceUpdateProgram(const comp::UpdateSpec &spec,
                               const fg::Values &probe,
                               const std::string &name)
{
    // Like referenceProgram(): always fp64, cleanup-only pipeline,
    // shared (unsalted by precision) across engines.
    const std::uint64_t key =
        comp::updateFingerprint(spec) ^ kReferenceSalt;
    return compileCached(
        key, name + " (reference)", referencePipeline_, &probe, [&]() {
            comp::UpdateSpec compiled = spec;
            compiled.precision = comp::Precision::Fp64;
            compiled.name = name + " (reference)";
            return comp::compileUpdate(compiled);
        });
}

std::shared_ptr<const comp::Program>
Engine::compileCached(std::uint64_t key, const std::string &name,
                      comp::PassManager &pipeline,
                      const fg::Values *probe,
                      const std::function<comp::Program()> &build)
{
    Shard &s = shard(key);

    // Fast path: shared lock, no contention between readers.
    {
        std::shared_lock lock(s.mutex);
        auto it = s.cache.find(key);
        if (it != s.cache.end()) {
            auto future = it->second;
            lock.unlock();
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            if (MetricsRegistry::enabled()) {
                auto &metrics = MetricsRegistry::global();
                metrics.counter("engine.cache_hits").add();
                // Blocks only while the single-flight compile is
                // still running; count and time that wait.
                if (future.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
                    metrics.counter("engine.singleflight_waits")
                        .add();
                    const StageTimer wait;
                    auto program = future.get();
                    metrics.histogram("engine.singleflight_wait_us")
                        .observe(wait.elapsedUs());
                    return program;
                }
                return future.get();
            }
            // Blocks only while the single-flight compile is still
            // running; afterwards this is a plain read.
            return future.get();
        }
    }

    // Miss: take the write lock just long enough to claim the key.
    std::promise<std::shared_ptr<const comp::Program>> promise;
    std::shared_future<std::shared_ptr<const comp::Program>> future;
    {
        std::unique_lock lock(s.mutex);
        auto it = s.cache.find(key);
        if (it != s.cache.end()) {
            // Lost the race: someone claimed it between our locks.
            auto other = it->second;
            lock.unlock();
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            if (MetricsRegistry::enabled())
                MetricsRegistry::global()
                    .counter("engine.cache_hits")
                    .add();
            return other.get();
        }
        future = promise.get_future().share();
        s.cache.emplace(key, future);
    }

    // Persistent tier, consulted inside the claimed single-flight
    // slot: a stored artifact satisfies every waiter without a
    // compile. Any invalid/stale/corrupt entry is a clean miss and
    // falls through to the normal compile below.
    if (store_ != nullptr) {
        std::shared_ptr<const comp::Program> stored;
        try {
            stored = store_->load(key, pipeline.spec());
        } catch (...) {
            stored = nullptr; // The store never fails a request.
        }
        const bool metrics_on = MetricsRegistry::enabled();
        if (stored != nullptr) {
            storeHits_.fetch_add(1, std::memory_order_relaxed);
            if (metrics_on)
                MetricsRegistry::global()
                    .counter("engine.store_hits")
                    .add();
            promise.set_value(stored);
            return stored;
        }
        storeMisses_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_on)
            MetricsRegistry::global()
                .counter("engine.store_misses")
                .add();
    }

    // Compile outside any lock: other fingerprints proceed in
    // parallel, requesters of this one wait on the future.
    try {
        const StageTimer compile_timer;
        auto compiled = std::make_shared<comp::Program>(build());

        // The codegen output runs through the engine's pass pipeline;
        // the caller's probe values double as the verification input
        // (they bind every variable the program loads).
        comp::PassManager::RunOptions pass_options;
        pass_options.probe = probe;
        pass_options.verify = options_.verifyPasses ||
                              comp::PassManager::verifyFromEnv();
        const std::vector<comp::PassStats> pass_stats =
            pipeline.run(*compiled, pass_options);

        compiles_.fetch_add(1, std::memory_order_relaxed);
        if (compile_timer.armed()) {
            auto &metrics = MetricsRegistry::global();
            metrics.counter("engine.compiles").add();
            metrics.histogram("engine.compile_us")
                .observe(compile_timer.elapsedUs());
            for (const comp::PassStats &stat : pass_stats) {
                metrics.counter("pass." + stat.pass + ".runs").add();
                metrics.counter("pass." + stat.pass + ".rewrites")
                    .add(stat.rewrites);
                metrics.counter("pass." + stat.pass + ".removed")
                    .add(stat.before > stat.after
                             ? stat.before - stat.after
                             : 0);
                metrics.histogram("pass." + stat.pass + ".us")
                    .observe(stat.wallUs);
            }
        }
        {
            std::lock_guard lock(logMutex_);
            log_.push_back({name, key, compiled->instructions.size(),
                            pass_stats});
        }
        // Publish the fresh compile to the persistent tier so a
        // restarted process (or a sibling on the same directory)
        // skips this compile. Failures are counted, never raised.
        if (store_ != nullptr &&
            store_->store(key, pipeline.spec(), *compiled)) {
            storeWrites_.fetch_add(1, std::memory_order_relaxed);
            if (MetricsRegistry::enabled())
                MetricsRegistry::global()
                    .counter("engine.store_writes")
                    .add();
        }
        promise.set_value(compiled);
        return compiled;
    } catch (...) {
        // Propagate to every waiter, then drop the entry so a later
        // request retries instead of caching the failure forever.
        promise.set_exception(std::current_exception());
        std::unique_lock lock(s.mutex);
        s.cache.erase(key);
        throw;
    }
}

std::size_t
Engine::cachedPrograms() const
{
    std::size_t total = 0;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        total += s.cache.size();
    }
    return total;
}

std::vector<Engine::CompileRecord>
Engine::compileLog() const
{
    std::lock_guard lock(logMutex_);
    return log_;
}

std::string
Engine::CompileRecord::passSummary() const
{
    // One diagnostics line per compile, e.g.
    //   "mobile_robot: 412 instr [dedup -37, dce -12, cse -58,
    //    fuse -41] 183us verified"
    std::string out = name + ": " + std::to_string(instructions) +
                      " instr [";
    std::uint64_t total_us = 0;
    bool all_verified = !passes.empty();
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const comp::PassStats &stat = passes[i];
        if (i > 0)
            out += ", ";
        const std::size_t removed =
            stat.before > stat.after ? stat.before - stat.after : 0;
        out += stat.pass + " -" + std::to_string(removed);
        total_us += stat.wallUs;
        all_verified = all_verified && stat.verified;
    }
    out += "] " + std::to_string(total_us) + "us";
    if (all_verified)
        out += " verified";
    return out;
}

std::string
Engine::metricsJson()
{
    return MetricsRegistry::global().toJson();
}

std::string
Engine::healthJson() const
{
    const auto load = [](const std::atomic<std::uint64_t> &c) {
        return c.load(std::memory_order_relaxed);
    };
    const std::uint64_t retries = load(health_->retries);
    const std::uint64_t fallbacks = load(health_->fallbacks);
    const std::uint64_t failures = load(health_->failures);
    const char *status = failures > 0 ? "failing"
                         : (retries > 0 || fallbacks > 0)
                             ? "degraded"
                             : "ok";
    const Stats cache = stats();

    std::string out = "{\"status\":\"";
    out += status;
    out += "\",\"simd\":\"";
    out += mat::kernels::simdTierName(mat::kernels::activeTier());
    out += "\",\"precision\":\"";
    out += comp::precisionName(precision_);
    out += "\",\"fault_injection\":";
    out += injector_ != nullptr ? "true" : "false";
    out += ",\"store\":";
    out += store_ != nullptr && store_->available() ? "true" : "false";
    const auto field = [&out](const char *key, std::uint64_t value) {
        out += ",\"";
        out += key;
        out += "\":";
        out += std::to_string(value);
    };
    field("frames_ok", load(health_->framesOk));
    field("faults_detected", load(health_->faultsDetected));
    field("frame_timeouts", load(health_->frameTimeouts));
    field("retries", retries);
    field("fallbacks", fallbacks);
    field("failures", failures);
    field("compiles", cache.compiles);
    field("cache_hits", cache.cacheHits);
    field("store_hits", cache.storeHits);
    field("store_misses", cache.storeMisses);
    field("store_writes", cache.storeWrites);
    out += "}";
    return out;
}

Session
Engine::session(const fg::FactorGraph &graph, fg::Values initial,
                double step_scale, std::uint8_t algorithm_tag,
                const std::string &name)
{
    const StageTimer open;
    auto compiled = program(graph, initial, algorithm_tag, name);

    SessionOptions opts;
    opts.stepScale = step_scale;
    opts.policy = options_.degradation;
    opts.injector = injector_;
    opts.health = health_;
    // The fallback rung costs a second compile per graph, so it is
    // provisioned only when a fault source exists: injection, a frame
    // deadline, or a reduced-precision datapath (whose mantissa can
    // break a frame all by itself — non-finite or diverging deltas).
    // Fault-free fp64 engines behave exactly as before.
    const bool can_fault = injector_ != nullptr ||
                           options_.degradation.frameTimeoutCycles > 0 ||
                           precision_ == comp::Precision::Fp32;
    if (options_.degradation.fallback && can_fault)
        opts.fallback =
            referenceProgram(graph, initial, algorithm_tag, name);

    if (MetricsRegistry::enabled())
        MetricsRegistry::global()
            .counter(std::string("engine.sessions.") +
                     comp::precisionName(precision_))
            .add();
    if (open.armed())
        MetricsRegistry::global()
            .histogram("engine.session_open_us")
            .observe(open.elapsedUs());
    return Session(std::move(compiled), std::move(initial), config_,
                   std::move(opts));
}

Session
Engine::openSession(std::shared_ptr<const comp::Program> program,
                    fg::Values initial,
                    std::shared_ptr<const comp::Program> fallback,
                    double step_scale, bool retract)
{
    SessionOptions opts;
    opts.stepScale = step_scale;
    opts.policy = options_.degradation;
    opts.injector = injector_;
    opts.health = health_;
    opts.retract = retract;
    if (options_.degradation.fallback)
        opts.fallback = std::move(fallback);
    if (MetricsRegistry::enabled())
        MetricsRegistry::global()
            .counter(std::string("engine.sessions.") +
                     comp::precisionName(precision_))
            .add();
    return Session(std::move(program), std::move(initial), config_,
                   std::move(opts));
}

/** See engine.hpp: reports the enclosing session span on death. */
struct SessionTraceHandle
{
    std::uint64_t track;
    std::uint64_t openedUs;

    ~SessionTraceHandle()
    {
        if (TraceCollector::enabled())
            TraceCollector::global().addSpan(
                track, "session", "session", openedUs,
                MetricsRegistry::nowUs() - openedUs);
    }
};

namespace {

std::shared_ptr<SessionTraceHandle>
openSessionTrack()
{
    if (!TraceCollector::enabled())
        return nullptr;
    static std::atomic<std::uint64_t> next{0};
    const std::uint64_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    auto handle = std::make_shared<SessionTraceHandle>();
    handle->track = TraceCollector::global().openTrack(
        "session " + std::to_string(id));
    handle->openedUs = MetricsRegistry::nowUs();
    return handle;
}

} // namespace

namespace {

SessionOptions
scaleOnly(double step_scale)
{
    SessionOptions opts;
    opts.stepScale = step_scale;
    return opts;
}

} // namespace

Session::Session(std::shared_ptr<const comp::Program> program,
                 fg::Values initial, hw::AcceleratorConfig config,
                 double step_scale)
    : Session(std::move(program), std::move(initial),
              std::move(config), scaleOnly(step_scale))
{
}

Session::Session(std::shared_ptr<const comp::Program> program,
                 fg::Values initial, hw::AcceleratorConfig config,
                 SessionOptions options)
    : program_(std::move(program)), values_(std::move(initial)),
      config_(std::move(config)), stepScale_(options.stepScale),
      retract_(options.retract), policy_(options.policy),
      fallbackProgram_(std::move(options.fallback)),
      injector_(std::move(options.injector)),
      health_(std::move(options.health)),
      context_(std::vector<const comp::Program *>{program_.get()}),
      trace_(openSessionTrack())
{
    if (fallbackProgram_ != nullptr)
        fallbackContext_ = std::make_unique<ExecutionContext>(
            std::vector<const comp::Program *>{
                fallbackProgram_.get()});
}

std::int64_t
Session::traceTrack() const
{
    return trace_ ? static_cast<std::int64_t>(trace_->track) : -1;
}

Session::Session(const comp::Program &program, fg::Values initial,
                 hw::AcceleratorConfig config, double step_scale)
    : Session(std::shared_ptr<const comp::Program>(
                  std::shared_ptr<const void>(), &program),
              std::move(initial), std::move(config), step_scale)
{
}

const char *
Session::diagnose(const hw::SimResult &frame,
                  bool check_deadline) const
{
    if (check_deadline && policy_.frameTimeoutCycles > 0 &&
        frame.cycles > policy_.frameTimeoutCycles)
        return "frame deadline exceeded";
    // The divergence limit shares the deadline's primary-rung gating:
    // the fp64 fallback is trusted ground truth and only the
    // non-finite scan applies to it.
    const bool check_divergence =
        check_deadline && policy_.deltaAbsLimit > 0.0;
    for (const auto &deltas : frame.deltas)
        for (const auto &[key, delta] : deltas)
            for (std::size_t i = 0; i < delta.size(); ++i) {
                if (!std::isfinite(delta[i]))
                    return "non-finite delta";
                if (check_divergence &&
                    std::abs(delta[i]) > policy_.deltaAbsLimit)
                    return "diverging delta";
            }
    return nullptr;
}

hw::SimResult
Session::step()
{
    const bool tracing =
        trace_ != nullptr && TraceCollector::enabled();
    const bool metrics_on = MetricsRegistry::enabled();
    const bool timed = tracing || metrics_on;

    // Rebind each step so the session stays movable: values_ lives
    // inside this object and its address follows the session.
    context_.bindValues(0, &values_);

    const std::uint64_t frame_start =
        timed ? MetricsRegistry::nowUs() : 0;
    // The unified trace needs the per-unit schedule even when the
    // caller did not ask for one; restore the flag afterwards so the
    // returned SimResult honors the caller's configuration.
    const bool caller_trace = config_.recordTrace;
    config_.recordTrace = caller_trace || tracing;

    // Acquire one healthy frame, climbing the degradation ladder:
    // run (re-rolling injected fault outcomes per retry), then the
    // reference fallback with injection disarmed. Nothing below this
    // block retracts, so a poisoned update never reaches values_.
    hw::SimResult frame;
    const char *symptom = nullptr;
    bool healthy = false;
    bool degraded = false;
    // Injection counters of discarded attempts, folded into the
    // delivered frame so totals() reflect all injection activity.
    std::uint64_t faults_discarded = 0;
    std::array<std::uint64_t, 3> faults_discarded_kind{};
    const auto note_fault = [&](const char *why,
                                std::uint64_t attempt_start) {
        ++faultsDetected_;
        const bool timeout =
            std::strcmp(why, "frame deadline exceeded") == 0;
        if (timeout)
            ++timeouts_;
        if (health_ != nullptr) {
            health_->faultsDetected.fetch_add(
                1, std::memory_order_relaxed);
            if (timeout)
                health_->frameTimeouts.fetch_add(
                    1, std::memory_order_relaxed);
        }
        if (metrics_on) {
            auto &metrics = MetricsRegistry::global();
            metrics.counter("engine.faults_detected").add();
            if (timeout)
                metrics.counter("engine.frame_timeouts").add();
        }
        if (tracing)
            TraceCollector::global().addSpan(
                trace_->track, std::string("fault: ") + why, "fault",
                attempt_start,
                MetricsRegistry::nowUs() - attempt_start);
    };
    // Without an injector a rerun is bit-identical, so retrying is
    // pointless; go straight to the fallback rung.
    const std::size_t attempts =
        1 + (injector_ != nullptr ? policy_.maxRetries : 0);
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            ++retries_;
            if (health_ != nullptr)
                health_->retries.fetch_add(1,
                                           std::memory_order_relaxed);
            if (metrics_on)
                MetricsRegistry::global()
                    .counter("engine.retries")
                    .add();
            if (policy_.backoffBaseUs > 0)
                std::this_thread::sleep_for(std::chrono::microseconds(
                    policy_.backoffBaseUs * attempt));
        }
        context_.armFaults(injector_.get(), frames_, attempt);
        const std::uint64_t attempt_start =
            timed ? MetricsRegistry::nowUs() : frame_start;
        frame = context_.run(config_);
        symptom = diagnose(frame, /*check_deadline=*/true);
        if (symptom == nullptr) {
            healthy = true;
            break;
        }
        faults_discarded += frame.faultsInjected;
        for (std::size_t k = 0; k < faults_discarded_kind.size(); ++k)
            faults_discarded_kind[k] += frame.faultsByKind[k];
        note_fault(symptom, attempt_start);
    }
    if (!healthy && fallbackContext_ != nullptr) {
        ++fallbacks_;
        if (health_ != nullptr)
            health_->fallbacks.fetch_add(1,
                                         std::memory_order_relaxed);
        if (metrics_on)
            MetricsRegistry::global()
                .counter("engine.fallbacks")
                .add();
        fallbackContext_->bindValues(0, &values_);
        const std::uint64_t fb_start =
            timed ? MetricsRegistry::nowUs() : frame_start;
        frame = fallbackContext_->run(config_);
        // The deadline is waived here: degraded mode trades latency
        // for a correct update.
        symptom = diagnose(frame, /*check_deadline=*/false);
        healthy = symptom == nullptr;
        degraded = healthy;
        if (tracing)
            TraceCollector::global().addSpan(
                trace_->track, "fallback", "fault", fb_start,
                MetricsRegistry::nowUs() - fb_start);
    }
    config_.recordTrace = caller_trace;
    if (!healthy) {
        if (health_ != nullptr)
            health_->failures.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error(
            "Session: frame " + std::to_string(frames_) +
            " failed (" + (symptom != nullptr ? symptom : "fault") +
            ") after " + std::to_string(attempts - 1) + " retries" +
            (fallbackContext_ != nullptr ? " and reference fallback"
                                         : ""));
    }
    lastFrameDegraded_ = degraded;
    frame.faultsInjected += faults_discarded;
    for (std::size_t k = 0; k < faults_discarded_kind.size(); ++k)
        frame.faultsByKind[k] += faults_discarded_kind[k];
    if (health_ != nullptr)
        health_->framesOk.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t simulate_end =
        timed ? MetricsRegistry::nowUs() : 0;

    if (retract_) {
        if (stepScale_ != 1.0)
            for (auto &[key, delta] : frame.deltas[0])
                delta = delta * stepScale_;
        values_.retractAll(frame.deltas[0]);
    }
    const std::uint64_t update_end =
        timed ? MetricsRegistry::nowUs() : 0;

    // One set of integer durations feeds both the histograms and the
    // trace spans, so span sums and histogram sums agree exactly.
    const std::uint64_t simulate_us = simulate_end - frame_start;
    const std::uint64_t update_us = update_end - simulate_end;
    const std::uint64_t frame_us = update_end - frame_start;
    if (metrics_on) {
        auto &metrics = MetricsRegistry::global();
        metrics.counter("frame.count").add();
        metrics.histogram("frame.total_us").observe(frame_us);
        metrics.histogram("frame.simulate_us").observe(simulate_us);
        metrics.histogram("frame.update_us").observe(update_us);
    }
    if (tracing) {
        auto &collector = TraceCollector::global();
        const std::uint64_t track = trace_->track;
        collector.addSpan(track,
                          "frame " + std::to_string(frames_),
                          "frame", frame_start, frame_us);
        collector.addSpan(track, "simulate", "stage", frame_start,
                          simulate_us);
        collector.addSpan(track, "update", "stage", simulate_end,
                          update_us);
        collector.addHwFrame(track, frame_start, frame.trace,
                             config_.units);
        if (!caller_trace)
            frame.trace.clear();
    }
    totals_.accumulate(frame);
    ++frames_;
    return frame;
}

const fg::Values &
Session::iterate(std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        step();
    return values_;
}

} // namespace orianna::runtime
