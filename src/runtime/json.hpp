#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace orianna::runtime::json {

/**
 * Minimal JSON value model and recursive-descent parser for the
 * serving protocol (DESIGN.md §11). Parsing is strict JSON; *schema*
 * handling on top of it is deliberately tolerant in the openrave
 * jsonreader style — requests are read field by field, unknown fields
 * are ignored, and a missing or mistyped field is reported as a typed
 * protocol error instead of an exception tearing down the server.
 *
 * parse() throws std::runtime_error with a byte offset on malformed
 * input; the protocol layer catches it and answers with a
 * "parse_error" response.
 */
class Value;
using ValuePtr = std::shared_ptr<Value>;

class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<ValuePtr> items;
    std::map<std::string, ValuePtr> fields;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Field lookup on an object; nullptr when absent or not object. */
    const Value *field(const std::string &key) const;
};

/** @throws std::runtime_error on malformed input. */
ValuePtr parse(const std::string &input);

/** String escaped for embedding in a JSON document (with quotes). */
std::string quote(const std::string &text);

/**
 * A double as a JSON number that round-trips bit-exactly through a
 * conforming reader (17 significant digits); non-finite values —
 * which JSON cannot represent — serialize as null.
 */
std::string numberToJson(double value);

} // namespace orianna::runtime::json
