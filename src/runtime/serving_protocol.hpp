#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/json.hpp"

namespace orianna::runtime {

/** Knobs of the line-delimited JSON request protocol. */
struct ProtocolOptions
{
    /**
     * Requests longer than this are answered with an "oversized"
     * error without being parsed — the one line of defense a
     * line-delimited protocol needs against unbounded payloads.
     */
    std::size_t maxRequestBytes = 1u << 20;
};

/** One graph submission built by an application factory. */
struct SubmittedGraph
{
    fg::FactorGraph graph;
    fg::Values initial;
    double stepScale = 1.0;
};

/**
 * The JSON serving front-end (DESIGN.md §11): one request line in,
 * one response line out, over an Engine that owns the compiled
 * program caches (in-memory and, when configured, the persistent
 * ProgramStore tier).
 *
 * Request schema (schema-tolerant in the openrave jsonreader idiom:
 * unknown fields are ignored everywhere, malformed requests yield a
 * typed error response and never tear the server down):
 *
 *   {"op":"submit","app":A[,"algorithm":G][,"seed":N]
 *                 [,"precision":P][,"tenant":T]}
 *       -> {"ok":true,"op":"submit","session":S,"app":A,
 *           "fingerprint":"<16 hex>","precision":"fp64"|"fp32"}
 *          A "precision" field is an assertion, not a request: the
 *          engine's datapath is fixed at construction, so a value
 *          that parses but differs from the engine's mode is
 *          answered with "precision_mismatch" instead of silently
 *          serving the other width. A "tenant" tag attributes the
 *          session (and every later step on it) to that tenant in
 *          the per-tenant counters below.
 *   {"op":"step","session":S[,"frames":N]}
 *       -> {"ok":true,"op":"step","session":S,"frames":N,
 *           "total_frames":T,"cycles":C,"objective":E}
 *   {"op":"values","session":S}
 *       -> {"ok":true,...,"values":{key:{"phi":[..],"t":[..]}|[..]}}
 *          (17-significant-digit doubles: byte-identical responses
 *          mean bit-identical state)
 *   {"op":"close","session":S}   -> {"ok":true,...}
 *   {"op":"apps"}                -> {"ok":true,"apps":[names]}
 *   {"op":"metrics"}             -> {"ok":true,"metrics":{registry},
 *                                    "tenants":{T:{counters}}}
 *   {"op":"health"}              -> {"ok":true,"health":{engine},
 *                                    "tenants":{T:{counters}}}
 *
 * Per-tenant counters (tagged submissions only, sorted by tenant):
 * {"sessions":N,"steps":N,"rejects":N} — sessions opened, frames
 * stepped, and requests answered {"ok":false,...} on that tenant's
 * behalf.
 *
 * Every error response is {"ok":false,"error":T,"message":M} with T
 * one of: "oversized", "parse_error", "bad_request" (top level not an
 * object), "missing_field", "bad_type", "bad_value", "unknown_op",
 * "unknown_app", "unknown_algorithm", "unknown_session",
 * "precision_mismatch", "internal" (the request was well-formed but
 * serving it threw — e.g. a frame exhausted the degradation ladder).
 *
 * Not thread-safe: one ProtocolServer serves one request stream, the
 * engine underneath is the shared, thread-safe tier.
 */
class ProtocolServer
{
  public:
    /**
     * Builds the graph of @p algorithm ("" = the app's default) for
     * one seed. @throws std::invalid_argument on an algorithm name
     * the app does not have (reported as "unknown_algorithm").
     */
    using AppFactory = std::function<SubmittedGraph(
        const std::string &algorithm, unsigned seed)>;

    explicit ProtocolServer(Engine &engine,
                            ProtocolOptions options = {});

    /** Register @p factory under @p name (later wins on a dup). */
    void registerApp(std::string name, AppFactory factory);

    std::vector<std::string> appNames() const;

    /** Serve one request line; returns the response line (no '\n'). */
    std::string handle(const std::string &line);

    std::uint64_t requests() const { return requests_; }

    /** Requests answered with {"ok":false,...}. */
    std::uint64_t errors() const { return errors_; }

    std::size_t openSessions() const { return sessions_.size(); }

  private:
    struct SessionState
    {
        std::string app;
        std::string tenant;    //!< "" when the submit was untagged.
        fg::FactorGraph graph; //!< Kept for objective reporting.
        Session session;
    };

    /** Serving attribution for one tenant tag. */
    struct TenantStats
    {
        std::uint64_t sessions = 0; //!< Submits accepted.
        std::uint64_t steps = 0;    //!< Frames stepped.
        std::uint64_t rejects = 0;  //!< Requests answered ok:false.
    };

    std::string dispatch(const std::string &line);
    std::string handleSubmit(const json::Value &request);
    std::string handleStep(const json::Value &request);
    std::string handleValues(const json::Value &request);
    std::string handleClose(const json::Value &request);
    std::string tenantsJson() const;

    Engine &engine_;
    ProtocolOptions options_;
    std::map<std::string, AppFactory> apps_;
    std::map<std::uint64_t, std::unique_ptr<SessionState>> sessions_;
    std::map<std::string, TenantStats> tenants_;
    std::uint64_t nextSession_ = 1;
    std::uint64_t requests_ = 0;
    std::uint64_t errors_ = 0;
};

} // namespace orianna::runtime
