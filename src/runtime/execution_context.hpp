#pragma once

#include <array>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "hw/accelerator.hpp"
#include "hw/fault_injection.hpp"
#include "runtime/scheduler.hpp"

namespace orianna::runtime {

/**
 * Reusable per-frame execution state for a fixed set of compiled
 * programs (the work items of one accelerator frame).
 *
 * The context is the long-lived half of the engine/session split: it
 * is built once per program set and then drives any number of frames
 * without re-deriving schedule inputs. Construction precomputes
 * everything that depends only on the programs —
 *
 *   - the flattened global instruction order and per-work-item bases,
 *   - the dependence graph (static producer counts plus a CSR
 *     dependents adjacency),
 *   - per-instruction unit kinds, latencies, compute energies and
 *     word counts from the cost model,
 *   - one comp::Executor per work item with its slot arena sized to
 *     the program's value table;
 *
 * while run() only touches preallocated scratch vectors (pending
 * counts, issue/done flags, unit pools, the completion-event heap), so
 * the steady-state frame loop performs no per-frame rebuild of any of
 * this. Executor slot arenas are kept warm between frames: compiled
 * programs write every slot before reading it (producers precede
 * consumers in the dependence graph), so stale values from the
 * previous frame are never observed.
 *
 * Values are rebound per frame (bindValues), which is what lets one
 * context serve successive Gauss-Newton iterations and successive
 * frames of a client stream.
 */
class ExecutionContext
{
  public:
    /** Bind programs and initial values from accelerator work items. */
    explicit ExecutionContext(const std::vector<hw::WorkItem> &work);

    /** Bind programs only; call bindValues before run(). */
    explicit ExecutionContext(
        std::vector<const comp::Program *> programs);

    std::size_t workCount() const { return programs_.size(); }

    /** Total instructions across all bound programs. */
    std::size_t instructionCount() const { return orderWork_.size(); }

    /** Rebind the values of work item @p item for subsequent frames. */
    void bindValues(std::size_t item, const fg::Values *values);

    /**
     * Arm the hardware fault-injection harness for subsequent run()
     * calls: @p injector (borrowed, may be nullptr to disarm) decides
     * per issued instruction, keyed by @p frame / @p attempt so a
     * retry of the same frame rolls fresh fault outcomes. The injected
     * faults land in SimResult::faultsInjected / faultsByKind.
     */
    void armFaults(const hw::FaultInjector *injector,
                   std::uint64_t frame, std::uint64_t attempt);

    /**
     * Run one frame (every program executed once) under @p config with
     * the context's built-in scheduler for the config's dispatch mode.
     */
    hw::SimResult run(const hw::AcceleratorConfig &config);

    /** Same, with a caller-supplied scheduling policy. */
    hw::SimResult run(const hw::AcceleratorConfig &config,
                      Scheduler &scheduler);

  private:
    struct IssueView;

    void buildStatic();

    // --- Immutable after construction (per program set) -------------
    std::vector<const comp::Program *> programs_;
    std::vector<const fg::Values *> values_;
    /** Global index -> (work item, local instruction index). */
    std::vector<std::uint32_t> orderWork_;
    std::vector<std::uint32_t> orderIndex_;
    std::vector<std::size_t> base_; //!< First global index per item.
    std::vector<std::uint32_t> depCount_; //!< Static producer counts.
    /** CSR dependents adjacency over global indices. */
    std::vector<std::uint32_t> dependentsBegin_;
    std::vector<std::uint32_t> dependents_;
    std::vector<std::uint8_t> unitKind_;
    std::vector<std::uint64_t> latency_;
    std::vector<double> dynamicNj_;
    std::vector<std::uint64_t> words_;
    /** Per-work-item memory-energy scale (0.5 for fp32 programs). */
    std::vector<double> wordEnergyScale_;
    /**
     * One interpreter per work item, instantiated at the precision the
     * program is tagged with (DESIGN.md §12): fp64 programs run the
     * double interpreter, fp32 programs the float one.
     */
    std::vector<std::variant<comp::Executor, comp::Executor32>>
        executors_;
    std::unique_ptr<Scheduler> outOfOrder_;
    std::unique_ptr<Scheduler> inOrder_;

    // --- Fault-injection arming (rebound per frame attempt) ----------
    const hw::FaultInjector *faults_ = nullptr;
    std::uint64_t faultFrame_ = 0;
    std::uint64_t faultAttempt_ = 0;

    // --- Per-frame scratch, reset in place by run() ------------------
    std::vector<std::uint32_t> pending_;
    std::vector<std::uint64_t> finishCycle_;
    std::vector<std::uint8_t> issued_;
    std::vector<std::uint8_t> done_;
    std::vector<unsigned> assignedInstance_;
    std::array<std::vector<unsigned>, hw::kUnitKindCount> freeInstances_;
    /** Per-(kind, instance) busy cycles, flushed to metrics. */
    std::array<std::vector<std::uint64_t>, hw::kUnitKindCount>
        instanceBusy_;
    /** Min-heap of (finish cycle, global index) completions. */
    std::vector<std::pair<std::uint64_t, std::size_t>> events_;
};

} // namespace orianna::runtime
