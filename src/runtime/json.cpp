#include "runtime/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace orianna::runtime::json {

const Value *
Value::field(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : it->second.get();
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &input) : input_(input) {}

    ValuePtr
    parse()
    {
        ValuePtr value = parseValue();
        skipSpace();
        if (pos_ != input_.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error(what + " at byte " +
                                 std::to_string(pos_));
    }

    void
    skipSpace()
    {
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= input_.size())
            fail("unexpected end of input");
        return input_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const std::string &word)
    {
        skipSpace();
        if (input_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    ValuePtr
    parseValue()
    {
        const char c = peek();
        auto value = std::make_shared<Value>();
        if (c == '{') {
            value->kind = Value::Kind::Object;
            ++pos_;
            if (peek() == '}') {
                ++pos_;
                return value;
            }
            while (true) {
                const std::string key = parseString();
                expect(':');
                // Duplicate keys: last one wins, like every tolerant
                // reader — a request is never rejected for it.
                value->fields[key] = parseValue();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return value;
            }
        }
        if (c == '[') {
            value->kind = Value::Kind::Array;
            ++pos_;
            if (peek() == ']') {
                ++pos_;
                return value;
            }
            while (true) {
                value->items.push_back(parseValue());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return value;
            }
        }
        if (c == '"') {
            value->kind = Value::Kind::String;
            value->text = parseString();
            return value;
        }
        if (consume("true")) {
            value->kind = Value::Kind::Bool;
            value->boolean = true;
            return value;
        }
        if (consume("false")) {
            value->kind = Value::Kind::Bool;
            value->boolean = false;
            return value;
        }
        if (consume("null"))
            return value;
        value->kind = Value::Kind::Number;
        value->number = parseNumber();
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < input_.size()) {
            const char c = input_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= input_.size())
                    fail("unterminated escape");
                const char e = input_[pos_++];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case '/': out += '/'; break;
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case 'u':
                    // Accepted but substituted: no request field the
                    // protocol reads carries non-ASCII payloads.
                    if (pos_ + 4 > input_.size())
                        fail("truncated \\u escape");
                    pos_ += 4;
                    out += '?';
                    break;
                default: fail("unknown escape");
                }
                continue;
            }
            out += c;
        }
        fail("unterminated string");
    }

    double
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(input_.substr(start), &consumed);
        } catch (const std::exception &) {
            fail("malformed number");
        }
        pos_ = start + consumed;
        return value;
    }

    const std::string &input_;
    std::size_t pos_ = 0;
};

} // namespace

ValuePtr
parse(const std::string &input)
{
    return Parser(input).parse();
}

std::string
quote(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

std::string
numberToJson(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

} // namespace orianna::runtime::json
