#include "runtime/engine_group.hpp"

#include <stdexcept>

#include "runtime/metrics.hpp"

namespace orianna::runtime {

EngineGroup::EngineGroup(hw::AcceleratorConfig config,
                         EngineOptions options, unsigned replicas)
    : shared_(std::move(config), std::move(options))
{
    if (replicas == 0)
        throw std::invalid_argument(
            "EngineGroup: replicas must be >= 1");
    replicas_.reserve(replicas);
    for (unsigned r = 0; r < replicas; ++r)
        replicas_.push_back(std::make_unique<Replica>());
}

unsigned
EngineGroup::route(const fg::FactorGraph &graph,
                   const fg::Values &shapes,
                   std::uint8_t algorithm_tag) const
{
    const std::uint64_t fingerprint =
        graphFingerprint(graph, shapes, algorithm_tag);
    if (MetricsRegistry::enabled())
        MetricsRegistry::global().counter("engine_group.routes").add();
    return replicaOf(fingerprint);
}

std::shared_ptr<const comp::Program>
EngineGroup::fetch(Replica &rep, std::uint64_t fingerprint,
                   const fg::FactorGraph &graph,
                   const fg::Values &shapes,
                   std::uint8_t algorithm_tag, const std::string &name)
{
    // Lock-free steady state: the map belongs to the calling worker.
    auto it = rep.programs.find(fingerprint);
    if (it != rep.programs.end()) {
        rep.localHits.fetch_add(1, std::memory_order_relaxed);
        if (MetricsRegistry::enabled())
            MetricsRegistry::global()
                .counter("engine_group.local_hits")
                .add();
        return it->second;
    }

    // Replica miss: the shared engine is the compile authority. Its
    // single-flight table dedups racing replicas, and because every
    // replica stores the shared_ptr it returns, all replicas serve
    // the identical program object.
    auto program =
        shared_.program(graph, shapes, algorithm_tag, name);
    rep.programs.emplace(fingerprint, program);
    rep.size.store(rep.programs.size(), std::memory_order_relaxed);
    return program;
}

Session
EngineGroup::session(unsigned replica, const fg::FactorGraph &graph,
                     fg::Values initial, double step_scale,
                     std::uint8_t algorithm_tag,
                     const std::string &name)
{
    const StageTimer open;
    Replica &rep = *replicas_.at(replica);
    const std::uint64_t fingerprint =
        graphFingerprint(graph, initial, algorithm_tag);
    auto program = fetch(rep, fingerprint, graph, initial,
                         algorithm_tag, name);

    // Mirror Engine::session exactly — same policy, injector, health
    // sink, and the same fallback-provisioning condition — so a
    // group-served session is indistinguishable from a shared-Engine
    // one (byte-identical values, same degradation ladder).
    SessionOptions opts;
    opts.stepScale = step_scale;
    opts.policy = shared_.options_.degradation;
    opts.injector = shared_.injector_;
    opts.health = shared_.health_;
    const bool can_fault =
        shared_.injector_ != nullptr ||
        shared_.options_.degradation.frameTimeoutCycles > 0 ||
        shared_.precision_ == comp::Precision::Fp32;
    if (shared_.options_.degradation.fallback && can_fault) {
        auto it = rep.fallbacks.find(fingerprint);
        if (it != rep.fallbacks.end()) {
            opts.fallback = it->second;
        } else {
            opts.fallback = shared_.referenceProgram(
                graph, initial, algorithm_tag, name);
            rep.fallbacks.emplace(fingerprint, opts.fallback);
        }
    }

    if (open.armed())
        MetricsRegistry::global()
            .histogram("engine_group.session_open_us")
            .observe(open.elapsedUs());
    return Session(std::move(program), std::move(initial),
                   shared_.config_, std::move(opts));
}

void
EngineGroup::warm(unsigned replica, const fg::FactorGraph &graph,
                  const fg::Values &shapes,
                  std::uint8_t algorithm_tag, const std::string &name)
{
    Replica &rep = *replicas_.at(replica);
    const std::uint64_t fingerprint =
        graphFingerprint(graph, shapes, algorithm_tag);
    fetch(rep, fingerprint, graph, shapes, algorithm_tag, name);
}

EngineGroup::Stats
EngineGroup::stats() const
{
    Stats s;
    const Engine::Stats shared = shared_.stats();
    s.compiles = shared.compiles;
    s.sharedHits = shared.cacheHits;
    for (const auto &rep : replicas_)
        s.localHits +=
            rep->localHits.load(std::memory_order_relaxed);
    return s;
}

std::size_t
EngineGroup::cachedPrograms(unsigned replica) const
{
    return replicas_.at(replica)->size.load(
        std::memory_order_relaxed);
}

} // namespace orianna::runtime
