#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "compiler/isa.hpp"

namespace orianna::runtime {

/**
 * Persistent on-disk cache of compiled programs (DESIGN.md §11) —
 * the shader-cache tier behind the Engine's in-memory program cache.
 * Entries are keyed by the graph content fingerprint and written as
 * one file per program:
 *
 *   <dir>/<fingerprint as 16 hex digits>.oprog
 *
 * Each file is a small validated container around the existing binary
 * program encoding:
 *
 *   magic 'ORST' | store version | encoding version | fingerprint |
 *   pass-spec string | payload size | FNV-1a checksum | payload
 *
 * where the payload is exactly comp::encodeProgram()'s output for the
 * post-pipeline program. Validation on load walks that ladder in
 * order (magic, store version, encoding version range, fingerprint
 * echo, pass spec, payload size, checksum, decode) and treats any
 * failure as a clean MISS — a corrupted, truncated, stale or foreign
 * file makes the engine recompile, never crash and never serve a
 * wrong program. The checksum guarantees every single-byte payload
 * corruption is caught; the header fields guard everything else.
 *
 * Atomicity contract (single-writer per rename): store() writes the
 * entry to a unique dot-prefixed temp file in the same directory and
 * publishes it with rename(), which is atomic on POSIX filesystems.
 * Readers therefore only ever observe a complete entry or no entry.
 * Two processes publishing the same fingerprint race benignly: the
 * compile is deterministic, so both temp files hold identical bytes
 * and the last rename wins with the same content. Temp files from a
 * killed writer are invisible to load() (entry names are exact) and
 * are swept opportunistically by the next construction.
 *
 * Thread safety: load()/store() may be called concurrently from any
 * threads (and any processes sharing the directory); the counters are
 * atomic.
 */
class ProgramStore
{
  public:
    /**
     * Open (creating if necessary) the cache directory. A directory
     * that cannot be created or is not writable leaves the store
     * permanently unavailable — every load misses, every store fails
     * cleanly — rather than throwing: a broken cache must never take
     * the serving path down.
     */
    explicit ProgramStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** False when the directory could not be created/probed. */
    bool available() const { return available_; }

    /**
     * Fetch the entry for @p fingerprint, expecting an artifact built
     * by the @p passSpec pipeline. Returns nullptr on any miss —
     * absent file, failed validation rung, or undecodable payload —
     * and never throws for a bad entry.
     */
    std::shared_ptr<const comp::Program>
    load(std::uint64_t fingerprint, const std::string &passSpec);

    /**
     * Atomically publish @p program under @p fingerprint. Returns
     * false (and counts a write failure) when anything goes wrong;
     * the store never throws on the serving path.
     */
    bool store(std::uint64_t fingerprint, const std::string &passSpec,
               const comp::Program &program);

    /** Snapshot of the store counters (atomic loads). */
    struct Stats
    {
        std::uint64_t hits = 0;   //!< Valid entries served.
        std::uint64_t misses = 0; //!< Absent entries.
        std::uint64_t rejected = 0; //!< Entries present but failing a
                                    //!< validation rung (counted as
                                    //!< misses too).
        std::uint64_t writes = 0;        //!< Entries published.
        std::uint64_t writeFailures = 0; //!< Failed publishes.
    };

    Stats stats() const;

    /** Entry file name for @p fingerprint: "<16 hex digits>.oprog". */
    static std::string entryName(std::uint64_t fingerprint);

    /** Full path of the entry for @p fingerprint. */
    std::string entryPath(std::uint64_t fingerprint) const;

  private:
    std::string dir_;
    bool available_ = false;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> writeFailures_{0};
    std::atomic<std::uint64_t> tempSeq_{0};
};

} // namespace orianna::runtime
