#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hw/trace.hpp"

namespace orianna::runtime {

/** One runtime-side span on a session track (session/frame/stage). */
struct RuntimeSpan
{
    std::string name;     //!< "session", "frame 3", "simulate", ...
    std::string category; //!< Span level: session / frame / stage.
    std::uint64_t track = 0; //!< Session track the span belongs to.
    std::uint64_t startUs = 0;
    std::uint64_t durUs = 0;
};

/**
 * Unified trace sink of the serving stack: collects runtime spans
 * (session -> frame -> stage, on wall-clock microseconds) and the
 * per-unit hardware schedules of individual frames (cycle-accurate,
 * anchored at the wall-clock start of their frame's simulate stage),
 * and writes them as one Chrome/Perfetto JSON. Each session becomes
 * one thread track in a "runtime" process with its frames and stages
 * nested by time inclusion, and each session additionally owns a
 * hardware process whose rows are the functional-unit instances — so
 * a served frame is visible from the API call down to systolic-array
 * occupancy in a single timeline.
 *
 * Collection is off by default (setEnabled), cheap to leave compiled
 * in: every producer checks enabled() — one relaxed load — before
 * building any span. Producers push under a mutex; frames are
 * millisecond-scale, so the sink is nowhere near the hot path.
 */
class TraceCollector
{
  public:
    static TraceCollector &global();

    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Drop every collected span and hardware frame. */
    void clear();

    /** Open a session track; @p label names its timeline row. */
    std::uint64_t openTrack(const std::string &label);

    void addSpan(std::uint64_t track, std::string name,
                 std::string category, std::uint64_t start_us,
                 std::uint64_t dur_us);

    /**
     * Attach one frame's hardware schedule to @p track, anchored at
     * wall-clock @p anchor_us (the frame's simulate-stage start);
     * @p units sizes the instance rows.
     */
    void addHwFrame(std::uint64_t track, std::uint64_t anchor_us,
                    std::vector<hw::TraceEvent> events,
                    const std::array<unsigned, hw::kUnitKindCount>
                        &units);

    /** Snapshot of the runtime spans (tests, exporters). */
    std::vector<RuntimeSpan> spans() const;

    /** Total hardware events attached so far. */
    std::size_t hwEventCount() const;

    std::size_t trackCount() const;

    /**
     * Write everything collected so far as Chrome trace JSON
     * (load in https://ui.perfetto.dev).
     *
     * @throws std::runtime_error when the file cannot be written.
     */
    void write(const std::string &path,
               double frequency_hz = hw::CostModel::frequencyHz) const;

  private:
    struct HwFrame
    {
        std::uint64_t track = 0;
        std::uint64_t anchorUs = 0;
        std::array<unsigned, hw::kUnitKindCount> units{};
        std::vector<hw::TraceEvent> events;
    };

    mutable std::mutex mutex_;
    std::vector<std::string> trackLabels_;
    std::vector<RuntimeSpan> spans_;
    std::vector<HwFrame> hwFrames_;

    static std::atomic<bool> enabled_;
};

} // namespace orianna::runtime
