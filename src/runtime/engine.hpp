#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "compiler/codegen.hpp"
#include "compiler/incremental_codegen.hpp"
#include "compiler/pass_manager.hpp"
#include "runtime/execution_context.hpp"

namespace orianna::runtime {

/**
 * Fingerprint of a factor graph plus the shapes of its variables:
 * everything that determines the compiled instruction stream (factor
 * types, connectivity, dimensions, noise models, measurement
 * constants baked into LOADC payloads). Two graphs with equal
 * fingerprints compile to identical programs, so the Engine shares
 * one compiled Program between them.
 *
 * Note the fingerprint must include measurement constants for
 * correctness today: the compiler bakes them into the program. The
 * seam for sharing programs across clients with *different*
 * measurements (streaming constants through LOADV like variables) is
 * a planned compiler extension; the Engine API does not change when
 * that lands — cache hit rates just go up.
 */
std::uint64_t graphFingerprint(const fg::FactorGraph &graph,
                               const fg::Values &shapes,
                               std::uint8_t algorithm_tag = 0);

class Session;

/**
 * Unified-trace bookkeeping of one session (allocated only when the
 * TraceCollector is enabled at session construction). Held by
 * shared_ptr so sessions stay movable; the last owner reports the
 * enclosing "session" span when it dies.
 */
struct SessionTraceHandle;

/**
 * What a Session does when a frame misbehaves — non-finite deltas
 * (from an injected corruption or genuinely broken numerics) or a
 * blown cycle deadline. The ladder is: retry the frame up to
 * maxRetries times (each retry re-rolls the fault schedule, so a
 * transient upset clears), then replay it on the cleanup-only
 * reference program with injection disarmed, then throw. Retries are
 * only attempted when a fault injector is armed; without one a rerun
 * is bit-identical to the failed attempt and is skipped.
 */
struct DegradationPolicy
{
    std::size_t maxRetries = 2; //!< Re-runs before falling back.
    bool fallback = true;       //!< Allow the reference-program rung.

    /**
     * Declare a frame faulty when it simulates to more than this many
     * cycles (0 = no deadline). The deadline is waived on the
     * fallback rung: degraded mode trades latency for a correct
     * update.
     */
    std::uint64_t frameTimeoutCycles = 0;

    /** Sleep attempt*base microseconds before each retry (0 = none). */
    std::uint64_t backoffBaseUs = 0;

    /**
     * Declare a frame faulty when any delta element's magnitude
     * exceeds this limit (0 = no check). This is the guard rail of
     * the fp32 rung (DESIGN.md §12): reduced-mantissa arithmetic that
     * diverges — an ill-conditioned solve blowing up on its way to
     * inf — is caught before the update lands and the frame is
     * replayed on the fp64 reference program. Checked only on the
     * primary rung; the fp64 fallback is trusted ground truth.
     */
    double deltaAbsLimit = 0.0;
};

/**
 * Degradation counters shared by an Engine and every Session it
 * opens. Atomic because sessions are routinely driven from ServerPool
 * workers; snapshot through Engine::healthJson().
 */
struct EngineHealth
{
    std::atomic<std::uint64_t> framesOk{0};
    std::atomic<std::uint64_t> faultsDetected{0};
    std::atomic<std::uint64_t> frameTimeouts{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> fallbacks{0};
    std::atomic<std::uint64_t> failures{0}; //!< Frames that threw.
};

/**
 * The long-lived serving half of the runtime: owns an accelerator
 * configuration and a cache of compiled Programs keyed by graph
 * fingerprint. Sessions opened against the engine share cached
 * programs; each session holds only its private mutable Values and a
 * reusable ExecutionContext, which is the shape needed to serve many
 * concurrent robot streams from one compiled artifact set.
 *
 * Thread safety: every public method may be called from any number of
 * threads concurrently (the ServerPool drives one Engine from all its
 * workers). The program cache is sharded by fingerprint — each shard
 * has its own reader/writer lock, so lookups of different programs
 * never contend — and compilation is single-flight: N clients
 * requesting the same fingerprint at once trigger exactly one
 * compile, with the others blocking on the shared future until the
 * program lands. Stats are atomic counters.
 */
/** Compile-side knobs of an Engine (the pass pipeline). */
struct EngineOptions
{
    /**
     * Pass pipeline spec, in PassManager::parse() syntax: "default"
     * (dedup,dce,cse,fuse), "none", or an explicit comma-separated
     * list of pass names.
     */
    std::string passes = "default";

    /**
     * Run the per-pass equivalence check on every compile, using the
     * session's initial values as the probe input. Also switched on
     * process-wide by ORIANNA_VERIFY_PASSES=1.
     */
    bool verifyPasses = false;

    /**
     * Hardware fault-injection plan (hw::FaultPlan::parse() syntax).
     * When non-empty the engine arms one deterministic FaultInjector
     * shared by every session it opens.
     */
    hw::FaultPlan faultPlan;

    /** Retry/fallback behavior of the sessions this engine opens. */
    DegradationPolicy degradation;

    /**
     * Directory of the persistent program store (DESIGN.md §11).
     * Empty (the default) disables the on-disk tier entirely. When
     * set, the engine consults the store inside the single-flight
     * slot before compiling and publishes every fresh compile back —
     * a warm restart against the same directory serves previously
     * seen graphs with zero compiles. An unusable directory degrades
     * to a permanently cold store, never an error.
     */
    std::string storeDir;

    /**
     * Datapath precision of the programs this engine compiles
     * (DESIGN.md §12). Unset resolves from the ORIANNA_PRECISION
     * environment variable ("fp64"/"fp32"), defaulting to Fp64; set
     * it explicitly to pin a precision regardless of environment.
     * The precision salts both the in-memory cache key and the
     * persistent-store key, so both precisions of one graph coexist
     * without ever serving each other's artifacts. Fp32 engines
     * provision the fp64 reference program as the degradation-ladder
     * fallback for every session.
     */
    std::optional<comp::Precision> precision;
};

class ProgramStore;

class EngineGroup;

class Engine
{
  public:
    explicit Engine(hw::AcceleratorConfig config)
        : Engine(std::move(config), EngineOptions())
    {
    }

    /** @throws std::invalid_argument on an unknown pass name. */
    Engine(hw::AcceleratorConfig config, EngineOptions options);

    ~Engine();

    const hw::AcceleratorConfig &config() const { return config_; }

    /** The options this engine was constructed with. */
    const EngineOptions &engineOptions() const { return options_; }

    /** Resolved datapath precision this engine compiles for. */
    comp::Precision precision() const { return precision_; }

    /**
     * Cache-key salt for fp32 programs. The instruction stream is
     * precision-independent, but the Program's precision tag is not,
     * and the key doubles as the persistent-store key — without the
     * salt an fp32 engine would happily serve a stored fp64 artifact
     * (and vice versa) on a warm restart. Public so tools that key
     * their own --cache-dir stores by graph fingerprint stay
     * interoperable with engine-written entries.
     */
    static constexpr std::uint64_t kFp32Salt = 0x0f32ca5700000001ull;

    /**
     * Compile @p graph (minimum-degree ordering plus cleanup passes,
     * like core::Application), or return the cached program when a
     * graph with the same fingerprint was compiled before. @p name
     * labels the compiled program and its compile-log entry; on a
     * cache hit the name of the first compile wins.
     */
    std::shared_ptr<const comp::Program>
    program(const fg::FactorGraph &graph, const fg::Values &shapes,
            std::uint8_t algorithm_tag = 0,
            const std::string &name = "session");

    /**
     * Compile (or fetch) the cleanup-only reference program for
     * @p graph: the same "dedup,dce" pipeline core::Application keeps
     * as its golden path, independent of the engine's optimizing
     * pipeline. This is the fallback rung of the degradation ladder;
     * it shares the program cache under a salted fingerprint so
     * optimized and reference artifacts coexist.
     */
    std::shared_ptr<const comp::Program>
    referenceProgram(const fg::FactorGraph &graph,
                     const fg::Values &shapes,
                     std::uint8_t algorithm_tag = 0,
                     const std::string &name = "session");

    /**
     * Compile (or fetch) the incremental update program for @p spec
     * (DESIGN.md §13): the suffix re-elimination + back-substitution
     * of one affected-clique shape, with every numeric payload
     * streamed per frame. Keyed by updateFingerprint(spec) with the
     * same precision salting as program(), so the in-memory cache,
     * the ProgramStore and replica caches all amortize update
     * compiles across frames and across restarts. @p probe must bind
     * every input key of comp::updateLayout(spec) (any frame's
     * streamed values do); it seeds the per-pass equivalence
     * verifier when that is armed.
     */
    std::shared_ptr<const comp::Program>
    updateProgram(const comp::UpdateSpec &spec,
                  const fg::Values &probe,
                  const std::string &name = "update");

    /**
     * The cleanup-only fp64 twin of updateProgram(): the batch
     * reference rung relinearize-all frames run on, and the
     * degradation-ladder fallback of incremental sessions. Shares
     * the cache under the same reference salt as referenceProgram().
     */
    std::shared_ptr<const comp::Program>
    referenceUpdateProgram(const comp::UpdateSpec &spec,
                           const fg::Values &probe,
                           const std::string &name = "update");

    /**
     * Open a session around an already-compiled program (an update
     * program, or anything else obtained from this engine), wiring
     * in the engine's degradation policy, fault injector and health
     * counters exactly as session() does. @p retract=false opens a
     * compute-only session: step() leaves the session values
     * untouched and the caller reads the frame's delta bindings —
     * the mode incremental update programs need, whose synthetic
     * keys are not retractable variables.
     */
    Session openSession(std::shared_ptr<const comp::Program> program,
                        fg::Values initial,
                        std::shared_ptr<const comp::Program> fallback =
                            nullptr,
                        double step_scale = 1.0, bool retract = true);

    /** The engine's fault injector, or nullptr when faults are off. */
    const hw::FaultInjector *injector() const
    {
        return injector_.get();
    }

    /** Live degradation counters shared with this engine's sessions. */
    const EngineHealth &health() const { return *health_; }

    /**
     * JSON snapshot of the degradation counters plus cache stats:
     * {"status": "ok"|"degraded"|"failing", "precision": "fp64"|"fp32",
     *  "fault_injection": bool,
     *  "store": bool (persistent tier armed and usable),
     *  "frames_ok", "faults_detected", "frame_timeouts", "retries",
     *  "fallbacks", "failures", "compiles", "cache_hits",
     *  "store_hits", "store_misses", "store_writes"}.
     * "degraded" means at least one retry or fallback happened;
     * "failing" means at least one frame exhausted the ladder.
     */
    std::string healthJson() const;

    /**
     * Open a session: compile (or fetch) the program for @p graph and
     * pair it with the client's private @p initial values.
     */
    Session session(const fg::FactorGraph &graph, fg::Values initial,
                    double step_scale = 1.0,
                    std::uint8_t algorithm_tag = 0,
                    const std::string &name = "session");

    /** Snapshot of the cache counters (values are atomic loads). */
    struct Stats
    {
        std::size_t compiles = 0;  //!< Cache misses (programs built).
        std::size_t cacheHits = 0; //!< Sessions served from cache.
        // Persistent-store tier (all zero when storeDir is unset).
        std::size_t storeHits = 0;   //!< Compiles avoided via disk.
        std::size_t storeMisses = 0; //!< Store consults that compiled.
        std::size_t storeWrites = 0; //!< Artifacts published to disk.
    };

    Stats
    stats() const
    {
        Stats s;
        s.compiles = compiles_.load(std::memory_order_relaxed);
        s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
        s.storeHits = storeHits_.load(std::memory_order_relaxed);
        s.storeMisses = storeMisses_.load(std::memory_order_relaxed);
        s.storeWrites = storeWrites_.load(std::memory_order_relaxed);
        return s;
    }

    /** The persistent store tier, or nullptr when disabled. */
    const ProgramStore *store() const { return store_.get(); }

    std::size_t cachedPrograms() const;

    /**
     * JSON snapshot of the serving metrics (the process-wide
     * MetricsRegistry): cache and single-flight counters, per-stage
     * frame latency histograms with p50/p99, pool steal counts,
     * per-unit utilization. Always valid JSON — before any session
     * ran it reports zeroed instruments and null derived rates.
     */
    static std::string metricsJson();

    /** One cache miss, in compile order: the diagnostics trail. */
    struct CompileRecord
    {
        std::string name;          //!< Caller-supplied program name.
        std::uint64_t fingerprint; //!< Cache key that missed.
        std::size_t instructions;  //!< Post-pipeline program size.
        /** What each pipeline pass did on this compile, in order. */
        std::vector<comp::PassStats> passes;

        /** One-line human-readable summary of the pass pipeline. */
        std::string passSummary() const;
    };

    /** Copy of the compile log (every cache miss since construction). */
    std::vector<CompileRecord> compileLog() const;

  private:
    /** Builds SessionOptions from the engine's private state. */
    friend class EngineGroup;

    /**
     * Cache entries hold a future so racing requesters of one
     * fingerprint share a single in-flight compile.
     *
     * Cache-line aligned: adjacent shards are locked by different
     * threads at once (that is the whole point of sharding), so a
     * shard's mutex word must not share a line with its neighbor's.
     */
    struct alignas(64) Shard
    {
        mutable std::shared_mutex mutex;
        std::map<std::uint64_t,
                 std::shared_future<
                     std::shared_ptr<const comp::Program>>>
            cache;
    };

    static constexpr std::size_t kShards = 16;

    /**
     * Cache-key salt for reference (cleanup-only) programs, so both
     * artifacts of one graph live in the shared program cache.
     */
    static constexpr std::uint64_t kReferenceSalt =
        0xfa11bacc00000001ull;

    Shard &shard(std::uint64_t key) { return shards_[key % kShards]; }

    /**
     * Shared compile-or-fetch path of every program entry point:
     * sharded single-flight cache, persistent-store consult, then
     * @p build (which produces the raw codegen output the pipeline
     * runs over). @p probe seeds the per-pass verifier; it must bind
     * every LOADV key of the built program.
     */
    std::shared_ptr<const comp::Program>
    compileCached(std::uint64_t key, const std::string &name,
                  comp::PassManager &pipeline, const fg::Values *probe,
                  const std::function<comp::Program()> &build);

    hw::AcceleratorConfig config_;
    EngineOptions options_;
    comp::Precision precision_ = comp::Precision::Fp64;
    comp::PassManager pipeline_;
    comp::PassManager referencePipeline_;
    std::shared_ptr<const hw::FaultInjector> injector_;
    std::shared_ptr<EngineHealth> health_;
    std::unique_ptr<ProgramStore> store_;
    std::array<Shard, kShards> shards_;
    std::atomic<std::size_t> compiles_{0};
    std::atomic<std::size_t> cacheHits_{0};
    std::atomic<std::size_t> storeHits_{0};
    std::atomic<std::size_t> storeMisses_{0};
    std::atomic<std::size_t> storeWrites_{0};
    mutable std::mutex logMutex_;
    std::vector<CompileRecord> log_;
};

/** Everything optional a Session is opened with. */
struct SessionOptions
{
    double stepScale = 1.0;
    DegradationPolicy policy;
    /** Cleanup-only program for the fallback rung (may be null). */
    std::shared_ptr<const comp::Program> fallback;
    /** Armed fault injector (null = no injection). */
    std::shared_ptr<const hw::FaultInjector> injector;
    /** Engine-wide health counters (null = session-local only). */
    std::shared_ptr<EngineHealth> health;
    /**
     * Retract each frame's deltas into the session values (the
     * Gauss-Newton serving mode). False opens a compute-only
     * session for programs whose delta bindings are raw results
     * rather than variable updates (incremental update programs);
     * step scaling is skipped too, the caller owns interpretation.
     */
    bool retract = true;
};

/**
 * One client's optimization stream: a shared compiled program plus
 * private mutable Values, executed frame after frame through one
 * reusable ExecutionContext (no per-frame rebuild of schedule state).
 *
 * Fault tolerance: every frame's deltas are checked for non-finite
 * entries (and the frame's cycle count against the policy deadline);
 * a faulty frame climbs the DegradationPolicy ladder — retry with
 * re-rolled fault outcomes, then replay on the fallback reference
 * program with injection disarmed — before anything is retracted
 * into the session values, so a poisoned update never lands.
 */
class Session
{
  public:
    /** Share ownership of a cached/compiled program. */
    Session(std::shared_ptr<const comp::Program> program,
            fg::Values initial, hw::AcceleratorConfig config,
            double step_scale = 1.0);

    /** Non-owning: @p program must outlive the session. */
    Session(const comp::Program &program, fg::Values initial,
            hw::AcceleratorConfig config, double step_scale = 1.0);

    /** Full-options form (what Engine::session builds). */
    Session(std::shared_ptr<const comp::Program> program,
            fg::Values initial, hw::AcceleratorConfig config,
            SessionOptions options);

    const comp::Program &program() const { return *program_; }

    const fg::Values &values() const { return values_; }
    fg::Values &values() { return values_; }

    /**
     * One Gauss-Newton step: run a frame on the accelerator, scale
     * the deltas by the session's step scale and retract in place.
     * Returns that frame's simulation outcome.
     */
    hw::SimResult step();

    /** Run @p n steps; returns the values after the last one. */
    const fg::Values &iterate(std::size_t n);

    /** Stats accumulated over every frame of this session. */
    const hw::SimResult &totals() const { return totals_; }

    std::size_t frames() const { return frames_; }

    /**
     * The session's track id in the unified trace, or -1 when the
     * TraceCollector was disabled at construction.
     */
    std::int64_t traceTrack() const;

    /** True when a fallback reference program is provisioned. */
    bool hasFallback() const { return fallbackContext_ != nullptr; }

    // Degradation counters of this session alone (the engine-wide
    // aggregate lives in EngineHealth).
    std::uint64_t retries() const { return retries_; }
    std::uint64_t fallbacks() const { return fallbacks_; }
    std::uint64_t faultsDetected() const { return faultsDetected_; }
    std::uint64_t frameTimeouts() const { return timeouts_; }

    /** True when the last step() completed on the fallback rung. */
    bool lastFrameDegraded() const { return lastFrameDegraded_; }

  private:
    /**
     * Symptom check of one simulated frame: the cycle deadline (only
     * when @p check_deadline) and non-finite deltas. Returns a static
     * description string, or nullptr when the frame is healthy.
     */
    const char *diagnose(const hw::SimResult &frame,
                         bool check_deadline) const;

    std::shared_ptr<const comp::Program> program_;
    fg::Values values_;
    hw::AcceleratorConfig config_;
    double stepScale_;
    bool retract_ = true;
    DegradationPolicy policy_;
    std::shared_ptr<const comp::Program> fallbackProgram_;
    std::shared_ptr<const hw::FaultInjector> injector_;
    std::shared_ptr<EngineHealth> health_;
    ExecutionContext context_;
    std::unique_ptr<ExecutionContext> fallbackContext_;
    hw::SimResult totals_;
    std::size_t frames_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t fallbacks_ = 0;
    std::uint64_t faultsDetected_ = 0;
    std::uint64_t timeouts_ = 0;
    bool lastFrameDegraded_ = false;
    std::shared_ptr<SessionTraceHandle> trace_;
};

} // namespace orianna::runtime
