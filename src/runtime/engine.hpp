#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "compiler/codegen.hpp"
#include "runtime/execution_context.hpp"

namespace orianna::runtime {

/**
 * Fingerprint of a factor graph plus the shapes of its variables:
 * everything that determines the compiled instruction stream (factor
 * types, connectivity, dimensions, noise models, measurement
 * constants baked into LOADC payloads). Two graphs with equal
 * fingerprints compile to identical programs, so the Engine shares
 * one compiled Program between them.
 *
 * Note the fingerprint must include measurement constants for
 * correctness today: the compiler bakes them into the program. The
 * seam for sharing programs across clients with *different*
 * measurements (streaming constants through LOADV like variables) is
 * a planned compiler extension; the Engine API does not change when
 * that lands — cache hit rates just go up.
 */
std::uint64_t graphFingerprint(const fg::FactorGraph &graph,
                               const fg::Values &shapes,
                               std::uint8_t algorithm_tag = 0);

class Session;

/**
 * The long-lived serving half of the runtime: owns an accelerator
 * configuration and a cache of compiled Programs keyed by graph
 * fingerprint. Sessions opened against the engine share cached
 * programs; each session holds only its private mutable Values and a
 * reusable ExecutionContext, which is the shape needed to serve many
 * concurrent robot streams from one compiled artifact set.
 */
class Engine
{
  public:
    explicit Engine(hw::AcceleratorConfig config)
        : config_(std::move(config))
    {
    }

    const hw::AcceleratorConfig &config() const { return config_; }

    /**
     * Compile @p graph (minimum-degree ordering plus cleanup passes,
     * like core::Application), or return the cached program when a
     * graph with the same fingerprint was compiled before.
     */
    std::shared_ptr<const comp::Program>
    program(const fg::FactorGraph &graph, const fg::Values &shapes,
            std::uint8_t algorithm_tag = 0,
            const std::string &name = "session");

    /**
     * Open a session: compile (or fetch) the program for @p graph and
     * pair it with the client's private @p initial values.
     */
    Session session(const fg::FactorGraph &graph, fg::Values initial,
                    double step_scale = 1.0,
                    std::uint8_t algorithm_tag = 0);

    struct Stats
    {
        std::size_t compiles = 0;  //!< Cache misses (programs built).
        std::size_t cacheHits = 0; //!< Sessions served from cache.
    };

    const Stats &stats() const { return stats_; }
    std::size_t cachedPrograms() const { return cache_.size(); }

  private:
    hw::AcceleratorConfig config_;
    std::map<std::uint64_t, std::shared_ptr<const comp::Program>>
        cache_;
    Stats stats_;
};

/**
 * One client's optimization stream: a shared compiled program plus
 * private mutable Values, executed frame after frame through one
 * reusable ExecutionContext (no per-frame rebuild of schedule state).
 */
class Session
{
  public:
    /** Share ownership of a cached/compiled program. */
    Session(std::shared_ptr<const comp::Program> program,
            fg::Values initial, hw::AcceleratorConfig config,
            double step_scale = 1.0);

    /** Non-owning: @p program must outlive the session. */
    Session(const comp::Program &program, fg::Values initial,
            hw::AcceleratorConfig config, double step_scale = 1.0);

    const comp::Program &program() const { return *program_; }

    const fg::Values &values() const { return values_; }
    fg::Values &values() { return values_; }

    /**
     * One Gauss-Newton step: run a frame on the accelerator, scale
     * the deltas by the session's step scale and retract in place.
     * Returns that frame's simulation outcome.
     */
    hw::SimResult step();

    /** Run @p n steps; returns the values after the last one. */
    const fg::Values &iterate(std::size_t n);

    /** Stats accumulated over every frame of this session. */
    const hw::SimResult &totals() const { return totals_; }

    std::size_t frames() const { return frames_; }

  private:
    std::shared_ptr<const comp::Program> program_;
    fg::Values values_;
    hw::AcceleratorConfig config_;
    double stepScale_;
    ExecutionContext context_;
    hw::SimResult totals_;
    std::size_t frames_ = 0;
};

} // namespace orianna::runtime
