#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "compiler/codegen.hpp"
#include "compiler/pass_manager.hpp"
#include "runtime/execution_context.hpp"

namespace orianna::runtime {

/**
 * Fingerprint of a factor graph plus the shapes of its variables:
 * everything that determines the compiled instruction stream (factor
 * types, connectivity, dimensions, noise models, measurement
 * constants baked into LOADC payloads). Two graphs with equal
 * fingerprints compile to identical programs, so the Engine shares
 * one compiled Program between them.
 *
 * Note the fingerprint must include measurement constants for
 * correctness today: the compiler bakes them into the program. The
 * seam for sharing programs across clients with *different*
 * measurements (streaming constants through LOADV like variables) is
 * a planned compiler extension; the Engine API does not change when
 * that lands — cache hit rates just go up.
 */
std::uint64_t graphFingerprint(const fg::FactorGraph &graph,
                               const fg::Values &shapes,
                               std::uint8_t algorithm_tag = 0);

class Session;

/**
 * Unified-trace bookkeeping of one session (allocated only when the
 * TraceCollector is enabled at session construction). Held by
 * shared_ptr so sessions stay movable; the last owner reports the
 * enclosing "session" span when it dies.
 */
struct SessionTraceHandle;

/**
 * The long-lived serving half of the runtime: owns an accelerator
 * configuration and a cache of compiled Programs keyed by graph
 * fingerprint. Sessions opened against the engine share cached
 * programs; each session holds only its private mutable Values and a
 * reusable ExecutionContext, which is the shape needed to serve many
 * concurrent robot streams from one compiled artifact set.
 *
 * Thread safety: every public method may be called from any number of
 * threads concurrently (the ServerPool drives one Engine from all its
 * workers). The program cache is sharded by fingerprint — each shard
 * has its own reader/writer lock, so lookups of different programs
 * never contend — and compilation is single-flight: N clients
 * requesting the same fingerprint at once trigger exactly one
 * compile, with the others blocking on the shared future until the
 * program lands. Stats are atomic counters.
 */
/** Compile-side knobs of an Engine (the pass pipeline). */
struct EngineOptions
{
    /**
     * Pass pipeline spec, in PassManager::parse() syntax: "default"
     * (dedup,dce,cse,fuse), "none", or an explicit comma-separated
     * list of pass names.
     */
    std::string passes = "default";

    /**
     * Run the per-pass equivalence check on every compile, using the
     * session's initial values as the probe input. Also switched on
     * process-wide by ORIANNA_VERIFY_PASSES=1.
     */
    bool verifyPasses = false;
};

class Engine
{
  public:
    explicit Engine(hw::AcceleratorConfig config)
        : Engine(std::move(config), EngineOptions())
    {
    }

    /** @throws std::invalid_argument on an unknown pass name. */
    Engine(hw::AcceleratorConfig config, EngineOptions options)
        : config_(std::move(config)), options_(std::move(options)),
          pipeline_(comp::PassManager::parse(options_.passes))
    {
    }

    const hw::AcceleratorConfig &config() const { return config_; }

    /**
     * Compile @p graph (minimum-degree ordering plus cleanup passes,
     * like core::Application), or return the cached program when a
     * graph with the same fingerprint was compiled before. @p name
     * labels the compiled program and its compile-log entry; on a
     * cache hit the name of the first compile wins.
     */
    std::shared_ptr<const comp::Program>
    program(const fg::FactorGraph &graph, const fg::Values &shapes,
            std::uint8_t algorithm_tag = 0,
            const std::string &name = "session");

    /**
     * Open a session: compile (or fetch) the program for @p graph and
     * pair it with the client's private @p initial values.
     */
    Session session(const fg::FactorGraph &graph, fg::Values initial,
                    double step_scale = 1.0,
                    std::uint8_t algorithm_tag = 0,
                    const std::string &name = "session");

    /** Snapshot of the cache counters (values are atomic loads). */
    struct Stats
    {
        std::size_t compiles = 0;  //!< Cache misses (programs built).
        std::size_t cacheHits = 0; //!< Sessions served from cache.
    };

    Stats
    stats() const
    {
        Stats s;
        s.compiles = compiles_.load(std::memory_order_relaxed);
        s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
        return s;
    }

    std::size_t cachedPrograms() const;

    /**
     * JSON snapshot of the serving metrics (the process-wide
     * MetricsRegistry): cache and single-flight counters, per-stage
     * frame latency histograms with p50/p99, pool steal counts,
     * per-unit utilization. Always valid JSON — before any session
     * ran it reports zeroed instruments and null derived rates.
     */
    static std::string metricsJson();

    /** One cache miss, in compile order: the diagnostics trail. */
    struct CompileRecord
    {
        std::string name;          //!< Caller-supplied program name.
        std::uint64_t fingerprint; //!< Cache key that missed.
        std::size_t instructions;  //!< Post-pipeline program size.
        /** What each pipeline pass did on this compile, in order. */
        std::vector<comp::PassStats> passes;

        /** One-line human-readable summary of the pass pipeline. */
        std::string passSummary() const;
    };

    /** Copy of the compile log (every cache miss since construction). */
    std::vector<CompileRecord> compileLog() const;

  private:
    /**
     * Cache entries hold a future so racing requesters of one
     * fingerprint share a single in-flight compile.
     */
    struct Shard
    {
        mutable std::shared_mutex mutex;
        std::map<std::uint64_t,
                 std::shared_future<
                     std::shared_ptr<const comp::Program>>>
            cache;
    };

    static constexpr std::size_t kShards = 16;

    Shard &shard(std::uint64_t key) { return shards_[key % kShards]; }

    hw::AcceleratorConfig config_;
    EngineOptions options_;
    comp::PassManager pipeline_;
    std::array<Shard, kShards> shards_;
    std::atomic<std::size_t> compiles_{0};
    std::atomic<std::size_t> cacheHits_{0};
    mutable std::mutex logMutex_;
    std::vector<CompileRecord> log_;
};

/**
 * One client's optimization stream: a shared compiled program plus
 * private mutable Values, executed frame after frame through one
 * reusable ExecutionContext (no per-frame rebuild of schedule state).
 */
class Session
{
  public:
    /** Share ownership of a cached/compiled program. */
    Session(std::shared_ptr<const comp::Program> program,
            fg::Values initial, hw::AcceleratorConfig config,
            double step_scale = 1.0);

    /** Non-owning: @p program must outlive the session. */
    Session(const comp::Program &program, fg::Values initial,
            hw::AcceleratorConfig config, double step_scale = 1.0);

    const comp::Program &program() const { return *program_; }

    const fg::Values &values() const { return values_; }
    fg::Values &values() { return values_; }

    /**
     * One Gauss-Newton step: run a frame on the accelerator, scale
     * the deltas by the session's step scale and retract in place.
     * Returns that frame's simulation outcome.
     */
    hw::SimResult step();

    /** Run @p n steps; returns the values after the last one. */
    const fg::Values &iterate(std::size_t n);

    /** Stats accumulated over every frame of this session. */
    const hw::SimResult &totals() const { return totals_; }

    std::size_t frames() const { return frames_; }

    /**
     * The session's track id in the unified trace, or -1 when the
     * TraceCollector was disabled at construction.
     */
    std::int64_t traceTrack() const;

  private:
    std::shared_ptr<const comp::Program> program_;
    fg::Values values_;
    hw::AcceleratorConfig config_;
    double stepScale_;
    ExecutionContext context_;
    hw::SimResult totals_;
    std::size_t frames_ = 0;
    std::shared_ptr<SessionTraceHandle> trace_;
};

} // namespace orianna::runtime
