#pragma once

#include <string>
#include <vector>

#include "hw/accelerator.hpp"

namespace orianna::runtime {
class ServerPool;
}

namespace orianna::hwgen {

using hw::AcceleratorConfig;
using hw::Resources;
using hw::SimResult;
using hw::UnitKind;
using hw::WorkItem;

/** What the constraint-driven generator optimizes (Sec. 6.2). */
enum class Objective : std::uint8_t {
    AvgLatency, //!< Mean frame latency across the work items.
    MaxLatency, //!< Worst-case (long-tail) frame latency.
    Energy,     //!< Total frame energy.
};

/** One explored design point, for the Fig. 19/20 sweeps. */
struct DesignPoint
{
    AcceleratorConfig config;
    SimResult result;
    Resources resources;
};

/** Outcome of generate(). */
struct GenerationResult
{
    AcceleratorConfig config;   //!< The selected design.
    SimResult result;           //!< Its simulated frame.
    std::vector<DesignPoint> trajectory; //!< Greedy steps taken.
    /**
     * Aggregated opcode histogram (indexed by IsaOp, length
     * comp::kIsaOpCount) of the instruction streams the design was
     * sized against. Since the generator sees post-pipeline programs,
     * fused opcodes (GSCALE, MVSUB) show up here — the histogram
     * records exactly the instruction mix the unit counts answer to.
     */
    std::vector<std::size_t> opHistogram;
};

/**
 * Constraint-based hardware optimization (Equ. 5): starting from one
 * instance of every unit template, greedily replicate the unit that
 * best improves the objective on the *simulated critical path*, while
 * the resource bound R* holds. After every addition the workload is
 * re-simulated, which re-evaluates the critical path exactly as
 * Sec. 6.2 describes.
 *
 * Candidate evaluation inside each greedy step is embarrassingly
 * parallel: when @p pool is given, the per-unit-kind re-simulations
 * run across its workers, each worker reusing a warm per-worker
 * ExecutionContext for the whole greedy loop. The selected design and
 * its trajectory are identical to the sequential path (all candidates
 * are evaluated, then reduced in unit-kind order on the caller).
 *
 * @param work      the application's compiled programs (all
 *                  algorithms) bound to representative values.
 * @param budget    maximum on-chip resources R*.
 * @param objective what to minimize.
 * @param pool      optional worker pool for candidate evaluation.
 */
GenerationResult generate(const std::vector<WorkItem> &work,
                          const Resources &budget,
                          Objective objective = Objective::AvgLatency,
                          bool out_of_order = true,
                          runtime::ServerPool *pool = nullptr);

/**
 * A fixed manual design point, used as the hand-tuned comparison in
 * Fig. 19/20: resources are split evenly across unit kinds (the
 * "stack hardware until the budget is gone, without workload
 * feedback" strategy).
 */
AcceleratorConfig manualDesign(const Resources &budget,
                               bool out_of_order = true);

/** Objective value of a simulated frame. */
double objectiveValue(const SimResult &result, Objective objective);

} // namespace orianna::hwgen
