#include "hwgen/generator.hpp"

#include <limits>
#include <stdexcept>

#include "runtime/execution_context.hpp"

namespace orianna::hwgen {

double
objectiveValue(const SimResult &result, Objective objective)
{
    switch (objective) {
      case Objective::AvgLatency: {
        // Mean completion across algorithms approximates the average
        // frame latency when algorithms are pipelined frames.
        if (result.algorithmFinishCycle.empty())
            return static_cast<double>(result.cycles);
        double sum = 0.0;
        for (const auto &[tag, cycle] : result.algorithmFinishCycle)
            sum += static_cast<double>(cycle);
        return sum /
               static_cast<double>(result.algorithmFinishCycle.size());
      }
      case Objective::MaxLatency:
        return static_cast<double>(result.cycles);
      case Objective::Energy:
        return result.totalEnergyJ();
    }
    return static_cast<double>(result.cycles);
}

GenerationResult
generate(const std::vector<WorkItem> &work, const Resources &budget,
         Objective objective, bool out_of_order)
{
    AcceleratorConfig config = AcceleratorConfig::minimal(out_of_order);
    config.name = "orianna-generated";
    if (!config.resources().fitsIn(budget))
        throw std::invalid_argument(
            "generate: budget below the minimal accelerator");

    // One execution context serves every candidate evaluation: the
    // dependence graph, cost-model caches, and functional executors
    // are built once, and each run() only rebuilds per-frame scratch.
    runtime::ExecutionContext context(work);

    GenerationResult out;
    SimResult current = context.run(config);
    out.trajectory.push_back({config, current, config.resources()});

    // Greedy growth along the (re-simulated) critical path: try one
    // more instance of every unit kind, keep the best improvement per
    // consumed resource, stop when nothing fits or nothing improves.
    while (true) {
        double best_value = objectiveValue(current, objective);
        const double base_value = best_value;
        int best_kind = -1;
        SimResult best_result;

        for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
            AcceleratorConfig candidate = config;
            ++candidate.units[k];
            if (!candidate.resources().fitsIn(budget))
                continue;
            SimResult sim = context.run(candidate);
            const double value = objectiveValue(sim, objective);
            if (value < best_value - 1e-12) {
                best_value = value;
                best_kind = static_cast<int>(k);
                best_result = sim;
            }
        }

        if (best_kind < 0 || best_value >= base_value)
            break;
        ++config.units[static_cast<std::size_t>(best_kind)];
        current = best_result;
        out.trajectory.push_back({config, current, config.resources()});
    }

    out.config = config;
    out.result = current;
    return out;
}

AcceleratorConfig
manualDesign(const Resources &budget, bool out_of_order)
{
    // Hand-tuned baseline: replicate every unit kind uniformly until
    // the budget is exhausted (no workload feedback).
    AcceleratorConfig config = AcceleratorConfig::minimal(out_of_order);
    config.name = "manual";
    while (true) {
        AcceleratorConfig next = config;
        for (auto &count : next.units)
            ++count;
        if (!next.resources().fitsIn(budget))
            break;
        config = next;
    }
    return config;
}

} // namespace orianna::hwgen
