#include "hwgen/generator.hpp"

#include <array>
#include <limits>
#include <memory>
#include <stdexcept>

#include "runtime/execution_context.hpp"
#include "runtime/server_pool.hpp"

namespace orianna::hwgen {

double
objectiveValue(const SimResult &result, Objective objective)
{
    switch (objective) {
      case Objective::AvgLatency: {
        // Mean completion across algorithms approximates the average
        // frame latency when algorithms are pipelined frames.
        if (result.algorithmFinishCycle.empty())
            return static_cast<double>(result.cycles);
        double sum = 0.0;
        for (const auto &[tag, cycle] : result.algorithmFinishCycle)
            sum += static_cast<double>(cycle);
        return sum /
               static_cast<double>(result.algorithmFinishCycle.size());
      }
      case Objective::MaxLatency:
        return static_cast<double>(result.cycles);
      case Objective::Energy:
        return result.totalEnergyJ();
    }
    return static_cast<double>(result.cycles);
}

GenerationResult
generate(const std::vector<WorkItem> &work, const Resources &budget,
         Objective objective, bool out_of_order,
         runtime::ServerPool *pool)
{
    AcceleratorConfig config = AcceleratorConfig::minimal(out_of_order);
    config.name = "orianna-generated";
    if (!config.resources().fitsIn(budget))
        throw std::invalid_argument(
            "generate: budget below the minimal accelerator");

    // One execution context serves every candidate evaluation: the
    // dependence graph, cost-model caches, and functional executors
    // are built once, and each run() only rebuilds per-frame scratch.
    runtime::ExecutionContext context(work);

    // Pool workers get their own warm contexts, built lazily on first
    // use and reused across every greedy step. Each slot is touched
    // only by its owning worker thread, so no lock is needed.
    std::vector<std::unique_ptr<runtime::ExecutionContext>> contexts;
    if (pool != nullptr)
        contexts.resize(pool->threads());

    GenerationResult out;
    SimResult current = context.run(config);
    out.trajectory.push_back({config, current, config.resources()});

    // Greedy growth along the (re-simulated) critical path: try one
    // more instance of every unit kind, keep the best improvement per
    // consumed resource, stop when nothing fits or nothing improves.
    while (true) {
        const double base_value = objectiveValue(current, objective);

        // Evaluate every fitting candidate. The simulations are
        // independent, so with a pool they fan out across workers;
        // selection below stays a sequential reduction in unit-kind
        // order, giving the exact tie-breaking of the serial loop.
        std::array<bool, hw::kUnitKindCount> fits{};
        std::array<SimResult, hw::kUnitKindCount> sims;
        auto evaluate = [&](std::size_t k,
                            runtime::ExecutionContext &ctx) {
            AcceleratorConfig candidate = config;
            ++candidate.units[k];
            if (!candidate.resources().fitsIn(budget))
                return;
            sims[k] = ctx.run(candidate);
            fits[k] = true;
        };
        if (pool != nullptr) {
            pool->parallelFor(hw::kUnitKindCount, [&](std::size_t k) {
                const int w = runtime::ServerPool::currentWorker();
                auto &ctx = contexts[static_cast<std::size_t>(w)];
                if (!ctx)
                    ctx = std::make_unique<runtime::ExecutionContext>(
                        work);
                evaluate(k, *ctx);
            });
        } else {
            for (std::size_t k = 0; k < hw::kUnitKindCount; ++k)
                evaluate(k, context);
        }

        double best_value = base_value;
        int best_kind = -1;
        for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
            if (!fits[k])
                continue;
            const double value = objectiveValue(sims[k], objective);
            if (value < best_value - 1e-12) {
                best_value = value;
                best_kind = static_cast<int>(k);
            }
        }

        if (best_kind < 0 || best_value >= base_value)
            break;
        ++config.units[static_cast<std::size_t>(best_kind)];
        current = std::move(sims[static_cast<std::size_t>(best_kind)]);
        out.trajectory.push_back({config, current, config.resources()});
    }

    out.config = config;
    out.result = current;
    out.opHistogram.assign(comp::kIsaOpCount, 0);
    for (const WorkItem &item : work) {
        const std::vector<std::size_t> histogram =
            item.program->opHistogram();
        for (std::size_t op = 0; op < histogram.size(); ++op)
            out.opHistogram[op] += histogram[op];
    }
    return out;
}

AcceleratorConfig
manualDesign(const Resources &budget, bool out_of_order)
{
    // Hand-tuned baseline: replicate every unit kind uniformly until
    // the budget is exhausted (no workload feedback).
    AcceleratorConfig config = AcceleratorConfig::minimal(out_of_order);
    config.name = "manual";
    while (true) {
        AcceleratorConfig next = config;
        for (auto &count : next.units)
            ++count;
        if (!next.resources().fitsIn(budget))
            break;
        config = next;
    }
    return config;
}

} // namespace orianna::hwgen
