#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compiler/isa.hpp"
#include "fg/graph.hpp"

namespace orianna::comp {

/** Options for compileGraph(). */
struct CompileOptions
{
    /** Elimination ordering; natural (key-ascending) when empty. */
    std::vector<Key> ordering;

    /** Coarse-grained OoO tag attached to every instruction. */
    std::uint8_t algorithmTag = 0;

    /** Program name for listings. */
    std::string name = "graph";

    /** Datapath precision stamped on the program (DESIGN.md §12). */
    Precision precision = Precision::Fp64;
};

/**
 * The ORIANNA compiler (Sec. 5.2): translate a factor graph into the
 * instruction stream of one Gauss-Newton step.
 *
 * Per factor, the MO-DFG is traversed forward (BFS over the
 * construction order) to emit the error instructions and backward
 * (chain rule) to emit the derivative instructions; whitening SCALER
 * instructions finish the linear-equation construction. The graph is
 * then traversed in elimination order to emit GATHER/QR/EXTRACT
 * sequences per variable (Fig. 5) and MV/VSUB/BSUB sequences for the
 * back substitution (Fig. 6).
 *
 * @p values supplies only the *shapes* of variables (pose dimension,
 * vector sizes); variable numbers are streamed in at run time through
 * LOADV, so one compiled program serves every iteration and frame
 * with the same graph topology.
 */
Program compileGraph(const fg::FactorGraph &graph,
                     const fg::Values &values,
                     const CompileOptions &options = {});

/**
 * The VANILLA-HLS baseline compiler (Sec. 7.1): identical
 * linear-equation construction, but no factor-graph inference — the
 * whole system is gathered into one large dense [A | b], decomposed by
 * a single big QR, and solved by block back-substitution over the
 * dense R. Runs on the same unit templates; the only difference from
 * compileGraph is the absence of sparsity exploitation, which isolates
 * exactly the variable Fig. 16 isolates.
 */
Program compileDenseGraph(const fg::FactorGraph &graph,
                          const fg::Values &values,
                          const CompileOptions &options = {});

} // namespace orianna::comp
