#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/isa.hpp"

namespace orianna::comp {

/**
 * Binary encoding of compiled programs — the artifact the toolchain
 * hands to the accelerator (or stores next to a bitstream). The
 * format is a little-endian, versioned, self-contained container:
 * every constant, camera intrinsic, SDF obstacle and gather placement
 * is embedded, so a decoded program executes without access to the
 * factor graph that produced it.
 */

/** Container version the encoder writes (currently 2). */
std::uint32_t encodingVersion();

/** Oldest container version the decoder still accepts (currently 1). */
std::uint32_t minEncodingVersion();

/** Serialize @p program to bytes. */
std::vector<std::uint8_t> encodeProgram(const Program &program);

/**
 * Parse a binary program.
 * @throws std::runtime_error on truncation, bad magic or version.
 */
Program decodeProgram(const std::vector<std::uint8_t> &bytes);

/** Convenience: encode to / decode from a file. */
void saveProgram(const std::string &path, const Program &program);
Program loadProgram(const std::string &path);

} // namespace orianna::comp
