#include "compiler/ir_dump.hpp"

#include <sstream>

namespace orianna::comp {

namespace {

const char *
phaseColor(std::uint8_t phase)
{
    switch (phase) {
      case 0: return "lightblue";   // Forward/backward lowering.
      case 1: return "lightyellow"; // Gather/QR elimination.
      case 2: return "palegreen";   // Back-substitution.
    }
    return "gray90";
}

} // namespace

std::string
programToDot(const Program &program)
{
    std::ostringstream os;
    // Quoted: program names carry paths ("/tmp/a.g2o") and slashes
    // are not legal in a bare DOT identifier.
    os << "digraph \""
       << (program.name.empty() ? "program" : program.name) << "\" {\n"
       << "  rankdir=LR;\n"
       << "  node [fontsize=10, shape=box, style=filled];\n";
    for (std::size_t i = 0; i < program.instructions.size(); ++i) {
        const Instruction &inst = program.instructions[i];
        os << "  i" << i << " [label=\"%" << i << " "
           << isaOpName(inst.op) << "\\n" << inst.rows << "x"
           << inst.cols;
        if (inst.depth)
            os << "x" << inst.depth;
        os << " -> v" << inst.dst << "\", fillcolor="
           << phaseColor(inst.phase) << "];\n";
        for (std::uint32_t dep : inst.deps)
            os << "  i" << dep << " -> i" << i << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string
programListing(const Program &program)
{
    std::ostringstream os;
    os << program.str();
    os << "phases:";
    const char *names[] = {"lower", "eliminate", "backsub"};
    std::size_t counts[3] = {0, 0, 0};
    for (const Instruction &inst : program.instructions)
        if (inst.phase < 3)
            ++counts[inst.phase];
    for (std::size_t p = 0; p < 3; ++p)
        os << " " << names[p] << "=" << counts[p];
    os << "\n";
    const std::vector<std::size_t> histogram = program.opHistogram();
    os << "ops:";
    for (std::size_t op = 0; op < histogram.size(); ++op)
        if (histogram[op] > 0)
            os << " " << isaOpName(static_cast<IsaOp>(op)) << "="
               << histogram[op];
    os << "\n";
    return os.str();
}

} // namespace orianna::comp
