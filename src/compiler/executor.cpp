#include "compiler/executor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "lie/so.hpp"
#include "matrix/qr.hpp"

namespace orianna::comp {

namespace {

/** Elementwise hinge max(0, eps - x). */
Vector
hinge(const Vector &v, double eps)
{
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = std::max(0.0, eps - v[i]);
    return out;
}

Matrix
hingeJacobian(const Vector &v, double eps)
{
    Matrix j(v.size(), v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        j(i, i) = (v[i] < eps) ? -1.0 : 0.0;
    return j;
}

Vector
project(const Vector &p, const fg::CameraModel &c)
{
    if (p.size() != 3)
        throw std::invalid_argument("PROJ: point must be 3-D");
    if (p[2] <= 1e-9)
        throw std::runtime_error("PROJ: point behind camera");
    return Vector{c.fx * p[0] / p[2] + c.cx, c.fy * p[1] / p[2] + c.cy};
}

Matrix
projectJacobian(const Vector &p, const fg::CameraModel &c)
{
    const double iz = 1.0 / p[2];
    Matrix j(2, 3);
    j(0, 0) = c.fx * iz;
    j(0, 2) = -c.fx * p[0] * iz * iz;
    j(1, 1) = c.fy * iz;
    j(1, 2) = -c.fy * p[1] * iz * iz;
    return j;
}

/** Row-scale by 1/sigma (whitening) for matrices. */
Matrix
scaleRows(const Matrix &m, const Vector &sigmas)
{
    Matrix out = m;
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            out(i, j) /= sigmas[i];
    return out;
}

Vector
scaleRows(const Vector &v, const Vector &sigmas)
{
    Vector out = v;
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] /= sigmas[i];
    return out;
}

} // namespace

void
Executor::reset()
{
    slots_.assign(program_->valueSlots, std::monostate{});
}

void
Executor::corruptSlot(std::uint32_t index)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    SlotValue &slot = slots_.at(index);
    if (std::holds_alternative<Matrix>(slot)) {
        Matrix &m = std::get<Matrix>(slot);
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                m(i, j) = nan;
    } else if (std::holds_alternative<Vector>(slot)) {
        Vector &v = std::get<Vector>(slot);
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = nan;
    }
}

const Matrix &
Executor::matrixAt(std::uint32_t slot) const
{
    if (!std::holds_alternative<Matrix>(slots_[slot]))
        throw std::logic_error("Executor: slot is not a matrix");
    return std::get<Matrix>(slots_[slot]);
}

const Vector &
Executor::vectorAt(std::uint32_t slot) const
{
    if (!std::holds_alternative<Vector>(slots_[slot]))
        throw std::logic_error("Executor: slot is not a vector");
    return std::get<Vector>(slots_[slot]);
}

void
Executor::step(std::size_t index, const fg::Values &values)
{
    const Instruction &inst = program_->instructions[index];
    auto &dst = slots_[inst.dst];

    auto isVec = [&](std::uint32_t s) {
        return std::holds_alternative<Vector>(slots_[s]);
    };

    switch (inst.op) {
      case IsaOp::LOADC:
        if (inst.constVec.size() > 0)
            dst = inst.constVec;
        else
            dst = inst.constMat;
        break;
      case IsaOp::LOADV:
        switch (inst.component) {
          case VarComponent::Phi:
            dst = values.pose(inst.key).phi();
            break;
          case VarComponent::Translation:
            dst = values.pose(inst.key).t();
            break;
          case VarComponent::Whole:
            dst = values.vector(inst.key);
            break;
        }
        break;
      case IsaOp::EXP:
        dst = lie::expSo(vectorAt(inst.srcs[0]));
        break;
      case IsaOp::LOG:
        dst = lie::logSo(matrixAt(inst.srcs[0]));
        break;
      case IsaOp::RT:
        dst = matrixAt(inst.srcs[0]).transpose();
        break;
      case IsaOp::RR:
      case IsaOp::MM: {
        const Matrix &a = matrixAt(inst.srcs[0]);
        if (isVec(inst.srcs[1])) {
            // Vector operand treated as a column matrix.
            dst = a * vectorAt(inst.srcs[1]).asColumn();
        } else {
            dst = a * matrixAt(inst.srcs[1]);
        }
        break;
      }
      case IsaOp::RV:
      case IsaOp::MV:
        dst = matrixAt(inst.srcs[0]) * vectorAt(inst.srcs[1]);
        break;
      case IsaOp::VADD:
        if (isVec(inst.srcs[0]))
            dst = vectorAt(inst.srcs[0]) + vectorAt(inst.srcs[1]);
        else
            dst = matrixAt(inst.srcs[0]) + matrixAt(inst.srcs[1]);
        break;
      case IsaOp::VSUB:
        if (isVec(inst.srcs[0]))
            dst = vectorAt(inst.srcs[0]) - vectorAt(inst.srcs[1]);
        else
            dst = matrixAt(inst.srcs[0]) - matrixAt(inst.srcs[1]);
        break;
      case IsaOp::NEG:
        if (isVec(inst.srcs[0]))
            dst = -vectorAt(inst.srcs[0]);
        else
            dst = -matrixAt(inst.srcs[0]);
        break;
      case IsaOp::HAT:
        dst = lie::hat(vectorAt(inst.srcs[0]));
        break;
      case IsaOp::JR:
        dst = lie::rightJacobian(vectorAt(inst.srcs[0]));
        break;
      case IsaOp::JRINV:
        dst = lie::rightJacobianInv(vectorAt(inst.srcs[0]));
        break;
      case IsaOp::PROJ:
        dst = project(vectorAt(inst.srcs[0]), inst.camera);
        break;
      case IsaOp::PROJJ:
        dst = projectJacobian(vectorAt(inst.srcs[0]), inst.camera);
        break;
      case IsaOp::SDF:
        dst = Vector{inst.sdf->distance(vectorAt(inst.srcs[0]))};
        break;
      case IsaOp::SDFJ: {
        const Vector g = inst.sdf->gradient(vectorAt(inst.srcs[0]));
        Matrix j(1, g.size());
        for (std::size_t i = 0; i < g.size(); ++i)
            j(0, i) = g[i];
        dst = std::move(j);
        break;
      }
      case IsaOp::HINGE:
        dst = hinge(vectorAt(inst.srcs[0]), inst.hingeEps);
        break;
      case IsaOp::HINGEJ:
        dst = hingeJacobian(vectorAt(inst.srcs[0]), inst.hingeEps);
        break;
      case IsaOp::NORM:
        dst = Vector{vectorAt(inst.srcs[0]).norm()};
        break;
      case IsaOp::HUBERW: {
        const double norm = vectorAt(inst.srcs[0]).norm();
        const double k = inst.hingeEps;
        dst = Vector{(k <= 0.0 || norm <= k)
                         ? 1.0
                         : std::sqrt(k / norm)};
        break;
      }
      case IsaOp::SMUL: {
        const double scale = vectorAt(inst.srcs[1])[0];
        if (isVec(inst.srcs[0]))
            dst = vectorAt(inst.srcs[0]) * scale;
        else
            dst = matrixAt(inst.srcs[0]) * scale;
        break;
      }
      case IsaOp::NORMJ: {
        const Vector &v = vectorAt(inst.srcs[0]);
        const double n = v.norm();
        Matrix j(1, v.size());
        if (n > 1e-12)
            for (std::size_t i = 0; i < v.size(); ++i)
                j(0, i) = v[i] / n;
        dst = std::move(j);
        break;
      }
      case IsaOp::SCALER:
        if (isVec(inst.srcs[0]))
            dst = scaleRows(vectorAt(inst.srcs[0]), inst.constVec);
        else
            dst = scaleRows(matrixAt(inst.srcs[0]), inst.constVec);
        break;
      case IsaOp::GATHER: {
        // All-rhs placements at column zero assemble a vector;
        // otherwise a dense matrix is built from the placements.
        bool vector_gather = !inst.placements.empty();
        for (const GatherPlacement &p : inst.placements)
            vector_gather = vector_gather && p.isRhs && p.colBegin == 0;
        if (vector_gather) {
            Vector out(inst.rows);
            for (const GatherPlacement &p : inst.placements)
                out.setSegment(p.rowBegin, vectorAt(p.src));
            dst = std::move(out);
        } else {
            Matrix out(inst.rows, inst.cols);
            for (const GatherPlacement &p : inst.placements) {
                if (p.isRhs) {
                    const Vector &v = vectorAt(p.src);
                    for (std::size_t i = 0; i < v.size(); ++i)
                        out(p.rowBegin + i, p.colBegin) = v[i];
                } else {
                    out.setBlock(p.rowBegin, p.colBegin,
                                 matrixAt(p.src));
                }
            }
            dst = std::move(out);
        }
        break;
      }
      case IsaOp::QR: {
        // Givens-array template on the augmented [A | b]: the last
        // column is the rhs and is carried through the rotations.
        const Matrix &aug = matrixAt(inst.srcs[0]);
        const std::size_t n = aug.cols() - 1;
        Matrix a = aug.block(0, 0, aug.rows(), n);
        Vector rhs = aug.col(n);
        mat::QrResult qr = mat::givensQr(a, rhs);
        Matrix out(aug.rows(), aug.cols());
        out.setBlock(0, 0, qr.r);
        for (std::size_t i = 0; i < rhs.size(); ++i)
            out(i, n) = qr.rhs[i];
        dst = std::move(out);
        break;
      }
      case IsaOp::EXTRACT: {
        const Matrix &src = matrixAt(inst.srcs[0]);
        if (inst.extractVector) {
            Vector out(inst.rows);
            for (std::size_t i = 0; i < inst.rows; ++i)
                out[i] = src(inst.extractRow + i, inst.extractCol);
            dst = std::move(out);
        } else {
            dst = src.block(inst.extractRow, inst.extractCol, inst.rows,
                            inst.cols);
        }
        break;
      }
      case IsaOp::BSUB:
        dst = mat::backSubstitute(matrixAt(inst.srcs[0]),
                                  vectorAt(inst.srcs[1]));
        break;
      case IsaOp::STORE:
        break; // Host-visibility marker; no data change.
      case IsaOp::GSCALE: {
        // Fused GATHER + SCALER: assemble exactly like GATHER, then
        // whiten rows exactly like SCALER — same FLOPs, same order,
        // so fusion stays bit-identical.
        bool vector_gather = !inst.placements.empty();
        for (const GatherPlacement &p : inst.placements)
            vector_gather = vector_gather && p.isRhs && p.colBegin == 0;
        if (vector_gather) {
            Vector out(inst.rows);
            for (const GatherPlacement &p : inst.placements)
                out.setSegment(p.rowBegin, vectorAt(p.src));
            dst = scaleRows(out, inst.constVec);
        } else {
            Matrix out(inst.rows, inst.cols);
            for (const GatherPlacement &p : inst.placements) {
                if (p.isRhs) {
                    const Vector &v = vectorAt(p.src);
                    for (std::size_t i = 0; i < v.size(); ++i)
                        out(p.rowBegin + i, p.colBegin) = v[i];
                } else {
                    out.setBlock(p.rowBegin, p.colBegin,
                                 matrixAt(p.src));
                }
            }
            dst = scaleRows(out, inst.constVec);
        }
        break;
      }
      case IsaOp::MVSUB:
        // Fused MV + VSUB: dst = src0 - src1 * src2, evaluated as the
        // unfused pair would (gemv first, then the subtraction).
        dst = vectorAt(inst.srcs[0]) -
              matrixAt(inst.srcs[1]) * vectorAt(inst.srcs[2]);
        break;
    }
}

std::map<Key, Vector>
Executor::run(const fg::Values &values)
{
    reset();
    for (std::size_t i = 0; i < program_->instructions.size(); ++i)
        step(i, values);

    std::map<Key, Vector> deltas;
    for (const DeltaBinding &binding : program_->deltas)
        deltas.emplace(binding.key, vectorAt(binding.slot));
    return deltas;
}

fg::Values
applyProgramStep(const Program &program, const fg::Values &values)
{
    Executor executor(program);
    const auto deltas = executor.run(values);
    fg::Values updated = values;
    updated.retractAll(deltas);
    return updated;
}

} // namespace orianna::comp
