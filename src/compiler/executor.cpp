#include "compiler/executor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "lie/so.hpp"
#include "matrix/qr.hpp"

namespace orianna::comp {

namespace {

/**
 * Widen/narrow shims around the extended-precision special-function
 * units (lie::, camera projection, SDF lookups) and the host
 * boundary (LOADC/LOADV payloads in, deltas out). For T = double both
 * directions are the identity, so the fp64 interpreter compiles to
 * the exact pre-template code.
 */
template <typename T> struct Ext;

template <> struct Ext<double>
{
    static const Vector &in(const Vector &v) { return v; }
    static const Matrix &in(const Matrix &m) { return m; }
    static Vector out(Vector v) { return v; }
    static Matrix out(Matrix m) { return m; }
};

template <> struct Ext<float>
{
    static Vector in(const mat::VectorF &v) { return mat::toDouble(v); }
    static Matrix in(const mat::MatrixF &m) { return mat::toDouble(m); }
    static mat::VectorF out(const Vector &v) { return mat::toFloat(v); }
    static mat::MatrixF out(const Matrix &m) { return mat::toFloat(m); }
};

/** Elementwise hinge max(0, eps - x). */
template <typename T>
mat::VectorT<T>
hinge(const mat::VectorT<T> &v, double eps)
{
    mat::VectorT<T> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = std::max(T(0), T(eps) - v[i]);
    return out;
}

template <typename T>
mat::MatrixT<T>
hingeJacobian(const mat::VectorT<T> &v, double eps)
{
    mat::MatrixT<T> j(v.size(), v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        j(i, i) = (v[i] < T(eps)) ? T(-1) : T(0);
    return j;
}

Vector
project(const Vector &p, const fg::CameraModel &c)
{
    if (p.size() != 3)
        throw std::invalid_argument("PROJ: point must be 3-D");
    if (p[2] <= 1e-9)
        throw std::runtime_error("PROJ: point behind camera");
    return Vector{c.fx * p[0] / p[2] + c.cx, c.fy * p[1] / p[2] + c.cy};
}

Matrix
projectJacobian(const Vector &p, const fg::CameraModel &c)
{
    const double iz = 1.0 / p[2];
    Matrix j(2, 3);
    j(0, 0) = c.fx * iz;
    j(0, 2) = -c.fx * p[0] * iz * iz;
    j(1, 1) = c.fy * iz;
    j(1, 2) = -c.fy * p[1] * iz * iz;
    return j;
}

/** Row-scale by 1/sigma (whitening) for matrices. */
template <typename T>
mat::MatrixT<T>
scaleRows(const mat::MatrixT<T> &m, const Vector &sigmas)
{
    mat::MatrixT<T> out = m;
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            out(i, j) /= T(sigmas[i]);
    return out;
}

template <typename T>
mat::VectorT<T>
scaleRows(const mat::VectorT<T> &v, const Vector &sigmas)
{
    mat::VectorT<T> out = v;
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] /= T(sigmas[i]);
    return out;
}

} // namespace

template <typename T>
void
ExecutorT<T>::reset()
{
    slots_.assign(program_->valueSlots, std::monostate{});
}

template <typename T>
void
ExecutorT<T>::corruptSlot(std::uint32_t index)
{
    const T nan = std::numeric_limits<T>::quiet_NaN();
    SlotValueT<T> &slot = slots_.at(index);
    if (std::holds_alternative<mat::MatrixT<T>>(slot)) {
        mat::MatrixT<T> &m = std::get<mat::MatrixT<T>>(slot);
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                m(i, j) = nan;
    } else if (std::holds_alternative<mat::VectorT<T>>(slot)) {
        mat::VectorT<T> &v = std::get<mat::VectorT<T>>(slot);
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = nan;
    }
}

template <typename T>
const mat::MatrixT<T> &
ExecutorT<T>::matrixAt(std::uint32_t slot) const
{
    if (!std::holds_alternative<mat::MatrixT<T>>(slots_[slot]))
        throw std::logic_error("Executor: slot is not a matrix");
    return std::get<mat::MatrixT<T>>(slots_[slot]);
}

template <typename T>
const mat::VectorT<T> &
ExecutorT<T>::vectorAt(std::uint32_t slot) const
{
    if (!std::holds_alternative<mat::VectorT<T>>(slots_[slot]))
        throw std::logic_error("Executor: slot is not a vector");
    return std::get<mat::VectorT<T>>(slots_[slot]);
}

template <typename T>
void
ExecutorT<T>::step(std::size_t index, const fg::Values &values)
{
    const Instruction &inst = program_->instructions[index];
    auto &dst = slots_[inst.dst];

    auto isVec = [&](std::uint32_t s) {
        return std::holds_alternative<mat::VectorT<T>>(slots_[s]);
    };

    switch (inst.op) {
      case IsaOp::LOADC:
        if (inst.constVec.size() > 0)
            dst = Ext<T>::out(inst.constVec);
        else
            dst = Ext<T>::out(inst.constMat);
        break;
      case IsaOp::LOADV:
        switch (inst.component) {
          case VarComponent::Phi:
            dst = Ext<T>::out(values.pose(inst.key).phi());
            break;
          case VarComponent::Translation:
            dst = Ext<T>::out(values.pose(inst.key).t());
            break;
          case VarComponent::Whole:
            dst = Ext<T>::out(values.vector(inst.key));
            break;
        }
        break;
      case IsaOp::EXP:
        dst = Ext<T>::out(lie::expSo(Ext<T>::in(vectorAt(inst.srcs[0]))));
        break;
      case IsaOp::LOG:
        dst = Ext<T>::out(lie::logSo(Ext<T>::in(matrixAt(inst.srcs[0]))));
        break;
      case IsaOp::RT:
        dst = matrixAt(inst.srcs[0]).transpose();
        break;
      case IsaOp::RR:
      case IsaOp::MM: {
        const mat::MatrixT<T> &a = matrixAt(inst.srcs[0]);
        if (isVec(inst.srcs[1])) {
            // Vector operand treated as a column matrix.
            dst = a * vectorAt(inst.srcs[1]).asColumn();
        } else {
            dst = a * matrixAt(inst.srcs[1]);
        }
        break;
      }
      case IsaOp::RV:
      case IsaOp::MV:
        dst = matrixAt(inst.srcs[0]) * vectorAt(inst.srcs[1]);
        break;
      case IsaOp::VADD:
        if (isVec(inst.srcs[0]))
            dst = vectorAt(inst.srcs[0]) + vectorAt(inst.srcs[1]);
        else
            dst = matrixAt(inst.srcs[0]) + matrixAt(inst.srcs[1]);
        break;
      case IsaOp::VSUB:
        if (isVec(inst.srcs[0]))
            dst = vectorAt(inst.srcs[0]) - vectorAt(inst.srcs[1]);
        else
            dst = matrixAt(inst.srcs[0]) - matrixAt(inst.srcs[1]);
        break;
      case IsaOp::NEG:
        if (isVec(inst.srcs[0]))
            dst = -vectorAt(inst.srcs[0]);
        else
            dst = -matrixAt(inst.srcs[0]);
        break;
      case IsaOp::HAT:
        dst = Ext<T>::out(lie::hat(Ext<T>::in(vectorAt(inst.srcs[0]))));
        break;
      case IsaOp::JR:
        dst = Ext<T>::out(
            lie::rightJacobian(Ext<T>::in(vectorAt(inst.srcs[0]))));
        break;
      case IsaOp::JRINV:
        dst = Ext<T>::out(
            lie::rightJacobianInv(Ext<T>::in(vectorAt(inst.srcs[0]))));
        break;
      case IsaOp::PROJ:
        dst = Ext<T>::out(
            project(Ext<T>::in(vectorAt(inst.srcs[0])), inst.camera));
        break;
      case IsaOp::PROJJ:
        dst = Ext<T>::out(projectJacobian(
            Ext<T>::in(vectorAt(inst.srcs[0])), inst.camera));
        break;
      case IsaOp::SDF:
        dst = Ext<T>::out(Vector{
            inst.sdf->distance(Ext<T>::in(vectorAt(inst.srcs[0])))});
        break;
      case IsaOp::SDFJ: {
        const Vector g =
            inst.sdf->gradient(Ext<T>::in(vectorAt(inst.srcs[0])));
        Matrix j(1, g.size());
        for (std::size_t i = 0; i < g.size(); ++i)
            j(0, i) = g[i];
        dst = Ext<T>::out(std::move(j));
        break;
      }
      case IsaOp::HINGE:
        dst = hinge(vectorAt(inst.srcs[0]), inst.hingeEps);
        break;
      case IsaOp::HINGEJ:
        dst = hingeJacobian(vectorAt(inst.srcs[0]), inst.hingeEps);
        break;
      case IsaOp::NORM:
        dst = mat::VectorT<T>{vectorAt(inst.srcs[0]).norm()};
        break;
      case IsaOp::HUBERW: {
        const T norm = vectorAt(inst.srcs[0]).norm();
        const T k = T(inst.hingeEps);
        dst = mat::VectorT<T>{(k <= T(0) || norm <= k)
                                  ? T(1)
                                  : std::sqrt(k / norm)};
        break;
      }
      case IsaOp::SMUL: {
        const T scale = vectorAt(inst.srcs[1])[0];
        if (isVec(inst.srcs[0]))
            dst = vectorAt(inst.srcs[0]) * scale;
        else
            dst = matrixAt(inst.srcs[0]) * scale;
        break;
      }
      case IsaOp::NORMJ: {
        const mat::VectorT<T> &v = vectorAt(inst.srcs[0]);
        const T n = v.norm();
        mat::MatrixT<T> j(1, v.size());
        if (n > T(1e-12))
            for (std::size_t i = 0; i < v.size(); ++i)
                j(0, i) = v[i] / n;
        dst = std::move(j);
        break;
      }
      case IsaOp::SCALER:
        if (isVec(inst.srcs[0]))
            dst = scaleRows(vectorAt(inst.srcs[0]), inst.constVec);
        else
            dst = scaleRows(matrixAt(inst.srcs[0]), inst.constVec);
        break;
      case IsaOp::GATHER: {
        // All-rhs placements at column zero assemble a vector;
        // otherwise a dense matrix is built from the placements.
        bool vector_gather = !inst.placements.empty();
        for (const GatherPlacement &p : inst.placements)
            vector_gather = vector_gather && p.isRhs && p.colBegin == 0;
        if (vector_gather) {
            mat::VectorT<T> out(inst.rows);
            for (const GatherPlacement &p : inst.placements)
                out.setSegment(p.rowBegin, vectorAt(p.src));
            dst = std::move(out);
        } else {
            mat::MatrixT<T> out(inst.rows, inst.cols);
            for (const GatherPlacement &p : inst.placements) {
                if (p.isRhs) {
                    const mat::VectorT<T> &v = vectorAt(p.src);
                    for (std::size_t i = 0; i < v.size(); ++i)
                        out(p.rowBegin + i, p.colBegin) = v[i];
                } else {
                    out.setBlock(p.rowBegin, p.colBegin,
                                 matrixAt(p.src));
                }
            }
            dst = std::move(out);
        }
        break;
      }
      case IsaOp::QR: {
        // Givens-array template on the augmented [A | b]: the last
        // column is the rhs and is carried through the rotations.
        const mat::MatrixT<T> &aug = matrixAt(inst.srcs[0]);
        const std::size_t n = aug.cols() - 1;
        mat::MatrixT<T> a = aug.block(0, 0, aug.rows(), n);
        mat::VectorT<T> rhs = aug.col(n);
        mat::QrResultT<T> qr = mat::givensQr(a, rhs);
        mat::MatrixT<T> out(aug.rows(), aug.cols());
        out.setBlock(0, 0, qr.r);
        for (std::size_t i = 0; i < rhs.size(); ++i)
            out(i, n) = qr.rhs[i];
        dst = std::move(out);
        break;
      }
      case IsaOp::EXTRACT: {
        const mat::MatrixT<T> &src = matrixAt(inst.srcs[0]);
        if (inst.extractVector) {
            mat::VectorT<T> out(inst.rows);
            for (std::size_t i = 0; i < inst.rows; ++i)
                out[i] = src(inst.extractRow + i, inst.extractCol);
            dst = std::move(out);
        } else {
            dst = src.block(inst.extractRow, inst.extractCol, inst.rows,
                            inst.cols);
        }
        break;
      }
      case IsaOp::BSUB:
        dst = mat::backSubstitute(matrixAt(inst.srcs[0]),
                                  vectorAt(inst.srcs[1]));
        break;
      case IsaOp::STORE:
        break; // Host-visibility marker; no data change.
      case IsaOp::GSCALE: {
        // Fused GATHER + SCALER: assemble exactly like GATHER, then
        // whiten rows exactly like SCALER — same FLOPs, same order,
        // so fusion stays bit-identical.
        bool vector_gather = !inst.placements.empty();
        for (const GatherPlacement &p : inst.placements)
            vector_gather = vector_gather && p.isRhs && p.colBegin == 0;
        if (vector_gather) {
            mat::VectorT<T> out(inst.rows);
            for (const GatherPlacement &p : inst.placements)
                out.setSegment(p.rowBegin, vectorAt(p.src));
            dst = scaleRows(out, inst.constVec);
        } else {
            mat::MatrixT<T> out(inst.rows, inst.cols);
            for (const GatherPlacement &p : inst.placements) {
                if (p.isRhs) {
                    const mat::VectorT<T> &v = vectorAt(p.src);
                    for (std::size_t i = 0; i < v.size(); ++i)
                        out(p.rowBegin + i, p.colBegin) = v[i];
                } else {
                    out.setBlock(p.rowBegin, p.colBegin,
                                 matrixAt(p.src));
                }
            }
            dst = scaleRows(out, inst.constVec);
        }
        break;
      }
      case IsaOp::MVSUB:
        // Fused MV + VSUB: dst = src0 - src1 * src2, evaluated as the
        // unfused pair would (gemv first, then the subtraction).
        dst = vectorAt(inst.srcs[0]) -
              matrixAt(inst.srcs[1]) * vectorAt(inst.srcs[2]);
        break;
    }
}

template <typename T>
Vector
ExecutorT<T>::deltaAt(std::uint32_t index) const
{
    return Ext<T>::in(vectorAt(index));
}

template <typename T>
std::map<Key, Vector>
ExecutorT<T>::run(const fg::Values &values)
{
    reset();
    for (std::size_t i = 0; i < program_->instructions.size(); ++i)
        step(i, values);

    std::map<Key, Vector> deltas;
    for (const DeltaBinding &binding : program_->deltas)
        deltas.emplace(binding.key, Ext<T>::in(vectorAt(binding.slot)));
    return deltas;
}

// The two supported datapath precisions (DESIGN.md §12).
template class ExecutorT<double>;
template class ExecutorT<float>;

fg::Values
applyProgramStep(const Program &program, const fg::Values &values)
{
    std::map<Key, Vector> deltas;
    if (program.precision == Precision::Fp32) {
        Executor32 executor(program);
        deltas = executor.run(values);
    } else {
        Executor executor(program);
        deltas = executor.run(values);
    }
    fg::Values updated = values;
    updated.retractAll(deltas);
    return updated;
}

} // namespace orianna::comp
