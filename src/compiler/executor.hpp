#pragma once

#include <map>
#include <variant>

#include "compiler/isa.hpp"

namespace orianna::comp {

/** A value-table slot: matrix, vector, or empty. */
template <typename T>
using SlotValueT =
    std::variant<std::monostate, mat::MatrixT<T>, mat::VectorT<T>>;

using SlotValue = SlotValueT<double>;

/**
 * Reference (functional) semantics of the ORIANNA ISA.
 *
 * Executes a compiled Program against a value table, resolving LOADV
 * from the supplied Values. The accelerator simulator (src/hw) reuses
 * this interpreter for the numerics and adds the timing, energy and
 * resource models on top, so the scheduled accelerator and this
 * reference path can never diverge numerically.
 *
 * T is the datapath scalar (DESIGN.md §12): double is the bit-exact
 * reference, float the fp32 accelerator mode. In fp32 mode the
 * matrix/vector units run natively in float, while the
 * special-function units (Exp/Log/Jr, projection, SDF lookups) widen
 * to double internally and narrow the result — hardware SFUs evaluate
 * in extended precision, so the model does too. Host-side inputs
 * (Values, constant payloads) are always double and are narrowed at
 * the LOAD boundary; deltas widen back to double on the way out.
 * Only the double and float instantiations are defined (executor.cpp).
 */
template <typename T>
class ExecutorT
{
  public:
    /**
     * Binds @p program and sizes the slot arena once; the table is
     * never reallocated afterwards. A fresh executor starts with all
     * slots empty, as if reset() had been called.
     */
    explicit ExecutorT(const Program &program) : program_(&program)
    {
        slots_.resize(program.valueSlots);
    }

    /**
     * Run the whole program in order. Returns the tangent updates
     * (delta) per variable from the program's delta bindings, widened
     * to double (retraction always happens in double on the host).
     */
    std::map<Key, Vector> run(const fg::Values &values);

    /**
     * Execute a single instruction against the value table. Public so
     * the cycle-level scheduler can fire instructions in its own
     * (out-of-order) sequence.
     */
    void step(std::size_t index, const fg::Values &values);

    /**
     * Clear every slot back to empty (cold reset). Rarely needed
     * between frames: compiled programs write each slot before
     * reading it, so long-lived contexts keep the arena warm and
     * simply overwrite last frame's values in place.
     */
    void reset();

    /** Read back a slot (for tests and delta extraction). */
    const SlotValueT<T> &slot(std::uint32_t index) const
    {
        return slots_.at(index);
    }

    /** Read back a delta slot widened to double (host readback). */
    Vector deltaAt(std::uint32_t index) const;

    /**
     * Overwrite every element of @p index with quiet NaN, keeping the
     * shape. The hardware fault-injection harness (src/hw) models a
     * corrupted-output fault this way: a poisoned value propagates
     * through its consumers exactly like the upset it stands for, and
     * the runtime detects it in the deltas.
     */
    void corruptSlot(std::uint32_t index);

  private:
    const mat::MatrixT<T> &matrixAt(std::uint32_t slot) const;
    const mat::VectorT<T> &vectorAt(std::uint32_t slot) const;

    const Program *program_;
    std::vector<SlotValueT<T>> slots_;
};

using Executor = ExecutorT<double>;
using Executor32 = ExecutorT<float>;

extern template class ExecutorT<double>;
extern template class ExecutorT<float>;

/**
 * Convenience wrapper: one Gauss-Newton step of @p program applied to
 * @p values (run + retract). Honours the program's precision tag:
 * Fp32 programs step through the float interpreter.
 */
fg::Values applyProgramStep(const Program &program,
                            const fg::Values &values);

} // namespace orianna::comp
