#pragma once

#include <map>
#include <variant>

#include "compiler/isa.hpp"

namespace orianna::comp {

/** A value-table slot: matrix, vector, or empty. */
using SlotValue = std::variant<std::monostate, Matrix, Vector>;

/**
 * Reference (functional) semantics of the ORIANNA ISA.
 *
 * Executes a compiled Program against a value table, resolving LOADV
 * from the supplied Values. The accelerator simulator (src/hw) reuses
 * this interpreter for the numerics and adds the timing, energy and
 * resource models on top, so the scheduled accelerator and this
 * reference path can never diverge numerically.
 */
class Executor
{
  public:
    /**
     * Binds @p program and sizes the slot arena once; the table is
     * never reallocated afterwards. A fresh executor starts with all
     * slots empty, as if reset() had been called.
     */
    explicit Executor(const Program &program) : program_(&program)
    {
        slots_.resize(program.valueSlots);
    }

    /**
     * Run the whole program in order. Returns the tangent updates
     * (delta) per variable from the program's delta bindings.
     */
    std::map<Key, Vector> run(const fg::Values &values);

    /**
     * Execute a single instruction against the value table. Public so
     * the cycle-level scheduler can fire instructions in its own
     * (out-of-order) sequence.
     */
    void step(std::size_t index, const fg::Values &values);

    /**
     * Clear every slot back to empty (cold reset). Rarely needed
     * between frames: compiled programs write each slot before
     * reading it, so long-lived contexts keep the arena warm and
     * simply overwrite last frame's values in place.
     */
    void reset();

    /** Read back a slot (for tests and delta extraction). */
    const SlotValue &slot(std::uint32_t index) const
    {
        return slots_.at(index);
    }

    /**
     * Overwrite every element of @p index with quiet NaN, keeping the
     * shape. The hardware fault-injection harness (src/hw) models a
     * corrupted-output fault this way: a poisoned value propagates
     * through its consumers exactly like the upset it stands for, and
     * the runtime detects it in the deltas.
     */
    void corruptSlot(std::uint32_t index);

  private:
    const Matrix &matrixAt(std::uint32_t slot) const;
    const Vector &vectorAt(std::uint32_t slot) const;

    const Program *program_;
    std::vector<SlotValue> slots_;
};

/**
 * Convenience wrapper: one Gauss-Newton step of @p program applied to
 * @p values (run + retract). Returns the updated values.
 */
fg::Values applyProgramStep(const Program &program,
                            const fg::Values &values);

} // namespace orianna::comp
