#include "compiler/optimize.hpp"

#include "compiler/pass_manager.hpp"
#include "compiler/passes/passes.hpp"

namespace orianna::comp {

Program
optimizeProgram(const Program &program, OptimizeStats *stats)
{
    // Back-compat wrapper over the pass pipeline: the historical
    // cleanup pair, in the historical order. Callers wanting the full
    // pipeline (CSE, peephole fusion) build a PassManager instead.
    PassManager pm;
    pm.add(passes::constantDedup());
    pm.add(passes::deadCodeElimination());

    Program out = program;
    const std::vector<PassStats> pass_stats = pm.run(out);
    if (stats != nullptr) {
        stats->before = program.instructions.size();
        stats->after = out.instructions.size();
        stats->mergedConstants = pass_stats[0].rewrites;
        stats->removedDead = pass_stats[1].rewrites;
    }
    return out;
}

} // namespace orianna::comp
