#include "compiler/optimize.hpp"

#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

namespace orianna::comp {

namespace {

/** Byte-exact key of a LOADC payload. */
std::string
constantKey(const Instruction &inst)
{
    std::string key;
    auto append = [&key](const void *data, std::size_t n) {
        key.append(static_cast<const char *>(data), n);
    };
    const std::uint32_t rows =
        static_cast<std::uint32_t>(inst.constMat.rows());
    const std::uint32_t cols =
        static_cast<std::uint32_t>(inst.constMat.cols());
    append(&rows, sizeof(rows));
    append(&cols, sizeof(cols));
    for (std::size_t i = 0; i < inst.constMat.rows(); ++i)
        for (std::size_t j = 0; j < inst.constMat.cols(); ++j) {
            const double v = inst.constMat(i, j);
            append(&v, sizeof(v));
        }
    const std::uint32_t n =
        static_cast<std::uint32_t>(inst.constVec.size());
    append(&n, sizeof(n));
    for (std::size_t i = 0; i < inst.constVec.size(); ++i) {
        const double v = inst.constVec[i];
        append(&v, sizeof(v));
    }
    return key;
}

} // namespace

Program
optimizeProgram(const Program &program, OptimizeStats *stats)
{
    const auto &instrs = program.instructions;
    const std::size_t n = instrs.size();

    // ---- Pass 1: constant deduplication (slot remapping) ----------
    std::map<std::uint32_t, std::uint32_t> slot_remap;
    std::vector<bool> drop(n, false);
    std::map<std::string, std::uint32_t> seen_constants;
    std::size_t merged = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (instrs[i].op != IsaOp::LOADC)
            continue;
        const std::string key = constantKey(instrs[i]);
        auto [it, inserted] =
            seen_constants.emplace(key, instrs[i].dst);
        if (!inserted) {
            slot_remap[instrs[i].dst] = it->second;
            drop[i] = true;
            ++merged;
        }
    }
    auto remap = [&](std::uint32_t slot) {
        auto it = slot_remap.find(slot);
        return it == slot_remap.end() ? slot : it->second;
    };

    // ---- Pass 2: liveness from the STORE roots --------------------
    // producerOf[slot] = instruction index defining it.
    std::vector<std::size_t> producer(program.valueSlots, SIZE_MAX);
    for (std::size_t i = 0; i < n; ++i)
        if (!drop[i] && instrs[i].op != IsaOp::STORE)
            producer[instrs[i].dst] = i;

    std::vector<bool> live(n, false);
    std::vector<std::size_t> worklist;
    for (std::size_t i = 0; i < n; ++i) {
        if (instrs[i].op == IsaOp::STORE && !drop[i]) {
            live[i] = true;
            worklist.push_back(i);
        }
    }
    while (!worklist.empty()) {
        const std::size_t i = worklist.back();
        worklist.pop_back();
        for (std::uint32_t src : instrs[i].srcs) {
            const std::size_t p = producer[remap(src)];
            if (p != SIZE_MAX && !live[p]) {
                live[p] = true;
                worklist.push_back(p);
            }
        }
    }

    // ---- Rewrite: renumber slots, rebuild dependences --------------
    Program out;
    out.name = program.name;
    out.algorithm = program.algorithm;

    std::map<std::uint32_t, std::uint32_t> new_slot;
    std::map<std::uint32_t, std::uint32_t> producer_index;
    std::uint32_t next_slot = 0;
    std::size_t removed = 0;

    auto finalSlot = [&](std::uint32_t old_slot) {
        auto it = new_slot.find(remap(old_slot));
        if (it == new_slot.end())
            throw std::logic_error(
                "optimizeProgram: use of undefined slot");
        return it->second;
    };

    for (std::size_t i = 0; i < n; ++i) {
        if (drop[i] || !live[i]) {
            if (!drop[i])
                ++removed;
            continue;
        }
        Instruction inst = instrs[i];
        inst.deps.clear();
        for (std::uint32_t &src : inst.srcs)
            src = finalSlot(src);
        for (GatherPlacement &p : inst.placements)
            p.src = finalSlot(p.src);
        for (std::uint32_t src : inst.srcs) {
            auto it = producer_index.find(src);
            if (it != producer_index.end())
                inst.deps.push_back(it->second);
        }
        if (inst.op == IsaOp::STORE) {
            inst.dst = inst.srcs[0];
        } else {
            new_slot[inst.dst] = next_slot;
            inst.dst = next_slot;
            producer_index[next_slot] = static_cast<std::uint32_t>(
                out.instructions.size());
            ++next_slot;
        }
        out.instructions.push_back(std::move(inst));
    }
    out.valueSlots = next_slot;
    for (const DeltaBinding &binding : program.deltas)
        out.deltas.push_back({binding.key, finalSlot(binding.slot)});

    if (stats != nullptr) {
        stats->removedDead = removed;
        stats->mergedConstants = merged;
        stats->before = n;
        stats->after = out.instructions.size();
    }
    return out;
}

} // namespace orianna::comp
