#include "compiler/passes/passes.hpp"

namespace orianna::comp::passes {

namespace {

/**
 * Byte-exact structural key of an instruction: opcode, (remap-resolved)
 * operand slots, output shape, and every op-specific payload that
 * feeds the numerics. Two instructions with equal keys compute the
 * same value in an SSA program, because equal operand slots hold equal
 * values by induction.
 */
class KeyBuilder
{
  public:
    void
    pod(const void *data, std::size_t n)
    {
        key_.append(static_cast<const char *>(data), n);
    }

    template <typename T>
    void
    value(T v)
    {
        pod(&v, sizeof(v));
    }

    void
    vector(const mat::Vector &v)
    {
        value(static_cast<std::uint32_t>(v.size()));
        for (std::size_t i = 0; i < v.size(); ++i)
            value(v[i]);
    }

    void
    matrix(const mat::Matrix &m)
    {
        value(static_cast<std::uint32_t>(m.rows()));
        value(static_cast<std::uint32_t>(m.cols()));
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                value(m(i, j));
    }

    std::string take() { return std::move(key_); }

  private:
    std::string key_;
};

class CsePass final : public Pass
{
  public:
    const char *name() const override { return "cse"; }

    const char *
    description() const override
    {
        return "share identical op/operand/payload instructions "
               "(repeated Jacobian chains)";
    }

    std::size_t
    run(Program &program) const override
    {
        const auto &instrs = program.instructions;
        const std::size_t n = instrs.size();

        std::vector<bool> drop(n, false);
        std::map<std::uint32_t, std::uint32_t> slot_remap;
        auto resolve = [&](std::uint32_t slot) {
            auto it = slot_remap.find(slot);
            return it == slot_remap.end() ? slot : it->second;
        };

        std::map<std::string, std::uint32_t> seen;
        std::size_t merged = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Instruction &inst = instrs[i];
            if (inst.op == IsaOp::STORE)
                continue; // Host-visibility marker, not a value.

            // Keys use remap-resolved operands so chains of duplicate
            // instructions collapse transitively in one forward walk.
            KeyBuilder kb;
            kb.value(static_cast<std::uint8_t>(inst.op));
            kb.value(static_cast<std::uint32_t>(inst.srcs.size()));
            for (std::uint32_t src : inst.srcs)
                kb.value(resolve(src));
            kb.value(static_cast<std::uint32_t>(inst.rows));
            kb.value(static_cast<std::uint32_t>(inst.cols));
            kb.value(static_cast<std::uint32_t>(inst.depth));
            kb.value(inst.key);
            kb.value(static_cast<std::uint8_t>(inst.component));
            kb.value(inst.hingeEps);
            kb.value(inst.camera.fx);
            kb.value(inst.camera.fy);
            kb.value(inst.camera.cx);
            kb.value(inst.camera.cy);
            // SDF maps compare by identity, like the engine
            // fingerprint: one shared map object, one compiled lookup.
            kb.value(reinterpret_cast<std::uintptr_t>(inst.sdf.get()));
            kb.value(static_cast<std::uint32_t>(inst.extractRow));
            kb.value(static_cast<std::uint32_t>(inst.extractCol));
            kb.value(static_cast<std::uint8_t>(inst.extractVector));
            kb.matrix(inst.constMat);
            kb.vector(inst.constVec);
            kb.value(
                static_cast<std::uint32_t>(inst.placements.size()));
            for (const GatherPlacement &p : inst.placements) {
                kb.value(resolve(p.src));
                kb.value(static_cast<std::uint32_t>(p.rowBegin));
                kb.value(static_cast<std::uint32_t>(p.colBegin));
                kb.value(static_cast<std::uint8_t>(p.isRhs));
            }

            auto [it, inserted] = seen.emplace(kb.take(), inst.dst);
            if (!inserted) {
                slot_remap[inst.dst] = it->second;
                drop[i] = true;
                ++merged;
            }
        }
        if (merged > 0)
            program = rewriteProgram(program, drop, slot_remap);
        return merged;
    }
};

} // namespace

std::unique_ptr<Pass>
commonSubexpressionElimination()
{
    return std::make_unique<CsePass>();
}

} // namespace orianna::comp::passes
