#pragma once

#include <memory>

#include "compiler/pass.hpp"

namespace orianna::comp::passes {

/**
 * The built-in passes, in default-pipeline order. Each factory builds
 * a stateless, shareable pass object; PassManager::parse() resolves
 * the quoted names.
 *
 *  - "dedup": byte-identical LOADC payloads collapse to one on-chip
 *    constant (identity seeds, selector matrices, repeated
 *    measurements).
 *  - "dce": instructions whose results never reach a STORE are
 *    dropped (e.g. Jacobian chains of structurally cancelled blocks).
 *  - "cse": instructions with identical opcode, operand slots and
 *    payload reuse the first occurrence's result slot (repeated
 *    Jacobian chains of variables shared by several factors).
 *  - "fuse": single-use producer/consumer pairs collapse into fused
 *    opcodes — GATHER+SCALER becomes GSCALE (whitening applied while
 *    the block is assembled) and MV+VSUB becomes MVSUB (the back
 *    substitution's rhs update) — same FLOPs, same order, one issue.
 */
std::unique_ptr<Pass> constantDedup();
std::unique_ptr<Pass> deadCodeElimination();
std::unique_ptr<Pass> commonSubexpressionElimination();
std::unique_ptr<Pass> peepholeFusion();

} // namespace orianna::comp::passes
