#include "compiler/passes/passes.hpp"

namespace orianna::comp::passes {

namespace {

class DeadCodeEliminationPass final : public Pass
{
  public:
    const char *name() const override { return "dce"; }

    const char *
    description() const override
    {
        return "drop instructions whose results never reach a STORE";
    }

    std::size_t
    run(Program &program) const override
    {
        const auto &instrs = program.instructions;
        const std::size_t n = instrs.size();

        // producer[slot] = instruction index defining it.
        std::vector<std::size_t> producer(program.valueSlots, SIZE_MAX);
        for (std::size_t i = 0; i < n; ++i)
            if (instrs[i].op != IsaOp::STORE)
                producer[instrs[i].dst] = i;

        // Liveness from the STORE roots.
        std::vector<bool> live(n, false);
        std::vector<std::size_t> worklist;
        for (std::size_t i = 0; i < n; ++i) {
            if (instrs[i].op == IsaOp::STORE) {
                live[i] = true;
                worklist.push_back(i);
            }
        }
        while (!worklist.empty()) {
            const std::size_t i = worklist.back();
            worklist.pop_back();
            auto visit = [&](std::uint32_t src) {
                const std::size_t p = producer[src];
                if (p != SIZE_MAX && !live[p]) {
                    live[p] = true;
                    worklist.push_back(p);
                }
            };
            for (std::uint32_t src : instrs[i].srcs)
                visit(src);
            for (const GatherPlacement &p : instrs[i].placements)
                visit(p.src);
        }

        std::vector<bool> drop(n, false);
        std::size_t removed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!live[i]) {
                drop[i] = true;
                ++removed;
            }
        }
        if (removed > 0)
            program = rewriteProgram(program, drop, {});
        return removed;
    }
};

} // namespace

std::unique_ptr<Pass>
deadCodeElimination()
{
    return std::make_unique<DeadCodeEliminationPass>();
}

} // namespace orianna::comp::passes
