#include "compiler/passes/passes.hpp"

namespace orianna::comp::passes {

namespace {

/** Byte-exact key of a LOADC payload. */
std::string
constantKey(const Instruction &inst)
{
    std::string key;
    auto append = [&key](const void *data, std::size_t n) {
        key.append(static_cast<const char *>(data), n);
    };
    const std::uint32_t rows =
        static_cast<std::uint32_t>(inst.constMat.rows());
    const std::uint32_t cols =
        static_cast<std::uint32_t>(inst.constMat.cols());
    append(&rows, sizeof(rows));
    append(&cols, sizeof(cols));
    for (std::size_t i = 0; i < inst.constMat.rows(); ++i)
        for (std::size_t j = 0; j < inst.constMat.cols(); ++j) {
            const double v = inst.constMat(i, j);
            append(&v, sizeof(v));
        }
    const std::uint32_t n =
        static_cast<std::uint32_t>(inst.constVec.size());
    append(&n, sizeof(n));
    for (std::size_t i = 0; i < inst.constVec.size(); ++i) {
        const double v = inst.constVec[i];
        append(&v, sizeof(v));
    }
    return key;
}

class ConstantDedupPass final : public Pass
{
  public:
    const char *name() const override { return "dedup"; }

    const char *
    description() const override
    {
        return "merge byte-identical LOADC constants into one slot";
    }

    std::size_t
    run(Program &program) const override
    {
        const auto &instrs = program.instructions;
        const std::size_t n = instrs.size();

        std::vector<bool> drop(n, false);
        std::map<std::uint32_t, std::uint32_t> slot_remap;
        std::map<std::string, std::uint32_t> seen;
        std::size_t merged = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (instrs[i].op != IsaOp::LOADC)
                continue;
            auto [it, inserted] =
                seen.emplace(constantKey(instrs[i]), instrs[i].dst);
            if (!inserted) {
                slot_remap[instrs[i].dst] = it->second;
                drop[i] = true;
                ++merged;
            }
        }
        if (merged > 0)
            program = rewriteProgram(program, drop, slot_remap);
        return merged;
    }
};

} // namespace

std::unique_ptr<Pass>
constantDedup()
{
    return std::make_unique<ConstantDedupPass>();
}

} // namespace orianna::comp::passes
