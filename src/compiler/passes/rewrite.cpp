#include "compiler/pass.hpp"

#include <stdexcept>

namespace orianna::comp {

Program
rewriteProgram(const Program &program, const std::vector<bool> &drop,
               const std::map<std::uint32_t, std::uint32_t> &slot_remap)
{
    const auto &instrs = program.instructions;
    const std::size_t n = instrs.size();

    auto remap = [&](std::uint32_t slot) {
        auto it = slot_remap.find(slot);
        return it == slot_remap.end() ? slot : it->second;
    };

    Program out;
    out.name = program.name;
    out.algorithm = program.algorithm;
    out.precision = program.precision;

    std::map<std::uint32_t, std::uint32_t> new_slot;
    std::map<std::uint32_t, std::uint32_t> producer_index;
    std::uint32_t next_slot = 0;

    auto finalSlot = [&](std::uint32_t old_slot) {
        auto it = new_slot.find(remap(old_slot));
        if (it == new_slot.end())
            throw std::logic_error(
                "rewriteProgram: use of undefined slot");
        return it->second;
    };

    for (std::size_t i = 0; i < n; ++i) {
        if (drop[i])
            continue;
        Instruction inst = instrs[i];
        inst.deps.clear();
        for (std::uint32_t &src : inst.srcs)
            src = finalSlot(src);
        for (GatherPlacement &p : inst.placements)
            p.src = finalSlot(p.src);
        for (std::uint32_t src : inst.srcs) {
            auto it = producer_index.find(src);
            if (it != producer_index.end())
                inst.deps.push_back(it->second);
        }
        if (inst.op == IsaOp::STORE) {
            inst.dst = inst.srcs[0];
        } else {
            new_slot[inst.dst] = next_slot;
            inst.dst = next_slot;
            producer_index[next_slot] = static_cast<std::uint32_t>(
                out.instructions.size());
            ++next_slot;
        }
        out.instructions.push_back(std::move(inst));
    }
    out.valueSlots = next_slot;
    for (const DeltaBinding &binding : program.deltas)
        out.deltas.push_back({binding.key, finalSlot(binding.slot)});
    return out;
}

} // namespace orianna::comp
