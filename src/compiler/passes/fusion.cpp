#include "compiler/passes/passes.hpp"

namespace orianna::comp::passes {

namespace {

/**
 * Peephole fusion of single-use producer/consumer pairs:
 *
 *  - GATHER feeding exactly one SCALER becomes GSCALE: the block is
 *    whitened while it is assembled in the buffer unit, saving one
 *    round trip through the vector ALU.
 *  - MV (or RV) feeding operand 1 of exactly one VSUB becomes MVSUB:
 *    the back-substitution rhs update dst = rhs - R_vp * delta_p
 *    issues as one gemv-subtract on the MatMul unit.
 *
 * Both fused executors perform the identical floating-point
 * operations in the identical order as the unfused pair, so fusion is
 * bit-exact; it only removes an instruction boundary.
 */
class PeepholeFusionPass final : public Pass
{
  public:
    const char *name() const override { return "fuse"; }

    const char *
    description() const override
    {
        return "fuse single-use GATHER+SCALER into GSCALE and "
               "MV+VSUB into MVSUB";
    }

    std::size_t
    run(Program &program) const override
    {
        auto &instrs = program.instructions;
        const std::size_t n = instrs.size();

        // References to each slot, from operands, gather placements
        // and delta bindings. A producer fuses only when its sole
        // reference is the consumer being rewritten.
        std::vector<std::size_t> uses(program.valueSlots, 0);
        for (const Instruction &inst : instrs) {
            for (std::uint32_t src : inst.srcs)
                ++uses[src];
            for (const GatherPlacement &p : inst.placements)
                ++uses[p.src];
        }
        for (const DeltaBinding &binding : program.deltas)
            ++uses[binding.slot];

        std::vector<std::size_t> producer(program.valueSlots,
                                          SIZE_MAX);
        for (std::size_t i = 0; i < n; ++i)
            if (instrs[i].op != IsaOp::STORE)
                producer[instrs[i].dst] = i;

        std::vector<bool> drop(n, false);
        std::size_t fused = 0;
        for (std::size_t i = 0; i < n; ++i) {
            Instruction &inst = instrs[i];
            if (inst.op == IsaOp::SCALER) {
                const std::uint32_t src = inst.srcs[0];
                const std::size_t p = producer[src];
                if (p == SIZE_MAX || drop[p] || uses[src] != 1)
                    continue;
                const Instruction &gather = instrs[p];
                if (gather.op != IsaOp::GATHER)
                    continue;
                inst.op = IsaOp::GSCALE;
                inst.srcs = gather.srcs;
                inst.placements = gather.placements;
                drop[p] = true;
                ++fused;
            } else if (inst.op == IsaOp::VSUB) {
                const std::uint32_t src = inst.srcs[1];
                const std::size_t p = producer[src];
                if (p == SIZE_MAX || drop[p] || uses[src] != 1)
                    continue;
                const Instruction &mv = instrs[p];
                if (mv.op != IsaOp::MV && mv.op != IsaOp::RV)
                    continue;
                inst.op = IsaOp::MVSUB;
                inst.srcs = {inst.srcs[0], mv.srcs[0], mv.srcs[1]};
                inst.depth = mv.depth;
                drop[p] = true;
                ++fused;
            }
        }
        if (fused > 0)
            program = rewriteProgram(program, drop, {});
        return fused;
    }
};

} // namespace

std::unique_ptr<Pass>
peepholeFusion()
{
    return std::make_unique<PeepholeFusionPass>();
}

} // namespace orianna::comp::passes
