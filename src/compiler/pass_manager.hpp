#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compiler/pass.hpp"

namespace orianna::fg {
class Values;
}

namespace orianna::comp {

/**
 * Ordered compiler pass pipeline over a Program.
 *
 * The manager owns a list of Pass objects and runs them in order,
 * collecting one PassStats per pass. With verification enabled it
 * executes the program on a probe input before and after every pass
 * through the reference Executor and rejects the rewrite unless the
 * deltas are bit-identical and the executed MAC count did not grow —
 * the contract every pass must honour (DESIGN.md §7).
 *
 * Pipelines are cheap to build and immutable once built; one manager
 * may serve concurrent compiles (passes are stateless).
 */
class PassManager
{
  public:
    struct RunOptions
    {
        /**
         * Probe input for the per-pass equivalence check. Must bind
         * every variable the program loads. Ignored unless verify is
         * set.
         */
        const fg::Values *probe = nullptr;
        /** Run the equivalence check around every pass. */
        bool verify = false;
    };

    PassManager() = default;
    PassManager(PassManager &&) = default;
    PassManager &operator=(PassManager &&) = default;

    /** Append @p pass to the pipeline. */
    void add(std::unique_ptr<Pass> pass);

    /** The standard pipeline: dedup, dce, cse, fuse. */
    static PassManager defaultPipeline();

    /**
     * Build a pipeline from a spec string: a comma-separated list of
     * pass names ("dedup,dce,cse,fuse"), where "default" expands to
     * the default pipeline and "none" (or an empty spec) to an empty
     * one.
     *
     * @throws std::invalid_argument on an unknown pass name.
     */
    static PassManager parse(const std::string &spec);

    /** All registered pass names with one-line descriptions. */
    static std::vector<std::pair<std::string, std::string>>
    availablePasses();

    /** True when ORIANNA_VERIFY_PASSES is set to a non-zero value. */
    static bool verifyFromEnv();

    std::size_t size() const { return passes_.size(); }

    /** Comma-separated names of the pipeline's passes. */
    std::string spec() const;

    /**
     * Run every pass over @p program in order. Returns one PassStats
     * per pass, in pipeline order.
     *
     * @throws std::runtime_error when verification is enabled and a
     *         pass changes the probe deltas or increases the executed
     *         MAC count.
     */
    std::vector<PassStats> run(Program &program,
                               const RunOptions &options) const;

    /** Run without verification (no probe input). */
    std::vector<PassStats> run(Program &program) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace orianna::comp
