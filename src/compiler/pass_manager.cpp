#include "compiler/pass_manager.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "compiler/executor.hpp"
#include "compiler/passes/passes.hpp"
#include "matrix/mac_counter.hpp"

namespace orianna::comp {

namespace {

using PassFactory = std::unique_ptr<Pass> (*)();

/** Registered passes, in default-pipeline order. */
constexpr PassFactory kFactories[] = {
    &passes::constantDedup,
    &passes::deadCodeElimination,
    &passes::commonSubexpressionElimination,
    &passes::peepholeFusion,
};

std::unique_ptr<Pass>
makePass(const std::string &name)
{
    for (PassFactory factory : kFactories) {
        std::unique_ptr<Pass> pass = factory();
        if (name == pass->name())
            return pass;
    }
    std::ostringstream msg;
    msg << "PassManager: unknown pass '" << name << "' (available:";
    for (PassFactory factory : kFactories)
        msg << " " << factory()->name();
    msg << ")";
    throw std::invalid_argument(msg.str());
}

/** Probe snapshot: per-variable deltas plus the MACs spent. */
struct ProbeResult
{
    std::map<Key, Vector> deltas;
    std::uint64_t macs = 0;
};

ProbeResult
runProbe(const Program &program, const fg::Values &values)
{
    ProbeResult result;
    Executor executor(program);
    mat::MacScope scope;
    result.deltas = executor.run(values);
    result.macs = scope.elapsed();
    return result;
}

/** Bitwise comparison — NaNs and signed zeros must survive intact. */
bool
bitIdentical(const Vector &a, const Vector &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = a[i];
        const double y = b[i];
        if (std::memcmp(&x, &y, sizeof(double)) != 0)
            return false;
    }
    return true;
}

void
checkEquivalent(const ProbeResult &before, const ProbeResult &after,
                const char *pass)
{
    if (before.deltas.size() != after.deltas.size())
        throw std::runtime_error(
            std::string("pass verification failed: '") + pass +
            "' changed the set of delta bindings");
    for (const auto &[key, delta] : before.deltas) {
        auto it = after.deltas.find(key);
        if (it == after.deltas.end() || !bitIdentical(delta, it->second))
            throw std::runtime_error(
                std::string("pass verification failed: '") + pass +
                "' changed the probe deltas");
    }
    if (after.macs > before.macs)
        throw std::runtime_error(
            std::string("pass verification failed: '") + pass +
            "' increased the executed MAC count");
}

} // namespace

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

PassManager
PassManager::defaultPipeline()
{
    PassManager pm;
    for (PassFactory factory : kFactories)
        pm.add(factory());
    return pm;
}

PassManager
PassManager::parse(const std::string &spec)
{
    PassManager pm;
    std::string token;
    std::istringstream stream(spec);
    while (std::getline(stream, token, ',')) {
        const std::size_t first = token.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        const std::size_t last = token.find_last_not_of(" \t");
        token = token.substr(first, last - first + 1);
        if (token == "none")
            continue;
        if (token == "default") {
            for (PassFactory factory : kFactories)
                pm.add(factory());
            continue;
        }
        pm.add(makePass(token));
    }
    return pm;
}

std::vector<std::pair<std::string, std::string>>
PassManager::availablePasses()
{
    std::vector<std::pair<std::string, std::string>> out;
    for (PassFactory factory : kFactories) {
        std::unique_ptr<Pass> pass = factory();
        out.emplace_back(pass->name(), pass->description());
    }
    return out;
}

bool
PassManager::verifyFromEnv()
{
    const char *env = std::getenv("ORIANNA_VERIFY_PASSES");
    return env != nullptr && *env != '\0' &&
           std::string(env) != "0";
}

std::string
PassManager::spec() const
{
    std::string out;
    for (const auto &pass : passes_) {
        if (!out.empty())
            out += ",";
        out += pass->name();
    }
    return out.empty() ? "none" : out;
}

std::vector<PassStats>
PassManager::run(Program &program) const
{
    return run(program, RunOptions());
}

std::vector<PassStats>
PassManager::run(Program &program, const RunOptions &options) const
{
    const bool verify = options.verify && options.probe != nullptr;

    std::vector<PassStats> stats;
    stats.reserve(passes_.size());

    ProbeResult baseline;
    if (verify)
        baseline = runProbe(program, *options.probe);

    for (const auto &pass : passes_) {
        PassStats entry;
        entry.pass = pass->name();
        entry.before = program.instructions.size();
        const auto start = std::chrono::steady_clock::now();
        entry.rewrites = pass->run(program);
        const auto end = std::chrono::steady_clock::now();
        entry.after = program.instructions.size();
        entry.wallUs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                end - start)
                .count());
        if (verify) {
            ProbeResult result = runProbe(program, *options.probe);
            checkEquivalent(baseline, result, pass->name());
            baseline = std::move(result);
            entry.verified = true;
        }
        stats.push_back(std::move(entry));
    }
    return stats;
}

} // namespace orianna::comp
