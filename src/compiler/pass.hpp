#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/isa.hpp"

namespace orianna::comp {

/**
 * What one pass did to one program: sizes around the rewrite, the
 * number of pass-specific rewrites (constants merged, expressions
 * shared, pairs fused, ...), and the wall time spent. PassManager
 * collects one entry per pass per run; the runtime Engine folds them
 * into its compile diagnostics and the metrics registry.
 */
struct PassStats
{
    std::string pass;           //!< Pass name ("dedup", "cse", ...).
    std::size_t before = 0;     //!< Instructions entering the pass.
    std::size_t after = 0;      //!< Instructions leaving the pass.
    std::size_t rewrites = 0;   //!< Pass-specific rewrite count.
    std::uint64_t wallUs = 0;   //!< Wall time of the rewrite.
    bool verified = false;      //!< Equivalence check ran and passed.
};

/**
 * One compiler IR pass over a compiled Program.
 *
 * The contract (DESIGN.md §7):
 *  - run() rewrites @p program in place and returns the number of
 *    rewrites applied (0 means the pass did not fire);
 *  - the rewritten program must compute bit-identical deltas on every
 *    input, and must not execute more MACs than before (the
 *    PassManager's verification hook enforces both on a probe input);
 *  - the rewritten program must be well formed: SSA slots (each slot
 *    written by exactly one instruction before any use), deps naming
 *    the producing instruction of every src, compact slot numbering.
 *    Passes built on rewriteProgram() get this for free;
 *  - run() must be deterministic and stateless (one pass object may
 *    be shared by concurrent compiles).
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable name used by --passes lists and metrics keys. */
    virtual const char *name() const = 0;

    /** One-line description for --list-passes. */
    virtual const char *description() const = 0;

    /** Apply the rewrite; returns the number of rewrites applied. */
    virtual std::size_t run(Program &program) const = 0;
};

/**
 * Shared rewrite engine for instruction-dropping passes.
 *
 * Rebuilds @p program keeping instruction order: instructions with
 * @p drop set are removed, every operand (srcs, gather placements,
 * delta bindings) is first redirected through @p slot_remap (old dst
 * slot -> replacement dst slot, for merge-style passes), value slots
 * are renumbered compactly in definition order, and deps are rebuilt
 * from the surviving producers.
 *
 * @throws std::logic_error when a surviving instruction (or delta
 *         binding) reads a slot with no surviving producer — the
 *         use-of-undefined-slot detection the pipeline relies on to
 *         reject a broken pass immediately.
 */
Program rewriteProgram(
    const Program &program, const std::vector<bool> &drop,
    const std::map<std::uint32_t, std::uint32_t> &slot_remap);

} // namespace orianna::comp
