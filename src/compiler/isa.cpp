#include "compiler/isa.hpp"

#include <sstream>

namespace orianna::comp {

const char *
precisionName(Precision precision)
{
    switch (precision) {
    case Precision::Fp64:
        return "fp64";
    case Precision::Fp32:
        return "fp32";
    }
    return "unknown";
}

bool
parsePrecision(const std::string &spec, Precision &out)
{
    if (spec == "fp64" || spec == "double") {
        out = Precision::Fp64;
        return true;
    }
    if (spec == "fp32" || spec == "float") {
        out = Precision::Fp32;
        return true;
    }
    return false;
}

const char *
isaOpName(IsaOp op)
{
    switch (op) {
      case IsaOp::EXP: return "EXP";
      case IsaOp::LOG: return "LOG";
      case IsaOp::RT: return "RT";
      case IsaOp::RR: return "RR";
      case IsaOp::MM: return "MM";
      case IsaOp::RV: return "RV";
      case IsaOp::MV: return "MV";
      case IsaOp::VADD: return "VADD";
      case IsaOp::VSUB: return "VSUB";
      case IsaOp::NEG: return "NEG";
      case IsaOp::HAT: return "HAT";
      case IsaOp::JR: return "JR";
      case IsaOp::JRINV: return "JRINV";
      case IsaOp::PROJ: return "PROJ";
      case IsaOp::PROJJ: return "PROJJ";
      case IsaOp::SDF: return "SDF";
      case IsaOp::SDFJ: return "SDFJ";
      case IsaOp::HINGE: return "HINGE";
      case IsaOp::HINGEJ: return "HINGEJ";
      case IsaOp::NORM: return "NORM";
      case IsaOp::NORMJ: return "NORMJ";
      case IsaOp::HUBERW: return "HUBERW";
      case IsaOp::SMUL: return "SMUL";
      case IsaOp::SCALER: return "SCALER";
      case IsaOp::GATHER: return "GATHER";
      case IsaOp::QR: return "QR";
      case IsaOp::EXTRACT: return "EXTRACT";
      case IsaOp::BSUB: return "BSUB";
      case IsaOp::LOADC: return "LOADC";
      case IsaOp::LOADV: return "LOADV";
      case IsaOp::STORE: return "STORE";
      case IsaOp::GSCALE: return "GSCALE";
      case IsaOp::MVSUB: return "MVSUB";
    }
    return "?";
}

std::vector<std::size_t>
Program::opHistogram() const
{
    std::vector<std::size_t> histogram(kIsaOpCount, 0);
    for (const Instruction &inst : instructions)
        ++histogram[static_cast<std::size_t>(inst.op)];
    return histogram;
}

std::string
Program::str() const
{
    std::ostringstream os;
    os << "program " << name << " (" << instructions.size()
       << " instructions, " << valueSlots << " slots)\n";
    for (std::size_t i = 0; i < instructions.size(); ++i) {
        const Instruction &inst = instructions[i];
        os << "  %" << i << ": " << isaOpName(inst.op) << " ["
           << inst.rows << "x" << inst.cols;
        if (inst.depth)
            os << "x" << inst.depth;
        os << "] -> v" << inst.dst;
        if (!inst.srcs.empty()) {
            os << " <-";
            for (std::uint32_t s : inst.srcs)
                os << " v" << s;
        }
        if (!inst.deps.empty()) {
            os << " deps";
            for (std::uint32_t d : inst.deps)
                os << " %" << d;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace orianna::comp
