#include "compiler/codegen.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "fg/dfg.hpp"
#include "lie/so.hpp"

namespace orianna::comp {

namespace {

using fg::Dfg;
using fg::DfgNode;
using fg::Op;

/** Symbolic shape of a value slot. */
struct Shape
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    bool isVector = false;

    static Shape vec(std::size_t n) { return {n, 1, true}; }
    static Shape matrix(std::size_t r, std::size_t c)
    {
        return {r, c, false};
    }
};

/**
 * Incremental program builder: allocates value slots, tracks slot
 * shapes and producers, and derives instruction dependences from the
 * operands.
 */
class Builder
{
  public:
    explicit Builder(std::uint8_t algorithm) : algorithm_(algorithm) {}

    std::uint32_t
    newSlot(Shape shape)
    {
        shapes_.push_back(shape);
        producer_.push_back(kNoProducer);
        return static_cast<std::uint32_t>(shapes_.size() - 1);
    }

    const Shape &shape(std::uint32_t slot) const { return shapes_[slot]; }

    /** Emit an instruction writing a fresh slot of @p out_shape. */
    std::uint32_t
    emit(Instruction inst, Shape out_shape, std::uint32_t factor = 0)
    {
        inst.dst = newSlot(out_shape);
        inst.rows = out_shape.rows;
        inst.cols = out_shape.cols;
        inst.algorithm = algorithm_;
        inst.factor = factor;
        inst.phase = phase_;
        for (std::uint32_t src : inst.srcs) {
            const std::uint32_t p = producer_[src];
            if (p != kNoProducer)
                inst.deps.push_back(p);
        }
        const std::uint32_t dst = inst.dst;
        program_.instructions.push_back(std::move(inst));
        producer_[dst] =
            static_cast<std::uint32_t>(program_.instructions.size() - 1);
        return dst;
    }

    /** Emit a STORE marking @p slot as a host-visible result. */
    void
    store(std::uint32_t slot)
    {
        Instruction inst;
        inst.op = IsaOp::STORE;
        inst.srcs = {slot};
        inst.dst = slot;
        inst.rows = shapes_[slot].rows;
        inst.cols = shapes_[slot].cols;
        inst.algorithm = algorithm_;
        inst.phase = phase_;
        const std::uint32_t p = producer_[slot];
        if (p != kNoProducer)
            inst.deps.push_back(p);
        program_.instructions.push_back(std::move(inst));
    }

    Program
    finish(std::string name)
    {
        program_.valueSlots = shapes_.size();
        program_.algorithm = algorithm_;
        program_.name = std::move(name);
        return std::move(program_);
    }

    /** Phase tag stamped on subsequently emitted instructions. */
    void setPhase(std::uint8_t phase) { phase_ = phase; }

    Program program_;

  private:
    static constexpr std::uint32_t kNoProducer = 0xffffffffu;

    std::uint8_t algorithm_;
    std::uint8_t phase_ = 0;
    std::vector<Shape> shapes_;
    std::vector<std::uint32_t> producer_;
};

/** Per-(key, component) LOADV cache so variables stream in once. */
struct VarSlots
{
    std::map<std::pair<Key, int>, std::uint32_t> slots;

    std::uint32_t
    load(Builder &b, const fg::Values &values, Key key, VarComponent comp)
    {
        const auto cache_key = std::make_pair(key, static_cast<int>(comp));
        auto it = slots.find(cache_key);
        if (it != slots.end())
            return it->second;

        Instruction inst;
        inst.op = IsaOp::LOADV;
        inst.key = key;
        inst.component = comp;
        Shape shape = Shape::vec(0);
        switch (comp) {
          case VarComponent::Phi:
            shape = Shape::vec(values.pose(key).phi().size());
            break;
          case VarComponent::Translation:
            shape = Shape::vec(values.pose(key).t().size());
            break;
          case VarComponent::Whole:
            shape = Shape::vec(values.vector(key).size());
            break;
        }
        const std::uint32_t slot = b.emit(std::move(inst), shape);
        slots.emplace(cache_key, slot);
        return slot;
    }
};

/** State of one factor's DFG lowering. */
struct FactorLowering
{
    std::vector<std::uint32_t> nodeSlot; //!< Forward value slots.
    std::vector<std::uint32_t> gradSlot; //!< Backward accumulators.
    std::vector<bool> hasGrad;
};

std::uint32_t
loadConstMatrix(Builder &b, Matrix m)
{
    Instruction inst;
    inst.op = IsaOp::LOADC;
    const Shape shape = Shape::matrix(m.rows(), m.cols());
    inst.constMat = std::move(m);
    return b.emit(std::move(inst), shape);
}

std::uint32_t
loadConstVector(Builder &b, Vector v)
{
    Instruction inst;
    inst.op = IsaOp::LOADC;
    const Shape shape = Shape::vec(v.size());
    inst.constVec = std::move(v);
    return b.emit(std::move(inst), shape);
}

std::uint32_t
emitUnary(Builder &b, IsaOp op, std::uint32_t src, Shape out,
          std::uint32_t factor = 0)
{
    Instruction inst;
    inst.op = op;
    inst.srcs = {src};
    return b.emit(std::move(inst), out, factor);
}

std::uint32_t
emitBinary(Builder &b, IsaOp op, std::uint32_t s0, std::uint32_t s1,
           Shape out, std::uint32_t factor = 0)
{
    Instruction inst;
    inst.op = op;
    inst.srcs = {s0, s1};
    return b.emit(std::move(inst), out, factor);
}

/** Matrix-matrix product slot helper (records the inner depth). */
std::uint32_t
emitMatMul(Builder &b, IsaOp op, std::uint32_t s0, std::uint32_t s1,
           std::uint32_t factor = 0)
{
    const Shape &a = b.shape(s0);
    const Shape &c = b.shape(s1);
    Instruction inst;
    inst.op = op;
    inst.srcs = {s0, s1};
    inst.depth = a.cols;
    Shape out = c.isVector ? ((op == IsaOp::MM || op == IsaOp::RR)
                                  ? Shape::matrix(a.rows, 1)
                                  : Shape::vec(a.rows))
                           : Shape::matrix(a.rows, c.cols);
    return b.emit(std::move(inst), out, factor);
}

/**
 * Forward lowering of one factor DFG: one instruction per node, in
 * construction (topological) order.
 */
void
lowerForward(Builder &b, VarSlots &vars, const fg::Values &values,
             const fg::Factor &factor, std::uint32_t fi,
             FactorLowering &state)
{
    const Dfg &dfg = factor.dfg();
    const auto &nodes = dfg.nodes();
    state.nodeSlot.assign(nodes.size(), 0);

    for (std::size_t id = 0; id < nodes.size(); ++id) {
        const DfgNode &node = nodes[id];
        auto in = [&](std::size_t slot_index) {
            return state.nodeSlot[node.inputs[slot_index]];
        };
        switch (node.op) {
          case Op::InputRot: {
            const std::uint32_t phi =
                vars.load(b, values, node.key, VarComponent::Phi);
            const std::size_t n = values.pose(node.key).spaceDim();
            state.nodeSlot[id] =
                emitUnary(b, IsaOp::EXP, phi, Shape::matrix(n, n), fi);
            break;
          }
          case Op::InputTrans:
            state.nodeSlot[id] = vars.load(b, values, node.key,
                                           VarComponent::Translation);
            break;
          case Op::InputVec:
            state.nodeSlot[id] =
                vars.load(b, values, node.key, VarComponent::Whole);
            break;
          case Op::ConstRot:
            state.nodeSlot[id] = loadConstMatrix(b, node.constMat);
            break;
          case Op::ConstVec:
            state.nodeSlot[id] = loadConstVector(b, node.constVec);
            break;
          case Op::Exp: {
            const std::size_t n =
                lie::spaceDimFromTangent(b.shape(in(0)).rows);
            state.nodeSlot[id] =
                emitUnary(b, IsaOp::EXP, in(0), Shape::matrix(n, n), fi);
            break;
          }
          case Op::Log: {
            const std::size_t tdim = lie::tangentDim(b.shape(in(0)).rows);
            state.nodeSlot[id] =
                emitUnary(b, IsaOp::LOG, in(0), Shape::vec(tdim), fi);
            break;
          }
          case Op::RT: {
            const Shape &s = b.shape(in(0));
            state.nodeSlot[id] = emitUnary(
                b, IsaOp::RT, in(0), Shape::matrix(s.cols, s.rows), fi);
            break;
          }
          case Op::RR:
            state.nodeSlot[id] =
                emitMatMul(b, IsaOp::RR, in(0), in(1), fi);
            break;
          case Op::RV:
            state.nodeSlot[id] =
                emitMatMul(b, IsaOp::RV, in(0), in(1), fi);
            break;
          case Op::VAdd:
            state.nodeSlot[id] = emitBinary(b, IsaOp::VADD, in(0), in(1),
                                            b.shape(in(0)), fi);
            break;
          case Op::VSub:
            state.nodeSlot[id] = emitBinary(b, IsaOp::VSUB, in(0), in(1),
                                            b.shape(in(0)), fi);
            break;
          case Op::MV: {
            const std::uint32_t coeff = loadConstMatrix(b, node.constMat);
            state.nodeSlot[id] =
                emitMatMul(b, IsaOp::MV, coeff, in(0), fi);
            break;
          }
          case Op::Proj: {
            Instruction inst;
            inst.op = IsaOp::PROJ;
            inst.srcs = {in(0)};
            inst.camera = node.camera;
            state.nodeSlot[id] =
                b.emit(std::move(inst), Shape::vec(2), fi);
            break;
          }
          case Op::Sdf: {
            Instruction inst;
            inst.op = IsaOp::SDF;
            inst.srcs = {in(0)};
            inst.sdf = node.sdf;
            state.nodeSlot[id] =
                b.emit(std::move(inst), Shape::vec(1), fi);
            break;
          }
          case Op::Hinge: {
            Instruction inst;
            inst.op = IsaOp::HINGE;
            inst.srcs = {in(0)};
            inst.hingeEps = node.hingeEps;
            state.nodeSlot[id] =
                b.emit(std::move(inst), b.shape(in(0)), fi);
            break;
          }
          case Op::Norm:
            state.nodeSlot[id] =
                emitUnary(b, IsaOp::NORM, in(0), Shape::vec(1), fi);
            break;
        }
    }
}

/**
 * Backward lowering: reverse-mode chain rule, emitting the derivative
 * instructions of Sec. 5.2. Mirrors fg::evalBackward exactly, but at
 * the instruction level.
 */
void
lowerBackward(Builder &b, const fg::Values &values,
              const fg::Factor &factor, std::uint32_t fi,
              FactorLowering &state,
              std::map<Key, std::uint32_t> &jacobian_slots)
{
    const Dfg &dfg = factor.dfg();
    const auto &nodes = dfg.nodes();
    const std::size_t error_dim = factor.dim();

    state.gradSlot.assign(nodes.size(), 0);
    state.hasGrad.assign(nodes.size(), false);

    auto accumulate = [&](std::uint32_t node_id, std::uint32_t slot) {
        if (!state.hasGrad[node_id]) {
            state.gradSlot[node_id] = slot;
            state.hasGrad[node_id] = true;
        } else {
            state.gradSlot[node_id] =
                emitBinary(b, IsaOp::VADD, state.gradSlot[node_id], slot,
                           b.shape(slot), fi);
        }
    };

    // Seed each output with its identity block.
    std::size_t row = 0;
    for (fg::NodeId out : dfg.outputs()) {
        const std::size_t dim = b.shape(state.nodeSlot[out]).rows;
        Matrix seed(error_dim, dim);
        seed.setBlock(row, 0, Matrix::identity(dim));
        accumulate(out, loadConstMatrix(b, std::move(seed)));
        row += dim;
    }

    // Per-(key, component) accumulated Jacobian slots.
    std::map<std::pair<Key, int>, std::uint32_t> var_grad;
    auto accumulateVar = [&](Key key, VarComponent comp,
                             std::uint32_t slot) {
        const auto cache_key = std::make_pair(key, static_cast<int>(comp));
        auto it = var_grad.find(cache_key);
        if (it == var_grad.end())
            var_grad.emplace(cache_key, slot);
        else
            it->second = emitBinary(b, IsaOp::VADD, it->second, slot,
                                    b.shape(slot), fi);
    };

    for (std::size_t idx = nodes.size(); idx-- > 0;) {
        const auto id = static_cast<std::uint32_t>(idx);
        const DfgNode &node = nodes[id];
        if (!state.hasGrad[id])
            continue;
        const std::uint32_t g = state.gradSlot[id];
        auto inSlot = [&](std::size_t i) {
            return state.nodeSlot[node.inputs[i]];
        };
        auto inId = [&](std::size_t i) { return node.inputs[i]; };

        switch (node.op) {
          case Op::InputRot:
            accumulateVar(node.key, VarComponent::Phi, g);
            break;
          case Op::InputTrans:
            accumulateVar(node.key, VarComponent::Translation, g);
            break;
          case Op::InputVec:
            accumulateVar(node.key, VarComponent::Whole, g);
            break;
          case Op::ConstRot:
          case Op::ConstVec:
            break;
          case Op::Exp: {
            const std::size_t tdim = b.shape(inSlot(0)).rows;
            const std::uint32_t j =
                emitUnary(b, IsaOp::JR, inSlot(0),
                          Shape::matrix(tdim, tdim), fi);
            accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, j, fi));
            break;
          }
          case Op::Log: {
            const std::size_t tdim = b.shape(state.nodeSlot[id]).rows;
            const std::uint32_t j =
                emitUnary(b, IsaOp::JRINV, state.nodeSlot[id],
                          Shape::matrix(tdim, tdim), fi);
            accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, j, fi));
            break;
          }
          case Op::RT: {
            const Shape &a = b.shape(inSlot(0));
            if (a.rows == 3) {
                const std::uint32_t prod =
                    emitMatMul(b, IsaOp::MM, g, inSlot(0), fi);
                accumulate(inId(0), emitUnary(b, IsaOp::NEG, prod,
                                              b.shape(prod), fi));
            } else {
                accumulate(inId(0),
                           emitUnary(b, IsaOp::NEG, g, b.shape(g), fi));
            }
            break;
          }
          case Op::RR: {
            const Shape &bshape = b.shape(inSlot(1));
            if (bshape.rows == 3) {
                const std::uint32_t bt =
                    emitUnary(b, IsaOp::RT, inSlot(1),
                              Shape::matrix(3, 3), fi);
                accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, bt, fi));
            } else {
                accumulate(inId(0), g);
            }
            accumulate(inId(1), g);
            break;
          }
          case Op::RV: {
            // Copy, not reference: the emit below grows the slot
            // table and would invalidate a reference into it.
            const std::size_t r_rows = b.shape(inSlot(0)).rows;
            accumulate(inId(1), emitMatMul(b, IsaOp::MM, g, inSlot(0),
                                           fi));
            if (r_rows == 3) {
                const std::uint32_t h =
                    emitUnary(b, IsaOp::HAT, inSlot(1),
                              Shape::matrix(3, 3), fi);
                const std::uint32_t rh =
                    emitMatMul(b, IsaOp::MM, inSlot(0), h, fi);
                const std::uint32_t prod =
                    emitMatMul(b, IsaOp::MM, g, rh, fi);
                accumulate(inId(0), emitUnary(b, IsaOp::NEG, prod,
                                              b.shape(prod), fi));
            } else {
                // 2-D: column R S v, with S the planar generator.
                const std::uint32_t s = loadConstMatrix(
                    b, Matrix{{0.0, -1.0}, {1.0, 0.0}});
                const std::uint32_t sv =
                    emitMatMul(b, IsaOp::MV, s, inSlot(1), fi);
                const std::uint32_t col =
                    emitMatMul(b, IsaOp::RV, inSlot(0), sv, fi);
                // g (rows x 2) times column (2 x 1).
                const std::uint32_t prod =
                    emitMatMul(b, IsaOp::MM, g, col, fi);
                accumulate(inId(0), prod);
            }
            break;
          }
          case Op::VAdd:
            accumulate(inId(0), g);
            accumulate(inId(1), g);
            break;
          case Op::VSub:
            accumulate(inId(0), g);
            accumulate(inId(1),
                       emitUnary(b, IsaOp::NEG, g, b.shape(g), fi));
            break;
          case Op::MV: {
            const std::uint32_t coeff = loadConstMatrix(b, node.constMat);
            accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, coeff, fi));
            break;
          }
          case Op::Proj: {
            Instruction inst;
            inst.op = IsaOp::PROJJ;
            inst.srcs = {inSlot(0)};
            inst.camera = node.camera;
            const std::uint32_t j =
                b.emit(std::move(inst), Shape::matrix(2, 3), fi);
            accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, j, fi));
            break;
          }
          case Op::Sdf: {
            Instruction inst;
            inst.op = IsaOp::SDFJ;
            inst.srcs = {inSlot(0)};
            inst.sdf = node.sdf;
            const std::uint32_t j = b.emit(
                std::move(inst),
                Shape::matrix(1, b.shape(inSlot(0)).rows), fi);
            accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, j, fi));
            break;
          }
          case Op::Hinge: {
            Instruction inst;
            inst.op = IsaOp::HINGEJ;
            inst.srcs = {inSlot(0)};
            inst.hingeEps = node.hingeEps;
            const std::size_t n = b.shape(inSlot(0)).rows;
            const std::uint32_t j =
                b.emit(std::move(inst), Shape::matrix(n, n), fi);
            accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, j, fi));
            break;
          }
          case Op::Norm: {
            const std::size_t n = b.shape(inSlot(0)).rows;
            const std::uint32_t j =
                emitUnary(b, IsaOp::NORMJ, inSlot(0),
                          Shape::matrix(1, n), fi);
            accumulate(inId(0), emitMatMul(b, IsaOp::MM, g, j, fi));
            break;
          }
        }
    }

    // Assemble per-key Jacobian blocks: poses combine [dphi | dt].
    for (Key key : factor.keys()) {
        const bool is_pose = values.isPose(key);
        if (!is_pose) {
            auto it = var_grad.find(
                {key, static_cast<int>(VarComponent::Whole)});
            if (it == var_grad.end())
                throw std::logic_error("codegen: missing vector grad");
            jacobian_slots[key] = it->second;
            continue;
        }
        const std::size_t tdim =
            lie::tangentDim(values.pose(key).spaceDim());
        const std::size_t n = values.pose(key).spaceDim();
        auto phi_it =
            var_grad.find({key, static_cast<int>(VarComponent::Phi)});
        auto t_it = var_grad.find(
            {key, static_cast<int>(VarComponent::Translation)});

        Instruction inst;
        inst.op = IsaOp::GATHER;
        if (phi_it != var_grad.end()) {
            inst.srcs.push_back(phi_it->second);
            inst.placements.push_back({phi_it->second, 0, 0, false});
        }
        if (t_it != var_grad.end()) {
            inst.srcs.push_back(t_it->second);
            inst.placements.push_back({t_it->second, 0, tdim, false});
        }
        if (inst.srcs.empty())
            throw std::logic_error("codegen: missing pose grad");
        jacobian_slots[key] = b.emit(
            std::move(inst), Shape::matrix(error_dim, tdim + n), fi);
    }
}

/** Whitening: scale rows of a slot by 1/sigma. */
std::uint32_t
emitWhiten(Builder &b, std::uint32_t slot, const Vector &sigmas,
           std::uint32_t fi)
{
    Instruction inst;
    inst.op = IsaOp::SCALER;
    inst.srcs = {slot};
    inst.constVec = sigmas;
    return b.emit(std::move(inst), b.shape(slot), fi);
}

/** A symbolic linearized factor row during elimination codegen. */
struct SymbolicRow
{
    std::map<Key, std::uint32_t> blocks;
    std::uint32_t rhs = 0;
    std::size_t dim = 0;
};

} // namespace

/**
 * Phase 1 shared by both compilers: lower every factor's DFG and
 * whiten, producing the symbolic linearized rows.
 */
void
lowerConstruction(Builder &b, VarSlots &vars, const fg::FactorGraph &graph,
                  const fg::Values &values, std::vector<SymbolicRow> &rows,
                  std::map<Key, std::size_t> &dofs)
{
    rows.reserve(graph.size());
    for (std::size_t fi = 0; fi < graph.size(); ++fi) {
        const fg::Factor &factor = graph.factor(fi);
        const auto tag = static_cast<std::uint32_t>(fi);

        FactorLowering state;
        lowerForward(b, vars, values, factor, tag, state);

        // Stack the output slots into the factor's error vector.
        Instruction stack;
        stack.op = IsaOp::GATHER;
        std::size_t row_offset = 0;
        for (fg::NodeId out : factor.dfg().outputs()) {
            const std::uint32_t slot = state.nodeSlot[out];
            stack.srcs.push_back(slot);
            stack.placements.push_back({slot, row_offset, 0, true});
            row_offset += b.shape(slot).rows;
        }
        std::uint32_t error_slot = b.emit(
            std::move(stack), Shape::vec(factor.dim()), tag);

        std::map<Key, std::uint32_t> jac;
        lowerBackward(b, values, factor, tag, state, jac);

        // Whitening, optional Huber reweighting, and rhs = -e/sigma.
        SymbolicRow symbolic;
        symbolic.dim = factor.dim();
        std::uint32_t white_e =
            emitWhiten(b, error_slot, factor.sigmas(), tag);
        std::uint32_t weight_slot = 0;
        const bool robust = factor.robustK() > 0.0;
        if (robust) {
            Instruction hub;
            hub.op = IsaOp::HUBERW;
            hub.srcs = {white_e};
            hub.hingeEps = factor.robustK();
            weight_slot = b.emit(std::move(hub), Shape::vec(1), tag);
            Instruction smul;
            smul.op = IsaOp::SMUL;
            smul.srcs = {white_e, weight_slot};
            white_e = b.emit(std::move(smul), b.shape(white_e), tag);
        }
        symbolic.rhs = emitUnary(b, IsaOp::NEG, white_e,
                                 b.shape(white_e), tag);
        for (const auto &[key, slot] : jac) {
            std::uint32_t white_j =
                emitWhiten(b, slot, factor.sigmas(), tag);
            if (robust) {
                Instruction smul;
                smul.op = IsaOp::SMUL;
                smul.srcs = {white_j, weight_slot};
                white_j = b.emit(std::move(smul), b.shape(white_j),
                                 tag);
            }
            symbolic.blocks[key] = white_j;
            dofs[key] = values.dof(key);
        }
        rows.push_back(std::move(symbolic));
    }
}

Program
compileGraph(const fg::FactorGraph &graph, const fg::Values &values,
             const CompileOptions &options)
{
    Builder b(options.algorithmTag);
    VarSlots vars;

    // ---- Phase 1: linear-equation construction (per-factor DFGs) ----
    std::vector<SymbolicRow> rows;
    std::map<Key, std::size_t> dofs;
    lowerConstruction(b, vars, graph, values, rows, dofs);

    // ---- Phase 2: elimination (Fig. 5), mirroring fg::eliminate ----
    b.setPhase(1);
    std::vector<Key> ordering = options.ordering;
    if (ordering.empty())
        ordering = graph.allKeys();

    struct ConditionalSlots
    {
        Key key;
        std::uint32_t rSelf;
        std::map<Key, std::uint32_t> rParents;
        std::uint32_t rhs;
    };
    std::vector<ConditionalSlots> conditionals;

    std::vector<SymbolicRow> working = rows;
    std::vector<bool> alive(working.size(), true);

    for (Key v : ordering) {
        std::vector<std::size_t> touching;
        for (std::size_t i = 0; i < working.size(); ++i)
            if (alive[i] && working[i].blocks.count(v))
                touching.push_back(i);
        if (touching.empty())
            throw std::runtime_error(
                "compileGraph: variable " + std::to_string(v) +
                " has no adjacent factors");

        std::vector<Key> involved{v};
        for (std::size_t i : touching)
            for (const auto &[key, slot] : working[i].blocks)
                if (key != v &&
                    std::find(involved.begin(), involved.end(), key) ==
                        involved.end())
                    involved.push_back(key);
        std::sort(involved.begin() + 1, involved.end());

        std::map<Key, std::size_t> col_offset;
        std::size_t ncols = 0;
        for (Key key : involved) {
            col_offset[key] = ncols;
            ncols += dofs.at(key);
        }
        std::size_t nrows = 0;
        for (std::size_t i : touching)
            nrows += working[i].dim;

        // GATHER the augmented [Abar | b].
        Instruction gather;
        gather.op = IsaOp::GATHER;
        std::size_t row_offset = 0;
        for (std::size_t i : touching) {
            const SymbolicRow &sr = working[i];
            for (const auto &[key, slot] : sr.blocks) {
                gather.srcs.push_back(slot);
                gather.placements.push_back(
                    {slot, row_offset, col_offset.at(key), false});
            }
            gather.srcs.push_back(sr.rhs);
            gather.placements.push_back({sr.rhs, row_offset, ncols, true});
            row_offset += sr.dim;
            alive[i] = false;
        }
        const std::uint32_t abar = b.emit(
            std::move(gather), Shape::matrix(nrows, ncols + 1));

        // QR on the augmented system.
        Instruction qr;
        qr.op = IsaOp::QR;
        qr.srcs = {abar};
        qr.depth = ncols; // Columns actually triangularized.
        const std::uint32_t r_slot =
            b.emit(std::move(qr), Shape::matrix(nrows, ncols + 1));

        const std::size_t dv = dofs.at(v);
        if (nrows < dv)
            throw std::runtime_error(
                "compileGraph: variable " + std::to_string(v) +
                " is underdetermined");

        auto extract = [&](std::size_t i0, std::size_t j0, std::size_t r,
                           std::size_t c, bool as_vector) {
            Instruction inst;
            inst.op = IsaOp::EXTRACT;
            inst.srcs = {r_slot};
            inst.extractRow = i0;
            inst.extractCol = j0;
            inst.extractVector = as_vector;
            return b.emit(std::move(inst),
                          as_vector ? Shape::vec(r)
                                    : Shape::matrix(r, c));
        };

        ConditionalSlots cond;
        cond.key = v;
        cond.rSelf = extract(0, 0, dv, dv, false);
        cond.rhs = extract(0, ncols, dv, 1, true);
        for (Key key : involved) {
            if (key == v)
                continue;
            cond.rParents.emplace(
                key, extract(0, col_offset.at(key), dv, dofs.at(key),
                             false));
        }
        conditionals.push_back(std::move(cond));

        // New factor over the separator.
        if (nrows > dv && involved.size() > 1) {
            const std::size_t kept = std::min(nrows, ncols) - dv;
            if (kept > 0) {
                SymbolicRow fresh;
                fresh.dim = kept;
                for (Key key : involved) {
                    if (key == v)
                        continue;
                    fresh.blocks.emplace(
                        key, extract(dv, col_offset.at(key), kept,
                                     dofs.at(key), false));
                }
                fresh.rhs = extract(dv, ncols, kept, 1, true);
                working.push_back(std::move(fresh));
                alive.push_back(true);
            }
        }
    }

    // ---- Phase 3: back substitution (Fig. 6) ----
    b.setPhase(2);
    Program prog;
    std::map<Key, std::uint32_t> delta_slot;
    std::vector<DeltaBinding> bindings;
    for (std::size_t i = conditionals.size(); i-- > 0;) {
        const ConditionalSlots &cond = conditionals[i];
        std::uint32_t rhs = cond.rhs;
        for (const auto &[parent, block] : cond.rParents) {
            const std::uint32_t prod =
                emitMatMul(b, IsaOp::MV, block, delta_slot.at(parent));
            rhs = emitBinary(b, IsaOp::VSUB, rhs, prod, b.shape(rhs));
        }
        Instruction bsub;
        bsub.op = IsaOp::BSUB;
        bsub.srcs = {cond.rSelf, rhs};
        const std::uint32_t delta = b.emit(
            std::move(bsub), Shape::vec(dofs.at(cond.key)));
        b.store(delta);
        delta_slot[cond.key] = delta;
        bindings.push_back({cond.key, delta});
    }

    prog = b.finish(options.name);
    prog.precision = options.precision;
    prog.deltas = std::move(bindings);
    return prog;
}


Program
compileDenseGraph(const fg::FactorGraph &graph, const fg::Values &values,
                  const CompileOptions &options)
{
    Builder b(options.algorithmTag);
    VarSlots vars;

    std::vector<SymbolicRow> rows;
    std::map<Key, std::size_t> dofs;
    lowerConstruction(b, vars, graph, values, rows, dofs);

    std::vector<Key> ordering = options.ordering;
    if (ordering.empty())
        ordering = graph.allKeys();

    std::map<Key, std::size_t> col_offset;
    std::size_t ncols = 0;
    for (Key key : ordering) {
        col_offset[key] = ncols;
        ncols += dofs.at(key);
    }
    std::size_t nrows = 0;
    for (const SymbolicRow &row : rows)
        nrows += row.dim;
    if (nrows < ncols)
        throw std::runtime_error("compileDenseGraph: underdetermined");

    // One large dense gather of the whole [A | b] (no sparsity use).
    b.setPhase(1);
    Instruction gather;
    gather.op = IsaOp::GATHER;
    std::size_t row_offset = 0;
    for (const SymbolicRow &row : rows) {
        for (const auto &[key, slot] : row.blocks) {
            gather.srcs.push_back(slot);
            gather.placements.push_back(
                {slot, row_offset, col_offset.at(key), false});
        }
        gather.srcs.push_back(row.rhs);
        gather.placements.push_back({row.rhs, row_offset, ncols, true});
        row_offset += row.dim;
    }
    const std::uint32_t a_slot =
        b.emit(std::move(gather), Shape::matrix(nrows, ncols + 1));

    Instruction qr;
    qr.op = IsaOp::QR;
    qr.srcs = {a_slot};
    qr.depth = ncols;
    const std::uint32_t r_slot =
        b.emit(std::move(qr), Shape::matrix(nrows, ncols + 1));

    auto extract = [&](std::size_t i0, std::size_t j0, std::size_t r,
                       std::size_t c, bool as_vector) {
        Instruction inst;
        inst.op = IsaOp::EXTRACT;
        inst.srcs = {r_slot};
        inst.extractRow = i0;
        inst.extractCol = j0;
        inst.extractVector = as_vector;
        return b.emit(std::move(inst),
                      as_vector ? Shape::vec(r) : Shape::matrix(r, c));
    };

    // Block back-substitution over the dense R (Fig. 6 without the
    // graph: every later variable is a parent of every earlier one).
    b.setPhase(2);
    std::map<Key, std::uint32_t> delta_slot;
    std::vector<DeltaBinding> bindings;
    for (std::size_t i = ordering.size(); i-- > 0;) {
        const Key v = ordering[i];
        const std::size_t dv = dofs.at(v);
        const std::size_t off = col_offset.at(v);
        std::uint32_t rhs = extract(off, ncols, dv, 1, true);
        for (std::size_t j = i + 1; j < ordering.size(); ++j) {
            const Key parent = ordering[j];
            const std::uint32_t block = extract(
                off, col_offset.at(parent), dv, dofs.at(parent), false);
            const std::uint32_t prod =
                emitMatMul(b, IsaOp::MV, block, delta_slot.at(parent));
            rhs = emitBinary(b, IsaOp::VSUB, rhs, prod, b.shape(rhs));
        }
        const std::uint32_t r_vv = extract(off, off, dv, dv, false);
        Instruction bsub;
        bsub.op = IsaOp::BSUB;
        bsub.srcs = {r_vv, rhs};
        const std::uint32_t delta =
            b.emit(std::move(bsub), Shape::vec(dv));
        b.store(delta);
        delta_slot[v] = delta;
        bindings.push_back({v, delta});
    }

    Program prog = b.finish(options.name + "-dense");
    prog.precision = options.precision;
    prog.deltas = std::move(bindings);
    return prog;
}

} // namespace orianna::comp
