#pragma once

#include "compiler/isa.hpp"

namespace orianna::comp {

/** What optimizeProgram() did, for logs and tests. */
struct OptimizeStats
{
    std::size_t removedDead = 0;      //!< Never-used instructions.
    std::size_t mergedConstants = 0;  //!< Duplicate LOADC payloads.
    std::size_t before = 0;
    std::size_t after = 0;
};

/**
 * Post-codegen cleanup passes over a compiled program:
 *
 *  1. constant deduplication — identical LOADC payloads (identity
 *     seeds, selector matrices, repeated measurements) collapse to
 *     one on-chip constant;
 *  2. dead-code elimination — instructions whose results never reach
 *     a STORE are dropped (e.g. Jacobian chains of variables whose
 *     blocks were structurally cancelled).
 *
 * The rewritten program computes exactly the same deltas; slots are
 * renumbered compactly and dependences rebuilt.
 */
Program optimizeProgram(const Program &program,
                        OptimizeStats *stats = nullptr);

} // namespace orianna::comp
