#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fg/dfg.hpp"
#include "fg/sdf_map.hpp"
#include "fg/values.hpp"

namespace orianna::comp {

using fg::Key;
using mat::Matrix;
using mat::Vector;

/**
 * The ORIANNA instruction set (Sec. 5.2): matrix-related instructions
 * over small operands. The first group implements the Tbl. 3
 * primitives (plus their backward-pass companions HAT/JR/JRINV and the
 * DESIGN.md extension ops); the second group implements factor-graph
 * inference (Fig. 5 / Fig. 6); the third group moves data.
 */
enum class IsaOp : std::uint8_t {
    // Factor-computing block (linear-equation construction).
    EXP,    //!< dst = Exp(src0)              [special-function unit]
    LOG,    //!< dst = Log(src0)              [special-function unit]
    RT,     //!< dst = src0^T                 [transpose unit]
    RR,     //!< dst = src0 * src1 (rotation) [matmul unit]
    MM,     //!< dst = src0 * src1 (general)  [matmul unit]
    RV,     //!< dst = src0 * src1 (rot, vec) [matmul unit]
    MV,     //!< dst = src0 * src1 (gen, vec) [matmul unit]
    VADD,   //!< dst = src0 + src1            [vector unit, VP]
    VSUB,   //!< dst = src0 - src1            [vector unit, VP]
    NEG,    //!< dst = -src0                  [vector unit, VP]
    HAT,    //!< dst = hat(src0)              [vector unit]
    JR,     //!< dst = J_r(src0)              [special-function unit]
    JRINV,  //!< dst = J_r^-1(src0)           [special-function unit]
    PROJ,   //!< dst = pinhole(src0)          [special-function unit]
    PROJJ,  //!< dst = d pinhole / d src0     [special-function unit]
    SDF,    //!< dst = [distance(src0)]       [special-function unit]
    SDFJ,   //!< dst = grad distance(src0)    [special-function unit]
    HINGE,  //!< dst = max(0, eps - src0)     [vector unit]
    HINGEJ, //!< dst = d hinge / d src0       [vector unit]
    NORM,   //!< dst = [|src0|]               [special-function unit]
    NORMJ,  //!< dst = d|src0| / d src0       [special-function unit]
    HUBERW, //!< dst = [sqrt(min(1, k/|src0|))] (k in hingeEps)
            //!<                                [special-function unit]
    SMUL,   //!< dst = src1[0] * src0         [vector unit]
    SCALER, //!< dst = diag(payload)^-1 src0 (whitening) [vector unit]
    // Factor-graph inference block.
    GATHER, //!< dst = dense [A|b] stacked from placements [buffer]
    QR,     //!< dst = R of QR(src0) (augmented)           [QR unit]
    EXTRACT,//!< dst = block(src0, i0, j0, rows, cols)     [buffer]
    BSUB,   //!< dst = src0^-1 src1 (upper triangular)     [back-sub unit]
    // Data movement.
    LOADC,  //!< dst = constant payload (on-chip after first use).
    LOADV,  //!< dst = variable component streamed from the host.
    STORE,  //!< Mark src0 as a result streamed back to the host.
    // Fused opcodes. Never emitted by codegen: the peephole fusion
    // pass (src/compiler/passes/fusion.cpp) rewrites single-use
    // producer/consumer pairs into these, mapping them onto the fused
    // microkernels the matrix layer already provides. Each fused op
    // performs exactly the floating-point operations of the pair it
    // replaces, in the same order, so programs stay bit-identical.
    GSCALE, //!< GATHER placements, then rows /= payload  [buffer]
    MVSUB,  //!< dst = src0 - src1 * src2 (gemv-subtract) [matmul unit]
};

/** Number of opcodes (histogram sizing, encoding validation). */
constexpr std::size_t kIsaOpCount =
    static_cast<std::size_t>(IsaOp::MVSUB) + 1;

/** Mnemonic for listings. */
const char *isaOpName(IsaOp op);

/**
 * Numeric precision a program's datapath executes in (DESIGN.md §12).
 * Fp64 is the bit-exact reference every golden digest is defined on;
 * Fp32 is the reduced-precision accelerator mode — twice the SIMD
 * lane width and half the word traffic, with the Engine degradation
 * ladder falling back to the fp64 reference program when the reduced
 * mantissa breaks a frame. Encoded as one byte in encoding v3; v2
 * payloads decode as Fp64.
 */
enum class Precision : std::uint8_t { Fp64 = 0, Fp32 = 1 };

constexpr std::size_t kPrecisionCount = 2;

/** Lower-case name ("fp64", "fp32"). */
const char *precisionName(Precision precision);

/**
 * Parse "fp64"/"fp32" (also accepts "double"/"float"). Returns false
 * and leaves @p out untouched on an unknown spec.
 */
bool parsePrecision(const std::string &spec, Precision &out);

/** Which variable component a LOADV streams in. */
enum class VarComponent : std::uint8_t {
    Phi,         //!< so(n) orientation of a pose (Exp runs on-chip).
    Translation, //!< t of a pose.
    Whole,       //!< A plain vector variable.
};

/** One placement of a GATHER: copy a block into the dense [A|b]. */
struct GatherPlacement
{
    std::uint32_t src;    //!< Value slot holding the block.
    std::size_t rowBegin; //!< Destination row offset.
    std::size_t colBegin; //!< Destination column offset.
    bool isRhs = false;   //!< Source is a vector going to the b column.
};

/**
 * One ORIANNA instruction. Operands address a flat value table whose
 * slots are assigned statically by the compiler; `deps` lists the
 * producing instructions (the data-flow edges the out-of-order
 * scheduler honours, Sec. 6.3).
 */
struct Instruction
{
    IsaOp op = IsaOp::LOADC;
    std::vector<std::uint32_t> srcs;
    std::uint32_t dst = 0;
    std::vector<std::uint32_t> deps;

    // Shape of the produced value (latency / energy model input).
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t depth = 0; //!< Inner dimension for matmul-type ops.

    std::uint8_t algorithm = 0; //!< Coarse-grained OoO tag (Sec. 6.3).
    std::uint32_t factor = 0;   //!< Originating factor, for listings.
    std::uint8_t phase = 0;     //!< 0 construction, 1 decomposition,
                                //!< 2 back substitution.

    // Op-specific payloads.
    Matrix constMat;                        //!< LOADC matrix payload.
    Vector constVec;                        //!< LOADC/SCALER payload.
    Key key = 0;                            //!< LOADV variable.
    VarComponent component = VarComponent::Whole;
    fg::CameraModel camera;                 //!< PROJ / PROJJ.
    fg::SdfMapPtr sdf;                      //!< SDF / SDFJ.
    double hingeEps = 0.0;                  //!< HINGE / HINGEJ.
    std::vector<GatherPlacement> placements; //!< GATHER layout.
    std::size_t extractRow = 0;             //!< EXTRACT block origin.
    std::size_t extractCol = 0;
    bool extractVector = false; //!< EXTRACT a single column as a vector.
};

/** Result binding: which slot holds delta for which variable. */
struct DeltaBinding
{
    Key key;
    std::uint32_t slot;
};

/**
 * A compiled instruction stream for one factor graph (one algorithm).
 * Running the program once performs a single Gauss-Newton step:
 * construct the linear equations, eliminate, back-substitute.
 */
struct Program
{
    std::vector<Instruction> instructions;
    std::size_t valueSlots = 0;          //!< Size of the value table.
    std::vector<DeltaBinding> deltas;    //!< Output bindings.
    std::uint8_t algorithm = 0;          //!< Tag of every instruction.
    /** Datapath precision the program executes in (DESIGN.md §12). */
    Precision precision = Precision::Fp64;
    std::string name;                    //!< For listings.

    /** Counts per opcode, for the listings and resource sizing. */
    std::vector<std::size_t> opHistogram() const;

    /** Pretty listing (one line per instruction). */
    std::string str() const;
};

} // namespace orianna::comp
