#pragma once

#include <string>

#include "compiler/isa.hpp"

namespace orianna::comp {

/**
 * Graphviz rendering of an instruction stream: one node per
 * instruction (opcode, shape, destination slot), one edge per slot
 * dependence (producer -> consumer, from the deps recorded by the
 * Builder/rewriteProgram). Nodes are coloured by phase — forward
 * lowering, elimination and back-substitution — so the three bands of
 * a Gauss-Newton program are visible at a glance.
 */
std::string programToDot(const Program &program);

/**
 * Human-readable listing of @p program: the Program::str() body plus
 * per-instruction phase/factor annotations. This is what
 * `orianna_compile --dump-ir` writes before and after the pipeline.
 */
std::string programListing(const Program &program);

} // namespace orianna::comp
