#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/isa.hpp"

namespace orianna::comp {

/**
 * Structural description of one incremental update (DESIGN.md §13):
 * the shape of a suffix re-elimination — which rows feed it, how
 * each elimination step gathers them, and what is carried forward —
 * with every numeric payload stripped. Two frames with the same
 * UpdateSpec run the same compiled program with different streamed
 * inputs, which is what lets the Engine cache, the ProgramStore and
 * the replica caches amortize update compiles across frames.
 *
 * All variables are named by *suffix position* (0 = first
 * re-eliminated variable), not by user key: the spec is a pure
 * shape, so isomorphic suffixes on different graphs share programs.
 */
struct UpdateSpec
{
    /** One input row streamed from the host. */
    struct Row
    {
        /** Row count of the block row (rhs length). */
        std::uint32_t dim = 0;
        /** Suffix positions of its blocks, in streamed order. */
        std::vector<std::uint32_t> blocks;
    };

    /** One elimination step (suffix position == step index). */
    struct Step
    {
        /**
         * Rows gathered into [A|b], in gather order. Values below
         * rows.size() index input rows; values at or above it name
         * carry rows of earlier steps, in creation order.
         */
        std::vector<std::uint32_t> rowRefs;
        /**
         * Column layout by suffix position: the eliminated variable
         * first, then the separator in the order the host back-
         * substitutes (key order), so the on-device substitution
         * performs the same operations in the same order.
         */
        std::vector<std::uint32_t> columns;
        /** Separator rows carried forward (0 = no carry). */
        std::uint32_t kept = 0;
    };

    /** Tangent dimension of each suffix variable. */
    std::vector<std::uint32_t> dofs;
    std::vector<Row> rows;
    std::vector<Step> steps;

    std::uint8_t algorithmTag = 0;
    Precision precision = Precision::Fp64;
    std::string name = "update";
};

/**
 * The synthetic-key contract of a compiled update program: which
 * LOADV keys the host binds before each frame and which result
 * bindings it reads back. Keys are deterministic functions of the
 * spec, so the layout can be rebuilt for a program loaded from the
 * ProgramStore without re-running codegen.
 *
 * Input matrix blocks stream column-by-column (the GATHER places
 * each column straight into the dense [A|b]); every key binds a
 * plain vector in the session's Values.
 */
struct UpdateLayout
{
    struct RowKeys
    {
        /** One key per column of each block, in spec block order. */
        std::vector<std::vector<Key>> blockColumns;
        Key rhs = 0;
    };
    /** LOADV keys, one entry per spec row. */
    std::vector<RowKeys> inputs;

    struct StepKeys
    {
        /**
         * Result keys of the step's R factor, one per column of the
         * augmented system (rhs last). Each binds a vector of
         * `height` rows: the conditional rows first, then the carry
         * rows.
         */
        std::vector<Key> columns;
        std::uint32_t height = 0; //!< dv + kept.
        std::uint32_t dv = 0;
    };
    /** Result bindings, one entry per spec step. */
    std::vector<StepKeys> outputs;

    /** Result key of each suffix variable's tangent delta. */
    std::vector<Key> deltaKeys;
};

/** Deterministic host-boundary keys of @p spec (see UpdateLayout). */
UpdateLayout updateLayout(const UpdateSpec &spec);

/**
 * Content fingerprint of the update *shape*: dofs, row structure and
 * step schedule only — never numeric payloads, names or precision
 * (the Engine salts precision and pipeline the same way it does for
 * batch programs). Domain-separated from graphFingerprint so update
 * and batch programs can never collide in a cache or store.
 */
std::uint64_t updateFingerprint(const UpdateSpec &spec);

/**
 * Compile the update to the accelerator IR: LOADV-streamed input
 * rows, per-step GATHER/QR/EXTRACT mirroring the schedule, and
 * on-device back-substitution over the suffix. The program has no
 * LOADC — every number streams per frame — so one compile serves
 * every frame with this shape.
 */
Program compileUpdate(const UpdateSpec &spec);

} // namespace orianna::comp
