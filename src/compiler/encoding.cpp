#include "compiler/encoding.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace orianna::comp {

namespace {

constexpr std::uint32_t kMagic = 0x414e524f; // "ORNA".
// Version 2 added the fused opcodes (GSCALE, MVSUB). The container
// layout is unchanged — fused opcodes were appended after STORE so
// every version-1 byte stream decodes identically — so the decoder
// accepts both versions.
// Version 3 appends a one-byte datapath precision tag after the
// algorithm tag (DESIGN.md §12). Version 1/2 payloads carry no tag
// and decode as Fp64, which is what every pre-v3 program executed in.
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kMinVersion = 1;

/** Little-endian byte writer. */
class Writer
{
  public:
    template <typename T>
    void
    pod(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *raw = reinterpret_cast<const std::uint8_t *>(&value);
        bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
    }

    void
    str(const std::string &s)
    {
        pod(static_cast<std::uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void
    vec(const Vector &v)
    {
        pod(static_cast<std::uint32_t>(v.size()));
        for (std::size_t i = 0; i < v.size(); ++i)
            pod(v[i]);
    }

    void
    matrix(const Matrix &m)
    {
        pod(static_cast<std::uint32_t>(m.rows()));
        pod(static_cast<std::uint32_t>(m.cols()));
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                pod(m(i, j));
    }

    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian byte reader. */
class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {}

    template <typename T>
    T
    pod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (offset_ + sizeof(T) > bytes_.size())
            throw std::runtime_error("decodeProgram: truncated input");
        T value;
        std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
        offset_ += sizeof(T);
        return value;
    }

    std::string
    str()
    {
        const auto n = pod<std::uint32_t>();
        if (offset_ + n > bytes_.size())
            throw std::runtime_error("decodeProgram: truncated string");
        std::string s(bytes_.begin() + offset_,
                      bytes_.begin() + offset_ + n);
        offset_ += n;
        return s;
    }

    Vector
    vec()
    {
        const auto n = pod<std::uint32_t>();
        Vector v(n);
        for (std::uint32_t i = 0; i < n; ++i)
            v[i] = pod<double>();
        return v;
    }

    Matrix
    matrix()
    {
        const auto rows = pod<std::uint32_t>();
        const auto cols = pod<std::uint32_t>();
        Matrix m(rows, cols);
        for (std::uint32_t i = 0; i < rows; ++i)
            for (std::uint32_t j = 0; j < cols; ++j)
                m(i, j) = pod<double>();
        return m;
    }

    bool done() const { return offset_ == bytes_.size(); }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::size_t offset_ = 0;
};

void
encodeInstruction(Writer &w, const Instruction &inst)
{
    w.pod(static_cast<std::uint8_t>(inst.op));
    w.pod(inst.algorithm);
    w.pod(inst.phase);
    w.pod(static_cast<std::uint8_t>(inst.extractVector ? 1 : 0));
    w.pod(static_cast<std::uint32_t>(inst.rows));
    w.pod(static_cast<std::uint32_t>(inst.cols));
    w.pod(static_cast<std::uint32_t>(inst.depth));
    w.pod(inst.dst);
    w.pod(static_cast<std::uint32_t>(inst.srcs.size()));
    for (std::uint32_t s : inst.srcs)
        w.pod(s);
    w.pod(static_cast<std::uint32_t>(inst.deps.size()));
    for (std::uint32_t d : inst.deps)
        w.pod(d);
    w.pod(inst.key);
    w.pod(static_cast<std::uint8_t>(inst.component));
    w.pod(inst.factor);
    w.pod(inst.hingeEps);
    w.pod(inst.camera.fx);
    w.pod(inst.camera.fy);
    w.pod(inst.camera.cx);
    w.pod(inst.camera.cy);
    w.pod(static_cast<std::uint32_t>(inst.extractRow));
    w.pod(static_cast<std::uint32_t>(inst.extractCol));
    w.matrix(inst.constMat);
    w.vec(inst.constVec);
    w.pod(static_cast<std::uint32_t>(inst.placements.size()));
    for (const GatherPlacement &p : inst.placements) {
        w.pod(p.src);
        w.pod(static_cast<std::uint32_t>(p.rowBegin));
        w.pod(static_cast<std::uint32_t>(p.colBegin));
        w.pod(static_cast<std::uint8_t>(p.isRhs ? 1 : 0));
    }
    if (inst.sdf) {
        const auto obstacles = inst.sdf->obstacles();
        w.pod(static_cast<std::uint32_t>(obstacles.size() + 1));
        for (const auto &[center, radius] : obstacles) {
            w.vec(center);
            w.pod(radius);
        }
    } else {
        w.pod(static_cast<std::uint32_t>(0));
    }
}

Instruction
decodeInstruction(Reader &r)
{
    Instruction inst;
    const auto raw_op = r.pod<std::uint8_t>();
    if (raw_op >= kIsaOpCount)
        throw std::runtime_error("decodeProgram: bad opcode");
    inst.op = static_cast<IsaOp>(raw_op);
    inst.algorithm = r.pod<std::uint8_t>();
    inst.phase = r.pod<std::uint8_t>();
    inst.extractVector = r.pod<std::uint8_t>() != 0;
    inst.rows = r.pod<std::uint32_t>();
    inst.cols = r.pod<std::uint32_t>();
    inst.depth = r.pod<std::uint32_t>();
    inst.dst = r.pod<std::uint32_t>();
    const auto nsrcs = r.pod<std::uint32_t>();
    for (std::uint32_t i = 0; i < nsrcs; ++i)
        inst.srcs.push_back(r.pod<std::uint32_t>());
    const auto ndeps = r.pod<std::uint32_t>();
    for (std::uint32_t i = 0; i < ndeps; ++i)
        inst.deps.push_back(r.pod<std::uint32_t>());
    inst.key = r.pod<Key>();
    inst.component = static_cast<VarComponent>(r.pod<std::uint8_t>());
    inst.factor = r.pod<std::uint32_t>();
    inst.hingeEps = r.pod<double>();
    inst.camera.fx = r.pod<double>();
    inst.camera.fy = r.pod<double>();
    inst.camera.cx = r.pod<double>();
    inst.camera.cy = r.pod<double>();
    inst.extractRow = r.pod<std::uint32_t>();
    inst.extractCol = r.pod<std::uint32_t>();
    inst.constMat = r.matrix();
    inst.constVec = r.vec();
    const auto nplace = r.pod<std::uint32_t>();
    for (std::uint32_t i = 0; i < nplace; ++i) {
        GatherPlacement p;
        p.src = r.pod<std::uint32_t>();
        p.rowBegin = r.pod<std::uint32_t>();
        p.colBegin = r.pod<std::uint32_t>();
        p.isRhs = r.pod<std::uint8_t>() != 0;
        inst.placements.push_back(p);
    }
    const auto sdf_marker = r.pod<std::uint32_t>();
    if (sdf_marker > 0) {
        auto map = std::make_shared<fg::SdfMap>();
        for (std::uint32_t i = 0; i + 1 < sdf_marker; ++i) {
            Vector center = r.vec();
            const double radius = r.pod<double>();
            map->addObstacle(std::move(center), radius);
        }
        inst.sdf = std::move(map);
    }
    return inst;
}

} // namespace

std::uint32_t
encodingVersion()
{
    return kVersion;
}

std::uint32_t
minEncodingVersion()
{
    return kMinVersion;
}

std::vector<std::uint8_t>
encodeProgram(const Program &program)
{
    Writer w;
    w.pod(kMagic);
    w.pod(kVersion);
    w.str(program.name);
    w.pod(program.algorithm);
    w.pod(static_cast<std::uint8_t>(program.precision));
    w.pod(static_cast<std::uint64_t>(program.valueSlots));
    w.pod(static_cast<std::uint32_t>(program.deltas.size()));
    for (const DeltaBinding &binding : program.deltas) {
        w.pod(binding.key);
        w.pod(binding.slot);
    }
    w.pod(static_cast<std::uint32_t>(program.instructions.size()));
    for (const Instruction &inst : program.instructions)
        encodeInstruction(w, inst);
    return w.take();
}

Program
decodeProgram(const std::vector<std::uint8_t> &bytes)
{
    Reader r(bytes);
    if (r.pod<std::uint32_t>() != kMagic)
        throw std::runtime_error("decodeProgram: bad magic");
    const auto version = r.pod<std::uint32_t>();
    if (version < kMinVersion || version > kVersion)
        throw std::runtime_error("decodeProgram: unsupported version");

    Program program;
    program.name = r.str();
    program.algorithm = r.pod<std::uint8_t>();
    if (version >= 3) {
        const auto raw = r.pod<std::uint8_t>();
        if (raw >= kPrecisionCount)
            throw std::runtime_error("decodeProgram: bad precision");
        program.precision = static_cast<Precision>(raw);
    }
    program.valueSlots =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    const auto ndeltas = r.pod<std::uint32_t>();
    for (std::uint32_t i = 0; i < ndeltas; ++i) {
        DeltaBinding binding;
        binding.key = r.pod<Key>();
        binding.slot = r.pod<std::uint32_t>();
        program.deltas.push_back(binding);
    }
    const auto ninstr = r.pod<std::uint32_t>();
    program.instructions.reserve(ninstr);
    for (std::uint32_t i = 0; i < ninstr; ++i)
        program.instructions.push_back(decodeInstruction(r));
    if (!r.done())
        throw std::runtime_error("decodeProgram: trailing bytes");
    return program;
}

void
saveProgram(const std::string &path, const Program &program)
{
    const auto bytes = encodeProgram(program);
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("saveProgram: cannot open " + path);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        throw std::runtime_error("saveProgram: write failed");
}

Program
loadProgram(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("loadProgram: cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return decodeProgram(bytes);
}

} // namespace orianna::comp
