#include "compiler/incremental_codegen.hpp"

#include <stdexcept>

namespace orianna::comp {

namespace {

/** Key spaces of the synthetic host boundary (see UpdateLayout). */
constexpr Key kInputBase = 1ull << 40;
constexpr Key kOutputBase = 1ull << 41;
constexpr Key kDeltaBase = 1ull << 42;

/**
 * Minimal slot/shape/producer tracker, the update-program subset of
 * the batch codegen builder: fresh slot per instruction, deps from
 * operand producers, phase tags as in compileGraph (0 construction,
 * 1 decomposition, 2 back substitution).
 */
class UpdateBuilder
{
  public:
    explicit UpdateBuilder(std::uint8_t algorithm)
        : algorithm_(algorithm)
    {}

    std::uint32_t
    emit(Instruction inst, std::size_t rows, std::size_t cols)
    {
        shapes_.push_back({rows, cols});
        producer_.push_back(kNoProducer);
        inst.dst = static_cast<std::uint32_t>(shapes_.size() - 1);
        inst.rows = rows;
        inst.cols = cols;
        inst.algorithm = algorithm_;
        inst.phase = phase_;
        for (std::uint32_t src : inst.srcs) {
            const std::uint32_t p = producer_[src];
            if (p != kNoProducer)
                inst.deps.push_back(p);
        }
        const std::uint32_t dst = inst.dst;
        program_.instructions.push_back(std::move(inst));
        producer_[dst] = static_cast<std::uint32_t>(
            program_.instructions.size() - 1);
        return dst;
    }

    void
    store(std::uint32_t slot)
    {
        Instruction inst;
        inst.op = IsaOp::STORE;
        inst.srcs = {slot};
        inst.dst = slot;
        inst.rows = shapes_[slot].first;
        inst.cols = shapes_[slot].second;
        inst.algorithm = algorithm_;
        inst.phase = phase_;
        const std::uint32_t p = producer_[slot];
        if (p != kNoProducer)
            inst.deps.push_back(p);
        program_.instructions.push_back(std::move(inst));
    }

    void setPhase(std::uint8_t phase) { phase_ = phase; }

    std::size_t rows(std::uint32_t slot) const
    {
        return shapes_[slot].first;
    }

    Program
    finish(std::string name)
    {
        program_.valueSlots = shapes_.size();
        program_.algorithm = algorithm_;
        program_.name = std::move(name);
        return std::move(program_);
    }

  private:
    static constexpr std::uint32_t kNoProducer = 0xffffffffu;

    Program program_;
    std::uint8_t algorithm_;
    std::uint8_t phase_ = 0;
    std::vector<std::pair<std::size_t, std::size_t>> shapes_;
    std::vector<std::uint32_t> producer_;
};

/** FNV-1a mixer (same scheme as the engine's graph fingerprint). */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    void
    mix(const char *s)
    {
        for (; *s; ++s) {
            h ^= static_cast<unsigned char>(*s);
            h *= 1099511628211ull;
        }
    }
};

} // namespace

UpdateLayout
updateLayout(const UpdateSpec &spec)
{
    UpdateLayout layout;
    Key next = kInputBase;
    for (const UpdateSpec::Row &row : spec.rows) {
        UpdateLayout::RowKeys keys;
        for (std::uint32_t position : row.blocks) {
            std::vector<Key> cols(spec.dofs.at(position));
            for (Key &key : cols)
                key = next++;
            keys.blockColumns.push_back(std::move(cols));
        }
        keys.rhs = next++;
        layout.inputs.push_back(std::move(keys));
    }

    next = kOutputBase;
    for (const UpdateSpec::Step &step : spec.steps) {
        UpdateLayout::StepKeys keys;
        std::size_t ncols = 0;
        for (std::uint32_t position : step.columns)
            ncols += spec.dofs.at(position);
        keys.columns.resize(ncols + 1);
        for (Key &key : keys.columns)
            key = next++;
        keys.dv = spec.dofs.at(step.columns.front());
        keys.height = keys.dv + step.kept;
        layout.outputs.push_back(std::move(keys));
    }

    for (std::size_t p = 0; p < spec.dofs.size(); ++p)
        layout.deltaKeys.push_back(kDeltaBase + p);
    return layout;
}

std::uint64_t
updateFingerprint(const UpdateSpec &spec)
{
    Fnv f;
    f.mix("orianna-update-v1");
    f.mix(spec.dofs.size());
    for (std::uint32_t d : spec.dofs)
        f.mix(d);
    f.mix(spec.rows.size());
    for (const UpdateSpec::Row &row : spec.rows) {
        f.mix(row.dim);
        f.mix(row.blocks.size());
        for (std::uint32_t p : row.blocks)
            f.mix(p);
    }
    f.mix(spec.steps.size());
    for (const UpdateSpec::Step &step : spec.steps) {
        f.mix(step.rowRefs.size());
        for (std::uint32_t r : step.rowRefs)
            f.mix(r);
        f.mix(step.columns.size());
        for (std::uint32_t c : step.columns)
            f.mix(c);
        f.mix(step.kept);
    }
    return f.h;
}

Program
compileUpdate(const UpdateSpec &spec)
{
    const UpdateLayout layout = updateLayout(spec);
    UpdateBuilder b(spec.algorithmTag);
    std::vector<DeltaBinding> bindings;

    // ---- Phase 1: stream the input rows in (no LOADC anywhere) ----
    struct RowSlots
    {
        std::vector<std::vector<std::uint32_t>> blockColumns;
        std::uint32_t rhs = 0;
    };
    std::vector<RowSlots> inputs;
    for (std::size_t r = 0; r < spec.rows.size(); ++r) {
        const UpdateSpec::Row &row = spec.rows[r];
        RowSlots slots;
        for (std::size_t bi = 0; bi < row.blocks.size(); ++bi) {
            std::vector<std::uint32_t> cols;
            for (Key key : layout.inputs[r].blockColumns[bi]) {
                Instruction load;
                load.op = IsaOp::LOADV;
                load.key = key;
                load.component = VarComponent::Whole;
                cols.push_back(b.emit(std::move(load), row.dim, 1));
            }
            slots.blockColumns.push_back(std::move(cols));
        }
        Instruction load;
        load.op = IsaOp::LOADV;
        load.key = layout.inputs[r].rhs;
        load.component = VarComponent::Whole;
        slots.rhs = b.emit(std::move(load), row.dim, 1);
        inputs.push_back(std::move(slots));
    }

    // ---- Phase 2: suffix elimination following the schedule ----
    b.setPhase(1);

    /** On-device image of a carry row: per-position block + rhs. */
    struct CarrySlots
    {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> blocks;
        std::uint32_t rhs = 0;
        std::uint32_t dim = 0;
    };
    std::vector<CarrySlots> carries;

    struct CondSlots
    {
        std::uint32_t position = 0;
        std::uint32_t rSelf = 0;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> rParents;
        std::uint32_t rhs = 0;
    };
    std::vector<CondSlots> conditionals;

    for (std::size_t si = 0; si < spec.steps.size(); ++si) {
        const UpdateSpec::Step &step = spec.steps[si];
        if (step.columns.empty() ||
            step.columns.front() != static_cast<std::uint32_t>(si))
            throw std::invalid_argument(
                "compileUpdate: step does not eliminate its own "
                "suffix position");

        std::vector<std::size_t> col_offset(spec.dofs.size(), 0);
        std::size_t ncols = 0;
        for (std::uint32_t position : step.columns) {
            col_offset[position] = ncols;
            ncols += spec.dofs.at(position);
        }
        std::size_t nrows = 0;
        for (std::uint32_t ref : step.rowRefs)
            nrows += ref < spec.rows.size()
                         ? spec.rows[ref].dim
                         : carries.at(ref - spec.rows.size()).dim;
        const std::size_t dv = spec.dofs.at(step.columns.front());
        if (nrows < dv)
            throw std::invalid_argument(
                "compileUpdate: underdetermined step");

        // GATHER the augmented [Abar | b]: streamed input columns
        // and extracted carry blocks land at the offsets the batch
        // codegen would use.
        Instruction gather;
        gather.op = IsaOp::GATHER;
        std::size_t row_offset = 0;
        for (std::uint32_t ref : step.rowRefs) {
            if (ref < spec.rows.size()) {
                const UpdateSpec::Row &row = spec.rows[ref];
                const RowSlots &slots = inputs[ref];
                for (std::size_t bi = 0; bi < row.blocks.size();
                     ++bi) {
                    const std::size_t base =
                        col_offset[row.blocks[bi]];
                    const auto &cols = slots.blockColumns[bi];
                    for (std::size_t j = 0; j < cols.size(); ++j) {
                        gather.srcs.push_back(cols[j]);
                        gather.placements.push_back(
                            {cols[j], row_offset, base + j, true});
                    }
                }
                gather.srcs.push_back(slots.rhs);
                gather.placements.push_back(
                    {slots.rhs, row_offset, ncols, true});
                row_offset += row.dim;
            } else {
                const CarrySlots &carry =
                    carries.at(ref - spec.rows.size());
                for (const auto &[position, slot] : carry.blocks) {
                    gather.srcs.push_back(slot);
                    gather.placements.push_back(
                        {slot, row_offset, col_offset[position],
                         false});
                }
                gather.srcs.push_back(carry.rhs);
                gather.placements.push_back(
                    {carry.rhs, row_offset, ncols, true});
                row_offset += carry.dim;
            }
        }
        const std::uint32_t abar =
            b.emit(std::move(gather), nrows, ncols + 1);

        Instruction qr;
        qr.op = IsaOp::QR;
        qr.srcs = {abar};
        qr.depth = ncols;
        const std::uint32_t r_slot =
            b.emit(std::move(qr), nrows, ncols + 1);

        auto extract = [&](std::size_t i0, std::size_t j0,
                           std::size_t rows, std::size_t cols,
                           bool as_vector) {
            Instruction inst;
            inst.op = IsaOp::EXTRACT;
            inst.srcs = {r_slot};
            inst.extractRow = i0;
            inst.extractCol = j0;
            inst.extractVector = as_vector;
            return b.emit(std::move(inst), rows,
                          as_vector ? 1 : cols);
        };

        // Host-visible results: every column of the step's R factor
        // (conditional rows + carry rows) streams back as a vector.
        const std::size_t height = dv + step.kept;
        for (std::size_t c = 0; c <= ncols; ++c) {
            const std::uint32_t out =
                extract(0, c, height, 1, true);
            b.store(out);
            bindings.push_back({layout.outputs[si].columns[c], out});
        }

        // Conditional blocks for the on-device back-substitution.
        CondSlots cond;
        cond.position = step.columns.front();
        cond.rSelf = extract(0, 0, dv, dv, false);
        cond.rhs = extract(0, ncols, dv, 1, true);
        for (std::size_t c = 1; c < step.columns.size(); ++c) {
            const std::uint32_t position = step.columns[c];
            cond.rParents.emplace_back(
                position, extract(0, col_offset[position], dv,
                                  spec.dofs.at(position), false));
        }
        conditionals.push_back(std::move(cond));

        // Carry blocks feeding later steps.
        if (step.kept > 0) {
            CarrySlots carry;
            carry.dim = step.kept;
            for (std::size_t c = 1; c < step.columns.size(); ++c) {
                const std::uint32_t position = step.columns[c];
                carry.blocks.emplace_back(
                    position,
                    extract(dv, col_offset[position], step.kept,
                            spec.dofs.at(position), false));
            }
            carry.rhs = extract(dv, ncols, step.kept, 1, true);
            carries.push_back(std::move(carry));
        }
    }

    // ---- Phase 3: back substitution over the suffix ----
    b.setPhase(2);
    std::vector<std::uint32_t> delta_slot(spec.dofs.size(), 0);
    for (std::size_t i = conditionals.size(); i-- > 0;) {
        const CondSlots &cond = conditionals[i];
        std::uint32_t rhs = cond.rhs;
        for (const auto &[position, block] : cond.rParents) {
            Instruction mv;
            mv.op = IsaOp::MV;
            mv.srcs = {block, delta_slot.at(position)};
            mv.depth = spec.dofs.at(position);
            const std::uint32_t prod = b.emit(
                std::move(mv), spec.dofs.at(cond.position), 1);
            Instruction sub;
            sub.op = IsaOp::VSUB;
            sub.srcs = {rhs, prod};
            rhs = b.emit(std::move(sub), b.rows(rhs), 1);
        }
        Instruction bsub;
        bsub.op = IsaOp::BSUB;
        bsub.srcs = {cond.rSelf, rhs};
        const std::uint32_t delta =
            b.emit(std::move(bsub), spec.dofs.at(cond.position), 1);
        b.store(delta);
        delta_slot[cond.position] = delta;
        bindings.push_back({layout.deltaKeys[cond.position], delta});
    }

    Program prog = b.finish(spec.name);
    prog.precision = spec.precision;
    prog.deltas = std::move(bindings);
    return prog;
}

} // namespace orianna::comp
