#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "matrix/dense.hpp"

namespace orianna::mat {

/**
 * Block-sparse matrix with fixed block-row / block-column partitions.
 *
 * This is the assembly format for the linearized system A of
 * Gauss-Newton (Sec. 2.2): each factor contributes one block row and
 * each variable owns one block column, so the sparsity pattern *is*
 * the factor-graph topology. Only the nonzero blocks are stored.
 */
class BlockSparseMatrix
{
  public:
    /**
     * @param row_dims height of each block row (one per factor).
     * @param col_dims width of each block column (one per variable).
     */
    BlockSparseMatrix(std::vector<std::size_t> row_dims,
                      std::vector<std::size_t> col_dims);

    std::size_t blockRows() const { return rowDims_.size(); }
    std::size_t blockCols() const { return colDims_.size(); }
    std::size_t totalRows() const { return rowOffsets_.back(); }
    std::size_t totalCols() const { return colOffsets_.back(); }

    /** Scalar row index where block row @p br starts. */
    std::size_t rowOffset(std::size_t br) const { return rowOffsets_[br]; }

    /** Scalar column index where block column @p bc starts. */
    std::size_t colOffset(std::size_t bc) const { return colOffsets_[bc]; }

    std::size_t rowDim(std::size_t br) const { return rowDims_[br]; }
    std::size_t colDim(std::size_t bc) const { return colDims_[bc]; }

    /**
     * Insert (or overwrite) the block at (@p br, @p bc). The block
     * shape must match the partition dims.
     */
    void setBlock(std::size_t br, std::size_t bc, Matrix value);

    /** Block at (@p br, @p bc), or nullptr when structurally zero. */
    const Matrix *findBlock(std::size_t br, std::size_t bc) const;

    /** Block columns that have a nonzero block in block row @p br. */
    std::vector<std::size_t> blocksInRow(std::size_t br) const;

    /** Block rows that have a nonzero block in block column @p bc. */
    std::vector<std::size_t> blocksInCol(std::size_t bc) const;

    /** Number of stored (structurally nonzero) blocks. */
    std::size_t blockCount() const { return blocks_.size(); }

    /** Number of scalar nonzeros across all stored blocks. */
    std::size_t nonZeros(double tol = 1e-12) const;

    /** Scalar density of the equivalent dense matrix. */
    double density(double tol = 1e-12) const;

    /** Materialize as a dense matrix (for baselines and tests). */
    Matrix toDense() const;

  private:
    std::vector<std::size_t> rowDims_;
    std::vector<std::size_t> colDims_;
    std::vector<std::size_t> rowOffsets_;
    std::vector<std::size_t> colOffsets_;
    std::map<std::pair<std::size_t, std::size_t>, Matrix> blocks_;
};

} // namespace orianna::mat
