#include "matrix/block_sparse.hpp"

#include <numeric>
#include <stdexcept>

namespace orianna::mat {

namespace {

std::vector<std::size_t>
prefixSum(const std::vector<std::size_t> &dims)
{
    std::vector<std::size_t> offsets(dims.size() + 1, 0);
    for (std::size_t i = 0; i < dims.size(); ++i)
        offsets[i + 1] = offsets[i] + dims[i];
    return offsets;
}

} // namespace

BlockSparseMatrix::BlockSparseMatrix(std::vector<std::size_t> row_dims,
                                     std::vector<std::size_t> col_dims)
    : rowDims_(std::move(row_dims)), colDims_(std::move(col_dims)),
      rowOffsets_(prefixSum(rowDims_)), colOffsets_(prefixSum(colDims_))
{}

void
BlockSparseMatrix::setBlock(std::size_t br, std::size_t bc, Matrix value)
{
    if (br >= blockRows() || bc >= blockCols())
        throw std::out_of_range("BlockSparseMatrix::setBlock: bad index");
    if (value.rows() != rowDims_[br] || value.cols() != colDims_[bc])
        throw std::invalid_argument(
            "BlockSparseMatrix::setBlock: block shape mismatch");
    blocks_[{br, bc}] = std::move(value);
}

const Matrix *
BlockSparseMatrix::findBlock(std::size_t br, std::size_t bc) const
{
    auto it = blocks_.find({br, bc});
    return it == blocks_.end() ? nullptr : &it->second;
}

std::vector<std::size_t>
BlockSparseMatrix::blocksInRow(std::size_t br) const
{
    std::vector<std::size_t> out;
    for (auto it = blocks_.lower_bound({br, 0});
         it != blocks_.end() && it->first.first == br; ++it)
        out.push_back(it->first.second);
    return out;
}

std::vector<std::size_t>
BlockSparseMatrix::blocksInCol(std::size_t bc) const
{
    std::vector<std::size_t> out;
    for (const auto &[key, block] : blocks_)
        if (key.second == bc)
            out.push_back(key.first);
    return out;
}

std::size_t
BlockSparseMatrix::nonZeros(double tol) const
{
    std::size_t count = 0;
    for (const auto &[key, block] : blocks_)
        count += block.nonZeros(tol);
    return count;
}

double
BlockSparseMatrix::density(double tol) const
{
    const std::size_t total = totalRows() * totalCols();
    if (total == 0)
        return 0.0;
    return static_cast<double>(nonZeros(tol)) / static_cast<double>(total);
}

Matrix
BlockSparseMatrix::toDense() const
{
    Matrix out(totalRows(), totalCols());
    for (const auto &[key, block] : blocks_)
        out.setBlock(rowOffsets_[key.first], colOffsets_[key.second], block);
    return out;
}

} // namespace orianna::mat
