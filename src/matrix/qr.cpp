#include "matrix/qr.hpp"

#include <cmath>
#include <stdexcept>

#include "matrix/kernels.hpp"
#include "matrix/mac_counter.hpp"

namespace orianna::mat {

template <typename T>
QrResultT<T>
householderQr(const MatrixT<T> &a, const VectorT<T> &b)
{
    if (a.rows() != b.size())
        throw std::invalid_argument("householderQr: A/b row mismatch");

    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    MatrixT<T> r = a;
    VectorT<T> rhs = b;
    // Row-major base pointers; all column accesses below stride by n.
    T *rp = m > 0 && n > 0 ? &r(0, 0) : nullptr;
    T *rhsp = m > 0 ? &rhs[0] : nullptr;

    const std::size_t steps = std::min(m == 0 ? 0 : m - 1, n);
    for (std::size_t k = 0; k < steps; ++k) {
        // Build the Householder reflector for column k below row k.
        T *col_k = rp + k * n + k;
        const T sigma =
            kernels::dotStrided(col_k, n, col_k, n, m - k);
        MacCounter::add(m - k);
        T alpha = std::sqrt(sigma);
        if (alpha == T(0))
            continue;
        if (r(k, k) > T(0))
            alpha = -alpha;

        VectorT<T> v(m - k);
        v[0] = r(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i)
            v[i - k] = r(i, k);
        const T vnorm2 = sigma - T(2) * alpha * r(k, k) + alpha * alpha;
        if (vnorm2 == T(0))
            continue;
        const T *vp = &v[0];

        // Apply I - 2 v v^T / (v^T v) to the trailing columns and rhs
        // through the strided dot/axpy microkernels.
        for (std::size_t j = k; j < n; ++j) {
            T *col_j = rp + k * n + j;
            const T dot =
                kernels::dotStrided(vp, 1, col_j, n, m - k);
            const T beta = T(2) * dot / vnorm2;
            kernels::axpyNegStrided(col_j, n, beta, vp, m - k);
            MacCounter::add(2 * (m - k));
        }
        const T dot = kernels::dot(vp, rhsp + k, m - k);
        const T beta = T(2) * dot / vnorm2;
        kernels::axpyNegStrided(rhsp + k, 1, beta, vp, m - k);
        MacCounter::add(2 * (m - k));
    }
    return {std::move(r), std::move(rhs)};
}

template <typename T>
QrResultT<T>
givensQr(const MatrixT<T> &a, const VectorT<T> &b)
{
    if (a.rows() != b.size())
        throw std::invalid_argument("givensQr: A/b row mismatch");

    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    MatrixT<T> r = a;
    VectorT<T> rhs = b;
    T *rp = m > 0 && n > 0 ? &r(0, 0) : nullptr;

    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = m; i-- > j + 1;) {
            const T x = r(j, j);
            const T y = r(i, j);
            if (y == T(0))
                continue;
            const T hyp = std::hypot(x, y);
            const T c = x / hyp;
            const T s = y / hyp;
            kernels::givensRotate(rp + j * n + j, rp + i * n + j, c, s,
                                  n - j);
            MacCounter::add(4 * (n - j));
            const T tj = rhs[j];
            const T ti = rhs[i];
            rhs[j] = c * tj + s * ti;
            rhs[i] = -s * tj + c * ti;
            MacCounter::add(4);
            r(i, j) = T(0);
        }
    }
    return {std::move(r), std::move(rhs)};
}

template <typename T>
VectorT<T>
backSubstitute(const MatrixT<T> &r, const VectorT<T> &y)
{
    const std::size_t n = r.cols();
    if (r.rows() < n || y.size() < n)
        throw std::invalid_argument("backSubstitute: system too short");

    VectorT<T> x(n);
    if (n == 0)
        return x;
    const T *rp = r.data().data();
    T *xp = &x[0];
    for (std::size_t ii = n; ii-- > 0;) {
        // Subtract the already-solved tail of row ii in place
        // (ascending j, same chain as the reference loop).
        const T acc = kernels::fusedSubtractDot(
            y[ii], rp + ii * n + ii + 1, xp + ii + 1, n - ii - 1);
        MacCounter::add(n - ii - 1);
        const T diag = r(ii, ii);
        if (std::abs(diag) < T(1e-12))
            throw std::runtime_error("backSubstitute: singular diagonal");
        xp[ii] = acc / diag;
    }
    return x;
}

template <typename T>
VectorT<T>
leastSquares(const MatrixT<T> &a, const VectorT<T> &b)
{
    QrResultT<T> qr = householderQr(a, b);
    const std::size_t n = a.cols();
    MatrixT<T> top = qr.r.block(0, 0, n, n);
    VectorT<T> y(n);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = qr.rhs[i];
    return backSubstitute(top, y);
}

// The only two supported precisions; fp64 instantiates to the exact
// pre-template code, preserving the golden digests.
template QrResultT<double> householderQr(const MatrixT<double> &,
                                         const VectorT<double> &);
template QrResultT<float> householderQr(const MatrixT<float> &,
                                        const VectorT<float> &);
template QrResultT<double> givensQr(const MatrixT<double> &,
                                    const VectorT<double> &);
template QrResultT<float> givensQr(const MatrixT<float> &,
                                   const VectorT<float> &);
template VectorT<double> backSubstitute(const MatrixT<double> &,
                                        const VectorT<double> &);
template VectorT<float> backSubstitute(const MatrixT<float> &,
                                       const VectorT<float> &);
template VectorT<double> leastSquares(const MatrixT<double> &,
                                      const VectorT<double> &);
template VectorT<float> leastSquares(const MatrixT<float> &,
                                     const VectorT<float> &);

} // namespace orianna::mat
