#include "matrix/qr.hpp"

#include <cmath>
#include <stdexcept>

#include "matrix/mac_counter.hpp"

namespace orianna::mat {

QrResult
householderQr(const Matrix &a, const Vector &b)
{
    if (a.rows() != b.size())
        throw std::invalid_argument("householderQr: A/b row mismatch");

    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix r = a;
    Vector rhs = b;

    const std::size_t steps = std::min(m == 0 ? 0 : m - 1, n);
    for (std::size_t k = 0; k < steps; ++k) {
        // Build the Householder reflector for column k below row k.
        double sigma = 0.0;
        for (std::size_t i = k; i < m; ++i)
            sigma += r(i, k) * r(i, k);
        MacCounter::add(m - k);
        double alpha = std::sqrt(sigma);
        if (alpha == 0.0)
            continue;
        if (r(k, k) > 0.0)
            alpha = -alpha;

        Vector v(m - k);
        v[0] = r(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i)
            v[i - k] = r(i, k);
        const double vnorm2 = sigma - 2.0 * alpha * r(k, k) + alpha * alpha;
        if (vnorm2 == 0.0)
            continue;

        // Apply I - 2 v v^T / (v^T v) to the trailing columns and rhs.
        for (std::size_t j = k; j < n; ++j) {
            double dot = 0.0;
            for (std::size_t i = k; i < m; ++i)
                dot += v[i - k] * r(i, j);
            const double beta = 2.0 * dot / vnorm2;
            for (std::size_t i = k; i < m; ++i)
                r(i, j) -= beta * v[i - k];
            MacCounter::add(2 * (m - k));
        }
        double dot = 0.0;
        for (std::size_t i = k; i < m; ++i)
            dot += v[i - k] * rhs[i];
        const double beta = 2.0 * dot / vnorm2;
        for (std::size_t i = k; i < m; ++i)
            rhs[i] -= beta * v[i - k];
        MacCounter::add(2 * (m - k));
    }
    return {std::move(r), std::move(rhs)};
}

QrResult
givensQr(const Matrix &a, const Vector &b)
{
    if (a.rows() != b.size())
        throw std::invalid_argument("givensQr: A/b row mismatch");

    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix r = a;
    Vector rhs = b;

    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = m; i-- > j + 1;) {
            const double x = r(j, j);
            const double y = r(i, j);
            if (y == 0.0)
                continue;
            const double hyp = std::hypot(x, y);
            const double c = x / hyp;
            const double s = y / hyp;
            for (std::size_t k = j; k < n; ++k) {
                const double rj = r(j, k);
                const double ri = r(i, k);
                r(j, k) = c * rj + s * ri;
                r(i, k) = -s * rj + c * ri;
            }
            MacCounter::add(4 * (n - j));
            const double tj = rhs[j];
            const double ti = rhs[i];
            rhs[j] = c * tj + s * ti;
            rhs[i] = -s * tj + c * ti;
            MacCounter::add(4);
            r(i, j) = 0.0;
        }
    }
    return {std::move(r), std::move(rhs)};
}

Vector
backSubstitute(const Matrix &r, const Vector &y)
{
    const std::size_t n = r.cols();
    if (r.rows() < n || y.size() < n)
        throw std::invalid_argument("backSubstitute: system too short");

    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j)
            acc -= r(ii, j) * x[j];
        MacCounter::add(n - ii - 1);
        const double diag = r(ii, ii);
        if (std::abs(diag) < 1e-12)
            throw std::runtime_error("backSubstitute: singular diagonal");
        x[ii] = acc / diag;
    }
    return x;
}

Vector
leastSquares(const Matrix &a, const Vector &b)
{
    QrResult qr = householderQr(a, b);
    const std::size_t n = a.cols();
    Matrix top = qr.r.block(0, 0, n, n);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = qr.rhs[i];
    return backSubstitute(top, y);
}

} // namespace orianna::mat
