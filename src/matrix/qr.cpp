#include "matrix/qr.hpp"

#include <cmath>
#include <stdexcept>

#include "matrix/kernels.hpp"
#include "matrix/mac_counter.hpp"

namespace orianna::mat {

QrResult
householderQr(const Matrix &a, const Vector &b)
{
    if (a.rows() != b.size())
        throw std::invalid_argument("householderQr: A/b row mismatch");

    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix r = a;
    Vector rhs = b;
    // Row-major base pointers; all column accesses below stride by n.
    double *rp = m > 0 && n > 0 ? &r(0, 0) : nullptr;
    double *rhsp = m > 0 ? &rhs[0] : nullptr;

    const std::size_t steps = std::min(m == 0 ? 0 : m - 1, n);
    for (std::size_t k = 0; k < steps; ++k) {
        // Build the Householder reflector for column k below row k.
        double *col_k = rp + k * n + k;
        const double sigma =
            kernels::dotStrided(col_k, n, col_k, n, m - k);
        MacCounter::add(m - k);
        double alpha = std::sqrt(sigma);
        if (alpha == 0.0)
            continue;
        if (r(k, k) > 0.0)
            alpha = -alpha;

        Vector v(m - k);
        v[0] = r(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i)
            v[i - k] = r(i, k);
        const double vnorm2 = sigma - 2.0 * alpha * r(k, k) + alpha * alpha;
        if (vnorm2 == 0.0)
            continue;
        const double *vp = &v[0];

        // Apply I - 2 v v^T / (v^T v) to the trailing columns and rhs
        // through the strided dot/axpy microkernels.
        for (std::size_t j = k; j < n; ++j) {
            double *col_j = rp + k * n + j;
            const double dot =
                kernels::dotStrided(vp, 1, col_j, n, m - k);
            const double beta = 2.0 * dot / vnorm2;
            kernels::axpyNegStrided(col_j, n, beta, vp, m - k);
            MacCounter::add(2 * (m - k));
        }
        const double dot = kernels::dot(vp, rhsp + k, m - k);
        const double beta = 2.0 * dot / vnorm2;
        kernels::axpyNegStrided(rhsp + k, 1, beta, vp, m - k);
        MacCounter::add(2 * (m - k));
    }
    return {std::move(r), std::move(rhs)};
}

QrResult
givensQr(const Matrix &a, const Vector &b)
{
    if (a.rows() != b.size())
        throw std::invalid_argument("givensQr: A/b row mismatch");

    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix r = a;
    Vector rhs = b;
    double *rp = m > 0 && n > 0 ? &r(0, 0) : nullptr;

    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = m; i-- > j + 1;) {
            const double x = r(j, j);
            const double y = r(i, j);
            if (y == 0.0)
                continue;
            const double hyp = std::hypot(x, y);
            const double c = x / hyp;
            const double s = y / hyp;
            kernels::givensRotate(rp + j * n + j, rp + i * n + j, c, s,
                                  n - j);
            MacCounter::add(4 * (n - j));
            const double tj = rhs[j];
            const double ti = rhs[i];
            rhs[j] = c * tj + s * ti;
            rhs[i] = -s * tj + c * ti;
            MacCounter::add(4);
            r(i, j) = 0.0;
        }
    }
    return {std::move(r), std::move(rhs)};
}

Vector
backSubstitute(const Matrix &r, const Vector &y)
{
    const std::size_t n = r.cols();
    if (r.rows() < n || y.size() < n)
        throw std::invalid_argument("backSubstitute: system too short");

    Vector x(n);
    if (n == 0)
        return x;
    const double *rp = r.data().data();
    double *xp = &x[0];
    for (std::size_t ii = n; ii-- > 0;) {
        // Subtract the already-solved tail of row ii in place
        // (ascending j, same chain as the reference loop).
        const double acc = kernels::fusedSubtractDot(
            y[ii], rp + ii * n + ii + 1, xp + ii + 1, n - ii - 1);
        MacCounter::add(n - ii - 1);
        const double diag = r(ii, ii);
        if (std::abs(diag) < 1e-12)
            throw std::runtime_error("backSubstitute: singular diagonal");
        xp[ii] = acc / diag;
    }
    return x;
}

Vector
leastSquares(const Matrix &a, const Vector &b)
{
    QrResult qr = householderQr(a, b);
    const std::size_t n = a.cols();
    Matrix top = qr.r.block(0, 0, n, n);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = qr.rhs[i];
    return backSubstitute(top, y);
}

} // namespace orianna::mat
