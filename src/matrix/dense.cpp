#include "matrix/dense.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "matrix/kernels.hpp"
#include "matrix/mac_counter.hpp"

namespace orianna::mat {

namespace {

void
requireSameSize(std::size_t a, std::size_t b, const char *what)
{
    if (a != b)
        throw std::invalid_argument(std::string(what) + ": size mismatch");
}

} // namespace

template <typename T>
VectorT<T>
VectorT<T>::operator+(const VectorT &other) const
{
    requireSameSize(size(), other.size(), "Vector::operator+");
    VectorT out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] + other[i];
    return out;
}

template <typename T>
VectorT<T>
VectorT<T>::operator-(const VectorT &other) const
{
    requireSameSize(size(), other.size(), "Vector::operator-");
    VectorT out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] - other[i];
    return out;
}

template <typename T>
VectorT<T>
VectorT<T>::operator-() const
{
    VectorT out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = -data_[i];
    return out;
}

template <typename T>
VectorT<T>
VectorT<T>::operator*(T scale) const
{
    VectorT out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] * scale;
    MacCounter::add(size());
    return out;
}

template <typename T>
VectorT<T> &
VectorT<T>::operator+=(const VectorT &other)
{
    requireSameSize(size(), other.size(), "Vector::operator+=");
    for (std::size_t i = 0; i < size(); ++i)
        data_[i] += other[i];
    return *this;
}

template <typename T>
VectorT<T> &
VectorT<T>::operator-=(const VectorT &other)
{
    requireSameSize(size(), other.size(), "Vector::operator-=");
    for (std::size_t i = 0; i < size(); ++i)
        data_[i] -= other[i];
    return *this;
}

template <typename T>
T
VectorT<T>::dot(const VectorT &other) const
{
    requireSameSize(size(), other.size(), "Vector::dot");
    const T acc =
        kernels::dot(data_.data(), other.data_.data(), size());
    MacCounter::add(size());
    return acc;
}

template <typename T>
T
VectorT<T>::norm() const
{
    return std::sqrt(dot(*this));
}

template <typename T>
T
VectorT<T>::maxAbs() const
{
    T best = T(0);
    for (T v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

template <typename T>
VectorT<T>
VectorT<T>::segment(std::size_t start, std::size_t len) const
{
    if (start + len > size())
        throw std::out_of_range("Vector::segment: out of range");
    VectorT out(len);
    for (std::size_t i = 0; i < len; ++i)
        out[i] = data_[start + i];
    return out;
}

template <typename T>
void
VectorT<T>::setSegment(std::size_t start, const VectorT &value)
{
    if (start + value.size() > size())
        throw std::out_of_range("Vector::setSegment: out of range");
    for (std::size_t i = 0; i < value.size(); ++i)
        data_[start + i] = value[i];
}

template <typename T>
VectorT<T>
VectorT<T>::concat(const VectorT &other) const
{
    VectorT out(size() + other.size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i];
    for (std::size_t i = 0; i < other.size(); ++i)
        out[size() + i] = other[i];
    return out;
}

template <typename T>
MatrixT<T>
VectorT<T>::asColumn() const
{
    MatrixT<T> out(size(), 1);
    for (std::size_t i = 0; i < size(); ++i)
        out(i, 0) = data_[i];
    return out;
}

template <typename T>
std::string
VectorT<T>::str() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < size(); ++i)
        os << (i ? ", " : "") << data_[i];
    os << "]";
    return os.str();
}

template <typename T>
MatrixT<T>::MatrixT(std::initializer_list<std::initializer_list<T>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &r : rows) {
        if (r.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

template <typename T>
MatrixT<T>
MatrixT<T>::identity(std::size_t n)
{
    MatrixT out(n, n);
    for (std::size_t i = 0; i < n; ++i)
        out(i, i) = T(1);
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::zero(std::size_t rows, std::size_t cols)
{
    return MatrixT(rows, cols);
}

template <typename T>
MatrixT<T>
MatrixT<T>::diagonal(const VectorT<T> &diag)
{
    MatrixT out(diag.size(), diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i)
        out(i, i) = diag[i];
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::operator+(const MatrixT &other) const
{
    requireSameSize(rows_, other.rows_, "Matrix::operator+ rows");
    requireSameSize(cols_, other.cols_, "Matrix::operator+ cols");
    MatrixT out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::operator-(const MatrixT &other) const
{
    requireSameSize(rows_, other.rows_, "Matrix::operator- rows");
    requireSameSize(cols_, other.cols_, "Matrix::operator- cols");
    MatrixT out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::operator-() const
{
    MatrixT out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = -data_[i];
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::operator*(const MatrixT &other) const
{
    requireSameSize(cols_, other.rows_, "Matrix::operator* inner");
    MatrixT out(rows_, other.cols_);
    kernels::gemm(data_.data(), other.data_.data(), out.data_.data(),
                  rows_, cols_, other.cols_);
    MacCounter::add(rows_ * cols_ * other.cols_);
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::transposeTimes(const MatrixT &other) const
{
    requireSameSize(rows_, other.rows_, "Matrix::transposeTimes inner");
    MatrixT out(cols_, other.cols_);
    kernels::gemmTransA(data_.data(), other.data_.data(),
                        out.data_.data(), rows_, cols_, other.cols_);
    MacCounter::add(cols_ * rows_ * other.cols_);
    return out;
}

template <typename T>
VectorT<T>
MatrixT<T>::transposeTimes(const VectorT<T> &vec) const
{
    requireSameSize(rows_, vec.size(), "Matrix::transposeTimes vector");
    VectorT<T> out(cols_);
    if (rows_ > 0 && cols_ > 0)
        kernels::gemvTransA(data_.data(), vec.data().data(), &out[0],
                            rows_, cols_);
    MacCounter::add(cols_ * rows_);
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::timesTranspose(const MatrixT &other) const
{
    requireSameSize(cols_, other.cols_, "Matrix::timesTranspose inner");
    MatrixT out(rows_, other.rows_);
    kernels::gemmTransB(data_.data(), other.data_.data(),
                        out.data_.data(), rows_, cols_, other.rows_);
    MacCounter::add(rows_ * cols_ * other.rows_);
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::operator*(T scale) const
{
    MatrixT out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * scale;
    MacCounter::add(data_.size());
    return out;
}

template <typename T>
VectorT<T>
MatrixT<T>::operator*(const VectorT<T> &vec) const
{
    requireSameSize(cols_, vec.size(), "Matrix::operator* vector");
    VectorT<T> out(rows_);
    if (rows_ > 0)
        kernels::gemv(data_.data(), vec.data().data(), &out[0], rows_,
                      cols_);
    MacCounter::add(rows_ * cols_);
    return out;
}

template <typename T>
MatrixT<T> &
MatrixT<T>::operator+=(const MatrixT &other)
{
    *this = *this + other;
    return *this;
}

template <typename T>
MatrixT<T>
MatrixT<T>::transpose() const
{
    MatrixT out(cols_, rows_);
    kernels::transpose(data_.data(), out.data_.data(), rows_, cols_);
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::block(std::size_t i0, std::size_t j0, std::size_t r,
                  std::size_t c) const
{
    if (i0 + r > rows_ || j0 + c > cols_)
        throw std::out_of_range("Matrix::block: out of range");
    MatrixT out(r, c);
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < c; ++j)
            out(i, j) = (*this)(i0 + i, j0 + j);
    return out;
}

template <typename T>
void
MatrixT<T>::setBlock(std::size_t i0, std::size_t j0,
                     const MatrixT &value)
{
    if (i0 + value.rows() > rows_ || j0 + value.cols() > cols_)
        throw std::out_of_range("Matrix::setBlock: out of range");
    for (std::size_t i = 0; i < value.rows(); ++i)
        for (std::size_t j = 0; j < value.cols(); ++j)
            (*this)(i0 + i, j0 + j) = value(i, j);
}

template <typename T>
VectorT<T>
MatrixT<T>::row(std::size_t i) const
{
    VectorT<T> out(cols_);
    for (std::size_t j = 0; j < cols_; ++j)
        out[j] = (*this)(i, j);
    return out;
}

template <typename T>
VectorT<T>
MatrixT<T>::col(std::size_t j) const
{
    VectorT<T> out(rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        out[i] = (*this)(i, j);
    return out;
}

template <typename T>
T
MatrixT<T>::norm() const
{
    T acc = T(0);
    for (T v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

template <typename T>
T
MatrixT<T>::maxAbs() const
{
    T best = T(0);
    for (T v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

template <typename T>
double
MatrixT<T>::density(double tol) const
{
    if (data_.empty())
        return 0.0;
    return static_cast<double>(nonZeros(tol)) /
           static_cast<double>(data_.size());
}

template <typename T>
std::size_t
MatrixT<T>::nonZeros(double tol) const
{
    std::size_t count = 0;
    for (T v : data_)
        if (std::abs(static_cast<double>(v)) > tol)
            ++count;
    return count;
}

template <typename T>
bool
MatrixT<T>::isUpperTriangular(double tol) const
{
    for (std::size_t i = 1; i < rows_; ++i)
        for (std::size_t j = 0; j < std::min(i, cols_); ++j)
            if (std::abs(static_cast<double>((*this)(i, j))) > tol)
                return false;
    return true;
}

template <typename T>
MatrixT<T>
MatrixT<T>::vstack(const MatrixT &other) const
{
    if (cols_ == 0 && rows_ == 0)
        return other;
    requireSameSize(cols_, other.cols_, "Matrix::vstack");
    MatrixT out(rows_ + other.rows_, cols_);
    out.setBlock(0, 0, *this);
    out.setBlock(rows_, 0, other);
    return out;
}

template <typename T>
MatrixT<T>
MatrixT<T>::hstack(const MatrixT &other) const
{
    if (cols_ == 0 && rows_ == 0)
        return other;
    requireSameSize(rows_, other.rows_, "Matrix::hstack");
    MatrixT out(rows_, cols_ + other.cols_);
    out.setBlock(0, 0, *this);
    out.setBlock(0, cols_, other);
    return out;
}

template <typename T>
std::string
MatrixT<T>::str() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < rows_; ++i) {
        os << (i ? "\n[" : "[");
        for (std::size_t j = 0; j < cols_; ++j)
            os << (j ? ", " : "") << (*this)(i, j);
        os << "]";
    }
    return os.str();
}

// The only two supported scalar types (DESIGN.md §12). Definitions
// stay in this translation unit so the fp64 codegen — and with it the
// golden digests — is byte-identical to the pre-template layout.
template class VectorT<double>;
template class VectorT<float>;
template class MatrixT<double>;
template class MatrixT<float>;

namespace {

template <typename T>
T
maxDifferenceImpl(const MatrixT<T> &a, const MatrixT<T> &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    T best = T(0);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            best = std::max(best, std::abs(a(i, j) - b(i, j)));
    return best;
}

template <typename T>
T
maxDifferenceImpl(const VectorT<T> &a, const VectorT<T> &b)
{
    assert(a.size() == b.size());
    T best = T(0);
    for (std::size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::abs(a[i] - b[i]));
    return best;
}

} // namespace

double
maxDifference(const Matrix &a, const Matrix &b)
{
    return maxDifferenceImpl(a, b);
}

float
maxDifference(const MatrixF &a, const MatrixF &b)
{
    return maxDifferenceImpl(a, b);
}

double
maxDifference(const Vector &a, const Vector &b)
{
    return maxDifferenceImpl(a, b);
}

float
maxDifference(const VectorF &a, const VectorF &b)
{
    return maxDifferenceImpl(a, b);
}

VectorF
toFloat(const Vector &v)
{
    VectorF out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = static_cast<float>(v[i]);
    return out;
}

MatrixF
toFloat(const Matrix &m)
{
    MatrixF out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            out(i, j) = static_cast<float>(m(i, j));
    return out;
}

Vector
toDouble(const VectorF &v)
{
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = static_cast<double>(v[i]);
    return out;
}

Matrix
toDouble(const MatrixF &m)
{
    Matrix out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            out(i, j) = static_cast<double>(m(i, j));
    return out;
}

} // namespace orianna::mat
