#include "matrix/dense.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "matrix/kernels.hpp"
#include "matrix/mac_counter.hpp"

namespace orianna::mat {

namespace {

void
requireSameSize(std::size_t a, std::size_t b, const char *what)
{
    if (a != b)
        throw std::invalid_argument(std::string(what) + ": size mismatch");
}

} // namespace

Vector
Vector::operator+(const Vector &other) const
{
    requireSameSize(size(), other.size(), "Vector::operator+");
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] + other[i];
    return out;
}

Vector
Vector::operator-(const Vector &other) const
{
    requireSameSize(size(), other.size(), "Vector::operator-");
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] - other[i];
    return out;
}

Vector
Vector::operator-() const
{
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = -data_[i];
    return out;
}

Vector
Vector::operator*(double scale) const
{
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] * scale;
    MacCounter::add(size());
    return out;
}

Vector &
Vector::operator+=(const Vector &other)
{
    requireSameSize(size(), other.size(), "Vector::operator+=");
    for (std::size_t i = 0; i < size(); ++i)
        data_[i] += other[i];
    return *this;
}

Vector &
Vector::operator-=(const Vector &other)
{
    requireSameSize(size(), other.size(), "Vector::operator-=");
    for (std::size_t i = 0; i < size(); ++i)
        data_[i] -= other[i];
    return *this;
}

double
Vector::dot(const Vector &other) const
{
    requireSameSize(size(), other.size(), "Vector::dot");
    const double acc =
        kernels::dot(data_.data(), other.data_.data(), size());
    MacCounter::add(size());
    return acc;
}

double
Vector::norm() const
{
    return std::sqrt(dot(*this));
}

double
Vector::maxAbs() const
{
    double best = 0.0;
    for (double v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

Vector
Vector::segment(std::size_t start, std::size_t len) const
{
    if (start + len > size())
        throw std::out_of_range("Vector::segment: out of range");
    Vector out(len);
    for (std::size_t i = 0; i < len; ++i)
        out[i] = data_[start + i];
    return out;
}

void
Vector::setSegment(std::size_t start, const Vector &value)
{
    if (start + value.size() > size())
        throw std::out_of_range("Vector::setSegment: out of range");
    for (std::size_t i = 0; i < value.size(); ++i)
        data_[start + i] = value[i];
}

Vector
Vector::concat(const Vector &other) const
{
    Vector out(size() + other.size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i];
    for (std::size_t i = 0; i < other.size(); ++i)
        out[size() + i] = other[i];
    return out;
}

Matrix
Vector::asColumn() const
{
    Matrix out(size(), 1);
    for (std::size_t i = 0; i < size(); ++i)
        out(i, 0) = data_[i];
    return out;
}

std::string
Vector::str() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < size(); ++i)
        os << (i ? ", " : "") << data_[i];
    os << "]";
    return os.str();
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &r : rows) {
        if (r.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i)
        out(i, i) = 1.0;
    return out;
}

Matrix
Matrix::zero(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::diagonal(const Vector &diag)
{
    Matrix out(diag.size(), diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i)
        out(i, i) = diag[i];
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    requireSameSize(rows_, other.rows_, "Matrix::operator+ rows");
    requireSameSize(cols_, other.cols_, "Matrix::operator+ cols");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    requireSameSize(rows_, other.rows_, "Matrix::operator- rows");
    requireSameSize(cols_, other.cols_, "Matrix::operator- cols");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

Matrix
Matrix::operator-() const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = -data_[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    requireSameSize(cols_, other.rows_, "Matrix::operator* inner");
    Matrix out(rows_, other.cols_);
    kernels::gemm(data_.data(), other.data_.data(), out.data_.data(),
                  rows_, cols_, other.cols_);
    MacCounter::add(rows_ * cols_ * other.cols_);
    return out;
}

Matrix
Matrix::transposeTimes(const Matrix &other) const
{
    requireSameSize(rows_, other.rows_, "Matrix::transposeTimes inner");
    Matrix out(cols_, other.cols_);
    kernels::gemmTransA(data_.data(), other.data_.data(),
                        out.data_.data(), rows_, cols_, other.cols_);
    MacCounter::add(cols_ * rows_ * other.cols_);
    return out;
}

Vector
Matrix::transposeTimes(const Vector &vec) const
{
    requireSameSize(rows_, vec.size(), "Matrix::transposeTimes vector");
    Vector out(cols_);
    if (rows_ > 0 && cols_ > 0)
        kernels::gemvTransA(data_.data(), vec.data().data(), &out[0],
                            rows_, cols_);
    MacCounter::add(cols_ * rows_);
    return out;
}

Matrix
Matrix::timesTranspose(const Matrix &other) const
{
    requireSameSize(cols_, other.cols_, "Matrix::timesTranspose inner");
    Matrix out(rows_, other.rows_);
    kernels::gemmTransB(data_.data(), other.data_.data(),
                        out.data_.data(), rows_, cols_, other.rows_);
    MacCounter::add(rows_ * cols_ * other.rows_);
    return out;
}

Matrix
Matrix::operator*(double scale) const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * scale;
    MacCounter::add(data_.size());
    return out;
}

Vector
Matrix::operator*(const Vector &vec) const
{
    requireSameSize(cols_, vec.size(), "Matrix::operator* vector");
    Vector out(rows_);
    if (rows_ > 0)
        kernels::gemv(data_.data(), vec.data().data(), &out[0], rows_,
                      cols_);
    MacCounter::add(rows_ * cols_);
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    *this = *this + other;
    return *this;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    kernels::transpose(data_.data(), out.data_.data(), rows_, cols_);
    return out;
}

Matrix
Matrix::block(std::size_t i0, std::size_t j0, std::size_t r,
              std::size_t c) const
{
    if (i0 + r > rows_ || j0 + c > cols_)
        throw std::out_of_range("Matrix::block: out of range");
    Matrix out(r, c);
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < c; ++j)
            out(i, j) = (*this)(i0 + i, j0 + j);
    return out;
}

void
Matrix::setBlock(std::size_t i0, std::size_t j0, const Matrix &value)
{
    if (i0 + value.rows() > rows_ || j0 + value.cols() > cols_)
        throw std::out_of_range("Matrix::setBlock: out of range");
    for (std::size_t i = 0; i < value.rows(); ++i)
        for (std::size_t j = 0; j < value.cols(); ++j)
            (*this)(i0 + i, j0 + j) = value(i, j);
}

Vector
Matrix::row(std::size_t i) const
{
    Vector out(cols_);
    for (std::size_t j = 0; j < cols_; ++j)
        out[j] = (*this)(i, j);
    return out;
}

Vector
Matrix::col(std::size_t j) const
{
    Vector out(rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        out[i] = (*this)(i, j);
    return out;
}

double
Matrix::norm() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (double v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

double
Matrix::density(double tol) const
{
    if (data_.empty())
        return 0.0;
    return static_cast<double>(nonZeros(tol)) /
           static_cast<double>(data_.size());
}

std::size_t
Matrix::nonZeros(double tol) const
{
    std::size_t count = 0;
    for (double v : data_)
        if (std::abs(v) > tol)
            ++count;
    return count;
}

bool
Matrix::isUpperTriangular(double tol) const
{
    for (std::size_t i = 1; i < rows_; ++i)
        for (std::size_t j = 0; j < std::min(i, cols_); ++j)
            if (std::abs((*this)(i, j)) > tol)
                return false;
    return true;
}

Matrix
Matrix::vstack(const Matrix &other) const
{
    if (cols_ == 0 && rows_ == 0)
        return other;
    requireSameSize(cols_, other.cols_, "Matrix::vstack");
    Matrix out(rows_ + other.rows_, cols_);
    out.setBlock(0, 0, *this);
    out.setBlock(rows_, 0, other);
    return out;
}

Matrix
Matrix::hstack(const Matrix &other) const
{
    if (cols_ == 0 && rows_ == 0)
        return other;
    requireSameSize(rows_, other.rows_, "Matrix::hstack");
    Matrix out(rows_, cols_ + other.cols_);
    out.setBlock(0, 0, *this);
    out.setBlock(0, cols_, other);
    return out;
}

std::string
Matrix::str() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < rows_; ++i) {
        os << (i ? "\n[" : "[");
        for (std::size_t j = 0; j < cols_; ++j)
            os << (j ? ", " : "") << (*this)(i, j);
        os << "]";
    }
    return os.str();
}

double
maxDifference(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    double best = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            best = std::max(best, std::abs(a(i, j) - b(i, j)));
    return best;
}

double
maxDifference(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::abs(a[i] - b[i]));
    return best;
}

} // namespace orianna::mat
