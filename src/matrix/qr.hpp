#pragma once

#include "matrix/dense.hpp"

namespace orianna::mat {

/**
 * Result of an orthogonal triangularization of the stacked system
 * [A | b]: R is upper trapezoidal with the same shape as A, and rhs is
 * Q^T b. Q itself is never materialized; factor-graph elimination only
 * needs R and Q^T b (Sec. 2.2 of the paper).
 */
struct QrResult
{
    Matrix r;   //!< Upper-trapezoidal factor, same shape as the input A.
    Vector rhs; //!< Q^T b, same length as b.
};

/**
 * Householder QR of the augmented system [A | b].
 *
 * This is the software-reference kernel used by the CPU baselines and
 * the Gauss-Newton solver. Cost is accounted through MacCounter.
 */
QrResult householderQr(const Matrix &a, const Vector &b);

/**
 * Givens-rotation QR of the augmented system [A | b].
 *
 * Functional model of the hardware QR template (a Givens array is the
 * standard systolic QR structure the paper's template follows, cf.
 * prior factor-graph accelerators [19][21][36]). Produces the same R
 * and Q^T b as householderQr up to row signs; the accelerator
 * simulator executes this kernel so software/accelerator accuracy can
 * be compared honestly.
 */
QrResult givensQr(const Matrix &a, const Vector &b);

/**
 * Solve R x = y by back substitution for square upper-triangular R
 * (the top rows of a QR result).
 *
 * @throws std::runtime_error when a diagonal entry is (near) zero.
 */
Vector backSubstitute(const Matrix &r, const Vector &y);

/**
 * Least-squares solve of min ||A x - b||_2 via Householder QR and back
 * substitution. Requires A to have full column rank.
 */
Vector leastSquares(const Matrix &a, const Vector &b);

} // namespace orianna::mat
