#pragma once

#include "matrix/dense.hpp"

namespace orianna::mat {

/**
 * Result of an orthogonal triangularization of the stacked system
 * [A | b]: R is upper trapezoidal with the same shape as A, and rhs is
 * Q^T b. Q itself is never materialized; factor-graph elimination only
 * needs R and Q^T b (Sec. 2.2 of the paper).
 *
 * Like the dense types, the QR kernels exist in both precisions
 * (DESIGN.md §12): T = double is the reference, T = float the fp32
 * accelerator mode. Only those two instantiations are defined
 * (explicitly, in qr.cpp).
 */
template <typename T> struct QrResultT
{
    MatrixT<T> r;   //!< Upper-trapezoidal factor, same shape as A.
    VectorT<T> rhs; //!< Q^T b, same length as b.
};

using QrResult = QrResultT<double>;
using QrResultF = QrResultT<float>;

/**
 * Householder QR of the augmented system [A | b].
 *
 * This is the software-reference kernel used by the CPU baselines and
 * the Gauss-Newton solver. Cost is accounted through MacCounter.
 */
template <typename T>
QrResultT<T> householderQr(const MatrixT<T> &a, const VectorT<T> &b);

/**
 * Givens-rotation QR of the augmented system [A | b].
 *
 * Functional model of the hardware QR template (a Givens array is the
 * standard systolic QR structure the paper's template follows, cf.
 * prior factor-graph accelerators [19][21][36]). Produces the same R
 * and Q^T b as householderQr up to row signs; the accelerator
 * simulator executes this kernel so software/accelerator accuracy can
 * be compared honestly.
 */
template <typename T>
QrResultT<T> givensQr(const MatrixT<T> &a, const VectorT<T> &b);

/**
 * Solve R x = y by back substitution for square upper-triangular R
 * (the top rows of a QR result).
 *
 * @throws std::runtime_error when a diagonal entry is (near) zero.
 */
template <typename T>
VectorT<T> backSubstitute(const MatrixT<T> &r, const VectorT<T> &y);

/**
 * Least-squares solve of min ||A x - b||_2 via Householder QR and back
 * substitution. Requires A to have full column rank.
 */
template <typename T>
VectorT<T> leastSquares(const MatrixT<T> &a, const VectorT<T> &b);

} // namespace orianna::mat
