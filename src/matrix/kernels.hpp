#pragma once

#include <cstddef>

#include "matrix/simd.hpp"

namespace orianna::mat::kernels {

/**
 * Dense microkernels shared by the Matrix operators and the QR /
 * back-substitution paths.
 *
 * Since the SIMD layer (simd.hpp, DESIGN.md §10) every entry point
 * here is a dispatcher: it counts the call and forwards to the active
 * KernelTable, selected once at startup (scalar reference, AVX2,
 * NEON, ... — ORIANNA_SIMD overrides). Under the scalar table each
 * output element is a single dependency chain over ascending inner
 * index, bit-identical to the naive reference loops — the property
 * the runtime relies on for byte-identical schedules and deltas.
 * Fast-path tables may reassociate the chains (wide accumulators,
 * FMA) and match the reference only within the documented tolerance.
 *
 * Every entry point is templated on the scalar type (double = the
 * reference precision, float = the fp32 accelerator mode, DESIGN.md
 * §12) and dispatches through the active table of that precision;
 * both tables always belong to the same tier.
 *
 * All matrices are row-major. Output buffers must be zero-initialized
 * where the kernel accumulates (gemm, gemmTransA, gemv).
 *
 * The short-vector helpers (dot, dotStrided, fusedSubtractDot,
 * axpyNegStrided, givensRotate) only dispatch above
 * kMicroDispatchCutoff elements: below it the inlined scalar loop
 * beats any indirect call, and the scalar loop is bit-identical to
 * the reference chain, so the parity contract is unaffected.
 */

/** Below this length the inline scalar loop wins over dispatch. */
inline constexpr std::size_t kMicroDispatchCutoff = 16;

/** c (m x n) += a (m x k) * b (k x n); c must start zeroed. */
template <typename T>
inline void
gemm(const T *a, const T *b, T *c, std::size_t m, std::size_t k,
     std::size_t n)
{
    countKernelCall(KernelOp::Gemm);
    activeKernelsT<T>().gemm(a, b, c, m, k, n);
}

/**
 * c (m x n) += a^T * b with a stored k x m, b stored k x n; c must
 * start zeroed. The fused transpose-multiply: equivalent to
 * materializing a^T and calling gemm, without the copy.
 */
template <typename T>
inline void
gemmTransA(const T *a, const T *b, T *c, std::size_t k, std::size_t m,
           std::size_t n)
{
    countKernelCall(KernelOp::GemmTransA);
    activeKernelsT<T>().gemmTransA(a, b, c, k, m, n);
}

/**
 * c (m x n) += a * b^T with a stored m x k, b stored n x k; c must
 * start zeroed. Both operands stream along contiguous rows.
 */
template <typename T>
inline void
gemmTransB(const T *a, const T *b, T *c, std::size_t m, std::size_t k,
           std::size_t n)
{
    countKernelCall(KernelOp::GemmTransB);
    activeKernelsT<T>().gemmTransB(a, b, c, m, k, n);
}

/** out (n x m) = transpose of a (m x n), cache-blocked. */
template <typename T>
inline void
transpose(const T *a, T *out, std::size_t m, std::size_t n)
{
    countKernelCall(KernelOp::Transpose);
    activeKernelsT<T>().transpose(a, out, m, n);
}

/** y (m) = a (m x n) * x (n). */
template <typename T>
inline void
gemv(const T *a, const T *x, T *y, std::size_t m, std::size_t n)
{
    countKernelCall(KernelOp::Gemv);
    activeKernelsT<T>().gemv(a, x, y, m, n);
}

/** y (n) += a^T x with a stored m x n, x of size m; y must start zeroed. */
template <typename T>
inline void
gemvTransA(const T *a, const T *x, T *y, std::size_t m, std::size_t n)
{
    countKernelCall(KernelOp::GemvTransA);
    activeKernelsT<T>().gemvTransA(a, x, y, m, n);
}

/** Dot product over ascending index (single chain below the cutoff). */
template <typename T>
inline T
dot(const T *a, const T *b, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::Dot);
        return activeKernelsT<T>().dot(a, b, n);
    }
    T acc = T(0);
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

/** Dot product with strided operands (e.g. a matrix column). */
template <typename T>
inline T
dotStrided(const T *a, std::size_t stride_a, const T *b,
           std::size_t stride_b, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::DotStrided);
        return activeKernelsT<T>().dotStrided(a, stride_a, b, stride_b,
                                              n);
    }
    T acc = T(0);
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i * stride_a] * b[i * stride_b];
    return acc;
}

/** acc - sum_i a[i] * x[i], subtracting in ascending order (back-sub row). */
template <typename T>
inline T
fusedSubtractDot(T acc, const T *a, const T *x, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::FusedSubtractDot);
        return activeKernelsT<T>().fusedSubtractDot(acc, a, x, n);
    }
    for (std::size_t i = 0; i < n; ++i)
        acc -= a[i] * x[i];
    return acc;
}

/** y[i] -= alpha * x[i] over a strided destination (Householder update). */
template <typename T>
inline void
axpyNegStrided(T *y, std::size_t stride_y, T alpha, const T *x,
               std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::AxpyNegStrided);
        activeKernelsT<T>().axpyNegStrided(y, stride_y, alpha, x, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        y[i * stride_y] -= alpha * x[i];
}

/** In-place Givens rotation of two row segments: (rj, ri) <- G(c,s). */
template <typename T>
inline void
givensRotate(T *rj, T *ri, T c, T s, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::GivensRotate);
        activeKernelsT<T>().givensRotate(rj, ri, c, s, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const T a = rj[i];
        const T b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

} // namespace orianna::mat::kernels
