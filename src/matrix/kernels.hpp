#pragma once

#include <cstddef>

#include "matrix/simd.hpp"

namespace orianna::mat::kernels {

/**
 * Dense microkernels shared by the Matrix operators and the QR /
 * back-substitution paths.
 *
 * Since the SIMD layer (simd.hpp, DESIGN.md §10) every entry point
 * here is a dispatcher: it counts the call and forwards to the active
 * KernelTable, selected once at startup (scalar reference, AVX2,
 * NEON, ... — ORIANNA_SIMD overrides). Under the scalar table each
 * output element is a single dependency chain over ascending inner
 * index, bit-identical to the naive reference loops — the property
 * the runtime relies on for byte-identical schedules and deltas.
 * Fast-path tables may reassociate the chains (wide accumulators,
 * FMA) and match the reference only within the documented tolerance.
 *
 * All matrices are row-major. Output buffers must be zero-initialized
 * where the kernel accumulates (gemm, gemmTransA, gemv).
 *
 * The short-vector helpers (dot, dotStrided, fusedSubtractDot,
 * axpyNegStrided, givensRotate) only dispatch above
 * kMicroDispatchCutoff elements: below it the inlined scalar loop
 * beats any indirect call, and the scalar loop is bit-identical to
 * the reference chain, so the parity contract is unaffected.
 */

/** Below this length the inline scalar loop wins over dispatch. */
inline constexpr std::size_t kMicroDispatchCutoff = 16;

/** c (m x n) += a (m x k) * b (k x n); c must start zeroed. */
inline void
gemm(const double *a, const double *b, double *c, std::size_t m,
     std::size_t k, std::size_t n)
{
    countKernelCall(KernelOp::Gemm);
    activeKernels().gemm(a, b, c, m, k, n);
}

/**
 * c (m x n) += a^T * b with a stored k x m, b stored k x n; c must
 * start zeroed. The fused transpose-multiply: equivalent to
 * materializing a^T and calling gemm, without the copy.
 */
inline void
gemmTransA(const double *a, const double *b, double *c, std::size_t k,
           std::size_t m, std::size_t n)
{
    countKernelCall(KernelOp::GemmTransA);
    activeKernels().gemmTransA(a, b, c, k, m, n);
}

/**
 * c (m x n) += a * b^T with a stored m x k, b stored n x k; c must
 * start zeroed. Both operands stream along contiguous rows.
 */
inline void
gemmTransB(const double *a, const double *b, double *c, std::size_t m,
           std::size_t k, std::size_t n)
{
    countKernelCall(KernelOp::GemmTransB);
    activeKernels().gemmTransB(a, b, c, m, k, n);
}

/** out (n x m) = transpose of a (m x n), cache-blocked. */
inline void
transpose(const double *a, double *out, std::size_t m, std::size_t n)
{
    countKernelCall(KernelOp::Transpose);
    activeKernels().transpose(a, out, m, n);
}

/** y (m) = a (m x n) * x (n). */
inline void
gemv(const double *a, const double *x, double *y, std::size_t m,
     std::size_t n)
{
    countKernelCall(KernelOp::Gemv);
    activeKernels().gemv(a, x, y, m, n);
}

/** y (n) += a^T x with a stored m x n, x of size m; y must start zeroed. */
inline void
gemvTransA(const double *a, const double *x, double *y, std::size_t m,
           std::size_t n)
{
    countKernelCall(KernelOp::GemvTransA);
    activeKernels().gemvTransA(a, x, y, m, n);
}

/** Dot product over ascending index (single chain below the cutoff). */
inline double
dot(const double *a, const double *b, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::Dot);
        return activeKernels().dot(a, b, n);
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

/** Dot product with strided operands (e.g. a matrix column). */
inline double
dotStrided(const double *a, std::size_t stride_a, const double *b,
           std::size_t stride_b, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::DotStrided);
        return activeKernels().dotStrided(a, stride_a, b, stride_b, n);
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i * stride_a] * b[i * stride_b];
    return acc;
}

/** acc - sum_i a[i] * x[i], subtracting in ascending order (back-sub row). */
inline double
fusedSubtractDot(double acc, const double *a, const double *x,
                 std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::FusedSubtractDot);
        return activeKernels().fusedSubtractDot(acc, a, x, n);
    }
    for (std::size_t i = 0; i < n; ++i)
        acc -= a[i] * x[i];
    return acc;
}

/** y[i] -= alpha * x[i] over a strided destination (Householder update). */
inline void
axpyNegStrided(double *y, std::size_t stride_y, double alpha,
               const double *x, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::AxpyNegStrided);
        activeKernels().axpyNegStrided(y, stride_y, alpha, x, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        y[i * stride_y] -= alpha * x[i];
}

/** In-place Givens rotation of two row segments: (rj, ri) <- G(c,s). */
inline void
givensRotate(double *rj, double *ri, double c, double s, std::size_t n)
{
    if (n >= kMicroDispatchCutoff) {
        countKernelCall(KernelOp::GivensRotate);
        activeKernels().givensRotate(rj, ri, c, s, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rj[i];
        const double b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

} // namespace orianna::mat::kernels
