#pragma once

#include <cstddef>

namespace orianna::mat::kernels {

/**
 * Dense microkernels shared by the Matrix operators and the QR /
 * back-substitution paths.
 *
 * Every kernel preserves the exact floating-point accumulation order
 * of the naive reference loops it replaces: each output element is a
 * single dependency chain over ascending inner index. That makes the
 * optimized kernels bit-identical to the reference for finite inputs
 * — the property the runtime relies on for byte-identical schedules
 * and deltas across threads — while the speed comes from register
 * tiling (outputs written once), pointer arithmetic instead of
 * per-access index multiplies, and cache-blocked traversal.
 *
 * All matrices are row-major. Output buffers must be zero-initialized
 * where the kernel accumulates (gemm, gemmTransA, gemv).
 */

/** c (m x n) += a (m x k) * b (k x n); c must start zeroed. */
void gemm(const double *a, const double *b, double *c, std::size_t m,
          std::size_t k, std::size_t n);

/**
 * c (m x n) += a^T * b with a stored k x m, b stored k x n; c must
 * start zeroed. The fused transpose-multiply: bit-identical to
 * materializing a^T and calling gemm, without the copy.
 */
void gemmTransA(const double *a, const double *b, double *c,
                std::size_t k, std::size_t m, std::size_t n);

/**
 * c (m x n) += a * b^T with a stored m x k, b stored n x k; c must
 * start zeroed. Both operands stream along contiguous rows.
 */
void gemmTransB(const double *a, const double *b, double *c,
                std::size_t m, std::size_t k, std::size_t n);

/** out (n x m) = transpose of a (m x n), cache-blocked. */
void transpose(const double *a, double *out, std::size_t m,
               std::size_t n);

/** y (m) += a (m x n) * x (n); y must start zeroed. */
void gemv(const double *a, const double *x, double *y, std::size_t m,
          std::size_t n);

/** y (n) += a^T x with a stored m x n, x of size m; y must start zeroed. */
void gemvTransA(const double *a, const double *x, double *y,
                std::size_t m, std::size_t n);

/** Dot product over ascending index (single accumulation chain). */
inline double
dot(const double *a, const double *b, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

/** Dot product with strided operands (e.g. a matrix column). */
inline double
dotStrided(const double *a, std::size_t stride_a, const double *b,
           std::size_t stride_b, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i * stride_a] * b[i * stride_b];
    return acc;
}

/** acc - sum_i a[i] * x[i], subtracting in ascending order (back-sub row). */
inline double
fusedSubtractDot(double acc, const double *a, const double *x,
                 std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc -= a[i] * x[i];
    return acc;
}

/** y[i] -= alpha * x[i] over a strided destination (Householder update). */
inline void
axpyNegStrided(double *y, std::size_t stride_y, double alpha,
               const double *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i * stride_y] -= alpha * x[i];
}

/** In-place Givens rotation of two row segments: (rj, ri) <- G(c,s). */
inline void
givensRotate(double *rj, double *ri, double c, double s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rj[i];
        const double b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

} // namespace orianna::mat::kernels
