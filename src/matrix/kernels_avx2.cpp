// AVX2+FMA kernel tier. This TU is the only one compiled with
// -mavx2 -mfma (see src/matrix/CMakeLists.txt), so every intrinsic
// stays behind the runtime CPUID check in simd.cpp: the table below
// is never selected unless the host reports avx2+fma.
//
// These kernels trade the scalar tier's single ascending accumulation
// chain for 4-lane accumulators and fused multiply-add, so results
// match the reference only within the DESIGN.md §10 tolerance (a few
// ULP of the absolute-value accumulation), never bit-exactly. Edge
// rows/columns that don't fill a vector fall back to scalar loops
// inside the same kernel; that mixes chain shapes within one output
// matrix, which the tolerance contract explicitly allows.

#include "matrix/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace orianna::mat::kernels {

namespace {

/** Sum of the four lanes of @p v. */
inline double
hsum(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

/** Register tile of the gemm family: 4 x 8 outputs, 8 accumulators. */
template <typename LoadA>
inline void
fullTile(const double *b, double *c, std::size_t ldb, std::size_t ldc,
         std::size_t k, LoadA load)
{
    __m256d acc[4][2];
    for (std::size_t ii = 0; ii < 4; ++ii) {
        acc[ii][0] = _mm256_setzero_pd();
        acc[ii][1] = _mm256_setzero_pd();
    }
    for (std::size_t p = 0; p < k; ++p) {
        const double *brow = b + p * ldb;
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        for (std::size_t ii = 0; ii < 4; ++ii) {
            const __m256d aval = _mm256_set1_pd(load(ii, p));
            acc[ii][0] = _mm256_fmadd_pd(aval, b0, acc[ii][0]);
            acc[ii][1] = _mm256_fmadd_pd(aval, b1, acc[ii][1]);
        }
    }
    for (std::size_t ii = 0; ii < 4; ++ii) {
        _mm256_storeu_pd(c + ii * ldc, acc[ii][0]);
        _mm256_storeu_pd(c + ii * ldc + 4, acc[ii][1]);
    }
}

/** Scalar edge tile (mr <= 4, nr <= 8) for the ragged borders. */
template <typename LoadA>
inline void
edgeTile(const double *b, double *c, std::size_t ldb, std::size_t ldc,
         std::size_t k, std::size_t mr, std::size_t nr, LoadA load)
{
    double acc[4][8] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const double *brow = b + p * ldb;
        for (std::size_t ii = 0; ii < mr; ++ii) {
            const double aval = load(ii, p);
            for (std::size_t jj = 0; jj < nr; ++jj)
                acc[ii][jj] += aval * brow[jj];
        }
    }
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            c[ii * ldc + jj] = acc[ii][jj];
}

template <typename MakeLoad>
inline void
gemmTiled(const double *b, double *c, std::size_t m, std::size_t k,
          std::size_t n, MakeLoad makeLoad)
{
    const std::size_t m4 = m - m % 4;
    const std::size_t n8 = n - n % 8;
    for (std::size_t i0 = 0; i0 < m4; i0 += 4) {
        for (std::size_t j0 = 0; j0 < n8; j0 += 8)
            fullTile(b + j0, c + i0 * n + j0, n, n, k, makeLoad(i0));
        if (n8 < n)
            edgeTile(b + n8, c + i0 * n + n8, n, n, k, 4, n - n8,
                     makeLoad(i0));
    }
    if (m4 < m)
        for (std::size_t j0 = 0; j0 < n; j0 += 8)
            edgeTile(b + j0, c + m4 * n + j0, n, n, k, m - m4,
                     n - j0 < 8 ? n - j0 : 8, makeLoad(m4));
}

void
gemmAvx2(const double *a, const double *b, double *c, std::size_t m,
         std::size_t k, std::size_t n)
{
    gemmTiled(b, c, m, k, n, [&](std::size_t i0) {
        return [a, k, i0](std::size_t ii, std::size_t p) {
            return a[(i0 + ii) * k + p];
        };
    });
}

void
gemmTransAAvx2(const double *a, const double *b, double *c,
               std::size_t k, std::size_t m, std::size_t n)
{
    gemmTiled(b, c, m, k, n, [&](std::size_t i0) {
        return [a, m, i0](std::size_t ii, std::size_t p) {
            return a[p * m + i0 + ii];
        };
    });
}

double
dotAvx2(const double *a, const double *b, std::size_t n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    const std::size_t n8 = n - n % 8;
    for (std::size_t i = 0; i < n8; i += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                               _mm256_loadu_pd(b + i), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                               _mm256_loadu_pd(b + i + 4), acc1);
    }
    double acc = hsum(_mm256_add_pd(acc0, acc1));
    for (std::size_t i = n8; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
gemmTransBAvx2(const double *a, const double *b, double *c,
               std::size_t m, std::size_t k, std::size_t n)
{
    // c(i, j) = dot(row i of a, row j of b), both contiguous: four
    // output dots share each 4-wide pass over row i.
    const std::size_t k4 = k - k % 4;
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < m; ++i) {
        const double *arow = a + i * k;
        std::size_t j0 = 0;
        for (; j0 < n4; j0 += 4) {
            __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                              _mm256_setzero_pd(), _mm256_setzero_pd()};
            for (std::size_t p = 0; p < k4; p += 4) {
                const __m256d av = _mm256_loadu_pd(arow + p);
                for (std::size_t jj = 0; jj < 4; ++jj)
                    acc[jj] = _mm256_fmadd_pd(
                        av, _mm256_loadu_pd(b + (j0 + jj) * k + p),
                        acc[jj]);
            }
            for (std::size_t jj = 0; jj < 4; ++jj) {
                double sum = hsum(acc[jj]);
                const double *brow = b + (j0 + jj) * k;
                for (std::size_t p = k4; p < k; ++p)
                    sum += arow[p] * brow[p];
                c[i * n + j0 + jj] = sum;
            }
        }
        for (; j0 < n; ++j0)
            c[i * n + j0] = dotAvx2(arow, b + j0 * k, k);
    }
}

void
gemvAvx2(const double *a, const double *x, double *y, std::size_t m,
         std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        y[i] = dotAvx2(a + i * n, x, n);
}

void
gemvTransAAvx2(const double *a, const double *x, double *y,
               std::size_t m, std::size_t n)
{
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < m; ++i) {
        const double *arow = a + i * n;
        const __m256d xi = _mm256_set1_pd(x[i]);
        for (std::size_t j = 0; j < n4; j += 4)
            _mm256_storeu_pd(
                y + j,
                _mm256_fmadd_pd(xi, _mm256_loadu_pd(arow + j),
                                _mm256_loadu_pd(y + j)));
        for (std::size_t j = n4; j < n; ++j)
            y[j] += x[i] * arow[j];
    }
}

double
dotStridedAvx2(const double *a, std::size_t stride_a, const double *b,
               std::size_t stride_b, std::size_t n)
{
    if (stride_a == 1 && stride_b == 1)
        return dotAvx2(a, b, n);
    // Strided operands gather poorly; stay scalar.
    return scalar::dotStrided(a, stride_a, b, stride_b, n);
}

double
fusedSubtractDotAvx2(double acc, const double *a, const double *x,
                     std::size_t n)
{
    return acc - dotAvx2(a, x, n);
}

void
axpyNegStridedAvx2(double *y, std::size_t stride_y, double alpha,
                   const double *x, std::size_t n)
{
    if (stride_y != 1) {
        scalar::axpyNegStrided(y, stride_y, alpha, x, n);
        return;
    }
    const __m256d av = _mm256_set1_pd(alpha);
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < n4; i += 4)
        _mm256_storeu_pd(
            y + i,
            _mm256_fnmadd_pd(av, _mm256_loadu_pd(x + i),
                             _mm256_loadu_pd(y + i)));
    for (std::size_t i = n4; i < n; ++i)
        y[i] -= alpha * x[i];
}

void
givensRotateAvx2(double *rj, double *ri, double c, double s,
                 std::size_t n)
{
    const __m256d cv = _mm256_set1_pd(c);
    const __m256d sv = _mm256_set1_pd(s);
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d a = _mm256_loadu_pd(rj + i);
        const __m256d b = _mm256_loadu_pd(ri + i);
        _mm256_storeu_pd(
            rj + i, _mm256_fmadd_pd(cv, a, _mm256_mul_pd(sv, b)));
        _mm256_storeu_pd(
            ri + i, _mm256_fnmadd_pd(sv, a, _mm256_mul_pd(cv, b)));
    }
    for (std::size_t i = n4; i < n; ++i) {
        const double a = rj[i];
        const double b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

const KernelTable kAvx2Table = {
    SimdTier::Avx2,     gemmAvx2,
    gemmTransAAvx2,     gemmTransBAvx2,
    scalar::transpose,  gemvAvx2,
    gemvTransAAvx2,     dotAvx2,
    dotStridedAvx2,     fusedSubtractDotAvx2,
    axpyNegStridedAvx2, givensRotateAvx2,
};

// --- fp32 tier (DESIGN.md §12) --------------------------------------
//
// Same tiling as the fp64 kernels with 8-lane __m256 registers: each
// 4 x 16 gemm tile covers twice the output of the fp64 4 x 8 tile at
// the same register budget, which is where the fp32 throughput win
// over fp64 comes from (bench_micro_kernels reports both).

/** Sum of the eight lanes of @p v. */
inline float
hsumf(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 sum = _mm_add_ps(lo, hi);
    sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 1));
    return _mm_cvtss_f32(sum);
}

/** Register tile of the fp32 gemm family: 4 x 16 outputs. */
template <typename LoadA>
inline void
fullTileF(const float *b, float *c, std::size_t ldb, std::size_t ldc,
          std::size_t k, LoadA load)
{
    __m256 acc[4][2];
    for (std::size_t ii = 0; ii < 4; ++ii) {
        acc[ii][0] = _mm256_setzero_ps();
        acc[ii][1] = _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (std::size_t ii = 0; ii < 4; ++ii) {
            const __m256 aval = _mm256_set1_ps(load(ii, p));
            acc[ii][0] = _mm256_fmadd_ps(aval, b0, acc[ii][0]);
            acc[ii][1] = _mm256_fmadd_ps(aval, b1, acc[ii][1]);
        }
    }
    for (std::size_t ii = 0; ii < 4; ++ii) {
        _mm256_storeu_ps(c + ii * ldc, acc[ii][0]);
        _mm256_storeu_ps(c + ii * ldc + 8, acc[ii][1]);
    }
}

/** Scalar edge tile (mr <= 4, nr <= 16) for the ragged borders. */
template <typename LoadA>
inline void
edgeTileF(const float *b, float *c, std::size_t ldb, std::size_t ldc,
          std::size_t k, std::size_t mr, std::size_t nr, LoadA load)
{
    float acc[4][16] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        for (std::size_t ii = 0; ii < mr; ++ii) {
            const float aval = load(ii, p);
            for (std::size_t jj = 0; jj < nr; ++jj)
                acc[ii][jj] += aval * brow[jj];
        }
    }
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            c[ii * ldc + jj] = acc[ii][jj];
}

template <typename MakeLoad>
inline void
gemmTiledF(const float *b, float *c, std::size_t m, std::size_t k,
           std::size_t n, MakeLoad makeLoad)
{
    const std::size_t m4 = m - m % 4;
    const std::size_t n16 = n - n % 16;
    for (std::size_t i0 = 0; i0 < m4; i0 += 4) {
        for (std::size_t j0 = 0; j0 < n16; j0 += 16)
            fullTileF(b + j0, c + i0 * n + j0, n, n, k, makeLoad(i0));
        if (n16 < n)
            edgeTileF(b + n16, c + i0 * n + n16, n, n, k, 4, n - n16,
                      makeLoad(i0));
    }
    if (m4 < m)
        for (std::size_t j0 = 0; j0 < n; j0 += 16)
            edgeTileF(b + j0, c + m4 * n + j0, n, n, k, m - m4,
                      n - j0 < 16 ? n - j0 : 16, makeLoad(m4));
}

void
gemmAvx2F(const float *a, const float *b, float *c, std::size_t m,
          std::size_t k, std::size_t n)
{
    gemmTiledF(b, c, m, k, n, [&](std::size_t i0) {
        return [a, k, i0](std::size_t ii, std::size_t p) {
            return a[(i0 + ii) * k + p];
        };
    });
}

void
gemmTransAAvx2F(const float *a, const float *b, float *c,
                std::size_t k, std::size_t m, std::size_t n)
{
    gemmTiledF(b, c, m, k, n, [&](std::size_t i0) {
        return [a, m, i0](std::size_t ii, std::size_t p) {
            return a[p * m + i0 + ii];
        };
    });
}

float
dotAvx2F(const float *a, const float *b, std::size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    const std::size_t n16 = n - n % 16;
    for (std::size_t i = 0; i < n16; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    float acc = hsumf(_mm256_add_ps(acc0, acc1));
    for (std::size_t i = n16; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
gemmTransBAvx2F(const float *a, const float *b, float *c,
                std::size_t m, std::size_t k, std::size_t n)
{
    const std::size_t k8 = k - k % 8;
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        std::size_t j0 = 0;
        for (; j0 < n4; j0 += 4) {
            __m256 acc[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                             _mm256_setzero_ps(), _mm256_setzero_ps()};
            for (std::size_t p = 0; p < k8; p += 8) {
                const __m256 av = _mm256_loadu_ps(arow + p);
                for (std::size_t jj = 0; jj < 4; ++jj)
                    acc[jj] = _mm256_fmadd_ps(
                        av, _mm256_loadu_ps(b + (j0 + jj) * k + p),
                        acc[jj]);
            }
            for (std::size_t jj = 0; jj < 4; ++jj) {
                float sum = hsumf(acc[jj]);
                const float *brow = b + (j0 + jj) * k;
                for (std::size_t p = k8; p < k; ++p)
                    sum += arow[p] * brow[p];
                c[i * n + j0 + jj] = sum;
            }
        }
        for (; j0 < n; ++j0)
            c[i * n + j0] = dotAvx2F(arow, b + j0 * k, k);
    }
}

void
gemvAvx2F(const float *a, const float *x, float *y, std::size_t m,
          std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        y[i] = dotAvx2F(a + i * n, x, n);
}

void
gemvTransAAvx2F(const float *a, const float *x, float *y,
                std::size_t m, std::size_t n)
{
    const std::size_t n8 = n - n % 8;
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * n;
        const __m256 xi = _mm256_set1_ps(x[i]);
        for (std::size_t j = 0; j < n8; j += 8)
            _mm256_storeu_ps(
                y + j,
                _mm256_fmadd_ps(xi, _mm256_loadu_ps(arow + j),
                                _mm256_loadu_ps(y + j)));
        for (std::size_t j = n8; j < n; ++j)
            y[j] += x[i] * arow[j];
    }
}

float
dotStridedAvx2F(const float *a, std::size_t stride_a, const float *b,
                std::size_t stride_b, std::size_t n)
{
    if (stride_a == 1 && stride_b == 1)
        return dotAvx2F(a, b, n);
    return scalar::dotStrided(a, stride_a, b, stride_b, n);
}

float
fusedSubtractDotAvx2F(float acc, const float *a, const float *x,
                      std::size_t n)
{
    return acc - dotAvx2F(a, x, n);
}

void
axpyNegStridedAvx2F(float *y, std::size_t stride_y, float alpha,
                    const float *x, std::size_t n)
{
    if (stride_y != 1) {
        scalar::axpyNegStrided(y, stride_y, alpha, x, n);
        return;
    }
    const __m256 av = _mm256_set1_ps(alpha);
    const std::size_t n8 = n - n % 8;
    for (std::size_t i = 0; i < n8; i += 8)
        _mm256_storeu_ps(
            y + i,
            _mm256_fnmadd_ps(av, _mm256_loadu_ps(x + i),
                             _mm256_loadu_ps(y + i)));
    for (std::size_t i = n8; i < n; ++i)
        y[i] -= alpha * x[i];
}

void
givensRotateAvx2F(float *rj, float *ri, float c, float s,
                  std::size_t n)
{
    const __m256 cv = _mm256_set1_ps(c);
    const __m256 sv = _mm256_set1_ps(s);
    const std::size_t n8 = n - n % 8;
    for (std::size_t i = 0; i < n8; i += 8) {
        const __m256 a = _mm256_loadu_ps(rj + i);
        const __m256 b = _mm256_loadu_ps(ri + i);
        _mm256_storeu_ps(
            rj + i, _mm256_fmadd_ps(cv, a, _mm256_mul_ps(sv, b)));
        _mm256_storeu_ps(
            ri + i, _mm256_fnmadd_ps(sv, a, _mm256_mul_ps(cv, b)));
    }
    for (std::size_t i = n8; i < n; ++i) {
        const float a = rj[i];
        const float b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

const KernelTable32 kAvx2Table32 = {
    SimdTier::Avx2,      gemmAvx2F,
    gemmTransAAvx2F,     gemmTransBAvx2F,
    scalar::transpose,   gemvAvx2F,
    gemvTransAAvx2F,     dotAvx2F,
    dotStridedAvx2F,     fusedSubtractDotAvx2F,
    axpyNegStridedAvx2F, givensRotateAvx2F,
};

} // namespace

const KernelTable *
avx2Table()
{
    return &kAvx2Table;
}

const KernelTable32 *
avx2Table32()
{
    return &kAvx2Table32;
}

} // namespace orianna::mat::kernels

#else // The toolchain compiled this TU without AVX2 flags.

namespace orianna::mat::kernels {

const KernelTable *
avx2Table()
{
    return nullptr;
}

const KernelTable32 *
avx2Table32()
{
    return nullptr;
}

} // namespace orianna::mat::kernels

#endif
