#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace orianna::mat {

class Matrix;

/**
 * Dense column vector of doubles.
 *
 * The workhorse value type for robot states, errors and right-hand
 * sides. Sizes in optimization-based robotics are small (2-12), so the
 * implementation favours clarity and correct MAC accounting over
 * vectorization.
 */
class Vector
{
  public:
    /** Empty (zero-length) vector. */
    Vector() = default;

    /** Zero vector of dimension @p n. */
    explicit Vector(std::size_t n) : data_(n, 0.0) {}

    /** Vector from an explicit list of entries. */
    Vector(std::initializer_list<double> values) : data_(values) {}

    /** Vector wrapping existing storage. */
    explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double &operator[](std::size_t i) { return data_[i]; }
    double operator[](std::size_t i) const { return data_[i]; }

    /** Bounds-checked element access. */
    double &at(std::size_t i) { return data_.at(i); }
    double at(std::size_t i) const { return data_.at(i); }

    const std::vector<double> &data() const { return data_; }

    Vector operator+(const Vector &other) const;
    Vector operator-(const Vector &other) const;
    Vector operator-() const;
    Vector operator*(double scale) const;
    Vector &operator+=(const Vector &other);
    Vector &operator-=(const Vector &other);

    /** Dot product; dimensions must agree. */
    double dot(const Vector &other) const;

    /** Euclidean (2-) norm. */
    double norm() const;

    /** Largest absolute entry; 0 for an empty vector. */
    double maxAbs() const;

    /** Contiguous sub-vector [start, start+len). */
    Vector segment(std::size_t start, std::size_t len) const;

    /** Overwrite the sub-vector starting at @p start with @p value. */
    void setSegment(std::size_t start, const Vector &value);

    /** Concatenate @p other after this vector. */
    Vector concat(const Vector &other) const;

    /** This vector as an n-by-1 matrix. */
    Matrix asColumn() const;

    /** Human-readable single-line rendering, for logs and tests. */
    std::string str() const;

  private:
    std::vector<double> data_;
};

/**
 * Dense row-major matrix of doubles.
 *
 * Covers every kernel the ORIANNA templates implement in hardware:
 * multiply (systolic-array template), transpose, and the QR /
 * back-substitution kernels declared in qr.hpp. All arithmetic kernels
 * report MACs through MacCounter.
 *
 * Multiplies and transposes execute through the cache-blocked,
 * write-once microkernels of kernels.hpp, which preserve the naive
 * reference accumulation order bit-for-bit (tests/test_matrix.cpp
 * checks exact equality on randomized shapes).
 */
class Matrix
{
  public:
    /** Empty 0-by-0 matrix. */
    Matrix() = default;

    /** Zero matrix of shape @p rows by @p cols. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    /** Matrix from nested initializer lists (row major). */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** n-by-n identity. */
    static Matrix identity(std::size_t n);

    /** Zero matrix of shape @p rows by @p cols. */
    static Matrix zero(std::size_t rows, std::size_t cols);

    /** Diagonal matrix with the entries of @p diag. */
    static Matrix diagonal(const Vector &diag);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Total number of entries. */
    std::size_t size() const { return data_.size(); }

    double &operator()(std::size_t i, std::size_t j)
    {
        return data_[i * cols_ + j];
    }

    double operator()(std::size_t i, std::size_t j) const
    {
        return data_[i * cols_ + j];
    }

    /** Row-major backing storage (for the kernels layer). */
    const std::vector<double> &data() const { return data_; }

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator-() const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(double scale) const;
    Vector operator*(const Vector &vec) const;
    Matrix &operator+=(const Matrix &other);

    /** Matrix transpose. */
    Matrix transpose() const;

    /**
     * this^T * other without materializing the transpose
     * (bit-identical to `transpose() * other`, one pass, fused
     * microkernel). Row counts must agree.
     */
    Matrix transposeTimes(const Matrix &other) const;

    /** this^T * vec, fused (bit-identical to `transpose() * vec`). */
    Vector transposeTimes(const Vector &vec) const;

    /**
     * this * other^T without materializing the transpose; both
     * operands stream along contiguous rows. Column counts must
     * agree.
     */
    Matrix timesTranspose(const Matrix &other) const;

    /** Copy of the sub-block at (@p i0, @p j0) of shape @p r by @p c. */
    Matrix block(std::size_t i0, std::size_t j0, std::size_t r,
                 std::size_t c) const;

    /** Overwrite the sub-block at (@p i0, @p j0) with @p value. */
    void setBlock(std::size_t i0, std::size_t j0, const Matrix &value);

    /** Row @p i as a vector. */
    Vector row(std::size_t i) const;

    /** Column @p j as a vector. */
    Vector col(std::size_t j) const;

    /** Frobenius norm. */
    double norm() const;

    /** Largest absolute entry; 0 for an empty matrix. */
    double maxAbs() const;

    /** Fraction of entries with |a_ij| > tol; 0 for an empty matrix. */
    double density(double tol = 1e-12) const;

    /** Number of entries with |a_ij| > tol. */
    std::size_t nonZeros(double tol = 1e-12) const;

    /** True if all entries below the main diagonal are within tol of 0. */
    bool isUpperTriangular(double tol = 1e-9) const;

    /** Stack @p other below this matrix (column counts must match). */
    Matrix vstack(const Matrix &other) const;

    /** Place @p other to the right of this matrix (row counts match). */
    Matrix hstack(const Matrix &other) const;

    /** Human-readable multi-line rendering, for logs and tests. */
    std::string str() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Scalar-first scaling. */
inline Matrix operator*(double scale, const Matrix &m) { return m * scale; }
inline Vector operator*(double scale, const Vector &v) { return v * scale; }

/** Max-abs difference between two equally shaped matrices. */
double maxDifference(const Matrix &a, const Matrix &b);

/** Max-abs difference between two equally sized vectors. */
double maxDifference(const Vector &a, const Vector &b);

} // namespace orianna::mat
