#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace orianna::mat {

template <typename T> class MatrixT;

/**
 * Dense column vector of scalars.
 *
 * The workhorse value type for robot states, errors and right-hand
 * sides. Sizes in optimization-based robotics are small (2-12), so the
 * implementation favours clarity and correct MAC accounting over
 * vectorization.
 *
 * The scalar type is a template parameter (DESIGN.md §12): `double`
 * is the bit-exact reference precision every golden digest is defined
 * on, `float` is the reduced-precision accelerator mode. Only those
 * two instantiations exist (explicit instantiation in dense.cpp);
 * use the `Vector` / `VectorF` aliases below.
 */
template <typename T> class VectorT
{
  public:
    using Scalar = T;

    /** Empty (zero-length) vector. */
    VectorT() = default;

    /** Zero vector of dimension @p n. */
    explicit VectorT(std::size_t n) : data_(n, T(0)) {}

    /** Vector from an explicit list of entries. */
    VectorT(std::initializer_list<T> values) : data_(values) {}

    /** Vector wrapping existing storage. */
    explicit VectorT(std::vector<T> values) : data_(std::move(values))
    {}

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &operator[](std::size_t i) { return data_[i]; }
    T operator[](std::size_t i) const { return data_[i]; }

    /** Bounds-checked element access. */
    T &at(std::size_t i) { return data_.at(i); }
    T at(std::size_t i) const { return data_.at(i); }

    const std::vector<T> &data() const { return data_; }

    VectorT operator+(const VectorT &other) const;
    VectorT operator-(const VectorT &other) const;
    VectorT operator-() const;
    VectorT operator*(T scale) const;
    VectorT &operator+=(const VectorT &other);
    VectorT &operator-=(const VectorT &other);

    /** Dot product; dimensions must agree. */
    T dot(const VectorT &other) const;

    /** Euclidean (2-) norm. */
    T norm() const;

    /** Largest absolute entry; 0 for an empty vector. */
    T maxAbs() const;

    /** Contiguous sub-vector [start, start+len). */
    VectorT segment(std::size_t start, std::size_t len) const;

    /** Overwrite the sub-vector starting at @p start with @p value. */
    void setSegment(std::size_t start, const VectorT &value);

    /** Concatenate @p other after this vector. */
    VectorT concat(const VectorT &other) const;

    /** This vector as an n-by-1 matrix. */
    MatrixT<T> asColumn() const;

    /** Human-readable single-line rendering, for logs and tests. */
    std::string str() const;

  private:
    std::vector<T> data_;
};

/**
 * Dense row-major matrix of scalars (same two instantiations as
 * VectorT; use the `Matrix` / `MatrixF` aliases).
 *
 * Covers every kernel the ORIANNA templates implement in hardware:
 * multiply (systolic-array template), transpose, and the QR /
 * back-substitution kernels declared in qr.hpp. All arithmetic kernels
 * report MACs through MacCounter.
 *
 * Multiplies and transposes execute through the cache-blocked,
 * write-once microkernels of kernels.hpp, which preserve the naive
 * reference accumulation order bit-for-bit (tests/test_matrix.cpp
 * checks exact equality on randomized shapes).
 */
template <typename T> class MatrixT
{
  public:
    using Scalar = T;

    /** Empty 0-by-0 matrix. */
    MatrixT() = default;

    /** Zero matrix of shape @p rows by @p cols. */
    MatrixT(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T(0))
    {}

    /** Matrix from nested initializer lists (row major). */
    MatrixT(std::initializer_list<std::initializer_list<T>> rows);

    /** n-by-n identity. */
    static MatrixT identity(std::size_t n);

    /** Zero matrix of shape @p rows by @p cols. */
    static MatrixT zero(std::size_t rows, std::size_t cols);

    /** Diagonal matrix with the entries of @p diag. */
    static MatrixT diagonal(const VectorT<T> &diag);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Total number of entries. */
    std::size_t size() const { return data_.size(); }

    T &operator()(std::size_t i, std::size_t j)
    {
        return data_[i * cols_ + j];
    }

    T operator()(std::size_t i, std::size_t j) const
    {
        return data_[i * cols_ + j];
    }

    /** Row-major backing storage (for the kernels layer). */
    const std::vector<T> &data() const { return data_; }

    MatrixT operator+(const MatrixT &other) const;
    MatrixT operator-(const MatrixT &other) const;
    MatrixT operator-() const;
    MatrixT operator*(const MatrixT &other) const;
    MatrixT operator*(T scale) const;
    VectorT<T> operator*(const VectorT<T> &vec) const;
    MatrixT &operator+=(const MatrixT &other);

    /** Matrix transpose. */
    MatrixT transpose() const;

    /**
     * this^T * other without materializing the transpose
     * (bit-identical to `transpose() * other`, one pass, fused
     * microkernel). Row counts must agree.
     */
    MatrixT transposeTimes(const MatrixT &other) const;

    /** this^T * vec, fused (bit-identical to `transpose() * vec`). */
    VectorT<T> transposeTimes(const VectorT<T> &vec) const;

    /**
     * this * other^T without materializing the transpose; both
     * operands stream along contiguous rows. Column counts must
     * agree.
     */
    MatrixT timesTranspose(const MatrixT &other) const;

    /** Copy of the sub-block at (@p i0, @p j0) of shape @p r by @p c. */
    MatrixT block(std::size_t i0, std::size_t j0, std::size_t r,
                  std::size_t c) const;

    /** Overwrite the sub-block at (@p i0, @p j0) with @p value. */
    void setBlock(std::size_t i0, std::size_t j0, const MatrixT &value);

    /** Row @p i as a vector. */
    VectorT<T> row(std::size_t i) const;

    /** Column @p j as a vector. */
    VectorT<T> col(std::size_t j) const;

    /** Frobenius norm. */
    T norm() const;

    /** Largest absolute entry; 0 for an empty matrix. */
    T maxAbs() const;

    /** Fraction of entries with |a_ij| > tol; 0 for an empty matrix. */
    double density(double tol = 1e-12) const;

    /** Number of entries with |a_ij| > tol. */
    std::size_t nonZeros(double tol = 1e-12) const;

    /** True if all entries below the main diagonal are within tol of 0. */
    bool isUpperTriangular(double tol = 1e-9) const;

    /** Stack @p other below this matrix (column counts must match). */
    MatrixT vstack(const MatrixT &other) const;

    /** Place @p other to the right of this matrix (row counts match). */
    MatrixT hstack(const MatrixT &other) const;

    /** Human-readable multi-line rendering, for logs and tests. */
    std::string str() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

/** The bit-exact fp64 reference types (every pre-v3 call site). */
using Vector = VectorT<double>;
using Matrix = MatrixT<double>;

/** The reduced-precision fp32 accelerator-mode types. */
using VectorF = VectorT<float>;
using MatrixF = MatrixT<float>;

/** Scalar-first scaling. */
template <typename T>
inline MatrixT<T>
operator*(T scale, const MatrixT<T> &m)
{
    return m * scale;
}

template <typename T>
inline VectorT<T>
operator*(T scale, const VectorT<T> &v)
{
    return v * scale;
}

/** Max-abs difference between two equally shaped matrices. */
double maxDifference(const Matrix &a, const Matrix &b);
float maxDifference(const MatrixF &a, const MatrixF &b);

/** Max-abs difference between two equally sized vectors. */
double maxDifference(const Vector &a, const Vector &b);
float maxDifference(const VectorF &a, const VectorF &b);

// Precision casts between the two instantiations (round-to-nearest
// when narrowing; exact when widening).
VectorF toFloat(const Vector &v);
MatrixF toFloat(const Matrix &m);
Vector toDouble(const VectorF &v);
Matrix toDouble(const MatrixF &m);

} // namespace orianna::mat
