// Kernel-tier registry and startup selection (DESIGN.md §10).
//
// The scalar table is constant-initialized as the active table, so
// kernels dispatched during other translation units' static
// initialization are always safe; a dynamic initializer in this TU
// then applies the ORIANNA_SIMD env override (or auto-detection
// stays, since auto is the scalar-or-better default applied lazily:
// see applyStartupSelection). Per-ISA tables register themselves via
// the *Table() hooks compiled in by CMake (ORIANNA_SIMD_AVX2 /
// ORIANNA_SIMD_NEON defines).

#include "matrix/simd.hpp"

#include <cstdio>
#include <cstdlib>

namespace orianna::mat::kernels {

namespace detail {

CallCell gKernelCalls[kKernelOpCount][kCallCells];

std::size_t
callCell()
{
    // Spread threads round-robin over the cells on first use; the
    // assignment is sticky for the thread's lifetime (the same idiom
    // as runtime::Counter, duplicated to keep this layer free of
    // runtime dependencies).
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t cell =
        next.fetch_add(1, std::memory_order_relaxed) % kCallCells;
    return cell;
}

} // namespace detail

namespace {

constexpr KernelTable kScalarTable = {
    SimdTier::Scalar,        scalar::gemm,
    scalar::gemmTransA,      scalar::gemmTransB,
    scalar::transpose,       scalar::gemv,
    scalar::gemvTransA,      scalar::dot,
    scalar::dotStrided,      scalar::fusedSubtractDot,
    scalar::axpyNegStrided,  scalar::givensRotate,
};

constexpr KernelTable32 kScalarTable32 = {
    SimdTier::Scalar,        scalar::gemm,
    scalar::gemmTransA,      scalar::gemmTransB,
    scalar::transpose,       scalar::gemv,
    scalar::gemvTransA,      scalar::dot,
    scalar::dotStrided,      scalar::fusedSubtractDot,
    scalar::axpyNegStrided,  scalar::givensRotate,
};

} // namespace

namespace detail {
std::atomic<const KernelTable *> gActive{&kScalarTable};
std::atomic<const KernelTable32 *> gActive32{&kScalarTable32};
} // namespace detail

// Per-ISA registration hooks, defined in their own TUs when CMake
// compiles them (each with its own arch flags). A tier registers both
// precisions or neither.
#ifdef ORIANNA_SIMD_AVX2
const KernelTable *avx2Table();
const KernelTable32 *avx2Table32();
#endif
#ifdef ORIANNA_SIMD_NEON
const KernelTable *neonTable();
const KernelTable32 *neonTable32();
#endif

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return "scalar";
    case SimdTier::Neon:
        return "neon";
    case SimdTier::Avx2:
        return "avx2";
    }
    return "unknown";
}

const KernelTable *
kernelTable(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return &kScalarTable;
    case SimdTier::Neon:
#ifdef ORIANNA_SIMD_NEON
        return neonTable();
#else
        return nullptr;
#endif
    case SimdTier::Avx2:
#ifdef ORIANNA_SIMD_AVX2
        return avx2Table();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

const KernelTable32 *
kernelTable32(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return &kScalarTable32;
    case SimdTier::Neon:
#ifdef ORIANNA_SIMD_NEON
        return neonTable32();
#else
        return nullptr;
#endif
    case SimdTier::Avx2:
#ifdef ORIANNA_SIMD_AVX2
        return avx2Table32();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

bool
tierCompiled(SimdTier tier)
{
    return kernelTable(tier) != nullptr;
}

bool
tierSupported(SimdTier tier)
{
    if (!tierCompiled(tier))
        return false;
    switch (tier) {
    case SimdTier::Scalar:
        return true;
    case SimdTier::Neon:
        // The NEON TU is only compiled on aarch64, where Advanced
        // SIMD is part of the base ISA.
        return true;
    case SimdTier::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
#else
        return false;
#endif
    }
    return false;
}

SimdTier
detectTier()
{
    for (SimdTier tier : {SimdTier::Avx2, SimdTier::Neon})
        if (tierSupported(tier))
            return tier;
    return SimdTier::Scalar;
}

std::vector<SimdTier>
compiledTiers()
{
    std::vector<SimdTier> tiers;
    for (std::size_t t = 0; t < kSimdTierCount; ++t)
        if (tierCompiled(static_cast<SimdTier>(t)))
            tiers.push_back(static_cast<SimdTier>(t));
    return tiers;
}

bool
selectTier(SimdTier tier)
{
    if (!tierSupported(tier))
        return false;
    // Both precisions switch together: a tier's TU registers both
    // tables, so fp32 sessions never run a different tier than fp64.
    detail::gActive.store(kernelTable(tier), std::memory_order_relaxed);
    detail::gActive32.store(kernelTable32(tier),
                            std::memory_order_relaxed);
    return true;
}

SimdSelection
selectTierFromSpec(const std::string &spec)
{
    SimdSelection out;
    if (spec == "auto") {
        out.ok = true;
        out.tier = detectTier();
        selectTier(out.tier);
        return out;
    }
    for (std::size_t t = 0; t < kSimdTierCount; ++t) {
        const auto tier = static_cast<SimdTier>(t);
        if (spec != simdTierName(tier))
            continue;
        out.ok = true;
        if (tierSupported(tier)) {
            out.tier = tier;
        } else {
            out.tier = detectTier();
            out.message = std::string(simdTierName(tier)) +
                          " kernels unavailable on this host (" +
                          (tierCompiled(tier) ? "CPU lacks the ISA"
                                              : "not compiled in") +
                          "); using " + simdTierName(out.tier);
        }
        selectTier(out.tier);
        return out;
    }
    out.message = "unknown SIMD tier \"" + spec +
                  "\" (expected scalar, avx2, neon or auto)";
    return out;
}

std::string
simdCapabilityString()
{
    std::string out = "active ";
    out += simdTierName(activeTier());
    out += " (compiled";
    const char *sep = " ";
    for (SimdTier tier : compiledTiers()) {
        out += sep;
        out += simdTierName(tier);
        sep = ",";
    }
    out += "; detected ";
    out += simdTierName(detectTier());
    out += ")";
    return out;
}

const char *
kernelOpName(KernelOp op)
{
    switch (op) {
    case KernelOp::Gemm:
        return "gemm";
    case KernelOp::GemmTransA:
        return "gemm_trans_a";
    case KernelOp::GemmTransB:
        return "gemm_trans_b";
    case KernelOp::Transpose:
        return "transpose";
    case KernelOp::Gemv:
        return "gemv";
    case KernelOp::GemvTransA:
        return "gemv_trans_a";
    case KernelOp::Dot:
        return "dot";
    case KernelOp::DotStrided:
        return "dot_strided";
    case KernelOp::FusedSubtractDot:
        return "fused_subtract_dot";
    case KernelOp::AxpyNegStrided:
        return "axpy_neg_strided";
    case KernelOp::GivensRotate:
        return "givens_rotate";
    }
    return "unknown";
}

std::uint64_t
kernelCallCount(KernelOp op)
{
    std::uint64_t total = 0;
    for (const detail::CallCell &cell :
         detail::gKernelCalls[static_cast<std::size_t>(op)])
        total += cell.value.load(std::memory_order_relaxed);
    return total;
}

void
resetKernelCallCounts()
{
    for (auto &cells : detail::gKernelCalls)
        for (detail::CallCell &cell : cells)
            cell.value.store(0, std::memory_order_relaxed);
}

namespace {

/**
 * Startup selection: ORIANNA_SIMD=scalar|avx2|neon|auto (unset means
 * auto — the best supported tier). A malformed value warns to stderr
 * and keeps auto-detection; a known-but-unsupported tier warns and
 * falls back, so a pinned CI leg degrades gracefully on hosts that
 * lack the ISA.
 */
bool
applyStartupSelection()
{
    const char *env = std::getenv("ORIANNA_SIMD");
    const SimdSelection selection =
        selectTierFromSpec(env != nullptr ? env : "auto");
    if (!selection.ok) {
        std::fprintf(stderr, "orianna: ORIANNA_SIMD: %s\n",
                     selection.message.c_str());
        selectTier(detectTier());
    } else if (!selection.message.empty()) {
        std::fprintf(stderr, "orianna: ORIANNA_SIMD: %s\n",
                     selection.message.c_str());
    }
    return true;
}

[[maybe_unused]] const bool gStartupSelectionApplied =
    applyStartupSelection();

} // namespace

} // namespace orianna::mat::kernels
