// Scalar reference kernels: the always-compiled tier of the SIMD
// dispatch layer (simd.hpp, DESIGN.md §10). Every function here keeps
// the exact floating-point accumulation order of the naive loops it
// replaces — each output element is a single dependency chain over
// ascending inner index — so this tier is bit-identical to the
// reference for finite inputs, the property the runtime relies on for
// byte-identical schedules and deltas. Speed comes from register
// tiling (outputs written once), pointer arithmetic and cache-blocked
// traversal only; no reassociation.
//
// Both precisions (DESIGN.md §12) share one set of templated bodies;
// the scalar:: overload pairs below instantiate them for double and
// float, so the fp64 codegen is unchanged by the fp32 addition.

#include "matrix/simd.hpp"

#include <algorithm>

namespace orianna::mat::kernels {

namespace {

// Register-tile shape of the GEMM microkernels. MR x NR accumulators
// live in registers for the whole k loop and are stored exactly once
// (write-once), so the output is never re-read from memory and each
// element remains a single accumulation chain over ascending k.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 8;

/**
 * Generic edge tile: mr x nr accumulators (mr <= MR, nr <= NR) over
 * the full k range. load(ii, p) supplies a(i0+ii, p) so the same body
 * serves the straight and transposed-A kernels.
 */
template <typename T, typename LoadA>
inline void
tile(const T *b, T *c, std::size_t ldb, std::size_t ldc, std::size_t k,
     std::size_t mr, std::size_t nr, LoadA load)
{
    T acc[MR][NR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const T *brow = b + p * ldb;
        T avals[MR];
        for (std::size_t ii = 0; ii < mr; ++ii)
            avals[ii] = load(ii, p);
        for (std::size_t ii = 0; ii < mr; ++ii)
            for (std::size_t jj = 0; jj < nr; ++jj)
                acc[ii][jj] += avals[ii] * brow[jj];
    }
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            c[ii * ldc + jj] = acc[ii][jj];
}

template <typename T>
void
gemmImpl(const T *a, const T *b, T *c, std::size_t m, std::size_t k,
         std::size_t n)
{
    for (std::size_t i0 = 0; i0 < m; i0 += MR) {
        const std::size_t mr = std::min(MR, m - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += NR) {
            const std::size_t nr = std::min(NR, n - j0);
            tile(b + j0, c + i0 * n + j0, n, n, k, mr, nr,
                 [&](std::size_t ii, std::size_t p) {
                     return a[(i0 + ii) * k + p];
                 });
        }
    }
}

template <typename T>
void
gemmTransAImpl(const T *a, const T *b, T *c, std::size_t k,
               std::size_t m, std::size_t n)
{
    for (std::size_t i0 = 0; i0 < m; i0 += MR) {
        const std::size_t mr = std::min(MR, m - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += NR) {
            const std::size_t nr = std::min(NR, n - j0);
            // a^T(i, p) = a(p, i): consecutive ii are adjacent in
            // memory, so the operand loads stay contiguous.
            tile(b + j0, c + i0 * n + j0, n, n, k, mr, nr,
                 [&](std::size_t ii, std::size_t p) {
                     return a[p * m + i0 + ii];
                 });
        }
    }
}

template <typename T>
void
gemmTransBImpl(const T *a, const T *b, T *c, std::size_t m,
               std::size_t k, std::size_t n)
{
    // c(i, j) is a dot of row i of a with row j of b — both
    // contiguous. Tile over j so NR output dots share each pass over
    // row i of a.
    for (std::size_t i = 0; i < m; ++i) {
        const T *arow = a + i * k;
        for (std::size_t j0 = 0; j0 < n; j0 += NR) {
            const std::size_t nr = std::min(NR, n - j0);
            T acc[NR] = {};
            for (std::size_t p = 0; p < k; ++p) {
                const T aval = arow[p];
                for (std::size_t jj = 0; jj < nr; ++jj)
                    acc[jj] += aval * b[(j0 + jj) * k + p];
            }
            for (std::size_t jj = 0; jj < nr; ++jj)
                c[i * n + j0 + jj] = acc[jj];
        }
    }
}

template <typename T>
void
transposeImpl(const T *a, T *out, std::size_t m, std::size_t n)
{
    // Square blocking keeps one side of every block in cache; 32x32
    // doubles = 8 KiB per operand block.
    constexpr std::size_t B = 32;
    for (std::size_t i0 = 0; i0 < m; i0 += B) {
        const std::size_t i1 = std::min(i0 + B, m);
        for (std::size_t j0 = 0; j0 < n; j0 += B) {
            const std::size_t j1 = std::min(j0 + B, n);
            for (std::size_t i = i0; i < i1; ++i)
                for (std::size_t j = j0; j < j1; ++j)
                    out[j * m + i] = a[i * n + j];
        }
    }
}

template <typename T>
T
dotImpl(const T *a, const T *b, std::size_t n)
{
    T acc = T(0);
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

template <typename T>
void
gemvImpl(const T *a, const T *x, T *y, std::size_t m, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        y[i] = dotImpl(a + i * n, x, n);
}

template <typename T>
void
gemvTransAImpl(const T *a, const T *x, T *y, std::size_t m,
               std::size_t n)
{
    // i outer keeps the accumulation over ascending i per output —
    // the same order as materializing a^T — while streaming the rows
    // of a contiguously.
    for (std::size_t i = 0; i < m; ++i) {
        const T *arow = a + i * n;
        const T xi = x[i];
        for (std::size_t j = 0; j < n; ++j)
            y[j] += xi * arow[j];
    }
}

template <typename T>
T
dotStridedImpl(const T *a, std::size_t stride_a, const T *b,
               std::size_t stride_b, std::size_t n)
{
    T acc = T(0);
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i * stride_a] * b[i * stride_b];
    return acc;
}

template <typename T>
T
fusedSubtractDotImpl(T acc, const T *a, const T *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc -= a[i] * x[i];
    return acc;
}

template <typename T>
void
axpyNegStridedImpl(T *y, std::size_t stride_y, T alpha, const T *x,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i * stride_y] -= alpha * x[i];
}

template <typename T>
void
givensRotateImpl(T *rj, T *ri, T c, T s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const T a = rj[i];
        const T b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

} // namespace

namespace scalar {

void
gemm(const double *a, const double *b, double *c, std::size_t m,
     std::size_t k, std::size_t n)
{
    gemmImpl(a, b, c, m, k, n);
}

void
gemm(const float *a, const float *b, float *c, std::size_t m,
     std::size_t k, std::size_t n)
{
    gemmImpl(a, b, c, m, k, n);
}

void
gemmTransA(const double *a, const double *b, double *c, std::size_t k,
           std::size_t m, std::size_t n)
{
    gemmTransAImpl(a, b, c, k, m, n);
}

void
gemmTransA(const float *a, const float *b, float *c, std::size_t k,
           std::size_t m, std::size_t n)
{
    gemmTransAImpl(a, b, c, k, m, n);
}

void
gemmTransB(const double *a, const double *b, double *c, std::size_t m,
           std::size_t k, std::size_t n)
{
    gemmTransBImpl(a, b, c, m, k, n);
}

void
gemmTransB(const float *a, const float *b, float *c, std::size_t m,
           std::size_t k, std::size_t n)
{
    gemmTransBImpl(a, b, c, m, k, n);
}

void
transpose(const double *a, double *out, std::size_t m, std::size_t n)
{
    transposeImpl(a, out, m, n);
}

void
transpose(const float *a, float *out, std::size_t m, std::size_t n)
{
    transposeImpl(a, out, m, n);
}

void
gemv(const double *a, const double *x, double *y, std::size_t m,
     std::size_t n)
{
    gemvImpl(a, x, y, m, n);
}

void
gemv(const float *a, const float *x, float *y, std::size_t m,
     std::size_t n)
{
    gemvImpl(a, x, y, m, n);
}

void
gemvTransA(const double *a, const double *x, double *y, std::size_t m,
           std::size_t n)
{
    gemvTransAImpl(a, x, y, m, n);
}

void
gemvTransA(const float *a, const float *x, float *y, std::size_t m,
           std::size_t n)
{
    gemvTransAImpl(a, x, y, m, n);
}

double
dot(const double *a, const double *b, std::size_t n)
{
    return dotImpl(a, b, n);
}

float
dot(const float *a, const float *b, std::size_t n)
{
    return dotImpl(a, b, n);
}

double
dotStrided(const double *a, std::size_t stride_a, const double *b,
           std::size_t stride_b, std::size_t n)
{
    return dotStridedImpl(a, stride_a, b, stride_b, n);
}

float
dotStrided(const float *a, std::size_t stride_a, const float *b,
           std::size_t stride_b, std::size_t n)
{
    return dotStridedImpl(a, stride_a, b, stride_b, n);
}

double
fusedSubtractDot(double acc, const double *a, const double *x,
                 std::size_t n)
{
    return fusedSubtractDotImpl(acc, a, x, n);
}

float
fusedSubtractDot(float acc, const float *a, const float *x,
                 std::size_t n)
{
    return fusedSubtractDotImpl(acc, a, x, n);
}

void
axpyNegStrided(double *y, std::size_t stride_y, double alpha,
               const double *x, std::size_t n)
{
    axpyNegStridedImpl(y, stride_y, alpha, x, n);
}

void
axpyNegStrided(float *y, std::size_t stride_y, float alpha,
               const float *x, std::size_t n)
{
    axpyNegStridedImpl(y, stride_y, alpha, x, n);
}

void
givensRotate(double *rj, double *ri, double c, double s, std::size_t n)
{
    givensRotateImpl(rj, ri, c, s, n);
}

void
givensRotate(float *rj, float *ri, float c, float s, std::size_t n)
{
    givensRotateImpl(rj, ri, c, s, n);
}

} // namespace scalar

} // namespace orianna::mat::kernels
