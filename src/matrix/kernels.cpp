// Scalar reference kernels: the always-compiled tier of the SIMD
// dispatch layer (simd.hpp, DESIGN.md §10). Every function here keeps
// the exact floating-point accumulation order of the naive loops it
// replaces — each output element is a single dependency chain over
// ascending inner index — so this tier is bit-identical to the
// reference for finite inputs, the property the runtime relies on for
// byte-identical schedules and deltas. Speed comes from register
// tiling (outputs written once), pointer arithmetic and cache-blocked
// traversal only; no reassociation.

#include "matrix/simd.hpp"

#include <algorithm>

namespace orianna::mat::kernels {

namespace {

// Register-tile shape of the GEMM microkernels. MR x NR accumulators
// live in registers for the whole k loop and are stored exactly once
// (write-once), so the output is never re-read from memory and each
// element remains a single accumulation chain over ascending k.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 8;

/**
 * Generic edge tile: mr x nr accumulators (mr <= MR, nr <= NR) over
 * the full k range. load(ii, p) supplies a(i0+ii, p) so the same body
 * serves the straight and transposed-A kernels.
 */
template <typename LoadA>
inline void
tile(const double *b, double *c, std::size_t ldb, std::size_t ldc,
     std::size_t k, std::size_t mr, std::size_t nr, LoadA load)
{
    double acc[MR][NR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const double *brow = b + p * ldb;
        double avals[MR];
        for (std::size_t ii = 0; ii < mr; ++ii)
            avals[ii] = load(ii, p);
        for (std::size_t ii = 0; ii < mr; ++ii)
            for (std::size_t jj = 0; jj < nr; ++jj)
                acc[ii][jj] += avals[ii] * brow[jj];
    }
    for (std::size_t ii = 0; ii < mr; ++ii)
        for (std::size_t jj = 0; jj < nr; ++jj)
            c[ii * ldc + jj] = acc[ii][jj];
}

} // namespace

namespace scalar {

void
gemm(const double *a, const double *b, double *c, std::size_t m,
     std::size_t k, std::size_t n)
{
    for (std::size_t i0 = 0; i0 < m; i0 += MR) {
        const std::size_t mr = std::min(MR, m - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += NR) {
            const std::size_t nr = std::min(NR, n - j0);
            tile(b + j0, c + i0 * n + j0, n, n, k, mr, nr,
                 [&](std::size_t ii, std::size_t p) {
                     return a[(i0 + ii) * k + p];
                 });
        }
    }
}

void
gemmTransA(const double *a, const double *b, double *c, std::size_t k,
           std::size_t m, std::size_t n)
{
    for (std::size_t i0 = 0; i0 < m; i0 += MR) {
        const std::size_t mr = std::min(MR, m - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += NR) {
            const std::size_t nr = std::min(NR, n - j0);
            // a^T(i, p) = a(p, i): consecutive ii are adjacent in
            // memory, so the operand loads stay contiguous.
            tile(b + j0, c + i0 * n + j0, n, n, k, mr, nr,
                 [&](std::size_t ii, std::size_t p) {
                     return a[p * m + i0 + ii];
                 });
        }
    }
}

void
gemmTransB(const double *a, const double *b, double *c, std::size_t m,
           std::size_t k, std::size_t n)
{
    // c(i, j) is a dot of row i of a with row j of b — both
    // contiguous. Tile over j so NR output dots share each pass over
    // row i of a.
    for (std::size_t i = 0; i < m; ++i) {
        const double *arow = a + i * k;
        for (std::size_t j0 = 0; j0 < n; j0 += NR) {
            const std::size_t nr = std::min(NR, n - j0);
            double acc[NR] = {};
            for (std::size_t p = 0; p < k; ++p) {
                const double aval = arow[p];
                for (std::size_t jj = 0; jj < nr; ++jj)
                    acc[jj] += aval * b[(j0 + jj) * k + p];
            }
            for (std::size_t jj = 0; jj < nr; ++jj)
                c[i * n + j0 + jj] = acc[jj];
        }
    }
}

void
transpose(const double *a, double *out, std::size_t m, std::size_t n)
{
    // Square blocking keeps one side of every block in cache; 32x32
    // doubles = 8 KiB per operand block.
    constexpr std::size_t B = 32;
    for (std::size_t i0 = 0; i0 < m; i0 += B) {
        const std::size_t i1 = std::min(i0 + B, m);
        for (std::size_t j0 = 0; j0 < n; j0 += B) {
            const std::size_t j1 = std::min(j0 + B, n);
            for (std::size_t i = i0; i < i1; ++i)
                for (std::size_t j = j0; j < j1; ++j)
                    out[j * m + i] = a[i * n + j];
        }
    }
}

void
gemv(const double *a, const double *x, double *y, std::size_t m,
     std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        y[i] = dot(a + i * n, x, n);
}

void
gemvTransA(const double *a, const double *x, double *y, std::size_t m,
           std::size_t n)
{
    // i outer keeps the accumulation over ascending i per output —
    // the same order as materializing a^T — while streaming the rows
    // of a contiguously.
    for (std::size_t i = 0; i < m; ++i) {
        const double *arow = a + i * n;
        const double xi = x[i];
        for (std::size_t j = 0; j < n; ++j)
            y[j] += xi * arow[j];
    }
}

double
dot(const double *a, const double *b, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

double
dotStrided(const double *a, std::size_t stride_a, const double *b,
           std::size_t stride_b, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i * stride_a] * b[i * stride_b];
    return acc;
}

double
fusedSubtractDot(double acc, const double *a, const double *x,
                 std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc -= a[i] * x[i];
    return acc;
}

void
axpyNegStrided(double *y, std::size_t stride_y, double alpha,
               const double *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i * stride_y] -= alpha * x[i];
}

void
givensRotate(double *rj, double *ri, double c, double s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rj[i];
        const double b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

} // namespace scalar

} // namespace orianna::mat::kernels
