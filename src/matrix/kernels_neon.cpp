// NEON kernel tier (aarch64 only — Advanced SIMD is part of the base
// ISA there, so no runtime feature check beyond compilation). A
// deliberately modest tier: 2-lane float64x2_t vectorization of the
// reduction-heavy kernels (dot and the gemm family built on it, the
// Givens rotation), scalar reference pointers for the rest. Like the
// AVX2 tier it reassociates accumulation chains, so results match the
// scalar reference only within the DESIGN.md §10 tolerance.

#include "matrix/simd.hpp"

#if defined(ORIANNA_SIMD_NEON) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace orianna::mat::kernels {

namespace {

double
dotNeon(const double *a, const double *b, std::size_t n)
{
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < n4; i += 4) {
        acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
        acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2),
                         vld1q_f64(b + i + 2));
    }
    double acc = vaddvq_f64(vaddq_f64(acc0, acc1));
    for (std::size_t i = n4; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
gemmTransBNeon(const double *a, const double *b, double *c,
               std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            c[i * n + j] = dotNeon(a + i * k, b + j * k, k);
}

void
gemvNeon(const double *a, const double *x, double *y, std::size_t m,
         std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        y[i] = dotNeon(a + i * n, x, n);
}

void
gemvTransANeon(const double *a, const double *x, double *y,
               std::size_t m, std::size_t n)
{
    const std::size_t n2 = n - n % 2;
    for (std::size_t i = 0; i < m; ++i) {
        const double *arow = a + i * n;
        const float64x2_t xi = vdupq_n_f64(x[i]);
        for (std::size_t j = 0; j < n2; j += 2)
            vst1q_f64(y + j,
                      vfmaq_f64(vld1q_f64(y + j), xi, vld1q_f64(arow + j)));
        for (std::size_t j = n2; j < n; ++j)
            y[j] += x[i] * arow[j];
    }
}

double
dotStridedNeon(const double *a, std::size_t stride_a, const double *b,
               std::size_t stride_b, std::size_t n)
{
    if (stride_a == 1 && stride_b == 1)
        return dotNeon(a, b, n);
    return scalar::dotStrided(a, stride_a, b, stride_b, n);
}

double
fusedSubtractDotNeon(double acc, const double *a, const double *x,
                     std::size_t n)
{
    return acc - dotNeon(a, x, n);
}

void
axpyNegStridedNeon(double *y, std::size_t stride_y, double alpha,
                   const double *x, std::size_t n)
{
    if (stride_y != 1) {
        scalar::axpyNegStrided(y, stride_y, alpha, x, n);
        return;
    }
    const float64x2_t av = vdupq_n_f64(alpha);
    const std::size_t n2 = n - n % 2;
    for (std::size_t i = 0; i < n2; i += 2)
        vst1q_f64(y + i,
                  vfmsq_f64(vld1q_f64(y + i), av, vld1q_f64(x + i)));
    for (std::size_t i = n2; i < n; ++i)
        y[i] -= alpha * x[i];
}

void
givensRotateNeon(double *rj, double *ri, double c, double s,
                 std::size_t n)
{
    const float64x2_t cv = vdupq_n_f64(c);
    const float64x2_t sv = vdupq_n_f64(s);
    const std::size_t n2 = n - n % 2;
    for (std::size_t i = 0; i < n2; i += 2) {
        const float64x2_t a = vld1q_f64(rj + i);
        const float64x2_t b = vld1q_f64(ri + i);
        vst1q_f64(rj + i, vfmaq_f64(vmulq_f64(sv, b), cv, a));
        vst1q_f64(ri + i, vfmsq_f64(vmulq_f64(cv, b), sv, a));
    }
    for (std::size_t i = n2; i < n; ++i) {
        const double a = rj[i];
        const double b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

const KernelTable kNeonTable = {
    SimdTier::Neon,     scalar::gemm,
    scalar::gemmTransA, gemmTransBNeon,
    scalar::transpose,  gemvNeon,
    gemvTransANeon,     dotNeon,
    dotStridedNeon,     fusedSubtractDotNeon,
    axpyNegStridedNeon, givensRotateNeon,
};

// --- fp32 tier (DESIGN.md §12): 4-lane float32x4_t versions ---------

float
dotNeonF(const float *a, const float *b, std::size_t n)
{
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    const std::size_t n8 = n - n % 8;
    for (std::size_t i = 0; i < n8; i += 8) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
        acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4),
                         vld1q_f32(b + i + 4));
    }
    float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
    for (std::size_t i = n8; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
gemmTransBNeonF(const float *a, const float *b, float *c,
                std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            c[i * n + j] = dotNeonF(a + i * k, b + j * k, k);
}

void
gemvNeonF(const float *a, const float *x, float *y, std::size_t m,
          std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i)
        y[i] = dotNeonF(a + i * n, x, n);
}

void
gemvTransANeonF(const float *a, const float *x, float *y,
                std::size_t m, std::size_t n)
{
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * n;
        const float32x4_t xi = vdupq_n_f32(x[i]);
        for (std::size_t j = 0; j < n4; j += 4)
            vst1q_f32(y + j, vfmaq_f32(vld1q_f32(y + j), xi,
                                       vld1q_f32(arow + j)));
        for (std::size_t j = n4; j < n; ++j)
            y[j] += x[i] * arow[j];
    }
}

float
dotStridedNeonF(const float *a, std::size_t stride_a, const float *b,
                std::size_t stride_b, std::size_t n)
{
    if (stride_a == 1 && stride_b == 1)
        return dotNeonF(a, b, n);
    return scalar::dotStrided(a, stride_a, b, stride_b, n);
}

float
fusedSubtractDotNeonF(float acc, const float *a, const float *x,
                      std::size_t n)
{
    return acc - dotNeonF(a, x, n);
}

void
axpyNegStridedNeonF(float *y, std::size_t stride_y, float alpha,
                    const float *x, std::size_t n)
{
    if (stride_y != 1) {
        scalar::axpyNegStrided(y, stride_y, alpha, x, n);
        return;
    }
    const float32x4_t av = vdupq_n_f32(alpha);
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < n4; i += 4)
        vst1q_f32(y + i,
                  vfmsq_f32(vld1q_f32(y + i), av, vld1q_f32(x + i)));
    for (std::size_t i = n4; i < n; ++i)
        y[i] -= alpha * x[i];
}

void
givensRotateNeonF(float *rj, float *ri, float c, float s,
                  std::size_t n)
{
    const float32x4_t cv = vdupq_n_f32(c);
    const float32x4_t sv = vdupq_n_f32(s);
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < n4; i += 4) {
        const float32x4_t a = vld1q_f32(rj + i);
        const float32x4_t b = vld1q_f32(ri + i);
        vst1q_f32(rj + i, vfmaq_f32(vmulq_f32(sv, b), cv, a));
        vst1q_f32(ri + i, vfmsq_f32(vmulq_f32(cv, b), sv, a));
    }
    for (std::size_t i = n4; i < n; ++i) {
        const float a = rj[i];
        const float b = ri[i];
        rj[i] = c * a + s * b;
        ri[i] = -s * a + c * b;
    }
}

const KernelTable32 kNeonTable32 = {
    SimdTier::Neon,      scalar::gemm,
    scalar::gemmTransA,  gemmTransBNeonF,
    scalar::transpose,   gemvNeonF,
    gemvTransANeonF,     dotNeonF,
    dotStridedNeonF,     fusedSubtractDotNeonF,
    axpyNegStridedNeonF, givensRotateNeonF,
};

} // namespace

const KernelTable *
neonTable()
{
    return &kNeonTable;
}

const KernelTable32 *
neonTable32()
{
    return &kNeonTable32;
}

} // namespace orianna::mat::kernels

#else // Compiled on a host without NEON; tier stays unregistered.

namespace orianna::mat::kernels {

const KernelTable *
neonTable()
{
    return nullptr;
}

const KernelTable32 *
neonTable32()
{
    return nullptr;
}

} // namespace orianna::mat::kernels

#endif
