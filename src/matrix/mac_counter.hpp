#pragma once

#include <cstdint>

namespace orianna::mat {

/**
 * Process-wide multiply-accumulate (MAC) counter.
 *
 * Every dense kernel in this library reports the number of MAC
 * operations it performs. The counter backs the Sec. 4.3 experiment
 * (52.7% MAC savings of <so(n),T(n)> over SE(n)) and the platform
 * models in src/baselines, which convert operation counts into
 * latency and energy estimates.
 *
 * The counter is thread-local so parallel test shards do not race.
 */
class MacCounter
{
  public:
    /** Add @p n MAC operations to the running total. */
    static void add(std::uint64_t n) { counter() += n; }

    /** Current MAC total since the last reset(). */
    static std::uint64_t value() { return counter(); }

    /** Reset the running total to zero. */
    static void reset() { counter() = 0; }

  private:
    static std::uint64_t &
    counter()
    {
        thread_local std::uint64_t count = 0;
        return count;
    }
};

/**
 * RAII scope that measures the MACs executed while it is alive.
 *
 * Usage:
 * @code
 *   MacScope scope;
 *   ... kernels ...
 *   std::uint64_t macs = scope.elapsed();
 * @endcode
 */
class MacScope
{
  public:
    MacScope() : start_(MacCounter::value()) {}

    /** MACs executed since construction. */
    std::uint64_t elapsed() const { return MacCounter::value() - start_; }

  private:
    std::uint64_t start_;
};

} // namespace orianna::mat
