#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace orianna::mat::kernels {

/**
 * Runtime-dispatched SIMD kernel layer (DESIGN.md §10).
 *
 * Every dense microkernel exists at least twice: once as the scalar
 * reference (src/matrix/kernels.cpp — the exact ascending-index
 * accumulation chains the byte-identical schedule/delta contract is
 * built on) and optionally as per-ISA fast paths compiled in their
 * own translation units with their own arch flags (kernels_avx2.cpp
 * with -mavx2 -mfma, kernels_neon.cpp on aarch64). One KernelTable of
 * function pointers per tier is registered here; the active table is
 * picked once at startup — best supported tier, overridable with the
 * ORIANNA_SIMD env var or the tools' --simd flag — and the public
 * kernels::* entry points dispatch through a single relaxed atomic
 * pointer load.
 *
 * The scalar tier is always compiled and is the equivalence oracle:
 * fast-path tiers may reassociate reductions (wide accumulators,
 * FMA), so their results are only guaranteed to match the reference
 * within the documented tolerance (DESIGN.md §10), never bit-exactly.
 * Forcing ORIANNA_SIMD=scalar restores the bit-exact contract.
 */

/** Kernel tiers, in preference order (higher id wins under "auto"). */
enum class SimdTier : std::uint8_t { Scalar = 0, Neon = 1, Avx2 = 2 };

inline constexpr std::size_t kSimdTierCount = 3;

/** Lower-case tier name ("scalar", "neon", "avx2"). */
const char *simdTierName(SimdTier tier);

/**
 * One dispatchable implementation set. Signatures mirror kernels.hpp.
 * Two instantiations exist (DESIGN.md §12): `T = double` is the
 * reference precision, `T = float` the fp32 accelerator mode with
 * twice the SIMD lane width. Each tier's translation unit registers
 * both tables, so selecting a tier always switches the pair together.
 */
template <typename T> struct KernelTableT
{
    SimdTier tier;
    void (*gemm)(const T *a, const T *b, T *c, std::size_t m,
                 std::size_t k, std::size_t n);
    void (*gemmTransA)(const T *a, const T *b, T *c, std::size_t k,
                       std::size_t m, std::size_t n);
    void (*gemmTransB)(const T *a, const T *b, T *c, std::size_t m,
                       std::size_t k, std::size_t n);
    void (*transpose)(const T *a, T *out, std::size_t m,
                      std::size_t n);
    void (*gemv)(const T *a, const T *x, T *y, std::size_t m,
                 std::size_t n);
    void (*gemvTransA)(const T *a, const T *x, T *y, std::size_t m,
                       std::size_t n);
    T (*dot)(const T *a, const T *b, std::size_t n);
    T (*dotStrided)(const T *a, std::size_t stride_a, const T *b,
                    std::size_t stride_b, std::size_t n);
    T (*fusedSubtractDot)(T acc, const T *a, const T *x,
                          std::size_t n);
    void (*axpyNegStrided)(T *y, std::size_t stride_y, T alpha,
                           const T *x, std::size_t n);
    void (*givensRotate)(T *rj, T *ri, T c, T s, std::size_t n);
};

using KernelTable = KernelTableT<double>;
using KernelTable32 = KernelTableT<float>;

/**
 * The scalar reference implementations (exact accumulation chains),
 * one overload set per precision. Callable directly — the parity
 * tests and the kernel bench compare fast-path tables against these.
 */
namespace scalar {

void gemm(const double *a, const double *b, double *c, std::size_t m,
          std::size_t k, std::size_t n);
void gemmTransA(const double *a, const double *b, double *c,
                std::size_t k, std::size_t m, std::size_t n);
void gemmTransB(const double *a, const double *b, double *c,
                std::size_t m, std::size_t k, std::size_t n);
void transpose(const double *a, double *out, std::size_t m,
               std::size_t n);
void gemv(const double *a, const double *x, double *y, std::size_t m,
          std::size_t n);
void gemvTransA(const double *a, const double *x, double *y,
                std::size_t m, std::size_t n);
double dot(const double *a, const double *b, std::size_t n);
double dotStrided(const double *a, std::size_t stride_a, const double *b,
                  std::size_t stride_b, std::size_t n);
double fusedSubtractDot(double acc, const double *a, const double *x,
                        std::size_t n);
void axpyNegStrided(double *y, std::size_t stride_y, double alpha,
                    const double *x, std::size_t n);
void givensRotate(double *rj, double *ri, double c, double s,
                  std::size_t n);

void gemm(const float *a, const float *b, float *c, std::size_t m,
          std::size_t k, std::size_t n);
void gemmTransA(const float *a, const float *b, float *c,
                std::size_t k, std::size_t m, std::size_t n);
void gemmTransB(const float *a, const float *b, float *c,
                std::size_t m, std::size_t k, std::size_t n);
void transpose(const float *a, float *out, std::size_t m,
               std::size_t n);
void gemv(const float *a, const float *x, float *y, std::size_t m,
          std::size_t n);
void gemvTransA(const float *a, const float *x, float *y,
                std::size_t m, std::size_t n);
float dot(const float *a, const float *b, std::size_t n);
float dotStrided(const float *a, std::size_t stride_a, const float *b,
                 std::size_t stride_b, std::size_t n);
float fusedSubtractDot(float acc, const float *a, const float *x,
                       std::size_t n);
void axpyNegStrided(float *y, std::size_t stride_y, float alpha,
                    const float *x, std::size_t n);
void givensRotate(float *rj, float *ri, float c, float s,
                  std::size_t n);

} // namespace scalar

/** fp64 table of @p tier, or nullptr when its TU was not compiled in. */
const KernelTable *kernelTable(SimdTier tier);

/** fp32 table of @p tier, or nullptr when its TU was not compiled in. */
const KernelTable32 *kernelTable32(SimdTier tier);

/** Whether @p tier's TU was compiled into this binary. */
bool tierCompiled(SimdTier tier);

/**
 * Whether @p tier can run on this host: compiled in and (for x86
 * tiers) confirmed by CPUID. Scalar is always supported.
 */
bool tierSupported(SimdTier tier);

/** Best supported tier on this host (what "auto" resolves to). */
SimdTier detectTier();

/** Every tier compiled into this binary, scalar first. */
std::vector<SimdTier> compiledTiers();

namespace detail {
/** Active tables, one per precision. Constant-initialized to scalar;
 *  the ORIANNA_SIMD env override is applied by a dynamic initializer
 *  in simd.cpp. selectTier() always switches the pair together. */
extern std::atomic<const KernelTable *> gActive;
extern std::atomic<const KernelTable32 *> gActive32;
} // namespace detail

/** The fp64 table every kernels::* call dispatches through. */
inline const KernelTable &
activeKernels()
{
    return *detail::gActive.load(std::memory_order_relaxed);
}

/** Same, fp32. */
inline const KernelTable32 &
activeKernels32()
{
    return *detail::gActive32.load(std::memory_order_relaxed);
}

/** Precision-generic access to the active table pair. */
template <typename T> const KernelTableT<T> &activeKernelsT();

template <>
inline const KernelTableT<double> &
activeKernelsT<double>()
{
    return activeKernels();
}

template <>
inline const KernelTableT<float> &
activeKernelsT<float>()
{
    return activeKernels32();
}

inline SimdTier
activeTier()
{
    return activeKernels().tier;
}

/**
 * Switch the active table. Returns false (and leaves the selection
 * unchanged) when @p tier is not supported on this host. Safe to call
 * concurrently with kernel execution — in-flight kernels finish on
 * the table they loaded — but results computed while switching mix
 * tiers, so serving code selects once at startup.
 */
bool selectTier(SimdTier tier);

/** Outcome of a spec-string selection (env var or --simd flag). */
struct SimdSelection
{
    bool ok = false;       //!< Spec was well-formed.
    SimdTier tier{};       //!< Tier actually selected (when ok).
    std::string message;   //!< Warning (ok) or error (!ok) text.
};

/**
 * Select from a user-facing spec: "scalar", "avx2", "neon" or "auto".
 * Unknown specs fail without changing the selection; a known tier
 * that this host cannot run falls back to detectTier() and reports a
 * warning in @c message.
 */
SimdSelection selectTierFromSpec(const std::string &spec);

/** One-line capability summary for diagnostics/health output, e.g.
 *  "active avx2 (compiled scalar,avx2; detected avx2)". */
std::string simdCapabilityString();

/** RAII tier pin for tests: selects @p tier, restores on destruction. */
class ScopedKernelTier
{
  public:
    explicit ScopedKernelTier(SimdTier tier)
        : previous_(activeTier()), ok_(selectTier(tier))
    {
    }

    ~ScopedKernelTier() { selectTier(previous_); }

    ScopedKernelTier(const ScopedKernelTier &) = delete;
    ScopedKernelTier &operator=(const ScopedKernelTier &) = delete;

    /** Whether the requested tier was actually selected. */
    bool ok() const { return ok_; }

  private:
    SimdTier previous_;
    bool ok_;
};

// --- Per-kernel call counters ---------------------------------------
//
// Dispatched kernel invocations are counted into sharded relaxed
// cells (same idiom as runtime::Counter, duplicated here so the
// matrix layer stays free of runtime dependencies). The runtime
// metrics registry mirrors these into its JSON export under
// "kernels" and resets them with the registry.

enum class KernelOp : std::uint8_t {
    Gemm = 0,
    GemmTransA,
    GemmTransB,
    Transpose,
    Gemv,
    GemvTransA,
    Dot,
    DotStrided,
    FusedSubtractDot,
    AxpyNegStrided,
    GivensRotate,
};

inline constexpr std::size_t kKernelOpCount = 11;

/** Lower-case snake name of @p op ("gemm", "gemm_trans_a", ...). */
const char *kernelOpName(KernelOp op);

namespace detail {

inline constexpr std::size_t kCallCells = 16;

struct alignas(64) CallCell
{
    std::atomic<std::uint64_t> value{0};
};

extern CallCell gKernelCalls[kKernelOpCount][kCallCells];

std::size_t callCell();

} // namespace detail

inline void
countKernelCall(KernelOp op)
{
    detail::gKernelCalls[static_cast<std::size_t>(op)][detail::callCell()]
        .value.fetch_add(1, std::memory_order_relaxed);
}

/** Dispatched calls of @p op since start (or the last reset). */
std::uint64_t kernelCallCount(KernelOp op);

/** Zero every per-kernel call counter. */
void resetKernelCallCounts();

} // namespace orianna::mat::kernels
