#pragma once

#include "fg/graph.hpp"

namespace orianna::fg {

/**
 * Marginal covariance recovery from a linearized system: the
 * uncertainty robot perception stacks need for data association and
 * gating. Computes Sigma = (A^T A)^-1 through the square-root factor
 * R (QR of A), then exposes per-variable and pairwise blocks.
 *
 * Recovery is dense (exact); the systems ORIANNA targets are
 * window-sized, where the O(n^3) inversion is negligible next to the
 * optimization itself.
 */
class Marginals
{
  public:
    /**
     * @param system   a linearized (whitened) system.
     * @param ordering column order; every variable exactly once.
     * @throws std::runtime_error when the system is rank deficient.
     */
    Marginals(const LinearSystem &system,
              const std::vector<Key> &ordering);

    /** Marginal covariance block of one variable (dof x dof). */
    Matrix marginalCovariance(Key key) const;

    /** Cross-covariance block between two variables. */
    Matrix jointCovariance(Key a, Key b) const;

    /** Marginal standard deviations of one variable. */
    Vector sigmas(Key key) const;

  private:
    std::map<Key, std::size_t> offset_;
    std::map<Key, std::size_t> dof_;
    Matrix covariance_; //!< Full dense covariance.
};

} // namespace orianna::fg
