#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fg/sdf_map.hpp"
#include "fg/values.hpp"
#include "lie/so.hpp"

namespace orianna::fg {

/**
 * Operation kinds of the matrix-operation data-flow graph (MO-DFG,
 * Sec. 5.2). The first group are graph inputs, the second group the
 * nine primitives of Tbl. 3 (hat / J_r / J_r^-1 appear on the
 * *backward* pass, emitted by the compiler as instructions, so they
 * need no forward node kind), and the last group the extension nodes
 * documented in DESIGN.md.
 */
enum class Op : std::uint8_t {
    // Leaves.
    InputRot,   //!< Exp(phi) of a pose variable (Exp instruction; the
                //!< backward pass terminates here with the right
                //!< tangent, matching Pose::retract).
    InputTrans, //!< Translation component of a pose variable.
    InputVec,   //!< Plain vector variable.
    ConstRot,   //!< Constant rotation (e.g. a measurement).
    ConstVec,   //!< Constant vector.
    // Tbl. 3 primitives.
    Exp,  //!< so(n) -> SO(n) on a derived tangent (backward: J_r).
    Log,  //!< SO(n) -> so(n) (backward: J_r^-1).
    RT,   //!< Rotation transpose.
    RR,   //!< Rotation-rotation product.
    RV,   //!< Rotation-vector product.
    VAdd, //!< Vector addition (the VP primitive).
    VSub, //!< Vector subtraction (the VP primitive).
    // Extension nodes (DESIGN.md Sec. 2).
    MV,    //!< Constant-matrix times vector (footnote 1: reuses RV).
    Proj,  //!< Pinhole projection (camera factors).
    Sdf,   //!< Signed-distance lookup (collision-free factors).
    Hinge, //!< Elementwise max(0, eps - x) (collision-free factors).
    Norm,  //!< Euclidean norm |v| (range factors).
};

/** True for kinds whose output is a rotation matrix. */
bool producesRotation(Op op);

/** Short mnemonic for logs and instruction listings. */
const char *opName(Op op);

using NodeId = std::uint32_t;

/** Pinhole camera intrinsics for the Proj node. */
struct CameraModel
{
    double fx = 1.0;
    double fy = 1.0;
    double cx = 0.0;
    double cy = 0.0;
};

/** One MO-DFG node. Payload fields are used per-op as documented. */
struct DfgNode
{
    Op op;
    std::vector<NodeId> inputs;
    Key key = 0;           //!< Input* kinds: the variable.
    Matrix constMat;       //!< ConstRot payload / MV coefficient.
    Vector constVec;       //!< ConstVec payload.
    SdfMapPtr sdf;         //!< Sdf payload.
    double hingeEps = 0.0; //!< Hinge threshold.
    CameraModel camera;    //!< Proj payload.
};

/** A pose-valued subexpression: its rotation and translation nodes. */
struct PoseExpr
{
    NodeId rot;
    NodeId trans;
};

/**
 * Matrix-operation data-flow graph of one factor's error function.
 *
 * Built once per factor type through the builder methods below;
 * evaluated numerically by evalForward / evalBackward (the software
 * path) and lowered to instructions by the compiler (the accelerator
 * path). Nodes are stored in construction order, which is a valid
 * topological order.
 */
class Dfg
{
  public:
    // --- Leaf builders ---------------------------------------------------

    /** Pose variable: rotation Exp(phi) and translation leaves. */
    PoseExpr inputPose(Key key);

    /** Plain vector variable. */
    NodeId inputVec(Key key);

    /** Constant pose (e.g. a relative-pose measurement). */
    PoseExpr constPose(const lie::Pose &pose);

    NodeId constRot(Matrix r);
    NodeId constVec(Vector v);

    // --- Primitive builders ----------------------------------------------

    NodeId exp(NodeId tangent);
    NodeId log(NodeId rot);
    NodeId rt(NodeId rot);
    NodeId rr(NodeId a, NodeId b);
    NodeId rv(NodeId rot, NodeId vec);
    NodeId vadd(NodeId a, NodeId b);
    NodeId vsub(NodeId a, NodeId b);
    NodeId mv(Matrix coeff, NodeId vec);
    NodeId proj(NodeId point, CameraModel camera);
    NodeId sdf(NodeId point, SdfMapPtr map);
    NodeId hinge(NodeId vec, double eps);
    NodeId norm(NodeId vec);

    // --- Pose-level helpers (Equ. 2 lowered onto primitives) -------------

    /** a (+) b = < Log(Ra Rb), ta + Ra tb >. */
    PoseExpr oplus(PoseExpr a, PoseExpr b);

    /** a (-) b = < Log(Rb^T Ra), Rb^T (ta - tb) >. */
    PoseExpr ominus(PoseExpr a, PoseExpr b);

    // --- Outputs ----------------------------------------------------------

    /** Append a vector-valued error block. */
    void addOutput(NodeId vec);

    /** Append a pose-valued error block as [Log(rot); trans]. */
    void addPoseOutput(PoseExpr pose);

    const std::vector<DfgNode> &nodes() const { return nodes_; }
    const std::vector<NodeId> &outputs() const { return outputs_; }

    /** Variable keys referenced by leaves, in order of first use. */
    std::vector<Key> variableKeys() const;

  private:
    NodeId push(DfgNode node);

    std::vector<DfgNode> nodes_;
    std::vector<NodeId> outputs_;
};

/** Per-node forward values plus the stacked error vector. */
struct DfgForward
{
    std::vector<Matrix> rotValue; //!< Valid when the node is a rotation.
    std::vector<Vector> vecValue; //!< Valid when the node is a vector.
    Vector error;                 //!< Stacked outputs.
};

/**
 * Forward traversal: evaluate every node at @p values and stack the
 * outputs into the error vector (the instructions for the RHS vector
 * b, Sec. 5.2).
 */
DfgForward evalForward(const Dfg &dfg, const Values &values);

/**
 * Backward propagation: reverse-mode chain rule through the graph,
 * producing d(error)/d(delta_key) for every referenced variable (the
 * instructions for the coefficient matrix A, Sec. 5.2). Pose
 * Jacobian columns are ordered [dphi; dt] to match Pose::retract.
 */
std::map<Key, Matrix> evalBackward(const Dfg &dfg, const Values &values,
                                   const DfgForward &forward);

} // namespace orianna::fg
