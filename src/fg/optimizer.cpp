#include "fg/optimizer.hpp"

#include <cmath>

namespace orianna::fg {

namespace {

/** Append damping rows sqrt(lambda) * I for every variable. */
void
addDamping(LinearSystem &system, double lambda)
{
    if (lambda <= 0.0)
        return;
    const double scale = std::sqrt(lambda);
    for (const auto &[key, dof] : system.dofs) {
        LinearRow row;
        row.blocks.emplace(key, Matrix::identity(dof) * scale);
        row.rhs = Vector(dof);
        system.rows.push_back(std::move(row));
    }
}

} // namespace

OptimizeResult
optimize(const FactorGraph &graph, Values initial,
         const GaussNewtonParams &params)
{
    OptimizeResult result;
    result.values = std::move(initial);

    double error = graph.totalError(result.values);
    for (std::size_t iter = 0; iter < params.maxIterations; ++iter) {
        LinearSystem system = graph.linearize(result.values);
        addDamping(system, params.lambda);

        const std::vector<Key> order =
            params.ordering ? *params.ordering : graph.allKeys();
        std::map<Key, Vector> delta =
            solveLinearSystem(system, order, &result.stats);
        if (params.stepScale != 1.0)
            for (auto &[key, d] : delta)
                d = d * params.stepScale;

        double delta_norm = 0.0;
        for (const auto &[key, d] : delta)
            delta_norm = std::max(delta_norm, d.maxAbs());

        result.values.retractAll(delta);
        const double new_error = graph.totalError(result.values);
        result.history.push_back({error, new_error, delta_norm});
        ++result.iterations;

        const double decrease = error - new_error;
        error = new_error;
        if (delta_norm < params.deltaTol ||
            std::abs(decrease) < params.absoluteErrorTol ||
            (error > 0.0 &&
             std::abs(decrease) / error < params.relativeErrorTol)) {
            result.converged = true;
            break;
        }
    }
    result.finalError = error;
    return result;
}

} // namespace orianna::fg
