#include "fg/optimizer.hpp"

#include <cmath>

namespace orianna::fg {

namespace {

/** Append damping rows sqrt(lambda) * I for every variable. */
void
addDamping(LinearSystem &system, double lambda)
{
    if (lambda <= 0.0)
        return;
    const double scale = std::sqrt(lambda);
    for (const auto &[key, dof] : system.dofs) {
        LinearRow row;
        row.blocks.emplace(key, Matrix::identity(dof) * scale);
        row.rhs = Vector(dof);
        system.rows.push_back(std::move(row));
    }
}

/** Every entry of every update is finite. */
bool
allFinite(const std::map<Key, Vector> &delta)
{
    for (const auto &[key, d] : delta)
        for (std::size_t i = 0; i < d.size(); ++i)
            if (!std::isfinite(d[i]))
                return false;
    return true;
}

/**
 * Escalate damping after a rejected step. Returns false once the
 * growth would exceed the divergence bound.
 */
bool
growLambda(double &lambda, const GaussNewtonParams &params)
{
    lambda = lambda <= 0.0 ? params.lambdaFloor
                           : lambda * params.lambdaGrow;
    return lambda <= params.lambdaMax;
}

} // namespace

const char *
terminationReasonName(TerminationReason reason)
{
    switch (reason) {
      case TerminationReason::Converged: return "converged";
      case TerminationReason::Diverged: return "diverged";
      case TerminationReason::MaxIterations: return "max-iterations";
      case TerminationReason::NumericalFailure:
        return "numerical-failure";
    }
    return "?";
}

OptimizeResult
optimize(const FactorGraph &graph, Values initial,
         const GaussNewtonParams &params)
{
    OptimizeResult result;
    result.values = std::move(initial);
    result.reason = TerminationReason::MaxIterations;

    double error = graph.totalError(result.values);
    double lambda = params.lambda;
    if (!std::isfinite(error)) {
        // A NaN/Inf objective at entry can never produce a meaningful
        // decrease; report it instead of burning the whole budget.
        result.reason = TerminationReason::NumericalFailure;
        result.finalError = error;
        result.finalLambda = lambda;
        return result;
    }

    const std::vector<Key> order =
        params.ordering ? *params.ordering : graph.allKeys();

    for (std::size_t iter = 0;
         iter < params.maxIterations &&
         result.reason == TerminationReason::MaxIterations;
         ++iter) {
        // One linearization per outer iteration; damping retries below
        // reuse it (only the damping rows change).
        const LinearSystem system = graph.linearize(result.values);

        std::size_t rejects = 0;
        bool stepped = false;
        while (!stepped) {
            std::map<Key, Vector> delta;
            if (lambda <= 0.0) {
                delta = solveLinearSystem(system, order,
                                          &result.stats);
            } else {
                LinearSystem damped = system;
                addDamping(damped, lambda);
                delta = solveLinearSystem(damped, order,
                                          &result.stats);
            }
            if (params.stepScale != 1.0)
                for (auto &[key, d] : delta)
                    d = d * params.stepScale;

            if (!allFinite(delta)) {
                // The linear solve itself broke down; damping
                // regularizes the system, so escalate like a rejected
                // step before giving up.
                ++rejects;
                if (!params.adaptive || !growLambda(lambda, params)) {
                    result.reason =
                        TerminationReason::NumericalFailure;
                    break;
                }
                continue;
            }

            double delta_norm = 0.0;
            for (const auto &[key, d] : delta)
                delta_norm = std::max(delta_norm, d.maxAbs());

            Values candidate = result.values;
            candidate.retractAll(delta);
            const double new_error = graph.totalError(candidate);

            const bool acceptable =
                std::isfinite(new_error) && new_error <= error;
            if (params.adaptive && !acceptable) {
                ++rejects;
                if (!growLambda(lambda, params)) {
                    result.reason =
                        std::isfinite(new_error)
                            ? TerminationReason::Diverged
                            : TerminationReason::NumericalFailure;
                    break;
                }
                continue;
            }
            if (!params.adaptive && !std::isfinite(new_error)) {
                result.reason = TerminationReason::NumericalFailure;
                break;
            }

            // Step taken (adaptive: strictly non-increasing; legacy
            // fixed-damping mode applies it unconditionally).
            result.values = std::move(candidate);
            result.history.push_back(
                {error, new_error, delta_norm, lambda, rejects});
            ++result.iterations;
            const double decrease = error - new_error;
            error = new_error;
            stepped = true;

            // Convergence is only ever declared on a non-increasing
            // step: the historical |decrease| predicate marked a small
            // error *increase* as converged.
            if (delta_norm < params.deltaTol ||
                (decrease >= 0.0 &&
                 (decrease < params.absoluteErrorTol ||
                  (error > 0.0 && decrease / error <
                                      params.relativeErrorTol)))) {
                result.reason = TerminationReason::Converged;
            } else if (params.adaptive) {
                // Reward an accepted step with lighter damping.
                lambda *= params.lambdaShrink;
            }
        }
        result.rejectedSteps += rejects;
    }

    result.converged = result.reason == TerminationReason::Converged;
    result.finalError = error;
    result.finalLambda = lambda;
    return result;
}

} // namespace orianna::fg
