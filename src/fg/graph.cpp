#include "fg/graph.hpp"

#include <stdexcept>

namespace orianna::fg {

std::size_t
LinearSystem::totalRows() const
{
    std::size_t total = 0;
    for (const LinearRow &row : rows)
        total += row.rhs.size();
    return total;
}

std::size_t
LinearSystem::totalCols() const
{
    std::size_t total = 0;
    for (const auto &[key, dof] : dofs)
        total += dof;
    return total;
}

mat::BlockSparseMatrix
LinearSystem::toBlockSparse(const std::vector<Key> &ordering) const
{
    std::vector<std::size_t> row_dims;
    row_dims.reserve(rows.size());
    for (const LinearRow &row : rows)
        row_dims.push_back(row.rhs.size());

    std::vector<std::size_t> col_dims;
    std::map<Key, std::size_t> col_index;
    for (Key key : ordering) {
        col_index[key] = col_dims.size();
        col_dims.push_back(dofs.at(key));
    }

    mat::BlockSparseMatrix out(row_dims, col_dims);
    for (std::size_t i = 0; i < rows.size(); ++i)
        for (const auto &[key, block] : rows[i].blocks)
            out.setBlock(i, col_index.at(key), block);
    return out;
}

Matrix
LinearSystem::toDense(const std::vector<Key> &ordering) const
{
    return toBlockSparse(ordering).toDense();
}

Vector
LinearSystem::stackedRhs() const
{
    Vector out;
    for (const LinearRow &row : rows)
        out = out.concat(row.rhs);
    return out;
}

void
FactorGraph::add(FactorPtr factor)
{
    if (!factor)
        throw std::invalid_argument("FactorGraph::add: null factor");
    factors_.push_back(std::move(factor));
}

double
FactorGraph::totalError(const Values &values) const
{
    double total = 0.0;
    for (const FactorPtr &factor : factors_)
        total += factor->cost(values);
    return total;
}

std::vector<Key>
FactorGraph::allKeys() const
{
    std::map<Key, bool> seen;
    for (const FactorPtr &factor : factors_)
        for (Key key : factor->keys())
            seen[key] = true;
    std::vector<Key> out;
    out.reserve(seen.size());
    for (const auto &[key, flag] : seen)
        out.push_back(key);
    return out;
}

std::map<Key, std::vector<std::size_t>>
FactorGraph::adjacency() const
{
    std::map<Key, std::vector<std::size_t>> adj;
    for (std::size_t i = 0; i < factors_.size(); ++i)
        for (Key key : factors_[i]->keys())
            adj[key].push_back(i);
    return adj;
}

LinearSystem
FactorGraph::linearize(const Values &values) const
{
    LinearSystem system;
    system.rows.reserve(factors_.size());
    for (std::size_t i = 0; i < factors_.size(); ++i) {
        const Factor &factor = *factors_[i];
        LinearRow row;
        row.factorIndex = i;
        row.blocks = factor.whitenedJacobians(values);
        row.rhs = -factor.whitenedError(values);
        // A factor may reference a variable whose Jacobian block is
        // entirely zero at this linearization point (e.g. an inactive
        // hinge); keep the structural block so the elimination order
        // stays value-independent, as the compiler requires.
        for (Key key : factor.keys()) {
            if (row.blocks.count(key) == 0) {
                row.blocks.emplace(
                    key, Matrix(factor.dim(), values.dof(key)));
            }
            system.dofs[key] = values.dof(key);
        }
        system.rows.push_back(std::move(row));
    }
    return system;
}

} // namespace orianna::fg
