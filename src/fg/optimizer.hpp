#pragma once

#include <optional>
#include <vector>

#include "fg/eliminate.hpp"
#include "fg/graph.hpp"

namespace orianna::fg {

/** Why optimize() stopped iterating. */
enum class TerminationReason : std::uint8_t {
    Converged,        //!< Error or update stalled after an accepted step.
    Diverged,         //!< Damping exhausted without an acceptable step.
    MaxIterations,    //!< Iteration budget spent before convergence.
    NumericalFailure, //!< NaN/Inf in the error or the update.
};

/** Display name of a termination reason. */
const char *terminationReasonName(TerminationReason reason);

/** Knobs of the Gauss-Newton / Levenberg-Marquardt loop (Fig. 3). */
struct GaussNewtonParams
{
    std::size_t maxIterations = 25;
    double relativeErrorTol = 1e-8; //!< On the error decrease.
    double absoluteErrorTol = 1e-10;
    double deltaTol = 1e-9;         //!< On the update magnitude.
    /** Elimination ordering; natural order when not set. */
    std::optional<std::vector<Key>> ordering;
    /**
     * Initial Levenberg-Marquardt damping, added to the system as
     * sqrt(lambda) * I prior rows. Zero starts as plain Gauss-Newton;
     * the loop still escalates damping when a step is rejected.
     */
    double lambda = 0.0;
    /**
     * Fixed step scaling applied to every update (0 < scale <= 1).
     * Scales below 1 damp the period-2 oscillation that one-sided
     * (hinge) factors can induce in plain Gauss-Newton.
     */
    double stepScale = 1.0;

    // --- Adaptive trust-region control -------------------------------
    /**
     * Accept/reject steps: a step that does not decrease the error is
     * rolled back and retried with grown damping (classic LM). Off
     * reproduces the historical fixed-damping loop that applies every
     * step unconditionally.
     */
    bool adaptive = true;
    /** Damping growth factor on a rejected step. */
    double lambdaGrow = 10.0;
    /** Damping shrink factor on an accepted step. */
    double lambdaShrink = 0.1;
    /** First non-zero damping tried when lambda is still zero. */
    double lambdaFloor = 1e-4;
    /**
     * Divergence bound: when damping must grow beyond this without
     * producing an acceptable step, the solve reports Diverged.
     */
    double lambdaMax = 1e8;
};

/** One optimizer iteration, for convergence inspection and plots. */
struct IterationRecord
{
    double errorBefore = 0.0;
    double errorAfter = 0.0;
    double deltaNorm = 0.0;
    double lambda = 0.0;   //!< Damping used by the accepted step.
    std::size_t rejects = 0; //!< Attempts rolled back this iteration.
};

/** Outcome of optimize(). */
struct OptimizeResult
{
    Values values;
    bool converged = false; //!< reason == Converged.
    TerminationReason reason = TerminationReason::MaxIterations;
    std::size_t iterations = 0;    //!< Accepted steps.
    std::size_t rejectedSteps = 0; //!< Rolled-back attempts, total.
    double finalError = 0.0;
    double finalLambda = 0.0; //!< Damping after the last step.
    std::vector<IterationRecord> history;
    EliminationStats stats; //!< Accumulated over all iterations.
};

/**
 * Adaptive Levenberg-Marquardt with factor-graph elimination
 * (Sec. 2.1-2.2): starting from @p initial, repeatedly linearize,
 * eliminate, back-substitute and retract. Each step is accepted only
 * when it decreases the error; rejected steps are rolled back and
 * retried with grown damping, and the result carries a typed
 * TerminationReason — an error increase is never reported as
 * convergence, and NaN/Inf in the error or update terminates
 * immediately instead of silently burning the iteration budget.
 */
OptimizeResult optimize(const FactorGraph &graph, Values initial,
                        const GaussNewtonParams &params = {});

} // namespace orianna::fg
