#pragma once

#include <optional>
#include <vector>

#include "fg/eliminate.hpp"
#include "fg/graph.hpp"

namespace orianna::fg {

/** Knobs of the Gauss-Newton loop (Fig. 3). */
struct GaussNewtonParams
{
    std::size_t maxIterations = 25;
    double relativeErrorTol = 1e-8; //!< On the error decrease.
    double absoluteErrorTol = 1e-10;
    double deltaTol = 1e-9;         //!< On the update magnitude.
    /** Elimination ordering; natural order when not set. */
    std::optional<std::vector<Key>> ordering;
    /**
     * Optional Levenberg-Marquardt damping added to the system as
     * sqrt(lambda) * I prior rows. Zero = plain Gauss-Newton.
     */
    double lambda = 0.0;
    /**
     * Fixed step scaling applied to every update (0 < scale <= 1).
     * Scales below 1 damp the period-2 oscillation that one-sided
     * (hinge) factors can induce in plain Gauss-Newton.
     */
    double stepScale = 1.0;
};

/** One optimizer iteration, for convergence inspection and plots. */
struct IterationRecord
{
    double errorBefore = 0.0;
    double errorAfter = 0.0;
    double deltaNorm = 0.0;
};

/** Outcome of optimize(). */
struct OptimizeResult
{
    Values values;
    bool converged = false;
    std::size_t iterations = 0;
    double finalError = 0.0;
    std::vector<IterationRecord> history;
    EliminationStats stats; //!< Accumulated over all iterations.
};

/**
 * Gauss-Newton with factor-graph elimination (Sec. 2.1-2.2): starting
 * from @p initial, repeatedly linearize, eliminate, back-substitute
 * and retract until the error or the update stalls.
 */
OptimizeResult optimize(const FactorGraph &graph, Values initial,
                        const GaussNewtonParams &params = {});

} // namespace orianna::fg
