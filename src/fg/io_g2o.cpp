#include "fg/io_g2o.hpp"

#include <cmath>
#include <iomanip>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fg/factors.hpp"
#include "lie/quaternion.hpp"

namespace orianna::fg {

namespace {

using lie::Pose;

/** sigmas from the information-matrix diagonal. */
Vector
sigmasFromInformationDiag(const std::vector<double> &diag,
                          const std::string &line)
{
    Vector sigmas(diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i) {
        if (diag[i] <= 0.0)
            throw std::runtime_error(
                "readG2o: non-positive information diagonal entry " +
                std::to_string(diag[i]) + " in record: " + line);
        sigmas[i] = 1.0 / std::sqrt(diag[i]);
    }
    return sigmas;
}

/**
 * Real benchmark files carry correlated (off-diagonal) information;
 * our factors are diagonal-whitened, so those terms are dropped. Warn
 * once per file so the approximation is visible to the caller.
 */
void
warnOffDiagonal(PoseGraphData &data, bool &warned,
                const std::string &tag)
{
    if (warned)
        return;
    warned = true;
    data.warnings.push_back(
        "dropped off-diagonal information terms (first on a " + tag +
        " record); factors keep the diagonal only");
}

/** Normalize a quaternion to unit length before conversion. */
Vector
normalizedQuaternion(const Vector &q, const std::string &line)
{
    double norm2 = 0.0;
    for (std::size_t i = 0; i < q.size(); ++i)
        norm2 += q[i] * q[i];
    if (!(norm2 > 0.0) || !std::isfinite(norm2))
        throw std::runtime_error(
            "readG2o: degenerate quaternion in record: " + line);
    Vector unit(q.size());
    const double inv = 1.0 / std::sqrt(norm2);
    for (std::size_t i = 0; i < q.size(); ++i)
        unit[i] = q[i] * inv;
    return unit;
}

[[noreturn]] void
malformed(const std::string &line)
{
    throw std::runtime_error("readG2o: malformed record: " + line);
}

} // namespace

PoseGraphData
readG2o(std::istream &in)
{
    PoseGraphData data;
    bool warned_off_diag = false;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag.empty() || tag[0] == '#')
            continue;

        if (tag == "VERTEX_SE2") {
            std::uint64_t id;
            double x, y, theta;
            if (!(ls >> id >> x >> y >> theta))
                malformed(line);
            data.initial.insert(
                id, Pose(Vector{theta}, Vector{x, y}));
        } else if (tag == "VERTEX_SE3:QUAT") {
            std::uint64_t id;
            double x, y, z, qx, qy, qz, qw;
            if (!(ls >> id >> x >> y >> z >> qx >> qy >> qz >> qw))
                malformed(line);
            const mat::Matrix r = lie::fromQuaternion(
                normalizedQuaternion(Vector{qx, qy, qz, qw}, line));
            data.initial.insert(
                id, Pose(lie::logSo(r), Vector{x, y, z}));
        } else if (tag == "EDGE_SE2") {
            std::uint64_t i, j;
            double dx, dy, dtheta;
            if (!(ls >> i >> j >> dx >> dy >> dtheta))
                malformed(line);
            // Upper-triangular 3x3 information: I11 I12 I13 I22 I23 I33.
            double info[6];
            for (double &v : info)
                if (!(ls >> v))
                    malformed(line);
            // Off-diagonal of the 3x3 upper triangle: I12 I13 I23.
            if (info[1] != 0.0 || info[2] != 0.0 || info[4] != 0.0)
                warnOffDiagonal(data, warned_off_diag, tag);
            // Our pose vector order is [theta; x; y]; g2o order is
            // (x, y, theta), so permute the diagonal.
            data.graph.emplace<BetweenFactor>(
                i, j, Pose(Vector{dtheta}, Vector{dx, dy}),
                sigmasFromInformationDiag(
                    {info[5], info[0], info[3]}, line));
        } else if (tag == "EDGE_SE3:QUAT") {
            std::uint64_t i, j;
            double dx, dy, dz, qx, qy, qz, qw;
            if (!(ls >> i >> j >> dx >> dy >> dz >> qx >> qy >> qz >>
                  qw))
                malformed(line);
            double info[21]; // Upper triangle of the 6x6.
            for (double &v : info)
                if (!(ls >> v))
                    malformed(line);
            const mat::Matrix r = lie::fromQuaternion(
                normalizedQuaternion(Vector{qx, qy, qz, qw}, line));
            // g2o tangent order is (x y z, rx ry rz); ours is
            // [phi(3); t(3)]. Upper-triangle diagonal indices of a
            // 6x6: 0, 6, 11, 15, 18, 20.
            static constexpr std::size_t kDiag6[6] = {0,  6,  11,
                                                      15, 18, 20};
            for (std::size_t k = 0; k < 21 && !warned_off_diag; ++k) {
                bool on_diag = false;
                for (std::size_t d : kDiag6)
                    on_diag = on_diag || k == d;
                if (!on_diag && info[k] != 0.0)
                    warnOffDiagonal(data, warned_off_diag, tag);
            }
            data.graph.emplace<BetweenFactor>(
                i, j, Pose(lie::logSo(r), Vector{dx, dy, dz}),
                sigmasFromInformationDiag({info[15], info[18],
                                           info[20], info[0], info[6],
                                           info[11]},
                                          line));
        } else {
            // Benign unsupported record (FIX, VERTEX_XY, EDGE_SE2_XY,
            // ... appear in published benchmark files alongside the
            // pose records): skip it but tell the caller, so a file
            // of nothing but typos cannot load as an empty graph
            // unnoticed.
            data.warnings.push_back("skipped unsupported record " +
                                    tag);
        }
    }
    return data;
}

PoseGraphData
loadG2o(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("loadG2o: cannot open " + path);
    return readG2o(in);
}

void
writeG2o(std::ostream &out, const FactorGraph &graph,
         const Values &values)
{
    out << std::setprecision(17);
    std::size_t dim = 0;
    for (Key key : values.keys()) {
        if (!values.isPose(key))
            throw std::invalid_argument(
                "writeG2o: only pose variables are supported");
        const Pose &pose = values.pose(key);
        if (dim == 0)
            dim = pose.spaceDim();
        else if (dim != pose.spaceDim())
            throw std::invalid_argument(
                "writeG2o: mixed pose dimensions");
        if (dim == 2) {
            out << "VERTEX_SE2 " << key << " " << pose.t()[0] << " "
                << pose.t()[1] << " " << pose.phi()[0] << "\n";
        } else {
            const Vector q = lie::toQuaternion(pose.rotation());
            out << "VERTEX_SE3:QUAT " << key << " " << pose.t()[0]
                << " " << pose.t()[1] << " " << pose.t()[2] << " "
                << q[0] << " " << q[1] << " " << q[2] << " " << q[3]
                << "\n";
        }
    }

    for (const FactorPtr &factor : graph) {
        const auto *between =
            dynamic_cast<const BetweenFactor *>(factor.get());
        if (between == nullptr)
            continue; // g2o has no record for priors etc.
        const Pose &z = between->measured();
        const Vector &sigmas = between->sigmas();
        auto info = [&](std::size_t i) {
            return 1.0 / (sigmas[i] * sigmas[i]);
        };
        if (z.spaceDim() == 2) {
            // sigmas order [theta; x; y] -> g2o (x, y, theta).
            out << "EDGE_SE2 " << between->keys()[0] << " "
                << between->keys()[1] << " " << z.t()[0] << " "
                << z.t()[1] << " " << z.phi()[0] << " " << info(1)
                << " 0 0 " << info(2) << " 0 " << info(0) << "\n";
        } else {
            const Vector q = lie::toQuaternion(z.rotation());
            out << "EDGE_SE3:QUAT " << between->keys()[0] << " "
                << between->keys()[1] << " " << z.t()[0] << " "
                << z.t()[1] << " " << z.t()[2] << " " << q[0] << " "
                << q[1] << " " << q[2] << " " << q[3];
            // Diagonal information in g2o order (t then r).
            const double diag[6] = {info(3), info(4), info(5),
                                    info(0), info(1), info(2)};
            for (std::size_t row = 0; row < 6; ++row)
                for (std::size_t col = row; col < 6; ++col)
                    out << " " << (row == col ? diag[row] : 0.0);
            out << "\n";
        }
    }
    if (!out)
        throw std::runtime_error("writeG2o: write failed");
}

void
saveG2o(const std::string &path, const FactorGraph &graph,
        const Values &values)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("saveG2o: cannot open " + path);
    writeG2o(out, graph, values);
}

} // namespace orianna::fg
