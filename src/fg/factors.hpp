#pragma once

#include "fg/factor.hpp"
#include "fg/sdf_map.hpp"

namespace orianna::fg {

/**
 * @file
 * The ORIANNA factor graph library (Sec. 5.1, Tbl. 2).
 *
 * Measurement factors: Prior, GPS, LiDAR, IMU, Camera.
 * Constraint factors: Smooth, Collision-free, Kinematics, Dynamics.
 * Users can additionally define custom factors from an error
 * expression with ExpressionFactor, mirroring the Equ. 3 workflow.
 */

/**
 * Prior on a pose variable: e = x (-) prior, anchoring the absolute
 * pose of the robot (factor f6 in Fig. 4).
 */
class PriorFactor : public Factor
{
  public:
    PriorFactor(Key x, const lie::Pose &prior, Vector sigmas);
};

/**
 * Relative-pose (between) factor, the paper's custom-factor example
 * (Equ. 3): e = (x_j (-) x_i) (-) z_ij, with z_ij the measured motion
 * from i to j.
 */
class BetweenFactor : public Factor
{
  public:
    BetweenFactor(Key xi, Key xj, const lie::Pose &measured,
                  Vector sigmas, std::string name = "Between");

    /** The relative-pose measurement z_ij (for I/O and inspection). */
    const lie::Pose &measured() const { return measured_; }

  private:
    lie::Pose measured_;
};

/**
 * IMU factor: preintegrated inertial measurement between consecutive
 * poses (factors f4/f5 in Fig. 4). Structurally a between factor; the
 * preintegration itself happens in the workload generator.
 */
class IMUFactor : public BetweenFactor
{
  public:
    IMUFactor(Key xi, Key xj, const lie::Pose &preintegrated,
              Vector sigmas);
};

/**
 * LiDAR odometry factor: scan-matched relative pose between
 * consecutive robot poses.
 */
class LiDARFactor : public BetweenFactor
{
  public:
    LiDARFactor(Key xi, Key xj, const lie::Pose &scan_match,
                Vector sigmas);
};

/** GPS factor: direct position observation, e = t(x) - z. */
class GPSFactor : public Factor
{
  public:
    GPSFactor(Key x, Vector position, Vector sigmas);
};

/**
 * Camera (projection) factor between a pose and a 3-D landmark
 * (factors f1..f3 in Fig. 4): e = proj(R^T (l - t)) - pixel.
 * Contributes the 2x6 / 2x3 block pair described in Sec. 5.1.
 */
class CameraFactor : public Factor
{
  public:
    CameraFactor(Key pose, Key landmark, Vector pixel,
                 CameraModel camera, Vector sigmas);
};

/**
 * Smoothness (GP-prior) factor between consecutive trajectory states
 * s = [position; velocity] (each of dimension @p pos_dim):
 *   e = [ p_j - p_i - dt v_i ; v_j - v_i ].
 * Penalizes non-constant-velocity motion, as in GPMP2-style planners.
 */
class SmoothFactor : public Factor
{
  public:
    SmoothFactor(Key si, Key sj, std::size_t pos_dim, double dt,
                 Vector sigmas);
};

/**
 * Collision-free factor: hinge loss on the signed distance of the
 * state's position to the obstacle set,
 *   e = max(0, eps - d(p)).
 * Positions are the first @p pos_dim entries of the state vector.
 */
class CollisionFreeFactor : public Factor
{
  public:
    CollisionFreeFactor(Key s, SdfMapPtr map, std::size_t state_dim,
                        std::size_t pos_dim, double eps, double sigma);
};

/**
 * Kinematics factor: soft box constraint |v_i| <= vmax on the
 * velocity entries of a trajectory state, emitted as two hinge
 * blocks (upper and lower bound).
 */
class KinematicsFactor : public Factor
{
  public:
    KinematicsFactor(Key s, std::size_t state_dim, std::size_t vel_offset,
                     std::size_t vel_dim, double vmax, double sigma);
};

/**
 * Dynamics factor for control problems (Fig. 7b): linear(ized)
 * dynamics x_{k+1} = A x_k + B u_k, with error
 *   e = x_{k+1} - A x_k - B u_k.
 */
class DynamicsFactor : public Factor
{
  public:
    DynamicsFactor(Key xk, Key uk, Key xnext, Matrix a, Matrix b,
                   Vector sigmas);
};

/**
 * Quadratic cost factor for control problems: e = x - target with a
 * per-row weight (the cost factor node of Fig. 7b).
 */
class VectorPriorFactor : public Factor
{
  public:
    VectorPriorFactor(Key x, Vector target, Vector sigmas,
                      std::string name = "VectorPrior");
};

/**
 * Range factor: distance measurement between a pose and a landmark
 * (UWB beacon / sonar style), e = |l - t(x)| - r.
 */
class RangeFactor : public Factor
{
  public:
    RangeFactor(Key pose, Key landmark, double range, double sigma);
};

/**
 * Workspace collision factor for a two-link planar arm: the joint
 * state q = [q1 q2 dq1 dq2] maps through forward kinematics to the
 * elbow and end-effector positions, whose clearance from the obstacle
 * set is penalized with a hinge (GPMP2-style arm planning).
 *
 * The forward kinematics are expressed entirely in Tbl. 3 primitives:
 * elbow = Exp(q1) [l1; 0], tip = elbow + Exp(q1 + q2) [l2; 0].
 */
class ArmCollisionFactor : public Factor
{
  public:
    ArmCollisionFactor(Key q, double l1, double l2, SdfMapPtr map,
                       double eps, double sigma);
};

/**
 * Custom factor from a user-built error expression. This is the
 * public customization hook of Sec. 5.1: build a Dfg with the builder
 * API (the analog of writing Equ. 3) and wrap it.
 */
class ExpressionFactor : public Factor
{
  public:
    ExpressionFactor(Dfg dfg, Vector sigmas,
                     std::string name = "Expression");
};

} // namespace orianna::fg
