#include "fg/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "matrix/qr.hpp"

namespace orianna::fg {

void
IncrementalSmoother::addVariable(Key key, lie::Pose initial)
{
    linPoint_.insert(key, std::move(initial));
}

void
IncrementalSmoother::addVariable(Key key, Vector initial)
{
    linPoint_.insert(key, std::move(initial));
}

void
IncrementalSmoother::addFactor(FactorPtr factor)
{
    if (!factor)
        throw std::invalid_argument(
            "IncrementalSmoother::addFactor: null factor");
    pendingFactors_.push_back(std::move(factor));
}

std::size_t
IncrementalSmoother::orderingPosition(Key key) const
{
    auto it = position_.find(key);
    return it == position_.end() ? SIZE_MAX : it->second;
}

UpdateStats
IncrementalSmoother::update()
{
    if (pendingFactors_.empty() && updates_ > 0)
        return {0, ordering_.size(), false};

    // Decide whether this update relinearizes everything.
    bool relinearize = updates_ == 0 ||
                       (updates_ % params_.relinearizeInterval) == 0;
    for (const auto &[key, d] : delta_)
        if (d.maxAbs() > params_.relinearizeThreshold)
            relinearize = true;

    // Incorporate the queued factors.
    std::size_t affected_start = ordering_.size();
    for (FactorPtr &factor : pendingFactors_) {
        for (Key key : factor->keys()) {
            if (!linPoint_.exists(key))
                throw std::runtime_error(
                    "IncrementalSmoother: factor references unknown "
                    "variable " +
                    std::to_string(key));
            if (position_.count(key) == 0) {
                // New variable: append to the ordering.
                position_[key] = ordering_.size();
                ordering_.push_back(key);
                dofs_[key] = linPoint_.dof(key);
            } else {
                affected_start =
                    std::min(affected_start, position_[key]);
            }
        }
        graph_.add(std::move(factor));
        factorActive_.push_back(true);
    }
    const std::size_t n_new = pendingFactors_.size();
    pendingFactors_.clear();

    UpdateStats stats;
    stats.totalVariables = ordering_.size();
    stats.relinearized = relinearize;

    if (relinearize) {
        relinearizeAll();
        stats.eliminatedVariables = ordering_.size();
    } else {
        // Linearize only the new factors at the fixed point; the
        // prefix of the elimination stays valid.
        const std::size_t first_new = graph_.size() - n_new;
        for (std::size_t i = first_new; i < graph_.size(); ++i) {
            const Factor &factor = graph_.factor(i);
            RowRecord record;
            record.row.factorIndex = i;
            record.row.blocks = factor.whitenedJacobians(linPoint_);
            record.row.rhs = -factor.whitenedError(linPoint_);
            for (Key key : factor.keys())
                if (record.row.blocks.count(key) == 0)
                    record.row.blocks.emplace(
                        key,
                        Matrix(factor.dim(), linPoint_.dof(key)));
            rows_.push_back(std::move(record));
        }
        // Roll back the affected suffix: revive rows consumed at or
        // after the restart point and drop rows created there.
        std::vector<RowRecord> kept;
        kept.reserve(rows_.size());
        for (RowRecord &record : rows_) {
            if (record.createdStep != SIZE_MAX &&
                record.createdStep >= affected_start)
                continue; // Product of a discarded elimination step.
            if (record.consumedStep != SIZE_MAX &&
                record.consumedStep >= affected_start)
                record.consumedStep = SIZE_MAX;
            kept.push_back(std::move(record));
        }
        rows_ = std::move(kept);
        conditionals_.resize(
            std::min(conditionals_.size(), affected_start));
        eliminateFrom(affected_start);
        stats.eliminatedVariables = ordering_.size() - affected_start;
    }

    refreshDelta();
    ++updates_;
    return stats;
}

void
IncrementalSmoother::relinearizeAll()
{
    // Move the linearization point to the current estimate.
    if (!delta_.empty()) {
        Values moved = estimate();
        linPoint_ = std::move(moved);
        delta_.clear();
    }
    rows_.clear();
    conditionals_.clear();
    for (const LinearRow &prior : marginalPriors_) {
        RowRecord record;
        record.row = prior;
        record.isPrior = true;
        rows_.push_back(std::move(record));
    }
    for (std::size_t i = 0; i < graph_.size(); ++i) {
        if (!factorActive_[i])
            continue;
        const Factor &factor = graph_.factor(i);
        RowRecord record;
        record.row.factorIndex = i;
        record.row.blocks = factor.whitenedJacobians(linPoint_);
        record.row.rhs = -factor.whitenedError(linPoint_);
        for (Key key : factor.keys())
            if (record.row.blocks.count(key) == 0)
                record.row.blocks.emplace(
                    key, Matrix(factor.dim(), linPoint_.dof(key)));
        rows_.push_back(std::move(record));
    }
    eliminateFrom(0);
}

void
IncrementalSmoother::eliminateFrom(std::size_t start)
{
    for (std::size_t step = start; step < ordering_.size(); ++step) {
        const Key v = ordering_[step];

        std::vector<std::size_t> touching;
        for (std::size_t i = 0; i < rows_.size(); ++i)
            if (rows_[i].consumedStep == SIZE_MAX &&
                rows_[i].row.blocks.count(v))
                touching.push_back(i);
        if (touching.empty())
            throw std::runtime_error(
                "IncrementalSmoother: variable " + std::to_string(v) +
                " has no adjacent factors");

        std::vector<Key> involved{v};
        for (std::size_t i : touching)
            for (const auto &[key, block] : rows_[i].row.blocks)
                if (key != v &&
                    std::find(involved.begin(), involved.end(), key) ==
                        involved.end())
                    involved.push_back(key);
        std::sort(involved.begin() + 1, involved.end());

        std::map<Key, std::size_t> col_offset;
        std::size_t ncols = 0;
        for (Key key : involved) {
            col_offset[key] = ncols;
            ncols += dofs_.at(key);
        }
        std::size_t nrows = 0;
        for (std::size_t i : touching)
            nrows += rows_[i].row.rhs.size();

        Matrix abar(nrows, ncols);
        Vector bbar(nrows);
        std::size_t row_offset = 0;
        for (std::size_t i : touching) {
            const LinearRow &lr = rows_[i].row;
            for (const auto &[key, block] : lr.blocks)
                abar.setBlock(row_offset, col_offset.at(key), block);
            bbar.setSegment(row_offset, lr.rhs);
            row_offset += lr.rhs.size();
            rows_[i].consumedStep = step;
        }

        mat::QrResult qr = mat::householderQr(abar, bbar);
        const std::size_t dv = dofs_.at(v);
        if (nrows < dv)
            throw std::runtime_error(
                "IncrementalSmoother: variable " + std::to_string(v) +
                " is underdetermined");

        Conditional cond;
        cond.key = v;
        cond.rSelf = qr.r.block(0, 0, dv, dv);
        cond.rhs = qr.rhs.segment(0, dv);
        for (Key key : involved) {
            if (key == v)
                continue;
            cond.rParents.emplace(
                key,
                qr.r.block(0, col_offset.at(key), dv, dofs_.at(key)));
        }
        if (conditionals_.size() <= step)
            conditionals_.resize(step + 1);
        conditionals_[step] = std::move(cond);

        if (nrows > dv && involved.size() > 1) {
            const std::size_t kept = std::min(nrows, ncols) - dv;
            if (kept > 0) {
                RowRecord fresh;
                fresh.createdStep = step;
                for (Key key : involved) {
                    if (key == v)
                        continue;
                    fresh.row.blocks.emplace(
                        key, qr.r.block(dv, col_offset.at(key), kept,
                                        dofs_.at(key)));
                }
                fresh.row.rhs = qr.rhs.segment(dv, kept);
                rows_.push_back(std::move(fresh));
            }
        }
    }
}

void
IncrementalSmoother::marginalizeLeading(std::size_t count)
{
    if (count == 0 || count >= ordering_.size())
        throw std::invalid_argument(
            "marginalizeLeading: bad variable count");
    if (!pendingFactors_.empty())
        throw std::invalid_argument(
            "marginalizeLeading: update() pending factors first");

    // Move the linearization point to the current estimate so the
    // marginal prior is taken at the best available point, then
    // perform one clean batch to get fresh bookkeeping.
    relinearizeAll();

    // Rows alive at the marginalization boundary involve only the
    // surviving variables (any row touching a dropped variable was
    // consumed at or before that variable's elimination step). Fresh
    // rows created by the prefix eliminations carry the marginal
    // information and become fixed prior rows; original rows consumed
    // in the suffix stay attached to their (still active) factors.
    std::vector<LinearRow> new_priors;
    for (const RowRecord &record : rows_) {
        const bool alive_at_boundary =
            record.consumedStep == SIZE_MAX ||
            record.consumedStep >= count;
        if (!alive_at_boundary) {
            // Consumed by the prefix: if it was an original factor
            // row, the factor is now absorbed into the marginal.
            if (record.createdStep == SIZE_MAX && !record.isPrior &&
                record.row.factorIndex < factorActive_.size())
                factorActive_[record.row.factorIndex] = false;
            continue;
        }
        if (record.createdStep != SIZE_MAX &&
            record.createdStep < count) {
            // Product of a prefix elimination: fixed marginal prior.
            new_priors.push_back(record.row);
        }
        // Original rows and suffix products are regenerated below.
    }
    // Also retire original rows consumed exactly inside the prefix
    // via their factors (handled above); prior rows from previous
    // marginalizations that were consumed in the prefix are simply
    // replaced by the new boundary rows.
    marginalPriors_ = std::move(new_priors);

    // Drop the leading variables.
    for (std::size_t i = 0; i < count; ++i) {
        const Key key = ordering_[i];
        linPoint_.erase(key);
        delta_.erase(key);
        position_.erase(key);
        dofs_.erase(key);
    }
    ordering_.erase(ordering_.begin(),
                    ordering_.begin() +
                        static_cast<std::ptrdiff_t>(count));
    position_.clear();
    for (std::size_t i = 0; i < ordering_.size(); ++i)
        position_[ordering_[i]] = i;

    // Rebase: fresh elimination of priors + active factors over the
    // shortened ordering.
    rows_.clear();
    conditionals_.clear();
    for (const LinearRow &prior : marginalPriors_) {
        RowRecord record;
        record.row = prior;
        record.isPrior = true;
        rows_.push_back(std::move(record));
    }
    for (std::size_t i = 0; i < graph_.size(); ++i) {
        if (!factorActive_[i])
            continue;
        const Factor &factor = graph_.factor(i);
        RowRecord record;
        record.row.factorIndex = i;
        record.row.blocks = factor.whitenedJacobians(linPoint_);
        record.row.rhs = -factor.whitenedError(linPoint_);
        for (Key key : factor.keys())
            if (record.row.blocks.count(key) == 0)
                record.row.blocks.emplace(
                    key, Matrix(factor.dim(), linPoint_.dof(key)));
        rows_.push_back(std::move(record));
    }
    eliminateFrom(0);
    refreshDelta();
}

void
IncrementalSmoother::refreshDelta()
{
    delta_.clear();
    for (std::size_t i = conditionals_.size(); i-- > 0;) {
        const Conditional &cond = conditionals_[i];
        Vector rhs = cond.rhs;
        for (const auto &[parent, block] : cond.rParents)
            rhs -= block * delta_.at(parent);
        delta_.emplace(cond.key, mat::backSubstitute(cond.rSelf, rhs));
    }
}

Values
IncrementalSmoother::estimate() const
{
    Values out = linPoint_;
    for (const auto &[key, d] : delta_)
        out.retract(key, d);
    return out;
}

} // namespace orianna::fg
