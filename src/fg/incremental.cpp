#include "fg/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "matrix/qr.hpp"

namespace orianna::fg {

void
IncrementalSmoother::addVariable(Key key, lie::Pose initial)
{
    linPoint_.insert(key, std::move(initial));
}

void
IncrementalSmoother::addVariable(Key key, Vector initial)
{
    linPoint_.insert(key, std::move(initial));
}

void
IncrementalSmoother::addFactor(FactorPtr factor)
{
    if (!factor)
        throw std::invalid_argument(
            "IncrementalSmoother::addFactor: null factor");
    pendingFactors_.push_back(std::move(factor));
}

std::size_t
IncrementalSmoother::orderingPosition(Key key) const
{
    auto it = position_.find(key);
    return it == position_.end() ? SIZE_MAX : it->second;
}

UpdateStats
IncrementalSmoother::update()
{
    // Decide whether this update relinearizes everything. An
    // interval of 0 means "never relinearize on interval"
    // (threshold-only, the iSAM fixed-point regime). The interval
    // trigger only fires when there is new information to fold in;
    // the threshold trigger fires regardless, so a factor-less
    // update() can still fold a large tangent solution into the
    // linearization point.
    bool relinearize =
        updates_ == 0 || (params_.relinearizeInterval > 0 &&
                          updates_ % params_.relinearizeInterval == 0);
    if (pendingFactors_.empty() && updates_ > 0)
        relinearize = false;
    for (const auto &[key, d] : delta_)
        if (d.maxAbs() > params_.relinearizeThreshold)
            relinearize = true;

    if (pendingFactors_.empty() && updates_ > 0 && !relinearize)
        return {0, ordering_.size(), false};

    // Incorporate the queued factors.
    std::size_t affected_start = ordering_.size();
    for (FactorPtr &factor : pendingFactors_) {
        for (Key key : factor->keys()) {
            if (!linPoint_.exists(key))
                throw std::runtime_error(
                    "IncrementalSmoother: factor references unknown "
                    "variable " +
                    std::to_string(key));
            if (position_.count(key) == 0) {
                // New variable: append to the ordering.
                position_[key] = ordering_.size();
                ordering_.push_back(key);
                dofs_[key] = linPoint_.dof(key);
            } else {
                affected_start =
                    std::min(affected_start, position_[key]);
            }
        }
        graph_.add(std::move(factor));
        factorActive_.push_back(true);
    }
    const std::size_t n_new = pendingFactors_.size();
    pendingFactors_.clear();

    UpdateStats stats;
    stats.totalVariables = ordering_.size();
    stats.relinearized = relinearize;

    if (relinearize) {
        relinearizeAll();
        stats.eliminatedVariables = ordering_.size();
    } else {
        // Linearize only the new factors at the fixed point; the
        // prefix of the elimination stays valid.
        const std::size_t first_new = graph_.size() - n_new;
        for (std::size_t i = first_new; i < graph_.size(); ++i) {
            const Factor &factor = graph_.factor(i);
            RowRecord record;
            record.row.factorIndex = i;
            record.row.blocks = factor.whitenedJacobians(linPoint_);
            record.row.rhs = -factor.whitenedError(linPoint_);
            for (Key key : factor.keys())
                if (record.row.blocks.count(key) == 0)
                    record.row.blocks.emplace(
                        key,
                        Matrix(factor.dim(), linPoint_.dof(key)));
            rows_.push_back(std::move(record));
        }
        // Roll back the affected suffix: revive rows consumed at or
        // after the restart point and drop rows created there.
        std::vector<RowRecord> kept;
        kept.reserve(rows_.size());
        for (RowRecord &record : rows_) {
            if (record.createdStep != SIZE_MAX &&
                record.createdStep >= affected_start)
                continue; // Product of a discarded elimination step.
            if (record.consumedStep != SIZE_MAX &&
                record.consumedStep >= affected_start)
                record.consumedStep = SIZE_MAX;
            kept.push_back(std::move(record));
        }
        rows_ = std::move(kept);
        conditionals_.resize(
            std::min(conditionals_.size(), affected_start));
        eliminateFrom(affected_start);
        stats.eliminatedVariables = ordering_.size() - affected_start;
    }

    refreshDelta();
    ++updates_;
    return stats;
}

void
IncrementalSmoother::relinearizeAll()
{
    // Move the linearization point to the current estimate.
    if (!delta_.empty()) {
        Values moved = estimate();
        linPoint_ = std::move(moved);
        delta_.clear();
    }
    rows_.clear();
    conditionals_.clear();
    for (const LinearRow &prior : marginalPriors_) {
        RowRecord record;
        record.row = prior;
        record.isPrior = true;
        rows_.push_back(std::move(record));
    }
    for (std::size_t i = 0; i < graph_.size(); ++i) {
        if (!factorActive_[i])
            continue;
        const Factor &factor = graph_.factor(i);
        RowRecord record;
        record.row.factorIndex = i;
        record.row.blocks = factor.whitenedJacobians(linPoint_);
        record.row.rhs = -factor.whitenedError(linPoint_);
        for (Key key : factor.keys())
            if (record.row.blocks.count(key) == 0)
                record.row.blocks.emplace(
                    key, Matrix(factor.dim(), linPoint_.dof(key)));
        rows_.push_back(std::move(record));
    }
    eliminateFrom(0);
}

SuffixSchedule
IncrementalSmoother::buildSchedule(std::size_t start) const
{
    SuffixSchedule sched;
    sched.start = start;
    for (std::size_t p = start; p < ordering_.size(); ++p) {
        sched.variables.push_back(ordering_[p]);
        sched.dofs.push_back(dofs_.at(ordering_[p]));
    }

    // Alive rows in canonical order: marginal priors first (in their
    // stored order), then original factor rows by factor index, then
    // carries by the step that created them. relinearizeAll() builds
    // rows_ in exactly this order, so a batch elimination gathers
    // rows the same way — that shared order is what makes an
    // incremental update bit-identical to a batch solve at the same
    // linearization point. After an incremental rollback the freshly
    // linearized factor rows sit behind older carries in rows_, and
    // the sort restores the batch order.
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < rows_.size(); ++i)
        if (rows_[i].consumedStep == SIZE_MAX)
            alive.push_back(i);
    auto rank = [this](std::size_t i) {
        const RowRecord &r = rows_[i];
        if (r.isPrior)
            return std::pair<int, std::size_t>(0, i);
        if (r.createdStep == SIZE_MAX)
            return std::pair<int, std::size_t>(1, r.row.factorIndex);
        return std::pair<int, std::size_t>(2, r.createdStep);
    };
    std::stable_sort(alive.begin(), alive.end(),
                     [&](std::size_t a, std::size_t b) {
                         return rank(a) < rank(b);
                     });
    sched.inputRows = alive;

    // Symbolic elimination over the (key set, row count) images.
    struct Sym
    {
        std::vector<Key> cols;
        std::size_t dim = 0;
        bool consumed = false;
    };
    std::vector<Sym> sym;
    sym.reserve(alive.size());
    for (std::size_t i : alive) {
        Sym s;
        for (const auto &[key, block] : rows_[i].row.blocks)
            s.cols.push_back(key);
        s.dim = rows_[i].row.rhs.size();
        sym.push_back(std::move(s));
    }

    for (std::size_t step = start; step < ordering_.size(); ++step) {
        const Key v = ordering_[step];
        SuffixSchedule::Step plan;
        for (std::size_t i = 0; i < sym.size(); ++i)
            if (!sym[i].consumed &&
                std::find(sym[i].cols.begin(), sym[i].cols.end(), v) !=
                    sym[i].cols.end())
                plan.rowRefs.push_back(i);
        if (plan.rowRefs.empty())
            throw std::runtime_error(
                "IncrementalSmoother: variable " + std::to_string(v) +
                " has no adjacent factors");

        plan.columns.push_back(v);
        for (std::size_t i : plan.rowRefs)
            for (Key key : sym[i].cols)
                if (key != v &&
                    std::find(plan.columns.begin(), plan.columns.end(),
                              key) == plan.columns.end())
                    plan.columns.push_back(key);
        std::sort(plan.columns.begin() + 1, plan.columns.end());

        for (Key key : plan.columns)
            plan.ncols += dofs_.at(key);
        for (std::size_t i : plan.rowRefs) {
            plan.nrows += sym[i].dim;
            sym[i].consumed = true;
        }
        const std::size_t dv = dofs_.at(v);
        if (plan.nrows < dv)
            throw std::runtime_error(
                "IncrementalSmoother: variable " + std::to_string(v) +
                " is underdetermined");
        if (plan.nrows > dv && plan.columns.size() > 1)
            plan.kept = std::min(plan.nrows, plan.ncols) - dv;
        if (plan.kept > 0) {
            Sym carry;
            carry.cols.assign(plan.columns.begin() + 1,
                              plan.columns.end());
            carry.dim = plan.kept;
            sym.push_back(std::move(carry));
        }
        sched.steps.push_back(std::move(plan));
    }
    return sched;
}

SuffixSolution
solveSuffixOnCpu(const SuffixSchedule &schedule,
                 const std::vector<const LinearRow *> &rows)
{
    std::map<Key, std::size_t> dof;
    for (std::size_t i = 0; i < schedule.variables.size(); ++i)
        dof[schedule.variables[i]] = schedule.dofs[i];

    SuffixSolution sol;
    std::vector<LinearRow> carries;
    for (const SuffixSchedule::Step &plan : schedule.steps) {
        const Key v = plan.columns.front();
        const std::size_t dv = dof.at(v);

        std::map<Key, std::size_t> col_offset;
        std::size_t ncols = 0;
        for (Key key : plan.columns) {
            col_offset[key] = ncols;
            ncols += dof.at(key);
        }

        Matrix abar(plan.nrows, ncols);
        Vector bbar(plan.nrows);
        std::size_t row_offset = 0;
        for (std::size_t ref : plan.rowRefs) {
            const LinearRow &lr =
                ref < rows.size() ? *rows[ref]
                                  : carries[ref - rows.size()];
            for (const auto &[key, block] : lr.blocks)
                abar.setBlock(row_offset, col_offset.at(key), block);
            bbar.setSegment(row_offset, lr.rhs);
            row_offset += lr.rhs.size();
        }

        mat::QrResult qr = mat::householderQr(abar, bbar);

        Conditional cond;
        cond.key = v;
        cond.rSelf = qr.r.block(0, 0, dv, dv);
        cond.rhs = qr.rhs.segment(0, dv);
        for (Key key : plan.columns) {
            if (key == v)
                continue;
            cond.rParents.emplace(
                key,
                qr.r.block(0, col_offset.at(key), dv, dof.at(key)));
        }
        sol.conditionals.push_back(std::move(cond));

        if (plan.kept > 0) {
            LinearRow fresh;
            for (Key key : plan.columns) {
                if (key == v)
                    continue;
                fresh.blocks.emplace(
                    key, qr.r.block(dv, col_offset.at(key), plan.kept,
                                    dof.at(key)));
            }
            fresh.rhs = qr.rhs.segment(dv, plan.kept);
            carries.push_back(fresh);
            sol.carries.push_back(std::move(fresh));
        }
    }
    return sol;
}

void
IncrementalSmoother::eliminateFrom(std::size_t start)
{
    deviceDeltas_.clear();
    if (start >= ordering_.size())
        return;

    SuffixSchedule schedule = buildSchedule(start);
    std::vector<const LinearRow *> inputs;
    inputs.reserve(schedule.inputRows.size());
    for (std::size_t i : schedule.inputRows)
        inputs.push_back(&rows_[i].row);
    SuffixSolution solution = solver_
                                  ? solver_->solve(schedule, inputs)
                                  : solveSuffixOnCpu(schedule, inputs);

    std::size_t carry_count = 0;
    for (const SuffixSchedule::Step &plan : schedule.steps)
        carry_count += plan.kept > 0 ? 1 : 0;
    if (solution.conditionals.size() != schedule.steps.size() ||
        solution.carries.size() != carry_count)
        throw std::runtime_error(
            "IncrementalSmoother: suffix solver returned a solution "
            "that does not match the schedule");

    // Integrate: stamp row lifetimes, store conditionals at their
    // absolute ordering slots, append carry rows.
    std::vector<std::size_t> carry_created;
    std::vector<std::size_t> carry_consumed(carry_count, SIZE_MAX);
    for (std::size_t si = 0; si < schedule.steps.size(); ++si) {
        const SuffixSchedule::Step &plan = schedule.steps[si];
        const std::size_t abs_step = schedule.start + si;
        for (std::size_t ref : plan.rowRefs) {
            if (ref < schedule.inputRows.size())
                rows_[schedule.inputRows[ref]].consumedStep = abs_step;
            else
                carry_consumed[ref - schedule.inputRows.size()] =
                    abs_step;
        }
        if (conditionals_.size() <= abs_step)
            conditionals_.resize(abs_step + 1);
        conditionals_[abs_step] = std::move(solution.conditionals[si]);
        if (plan.kept > 0)
            carry_created.push_back(abs_step);
    }
    for (std::size_t c = 0; c < solution.carries.size(); ++c) {
        RowRecord record;
        record.row = std::move(solution.carries[c]);
        record.createdStep = carry_created[c];
        record.consumedStep = carry_consumed[c];
        rows_.push_back(std::move(record));
    }
    deviceDeltas_ = std::move(solution.deltas);
}

void
IncrementalSmoother::marginalizeLeading(std::size_t count)
{
    if (count == 0 || count >= ordering_.size())
        throw std::invalid_argument(
            "marginalizeLeading: bad variable count");
    if (!pendingFactors_.empty())
        throw std::invalid_argument(
            "marginalizeLeading: update() pending factors first");

    // Move the linearization point to the current estimate so the
    // marginal prior is taken at the best available point, then
    // perform one clean batch to get fresh bookkeeping.
    relinearizeAll();

    // Rows alive at the marginalization boundary involve only the
    // surviving variables (any row touching a dropped variable was
    // consumed at or before that variable's elimination step). Fresh
    // rows created by the prefix eliminations carry the marginal
    // information and become fixed prior rows; original rows consumed
    // in the suffix stay attached to their (still active) factors.
    std::vector<LinearRow> new_priors;
    for (const RowRecord &record : rows_) {
        const bool alive_at_boundary =
            record.consumedStep == SIZE_MAX ||
            record.consumedStep >= count;
        if (!alive_at_boundary) {
            // Consumed by the prefix: if it was an original factor
            // row, the factor is now absorbed into the marginal.
            if (record.createdStep == SIZE_MAX && !record.isPrior &&
                record.row.factorIndex < factorActive_.size())
                factorActive_[record.row.factorIndex] = false;
            continue;
        }
        if (record.createdStep != SIZE_MAX &&
            record.createdStep < count) {
            // Product of a prefix elimination: fixed marginal prior.
            new_priors.push_back(record.row);
        }
        // Original rows and suffix products are regenerated below.
    }
    // Also retire original rows consumed exactly inside the prefix
    // via their factors (handled above); prior rows from previous
    // marginalizations that were consumed in the prefix are simply
    // replaced by the new boundary rows.
    marginalPriors_ = std::move(new_priors);

    // Drop the leading variables.
    for (std::size_t i = 0; i < count; ++i) {
        const Key key = ordering_[i];
        linPoint_.erase(key);
        delta_.erase(key);
        position_.erase(key);
        dofs_.erase(key);
    }
    ordering_.erase(ordering_.begin(),
                    ordering_.begin() +
                        static_cast<std::ptrdiff_t>(count));
    position_.clear();
    for (std::size_t i = 0; i < ordering_.size(); ++i)
        position_[ordering_[i]] = i;

    // Rebase: fresh elimination of priors + active factors over the
    // shortened ordering.
    rows_.clear();
    conditionals_.clear();
    for (const LinearRow &prior : marginalPriors_) {
        RowRecord record;
        record.row = prior;
        record.isPrior = true;
        rows_.push_back(std::move(record));
    }
    for (std::size_t i = 0; i < graph_.size(); ++i) {
        if (!factorActive_[i])
            continue;
        const Factor &factor = graph_.factor(i);
        RowRecord record;
        record.row.factorIndex = i;
        record.row.blocks = factor.whitenedJacobians(linPoint_);
        record.row.rhs = -factor.whitenedError(linPoint_);
        for (Key key : factor.keys())
            if (record.row.blocks.count(key) == 0)
                record.row.blocks.emplace(
                    key, Matrix(factor.dim(), linPoint_.dof(key)));
        rows_.push_back(std::move(record));
    }
    eliminateFrom(0);
    refreshDelta();
}

void
IncrementalSmoother::refreshDelta()
{
    delta_.clear();
    for (std::size_t i = conditionals_.size(); i-- > 0;) {
        const Conditional &cond = conditionals_[i];
        // Suffix variables the solver already back-substituted (the
        // accelerator runs the same parent-subtract / triangular-
        // solve sequence on-device, so the values are interchangeable
        // with the host computation below).
        auto device = deviceDeltas_.find(cond.key);
        if (device != deviceDeltas_.end()) {
            delta_.emplace(cond.key, device->second);
            continue;
        }
        Vector rhs = cond.rhs;
        for (const auto &[parent, block] : cond.rParents)
            rhs -= block * delta_.at(parent);
        delta_.emplace(cond.key, mat::backSubstitute(cond.rSelf, rhs));
    }
}

Values
IncrementalSmoother::estimate() const
{
    Values out = linPoint_;
    for (const auto &[key, d] : delta_)
        out.retract(key, d);
    return out;
}

} // namespace orianna::fg
