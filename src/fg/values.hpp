#pragma once

#include <cstdint>
#include <map>
#include <variant>

#include "lie/pose.hpp"
#include "matrix/dense.hpp"

namespace orianna::fg {

using lie::Pose;
using mat::Matrix;
using mat::Vector;

/** Variable identifier. Users pick any convenient numbering scheme. */
using Key = std::uint64_t;

/**
 * A variable value: either a pose in the unified representation
 * <so(n),T(n)> (robot states) or a plain Euclidean vector (landmarks,
 * velocities, control inputs).
 */
using Value = std::variant<Pose, Vector>;

/**
 * The current assignment of all variables in a factor graph.
 *
 * Gauss-Newton linearizes factors at a Values, solves for a tangent
 * update delta, and applies it with retract(): poses use the
 * on-manifold right perturbation, vectors plain addition.
 */
class Values
{
  public:
    /** Insert a pose variable. @throws if the key already exists. */
    void insert(Key key, Pose pose);

    /** Insert a vector variable. @throws if the key already exists. */
    void insert(Key key, Vector vec);

    /** Overwrite an existing variable (same kind required). */
    void update(Key key, Pose pose);
    void update(Key key, Vector vec);

    bool exists(Key key) const { return values_.count(key) != 0; }
    bool isPose(Key key) const;

    /** Pose value; @throws if missing or not a pose. */
    const Pose &pose(Key key) const;

    /** Vector value; @throws if missing or not a vector. */
    const Vector &vector(Key key) const;

    /** Tangent dimension of the variable (dof for poses, size else). */
    std::size_t dof(Key key) const;

    /** Apply a tangent update to one variable in place. */
    void retract(Key key, const Vector &delta);

    /** Apply a stacked update: one tangent segment per variable. */
    void retractAll(const std::map<Key, Vector> &deltas);

    /** Remove a variable. @throws if missing. */
    void erase(Key key);

    std::size_t size() const { return values_.size(); }

    /** All keys, ascending. */
    std::vector<Key> keys() const;

    auto begin() const { return values_.begin(); }
    auto end() const { return values_.end(); }

  private:
    const Value &get(Key key) const;

    std::map<Key, Value> values_;
};

} // namespace orianna::fg
