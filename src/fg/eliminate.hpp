#pragma once

#include <map>
#include <vector>

#include "fg/graph.hpp"

namespace orianna::fg {

/**
 * Shape record of one dense matrix operation performed during factor
 * graph inference. These records are the measured data behind
 * Fig. 17 (operation size) and Fig. 18 (operation density).
 */
struct OpShape
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    double density = 0.0;
};

/** Per-inference statistics collected by eliminate(). */
struct EliminationStats
{
    std::vector<OpShape> qrOps;      //!< One per variable elimination.
    std::vector<OpShape> backSubOps; //!< One per back-substitution.
};

/**
 * One row of the resulting upper-triangular system: the conditional
 * of variable @p key on its parents (Fig. 6). delta_key is recovered
 * as R_self^-1 (rhs - sum_parents R_parent delta_parent).
 */
struct Conditional
{
    Key key;
    Matrix rSelf;                    //!< dof x dof upper triangular.
    std::map<Key, Matrix> rParents;  //!< dof x dof(parent) blocks.
    Vector rhs;                      //!< dof entries of Q^T b.
};

/**
 * The eliminated (upper-triangular) system: conditionals in
 * elimination order. Equivalent to the updated graph of Fig. 6.
 */
class BayesNet
{
  public:
    void push(Conditional conditional);

    const std::vector<Conditional> &conditionals() const
    {
        return conditionals_;
    }

    /**
     * Back-substitution from the last conditional to the first,
     * yielding the tangent update delta per variable. Appends one
     * OpShape per substitution to @p stats when provided.
     */
    std::map<Key, Vector> solve(EliminationStats *stats = nullptr) const;

  private:
    std::vector<Conditional> conditionals_;
};

/**
 * Factor-graph inference, phase 1 (Fig. 5): eliminate the variables
 * of @p ordering one by one. For each variable the adjacent factor
 * rows are gathered into a small dense matrix, a (partial) QR
 * triangularizes it, the top rows become the variable's conditional
 * and the remainder re-enters the graph as a new factor.
 *
 * @param system   the linearized factor rows.
 * @param ordering every variable of the system exactly once.
 * @param stats    optional shape/density collection.
 * @throws std::invalid_argument when the ordering is incomplete.
 * @throws std::runtime_error when a variable is underdetermined.
 */
BayesNet eliminate(const LinearSystem &system,
                   const std::vector<Key> &ordering,
                   EliminationStats *stats = nullptr);

/**
 * Convenience: full linear solve (eliminate + back substitution) in
 * the given ordering.
 */
std::map<Key, Vector> solveLinearSystem(const LinearSystem &system,
                                        const std::vector<Key> &ordering,
                                        EliminationStats *stats = nullptr);

} // namespace orianna::fg
