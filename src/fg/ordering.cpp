#include "fg/ordering.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace orianna::fg::ordering {

std::vector<Key>
natural(const FactorGraph &graph)
{
    return graph.allKeys();
}

std::vector<Key>
minDegree(const FactorGraph &graph)
{
    // Build the variable adjacency structure.
    std::map<Key, std::set<Key>> neighbors;
    for (const FactorPtr &factor : graph) {
        const auto &keys = factor->keys();
        for (Key a : keys) {
            neighbors[a]; // Ensure isolated variables appear.
            for (Key b : keys)
                if (a != b)
                    neighbors[a].insert(b);
        }
    }

    std::vector<Key> order;
    order.reserve(neighbors.size());
    std::set<Key> remaining;
    for (const auto &[key, adj] : neighbors)
        remaining.insert(key);

    while (!remaining.empty()) {
        // Pick the remaining variable with the fewest remaining
        // neighbors (smallest key on ties).
        Key best = *remaining.begin();
        std::size_t best_degree = SIZE_MAX;
        for (Key key : remaining) {
            std::size_t degree = 0;
            for (Key n : neighbors[key])
                if (remaining.count(n))
                    ++degree;
            if (degree < best_degree) {
                best_degree = degree;
                best = key;
            }
        }
        order.push_back(best);
        remaining.erase(best);
        // Eliminating a variable connects its neighbors (fill-in).
        std::vector<Key> adj;
        for (Key n : neighbors[best])
            if (remaining.count(n))
                adj.push_back(n);
        for (Key a : adj)
            for (Key b : adj)
                if (a != b)
                    neighbors[a].insert(b);
    }
    return order;
}

} // namespace orianna::fg::ordering
