#include "fg/dot.hpp"

#include <sstream>

namespace orianna::fg {

std::string
graphToDot(const FactorGraph &graph)
{
    std::ostringstream os;
    os << "graph factorgraph {\n"
       << "  node [fontsize=10];\n";
    for (Key key : graph.allKeys())
        os << "  v" << key << " [label=\"x" << key
           << "\", shape=circle];\n";
    for (std::size_t i = 0; i < graph.size(); ++i) {
        const Factor &factor = graph.factor(i);
        os << "  f" << i << " [label=\"" << factor.name()
           << "\", shape=box, style=filled, fillcolor=gray85];\n";
        for (Key key : factor.keys())
            os << "  f" << i << " -- v" << key << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string
dfgToDot(const Dfg &dfg, const std::string &name)
{
    std::ostringstream os;
    os << "digraph " << name << " {\n"
       << "  rankdir=LR;\n"
       << "  node [fontsize=10];\n";
    const auto &nodes = dfg.nodes();
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        const DfgNode &node = nodes[id];
        std::string label = opName(node.op);
        if (node.op == Op::InputRot || node.op == Op::InputTrans ||
            node.op == Op::InputVec)
            label += " x" + std::to_string(node.key);
        const bool leaf = node.inputs.empty();
        os << "  n" << id << " [label=\"" << label << "\", shape="
           << (leaf ? "ellipse" : "box")
           << (leaf ? ", style=filled, fillcolor=lightblue" : "")
           << "];\n";
        for (NodeId in : node.inputs)
            os << "  n" << in << " -> n" << id << ";\n";
    }
    for (NodeId out : dfg.outputs())
        os << "  n" << out
           << " [style=filled, fillcolor=palegreen];\n";
    os << "}\n";
    return os.str();
}

} // namespace orianna::fg
