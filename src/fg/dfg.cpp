#include "fg/dfg.hpp"

#include <stdexcept>

namespace orianna::fg {

bool
producesRotation(Op op)
{
    switch (op) {
      case Op::InputRot:
      case Op::ConstRot:
      case Op::Exp:
      case Op::RT:
      case Op::RR:
        return true;
      default:
        return false;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::InputRot: return "IN_R";
      case Op::InputTrans: return "IN_T";
      case Op::InputVec: return "IN_V";
      case Op::ConstRot: return "C_R";
      case Op::ConstVec: return "C_V";
      case Op::Exp: return "Exp";
      case Op::Log: return "Log";
      case Op::RT: return "RT";
      case Op::RR: return "RR";
      case Op::RV: return "RV";
      case Op::VAdd: return "VP+";
      case Op::VSub: return "VP-";
      case Op::MV: return "MV";
      case Op::Proj: return "PROJ";
      case Op::Sdf: return "SDF";
      case Op::Hinge: return "HINGE";
      case Op::Norm: return "NORM";
    }
    return "?";
}

NodeId
Dfg::push(DfgNode node)
{
    for (NodeId in : node.inputs)
        if (in >= nodes_.size())
            throw std::invalid_argument("Dfg: input node id out of range");
    nodes_.push_back(std::move(node));
    return static_cast<NodeId>(nodes_.size() - 1);
}

PoseExpr
Dfg::inputPose(Key key)
{
    DfgNode rot{Op::InputRot, {}, key, {}, {}, nullptr, 0.0, {}};
    DfgNode trans{Op::InputTrans, {}, key, {}, {}, nullptr, 0.0, {}};
    const NodeId r = push(std::move(rot));
    const NodeId t = push(std::move(trans));
    return {r, t};
}

NodeId
Dfg::inputVec(Key key)
{
    DfgNode node{Op::InputVec, {}, key, {}, {}, nullptr, 0.0, {}};
    return push(std::move(node));
}

PoseExpr
Dfg::constPose(const lie::Pose &pose)
{
    return {constRot(pose.rotation()), constVec(pose.t())};
}

NodeId
Dfg::constRot(Matrix r)
{
    if (!lie::isRotation(r, 1e-6))
        throw std::invalid_argument("Dfg::constRot: not a rotation");
    DfgNode node{Op::ConstRot, {}, 0, std::move(r), {}, nullptr, 0.0, {}};
    return push(std::move(node));
}

NodeId
Dfg::constVec(Vector v)
{
    DfgNode node{Op::ConstVec, {}, 0, {}, std::move(v), nullptr, 0.0, {}};
    return push(std::move(node));
}

NodeId
Dfg::exp(NodeId tangent)
{
    return push({Op::Exp, {tangent}, 0, {}, {}, nullptr, 0.0, {}});
}

NodeId
Dfg::log(NodeId rot)
{
    return push({Op::Log, {rot}, 0, {}, {}, nullptr, 0.0, {}});
}

NodeId
Dfg::rt(NodeId rot)
{
    return push({Op::RT, {rot}, 0, {}, {}, nullptr, 0.0, {}});
}

NodeId
Dfg::rr(NodeId a, NodeId b)
{
    return push({Op::RR, {a, b}, 0, {}, {}, nullptr, 0.0, {}});
}

NodeId
Dfg::rv(NodeId rot, NodeId vec)
{
    return push({Op::RV, {rot, vec}, 0, {}, {}, nullptr, 0.0, {}});
}

NodeId
Dfg::vadd(NodeId a, NodeId b)
{
    return push({Op::VAdd, {a, b}, 0, {}, {}, nullptr, 0.0, {}});
}

NodeId
Dfg::vsub(NodeId a, NodeId b)
{
    return push({Op::VSub, {a, b}, 0, {}, {}, nullptr, 0.0, {}});
}

NodeId
Dfg::mv(Matrix coeff, NodeId vec)
{
    return push({Op::MV, {vec}, 0, std::move(coeff), {}, nullptr, 0.0, {}});
}

NodeId
Dfg::proj(NodeId point, CameraModel camera)
{
    return push({Op::Proj, {point}, 0, {}, {}, nullptr, 0.0, camera});
}

NodeId
Dfg::sdf(NodeId point, SdfMapPtr map)
{
    if (!map)
        throw std::invalid_argument("Dfg::sdf: null map");
    return push({Op::Sdf, {point}, 0, {}, {}, std::move(map), 0.0, {}});
}

NodeId
Dfg::hinge(NodeId vec, double eps)
{
    return push({Op::Hinge, {vec}, 0, {}, {}, nullptr, eps, {}});
}

NodeId
Dfg::norm(NodeId vec)
{
    return push({Op::Norm, {vec}, 0, {}, {}, nullptr, 0.0, {}});
}

PoseExpr
Dfg::oplus(PoseExpr a, PoseExpr b)
{
    const NodeId rot = rr(a.rot, b.rot);
    const NodeId trans = vadd(a.trans, rv(a.rot, b.trans));
    return {rot, trans};
}

PoseExpr
Dfg::ominus(PoseExpr a, PoseExpr b)
{
    const NodeId rbt = rt(b.rot);
    const NodeId rot = rr(rbt, a.rot);
    const NodeId trans = rv(rbt, vsub(a.trans, b.trans));
    return {rot, trans};
}

void
Dfg::addOutput(NodeId vec)
{
    if (vec >= nodes_.size())
        throw std::invalid_argument("Dfg::addOutput: node out of range");
    if (producesRotation(nodes_[vec].op))
        throw std::invalid_argument(
            "Dfg::addOutput: outputs must be vector-valued");
    outputs_.push_back(vec);
}

void
Dfg::addPoseOutput(PoseExpr pose)
{
    addOutput(log(pose.rot));
    addOutput(pose.trans);
}

std::vector<Key>
Dfg::variableKeys() const
{
    std::vector<Key> keys;
    for (const DfgNode &node : nodes_) {
        if (node.op != Op::InputRot && node.op != Op::InputTrans &&
            node.op != Op::InputVec)
            continue;
        bool seen = false;
        for (Key k : keys)
            seen = seen || (k == node.key);
        if (!seen)
            keys.push_back(node.key);
    }
    return keys;
}

DfgForward
evalForward(const Dfg &dfg, const Values &values)
{
    const auto &nodes = dfg.nodes();
    DfgForward fwd;
    fwd.rotValue.resize(nodes.size());
    fwd.vecValue.resize(nodes.size());

    for (std::size_t id = 0; id < nodes.size(); ++id) {
        const DfgNode &node = nodes[id];
        auto rotIn = [&](std::size_t slot) -> const Matrix & {
            return fwd.rotValue[node.inputs[slot]];
        };
        auto vecIn = [&](std::size_t slot) -> const Vector & {
            return fwd.vecValue[node.inputs[slot]];
        };
        switch (node.op) {
          case Op::InputRot:
            fwd.rotValue[id] = values.pose(node.key).rotation();
            break;
          case Op::InputTrans:
            fwd.vecValue[id] = values.pose(node.key).t();
            break;
          case Op::InputVec:
            fwd.vecValue[id] = values.vector(node.key);
            break;
          case Op::ConstRot:
            fwd.rotValue[id] = node.constMat;
            break;
          case Op::ConstVec:
            fwd.vecValue[id] = node.constVec;
            break;
          case Op::Exp:
            fwd.rotValue[id] = lie::expSo(vecIn(0));
            break;
          case Op::Log:
            fwd.vecValue[id] = lie::logSo(rotIn(0));
            break;
          case Op::RT:
            fwd.rotValue[id] = rotIn(0).transpose();
            break;
          case Op::RR:
            fwd.rotValue[id] = rotIn(0) * rotIn(1);
            break;
          case Op::RV:
            fwd.vecValue[id] = rotIn(0) * vecIn(1);
            break;
          case Op::VAdd:
            fwd.vecValue[id] = vecIn(0) + vecIn(1);
            break;
          case Op::VSub:
            fwd.vecValue[id] = vecIn(0) - vecIn(1);
            break;
          case Op::MV:
            fwd.vecValue[id] = node.constMat * vecIn(0);
            break;
          case Op::Proj: {
            const Vector &p = vecIn(0);
            if (p.size() != 3)
                throw std::invalid_argument("Proj: point must be 3-D");
            if (p[2] <= 1e-9)
                throw std::runtime_error("Proj: point behind camera");
            const CameraModel &c = node.camera;
            fwd.vecValue[id] = Vector{c.fx * p[0] / p[2] + c.cx,
                                      c.fy * p[1] / p[2] + c.cy};
            break;
          }
          case Op::Sdf:
            fwd.vecValue[id] = Vector{node.sdf->distance(vecIn(0))};
            break;
          case Op::Hinge: {
            const Vector &v = vecIn(0);
            Vector out(v.size());
            for (std::size_t i = 0; i < v.size(); ++i)
                out[i] = std::max(0.0, node.hingeEps - v[i]);
            fwd.vecValue[id] = out;
            break;
          }
          case Op::Norm:
            fwd.vecValue[id] = Vector{vecIn(0).norm()};
            break;
        }
    }

    for (NodeId out : dfg.outputs())
        fwd.error = fwd.error.concat(fwd.vecValue[out]);
    return fwd;
}

namespace {

/** 2-D generator matrix S = hat(1). */
Matrix
planarGenerator()
{
    return Matrix{{0.0, -1.0}, {1.0, 0.0}};
}

} // namespace

std::map<Key, Matrix>
evalBackward(const Dfg &dfg, const Values &values, const DfgForward &fwd)
{
    const auto &nodes = dfg.nodes();
    const std::size_t error_dim = fwd.error.size();

    // Accumulated d(error)/d(node tangent), lazily allocated.
    std::vector<Matrix> grad(nodes.size());
    auto accumulate = [&](NodeId id, const Matrix &j) {
        if (grad[id].rows() == 0)
            grad[id] = j;
        else
            grad[id] += j;
    };

    // Seed the outputs with identity blocks at their row offsets.
    std::size_t row = 0;
    for (NodeId out : dfg.outputs()) {
        const std::size_t dim = fwd.vecValue[out].size();
        Matrix seed(error_dim, dim);
        seed.setBlock(row, 0, Matrix::identity(dim));
        accumulate(out, seed);
        row += dim;
    }

    std::map<Key, Matrix> jacobians;
    auto accumulateVariable = [&](Key key, std::size_t col_offset,
                                  const Matrix &j) {
        auto it = jacobians.find(key);
        if (it == jacobians.end()) {
            it = jacobians
                     .emplace(key, Matrix(error_dim, values.dof(key)))
                     .first;
        }
        Matrix combined = it->second.block(0, col_offset, j.rows(),
                                           j.cols()) +
                          j;
        it->second.setBlock(0, col_offset, combined);
    };

    for (std::size_t idx = nodes.size(); idx-- > 0;) {
        const NodeId id = static_cast<NodeId>(idx);
        const DfgNode &node = nodes[id];
        if (grad[id].rows() == 0)
            continue; // Node does not influence the error.
        const Matrix &g = grad[id];

        switch (node.op) {
          case Op::InputRot:
            // Right-tangent leaf: delta IS the optimized perturbation.
            accumulateVariable(node.key, 0, g);
            break;
          case Op::InputTrans: {
            const std::size_t tdim =
                lie::tangentDim(values.pose(node.key).spaceDim());
            accumulateVariable(node.key, tdim, g);
            break;
          }
          case Op::InputVec:
            accumulateVariable(node.key, 0, g);
            break;
          case Op::ConstRot:
          case Op::ConstVec:
            break;
          case Op::Exp: {
            // R = Exp(v): d(tangent of R)/dv = J_r(v).
            const Vector &v = fwd.vecValue[node.inputs[0]];
            accumulate(node.inputs[0], g * lie::rightJacobian(v));
            break;
          }
          case Op::Log: {
            // phi = Log(R): dphi/d(tangent of R) = J_r^-1(phi).
            accumulate(node.inputs[0],
                       g * lie::rightJacobianInv(fwd.vecValue[id]));
            break;
          }
          case Op::RT: {
            // B = A^T: tangent map is -Ad(A) (-A for SO(3), -1 for
            // SO(2)).
            const Matrix &a = fwd.rotValue[node.inputs[0]];
            if (a.rows() == 3) {
                accumulate(node.inputs[0], -(g * a));
            } else {
                accumulate(node.inputs[0], -g);
            }
            break;
          }
          case Op::RR: {
            // C = A B: d/dA = Ad(B^T) = B^T (SO(3)) or 1 (SO(2));
            // d/dB = I (the Fig. 10 rule).
            const Matrix &b = fwd.rotValue[node.inputs[1]];
            if (b.rows() == 3) {
                accumulate(node.inputs[0], g.timesTranspose(b));
            } else {
                accumulate(node.inputs[0], g);
            }
            accumulate(node.inputs[1], g);
            break;
          }
          case Op::RV: {
            // y = R v: d/dv = R; d/d(tangent of R) = -R hat(v) in
            // SO(3), R S v in SO(2).
            const Matrix &r = fwd.rotValue[node.inputs[0]];
            const Vector &v = fwd.vecValue[node.inputs[1]];
            accumulate(node.inputs[1], g * r);
            if (r.rows() == 3) {
                accumulate(node.inputs[0], -(g * (r * lie::hat(v))));
            } else {
                const Vector col = r * (planarGenerator() * v);
                accumulate(node.inputs[0], g * col.asColumn());
            }
            break;
          }
          case Op::VAdd:
            accumulate(node.inputs[0], g);
            accumulate(node.inputs[1], g);
            break;
          case Op::VSub:
            accumulate(node.inputs[0], g);
            accumulate(node.inputs[1], -g);
            break;
          case Op::MV:
            accumulate(node.inputs[0], g * node.constMat);
            break;
          case Op::Proj: {
            const Vector &p = fwd.vecValue[node.inputs[0]];
            const CameraModel &c = node.camera;
            const double iz = 1.0 / p[2];
            Matrix j(2, 3);
            j(0, 0) = c.fx * iz;
            j(0, 2) = -c.fx * p[0] * iz * iz;
            j(1, 1) = c.fy * iz;
            j(1, 2) = -c.fy * p[1] * iz * iz;
            accumulate(node.inputs[0], g * j);
            break;
          }
          case Op::Sdf: {
            const Vector &p = fwd.vecValue[node.inputs[0]];
            const Vector grad_row = node.sdf->gradient(p);
            Matrix j(1, p.size());
            for (std::size_t i = 0; i < p.size(); ++i)
                j(0, i) = grad_row[i];
            accumulate(node.inputs[0], g * j);
            break;
          }
          case Op::Hinge: {
            const Vector &v = fwd.vecValue[node.inputs[0]];
            Matrix j(v.size(), v.size());
            for (std::size_t i = 0; i < v.size(); ++i)
                j(i, i) = (v[i] < node.hingeEps) ? -1.0 : 0.0;
            accumulate(node.inputs[0], g * j);
            break;
          }
          case Op::Norm: {
            // d|v|/dv = v^T / |v|; zero (subgradient) at the origin.
            const Vector &v = fwd.vecValue[node.inputs[0]];
            const double n = fwd.vecValue[id][0];
            Matrix j(1, v.size());
            if (n > 1e-12)
                for (std::size_t i = 0; i < v.size(); ++i)
                    j(0, i) = v[i] / n;
            accumulate(node.inputs[0], g * j);
            break;
          }
        }
    }
    return jacobians;
}

} // namespace orianna::fg
