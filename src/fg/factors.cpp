#include "fg/factors.hpp"

#include <stdexcept>

namespace orianna::fg {

namespace {

/** Selector matrix picking rows [offset, offset+count) of a vector. */
Matrix
selector(std::size_t total, std::size_t offset, std::size_t count)
{
    Matrix s(count, total);
    for (std::size_t i = 0; i < count; ++i)
        s(i, offset + i) = 1.0;
    return s;
}

} // namespace

PriorFactor::PriorFactor(Key x, const lie::Pose &prior, Vector sigmas)
    : Factor("Prior")
{
    PoseExpr xe = dfg_.inputPose(x);
    PoseExpr pe = dfg_.constPose(prior);
    dfg_.addPoseOutput(dfg_.ominus(xe, pe));
    finalize(std::move(sigmas));
}

BetweenFactor::BetweenFactor(Key xi, Key xj, const lie::Pose &measured,
                             Vector sigmas, std::string name)
    : Factor(std::move(name)), measured_(measured)
{
    PoseExpr a = dfg_.inputPose(xi);
    PoseExpr b = dfg_.inputPose(xj);
    PoseExpr z = dfg_.constPose(measured);
    // e = (x_j (-) x_i) (-) z_ij, cf. Equ. 3 / Equ. 4.
    dfg_.addPoseOutput(dfg_.ominus(dfg_.ominus(b, a), z));
    finalize(std::move(sigmas));
}

IMUFactor::IMUFactor(Key xi, Key xj, const lie::Pose &preintegrated,
                     Vector sigmas)
    : BetweenFactor(xi, xj, preintegrated, std::move(sigmas), "IMU")
{}

LiDARFactor::LiDARFactor(Key xi, Key xj, const lie::Pose &scan_match,
                         Vector sigmas)
    : BetweenFactor(xi, xj, scan_match, std::move(sigmas), "LiDAR")
{}

GPSFactor::GPSFactor(Key x, Vector position, Vector sigmas)
    : Factor("GPS")
{
    PoseExpr xe = dfg_.inputPose(x);
    NodeId z = dfg_.constVec(std::move(position));
    dfg_.addOutput(dfg_.vsub(xe.trans, z));
    finalize(std::move(sigmas));
}

CameraFactor::CameraFactor(Key pose, Key landmark, Vector pixel,
                           CameraModel camera, Vector sigmas)
    : Factor("Camera")
{
    if (pixel.size() != 2)
        throw std::invalid_argument("CameraFactor: pixel must be 2-D");
    PoseExpr xe = dfg_.inputPose(pose);
    NodeId l = dfg_.inputVec(landmark);
    // Landmark in the camera frame: R^T (l - t).
    NodeId local = dfg_.rv(dfg_.rt(xe.rot), dfg_.vsub(l, xe.trans));
    NodeId predicted = dfg_.proj(local, camera);
    dfg_.addOutput(dfg_.vsub(predicted, dfg_.constVec(std::move(pixel))));
    finalize(std::move(sigmas));
}

SmoothFactor::SmoothFactor(Key si, Key sj, std::size_t pos_dim, double dt,
                           Vector sigmas)
    : Factor("Smooth")
{
    const std::size_t state_dim = 2 * pos_dim;
    NodeId a = dfg_.inputVec(si);
    NodeId b = dfg_.inputVec(sj);
    // Constant-velocity transition Phi = [I, dt I; 0, I].
    Matrix phi = Matrix::identity(state_dim);
    for (std::size_t i = 0; i < pos_dim; ++i)
        phi(i, pos_dim + i) = dt;
    dfg_.addOutput(dfg_.vsub(b, dfg_.mv(std::move(phi), a)));
    finalize(std::move(sigmas));
}

CollisionFreeFactor::CollisionFreeFactor(Key s, SdfMapPtr map,
                                         std::size_t state_dim,
                                         std::size_t pos_dim, double eps,
                                         double sigma)
    : Factor("CollisionFree")
{
    NodeId state = dfg_.inputVec(s);
    NodeId position = dfg_.mv(selector(state_dim, 0, pos_dim), state);
    NodeId distance = dfg_.sdf(position, std::move(map));
    dfg_.addOutput(dfg_.hinge(distance, eps));
    finalize(isotropicSigmas(1, sigma));
}

KinematicsFactor::KinematicsFactor(Key s, std::size_t state_dim,
                                   std::size_t vel_offset,
                                   std::size_t vel_dim, double vmax,
                                   double sigma)
    : Factor("Kinematics")
{
    NodeId state = dfg_.inputVec(s);
    Matrix pick = selector(state_dim, vel_offset, vel_dim);
    NodeId v = dfg_.mv(pick, state);
    NodeId neg_v = dfg_.mv(-selector(state_dim, vel_offset, vel_dim),
                           state);
    // Upper bound: max(0, v - vmax) == hinge(-v, eps = -vmax).
    dfg_.addOutput(dfg_.hinge(neg_v, -vmax));
    // Lower bound: max(0, -vmax - v) == hinge(v, eps = -vmax).
    dfg_.addOutput(dfg_.hinge(v, -vmax));
    finalize(isotropicSigmas(2 * vel_dim, sigma));
}

DynamicsFactor::DynamicsFactor(Key xk, Key uk, Key xnext, Matrix a,
                               Matrix b, Vector sigmas)
    : Factor("Dynamics")
{
    if (a.rows() != b.rows())
        throw std::invalid_argument("DynamicsFactor: A/B row mismatch");
    NodeId x = dfg_.inputVec(xk);
    NodeId u = dfg_.inputVec(uk);
    NodeId xn = dfg_.inputVec(xnext);
    NodeId predicted =
        dfg_.vadd(dfg_.mv(std::move(a), x), dfg_.mv(std::move(b), u));
    dfg_.addOutput(dfg_.vsub(xn, predicted));
    finalize(std::move(sigmas));
}

VectorPriorFactor::VectorPriorFactor(Key x, Vector target, Vector sigmas,
                                     std::string name)
    : Factor(std::move(name))
{
    NodeId xe = dfg_.inputVec(x);
    dfg_.addOutput(dfg_.vsub(xe, dfg_.constVec(std::move(target))));
    finalize(std::move(sigmas));
}

RangeFactor::RangeFactor(Key pose, Key landmark, double range,
                         double sigma)
    : Factor("Range")
{
    PoseExpr xe = dfg_.inputPose(pose);
    NodeId l = dfg_.inputVec(landmark);
    NodeId distance = dfg_.norm(dfg_.vsub(l, xe.trans));
    dfg_.addOutput(
        dfg_.vsub(distance, dfg_.constVec(Vector{range})));
    finalize(isotropicSigmas(1, sigma));
}

ArmCollisionFactor::ArmCollisionFactor(Key q, double l1, double l2,
                                       SdfMapPtr map, double eps,
                                       double sigma)
    : Factor("ArmCollision")
{
    NodeId state = dfg_.inputVec(q);
    // Joint angles as 1-dim tangents (selector rows), then planar
    // rotations via Exp.
    NodeId q1 = dfg_.mv(selector(4, 0, 1), state);
    NodeId q2 = dfg_.mv(selector(4, 1, 1), state);
    NodeId r1 = dfg_.exp(q1);                  // Shoulder rotation.
    NodeId r12 = dfg_.exp(dfg_.vadd(q1, q2));  // Shoulder + elbow.
    NodeId elbow = dfg_.rv(r1, dfg_.constVec(Vector{l1, 0.0}));
    NodeId tip =
        dfg_.vadd(elbow, dfg_.rv(r12, dfg_.constVec(Vector{l2, 0.0})));
    // Clearance of both link endpoints.
    dfg_.addOutput(dfg_.hinge(dfg_.sdf(elbow, map), eps));
    dfg_.addOutput(dfg_.hinge(dfg_.sdf(tip, std::move(map)), eps));
    finalize(isotropicSigmas(2, sigma));
}

ExpressionFactor::ExpressionFactor(Dfg dfg, Vector sigmas,
                                   std::string name)
    : Factor(std::move(name))
{
    dfg_ = std::move(dfg);
    finalize(std::move(sigmas));
}

} // namespace orianna::fg
