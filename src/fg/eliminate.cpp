#include "fg/eliminate.hpp"

#include <algorithm>
#include <stdexcept>

#include "matrix/qr.hpp"

namespace orianna::fg {

void
BayesNet::push(Conditional conditional)
{
    conditionals_.push_back(std::move(conditional));
}

std::map<Key, Vector>
BayesNet::solve(EliminationStats *stats) const
{
    std::map<Key, Vector> solution;
    for (std::size_t i = conditionals_.size(); i-- > 0;) {
        const Conditional &c = conditionals_[i];
        Vector rhs = c.rhs;
        for (const auto &[parent, block] : c.rParents)
            rhs -= block * solution.at(parent);
        Vector delta = mat::backSubstitute(c.rSelf, rhs);
        if (stats != nullptr) {
            stats->backSubOps.push_back({c.rSelf.rows(), c.rSelf.cols(),
                                         c.rSelf.density()});
        }
        solution.emplace(c.key, std::move(delta));
    }
    return solution;
}

BayesNet
eliminate(const LinearSystem &system, const std::vector<Key> &ordering,
          EliminationStats *stats)
{
    // Validate the ordering covers the system exactly.
    {
        std::vector<Key> sorted = ordering;
        std::sort(sorted.begin(), sorted.end());
        if (std::adjacent_find(sorted.begin(), sorted.end()) !=
            sorted.end())
            throw std::invalid_argument("eliminate: duplicate key");
        std::vector<Key> expected;
        for (const auto &[key, dof] : system.dofs)
            expected.push_back(key);
        if (sorted != expected)
            throw std::invalid_argument(
                "eliminate: ordering must cover every variable once");
    }

    // Working copy of the factor rows; eliminations consume rows and
    // append the new (f7-style) factors.
    std::vector<LinearRow> working = system.rows;
    std::vector<bool> alive(working.size(), true);

    BayesNet bayes;
    for (Key v : ordering) {
        // Gather the rows adjacent to v (Fig. 5 step 1).
        std::vector<std::size_t> touching;
        for (std::size_t i = 0; i < working.size(); ++i)
            if (alive[i] && working[i].blocks.count(v))
                touching.push_back(i);
        if (touching.empty())
            throw std::runtime_error(
                "eliminate: variable " + std::to_string(v) +
                " has no adjacent factors (underdetermined)");

        // Involved columns: v first, then the other keys ascending.
        std::vector<Key> involved{v};
        for (std::size_t i : touching)
            for (const auto &[key, block] : working[i].blocks)
                if (key != v &&
                    std::find(involved.begin(), involved.end(), key) ==
                        involved.end())
                    involved.push_back(key);
        std::sort(involved.begin() + 1, involved.end());

        std::map<Key, std::size_t> col_offset;
        std::size_t ncols = 0;
        for (Key key : involved) {
            col_offset[key] = ncols;
            ncols += system.dofs.at(key);
        }

        std::size_t nrows = 0;
        for (std::size_t i : touching)
            nrows += working[i].rhs.size();

        // Stack the small dense system (Fig. 5 step 2).
        Matrix abar(nrows, ncols);
        Vector bbar(nrows);
        std::size_t row = 0;
        for (std::size_t i : touching) {
            const LinearRow &lr = working[i];
            for (const auto &[key, block] : lr.blocks)
                abar.setBlock(row, col_offset.at(key), block);
            bbar.setSegment(row, lr.rhs);
            row += lr.rhs.size();
            alive[i] = false;
        }

        if (stats != nullptr)
            stats->qrOps.push_back(
                {abar.rows(), abar.cols(), abar.density()});

        // Partial QR (Fig. 5 step 3).
        mat::QrResult qr = mat::householderQr(abar, bbar);

        const std::size_t dv = system.dofs.at(v);
        if (nrows < dv)
            throw std::runtime_error(
                "eliminate: variable " + std::to_string(v) +
                " is underdetermined");

        Conditional cond;
        cond.key = v;
        cond.rSelf = qr.r.block(0, 0, dv, dv);
        cond.rhs = qr.rhs.segment(0, dv);
        for (Key key : involved) {
            if (key == v)
                continue;
            cond.rParents.emplace(
                key, qr.r.block(0, col_offset.at(key), dv,
                                system.dofs.at(key)));
        }
        bayes.push(std::move(cond));

        // Remaining rows become the new factor over the separator
        // (Fig. 5 step 4). R is upper trapezoidal, so rows at or below
        // the column count are structurally zero; the kept row count
        // depends only on shapes, never on values, which keeps the
        // elimination structure identical between this software path
        // and the compiled accelerator program.
        if (nrows > dv && involved.size() > 1) {
            LinearRow fresh;
            const std::size_t kept = std::min(nrows, ncols) - dv;
            if (kept > 0) {
                for (Key key : involved) {
                    if (key == v)
                        continue;
                    fresh.blocks.emplace(
                        key, qr.r.block(dv, col_offset.at(key), kept,
                                        system.dofs.at(key)));
                }
                fresh.rhs = qr.rhs.segment(dv, kept);
                working.push_back(std::move(fresh));
                alive.push_back(true);
            }
        }
    }
    return bayes;
}

std::map<Key, Vector>
solveLinearSystem(const LinearSystem &system,
                  const std::vector<Key> &ordering,
                  EliminationStats *stats)
{
    return eliminate(system, ordering, stats).solve(stats);
}

} // namespace orianna::fg
