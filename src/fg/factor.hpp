#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fg/dfg.hpp"
#include "fg/values.hpp"

namespace orianna::fg {

/**
 * A factor node: a vector-valued error function over a set of
 * variables, with Gaussian noise described by per-row sigmas.
 *
 * Every factor in the library *is* an MO-DFG (Sec. 5.2): the error and
 * Jacobians are obtained by forward traversal and backward propagation
 * of the graph, and the very same graph is what the compiler lowers to
 * accelerator instructions. This keeps the software reference path and
 * the accelerator path numerically identical by construction.
 *
 * Subclasses build their DFG in the constructor and must call
 * finalize() once the outputs are declared.
 */
class Factor
{
  public:
    virtual ~Factor() = default;

    /** Variable keys this factor constrains, in DFG first-use order. */
    const std::vector<Key> &keys() const { return keys_; }

    /** Error dimension (number of block rows contributed to A). */
    std::size_t dim() const { return sigmas_.size(); }

    /** Human-readable factor-type name for logs and listings. */
    const std::string &name() const { return name_; }

    /** The factor's matrix-operation data-flow graph. */
    const Dfg &dfg() const { return dfg_; }

    /** Per-row noise sigmas. */
    const Vector &sigmas() const { return sigmas_; }

    /** Raw (unwhitened) error at @p values. */
    Vector error(const Values &values) const;

    /** Whitened error: e_i / sigma_i. */
    Vector whitenedError(const Values &values) const;

    /**
     * Whitened Jacobians d(e/sigma)/d(delta_key) for every key, via
     * backward propagation on the DFG.
     */
    std::map<Key, Matrix> whitenedJacobians(const Values &values) const;

    /** Contribution to the objective: 0.5 * ||whitened error||^2
     *  (with the robust weight applied when enabled). */
    double cost(const Values &values) const;

    /**
     * Enable a Huber robust kernel with threshold @p k (in whitened
     * units): residuals beyond k are downweighted by sqrt(k/|e|),
     * bounding the influence of outlier measurements. Applied
     * identically by the software path and the compiled program.
     */
    void setRobust(double k);

    /** Huber threshold; 0 when the kernel is disabled. */
    double robustK() const { return robustK_; }

  protected:
    explicit Factor(std::string name) : name_(std::move(name)) {}

    /**
     * Freeze the factor after DFG construction. @p sigmas must have
     * one entry per error row; pass Vector(dim) filled with 1.0 for
     * unit noise.
     */
    void finalize(Vector sigmas);

    Dfg dfg_;

  private:
    std::string name_;
    std::vector<Key> keys_;
    Vector sigmas_;
    double robustK_ = 0.0;
};

using FactorPtr = std::shared_ptr<const Factor>;

/** Convenience: a sigmas vector with every entry equal to @p sigma. */
Vector isotropicSigmas(std::size_t dim, double sigma);

} // namespace orianna::fg
