#pragma once

#include <optional>

#include "fg/eliminate.hpp"
#include "fg/graph.hpp"

namespace orianna::fg {

/** Knobs of the incremental smoother. */
struct IncrementalParams
{
    /**
     * Full relinearization (batch) every this many updates. Between
     * batches the linearization point is fixed and only the tangent
     * solution moves, as in iSAM.
     */
    std::size_t relinearizeInterval = 10;

    /** Also relinearize when any |delta| exceeds this threshold. */
    double relinearizeThreshold = 0.25;

    /** Elimination ordering for new variables: append in key order. */
};

/** What one update() did, for tests and telemetry. */
struct UpdateStats
{
    std::size_t eliminatedVariables = 0; //!< Re-eliminated this update.
    std::size_t totalVariables = 0;
    bool relinearized = false;
};

/**
 * Incremental smoothing in the square-root-SAM / iSAM tradition the
 * paper builds on ([10][11]): the estimation problem grows frame by
 * frame (new poses, new measurements), and each update re-eliminates
 * only the ordering suffix affected by the new factors instead of
 * solving from scratch.
 *
 * Between relinearizations the linearization point is fixed; the
 * current estimate is linPoint retract delta. The prefix of the
 * elimination (conditionals of unaffected variables and the factor
 * rows they consumed) is reused exactly, so an incremental update
 * produces bit-identical results to a batch elimination at the same
 * linearization point — a property the tests check.
 */
class IncrementalSmoother
{
  public:
    explicit IncrementalSmoother(IncrementalParams params = {})
        : params_(params)
    {}

    /** Insert a new pose variable with its initial estimate. */
    void addVariable(Key key, lie::Pose initial);

    /** Insert a new vector variable with its initial estimate. */
    void addVariable(Key key, Vector initial);

    /** Queue a factor; it takes effect at the next update(). */
    void addFactor(FactorPtr factor);

    /**
     * Incorporate the queued factors: linearize them at the current
     * linearization point, re-eliminate the affected ordering suffix,
     * and refresh the tangent solution.
     */
    UpdateStats update();

    /** Current estimate: linearization point retract delta. */
    Values estimate() const;

    /** Number of updates performed so far. */
    std::size_t updates() const { return updates_; }

    /** All factors incorporated so far (for inspection / batch). */
    const FactorGraph &graph() const { return graph_; }

    /**
     * Fixed-lag smoothing: marginalize out the first @p count
     * variables of the elimination ordering (the oldest states). The
     * information they carried is preserved exactly as linear prior
     * rows on the remaining variables (at the linearization point in
     * effect when they were eliminated), and factors fully absorbed
     * into the marginal become inactive for future relinearization -
     * the standard fixed-lag trade-off.
     *
     * @throws std::invalid_argument when count is zero or would
     * remove every variable, or when factors are still pending.
     */
    void marginalizeLeading(std::size_t count);

  private:
    /** A linearized row with its incremental lifetime. */
    struct RowRecord
    {
        LinearRow row;
        /** Elimination step that produced it; SIZE_MAX = original. */
        std::size_t createdStep = SIZE_MAX;
        /** Elimination step that consumed it; SIZE_MAX = alive. */
        std::size_t consumedStep = SIZE_MAX;
        /** Fixed marginal-prior row (not tied to a factor). */
        bool isPrior = false;
    };

    void relinearizeAll();
    void eliminateFrom(std::size_t start);
    void refreshDelta();
    std::size_t orderingPosition(Key key) const;

    IncrementalParams params_;
    FactorGraph graph_;
    std::vector<FactorPtr> pendingFactors_;

    Values linPoint_;                 //!< Fixed between batches.
    std::map<Key, Vector> delta_;     //!< Current tangent solution.
    std::vector<Key> ordering_;       //!< Elimination order.
    std::map<Key, std::size_t> position_;
    std::map<Key, std::size_t> dofs_;

    std::vector<RowRecord> rows_;
    std::vector<Conditional> conditionals_; //!< One per ordering slot.
    /** Fixed linear prior rows from marginalized-out variables. */
    std::vector<LinearRow> marginalPriors_;
    /** Per-factor: still relinearizable (not absorbed into priors). */
    std::vector<bool> factorActive_;

    std::size_t updates_ = 0;
};

} // namespace orianna::fg
