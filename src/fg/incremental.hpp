#pragma once

#include <optional>

#include "fg/eliminate.hpp"
#include "fg/graph.hpp"

namespace orianna::fg {

/** Knobs of the incremental smoother. */
struct IncrementalParams
{
    /**
     * Full relinearization (batch) every this many updates. Between
     * batches the linearization point is fixed and only the tangent
     * solution moves, as in iSAM.
     */
    std::size_t relinearizeInterval = 10;

    /** Also relinearize when any |delta| exceeds this threshold. */
    double relinearizeThreshold = 0.25;

    /** Elimination ordering for new variables: append in key order. */
};

/** What one update() did, for tests and telemetry. */
struct UpdateStats
{
    std::size_t eliminatedVariables = 0; //!< Re-eliminated this update.
    std::size_t totalVariables = 0;
    bool relinearized = false;
};

/**
 * Structural description of one suffix re-elimination: which rows
 * feed it, and the exact per-step gather/QR shapes. The schedule is
 * the single source of truth shared by the CPU reference path and
 * any plugged-in SuffixSolver — a solver must follow it literally
 * (same row order, same column order) so its results drop back into
 * the smoother's bookkeeping without re-deriving the walk.
 *
 * Rows are identified by reference index: values below
 * `inputRows.size()` index the row array handed to the solver (in
 * canonical order: marginal priors, then original factor rows by
 * factor index, then surviving carries by creation step — the order
 * a batch elimination uses, which is what makes incremental results
 * bit-identical to batch at the same linearization point); values at
 * or above it name carry rows produced by earlier steps of this same
 * suffix, in creation order.
 */
struct SuffixSchedule
{
    /** Absolute ordering position the re-elimination starts at. */
    std::size_t start = 0;
    /** Suffix variables, in elimination order. */
    std::vector<Key> variables;
    /** Tangent dimension of each suffix variable. */
    std::vector<std::size_t> dofs;
    /** Smoother-internal ids of the input rows (opaque to solvers). */
    std::vector<std::size_t> inputRows;

    struct Step
    {
        /** Rows gathered into this step's [A|b], in gather order. */
        std::vector<std::size_t> rowRefs;
        /** Column layout: eliminated variable first, parents sorted. */
        std::vector<Key> columns;
        std::size_t nrows = 0;
        std::size_t ncols = 0;
        /** Separator rows carried forward (0 = no carry row). */
        std::size_t kept = 0;
    };
    std::vector<Step> steps;
};

/** What a suffix solve produces, mirroring the schedule's shapes. */
struct SuffixSolution
{
    /** One conditional per schedule step, in step order. */
    std::vector<Conditional> conditionals;
    /** Carry rows of the steps with kept > 0, in creation order. */
    std::vector<LinearRow> carries;
    /**
     * Optional: tangent solution of the suffix variables when the
     * solver also ran back-substitution (the accelerator path does).
     * Empty means the smoother back-substitutes on the host.
     */
    std::map<Key, Vector> deltas;
};

/**
 * Pluggable executor of a suffix re-elimination. The smoother builds
 * the schedule and owns all bookkeeping; the solver only does the
 * numeric work. The runtime layer implements this against the
 * accelerator engine (runtime::AcceleratedSmoother).
 */
class SuffixSolver
{
  public:
    virtual ~SuffixSolver() = default;
    virtual SuffixSolution
    solve(const SuffixSchedule &schedule,
          const std::vector<const LinearRow *> &rows) = 0;
};

/**
 * The CPU reference suffix solve: dense per-step gather + Householder
 * QR, following the schedule literally. Used when no solver is
 * plugged in, and by solvers as their oversize/fallback path.
 */
SuffixSolution
solveSuffixOnCpu(const SuffixSchedule &schedule,
                 const std::vector<const LinearRow *> &rows);

/**
 * Incremental smoothing in the square-root-SAM / iSAM tradition the
 * paper builds on ([10][11]): the estimation problem grows frame by
 * frame (new poses, new measurements), and each update re-eliminates
 * only the ordering suffix affected by the new factors instead of
 * solving from scratch.
 *
 * Between relinearizations the linearization point is fixed; the
 * current estimate is linPoint retract delta. The prefix of the
 * elimination (conditionals of unaffected variables and the factor
 * rows they consumed) is reused exactly, so an incremental update
 * produces bit-identical results to a batch elimination at the same
 * linearization point — a property the tests check.
 */
class IncrementalSmoother
{
  public:
    explicit IncrementalSmoother(IncrementalParams params = {})
        : params_(params)
    {}

    /** Insert a new pose variable with its initial estimate. */
    void addVariable(Key key, lie::Pose initial);

    /** Insert a new vector variable with its initial estimate. */
    void addVariable(Key key, Vector initial);

    /** Queue a factor; it takes effect at the next update(). */
    void addFactor(FactorPtr factor);

    /**
     * Incorporate the queued factors: linearize them at the current
     * linearization point, re-eliminate the affected ordering suffix,
     * and refresh the tangent solution.
     */
    UpdateStats update();

    /** Current estimate: linearization point retract delta. */
    Values estimate() const;

    /** Number of updates performed so far. */
    std::size_t updates() const { return updates_; }

    /** All factors incorporated so far (for inspection / batch). */
    const FactorGraph &graph() const { return graph_; }

    /**
     * Fixed-lag smoothing: marginalize out the first @p count
     * variables of the elimination ordering (the oldest states). The
     * information they carried is preserved exactly as linear prior
     * rows on the remaining variables (at the linearization point in
     * effect when they were eliminated), and factors fully absorbed
     * into the marginal become inactive for future relinearization -
     * the standard fixed-lag trade-off.
     *
     * @throws std::invalid_argument when count is zero or would
     * remove every variable, or when factors are still pending.
     */
    void marginalizeLeading(std::size_t count);

    /**
     * Plug in a suffix solver (non-owning; nullptr restores the CPU
     * reference path). The solver must outlive the smoother or be
     * reset before it is destroyed.
     */
    void setSuffixSolver(SuffixSolver *solver) { solver_ = solver; }

    /** Elimination ordering (oldest first), for solvers and tests. */
    const std::vector<Key> &ordering() const { return ordering_; }

  private:
    /** A linearized row with its incremental lifetime. */
    struct RowRecord
    {
        LinearRow row;
        /** Elimination step that produced it; SIZE_MAX = original. */
        std::size_t createdStep = SIZE_MAX;
        /** Elimination step that consumed it; SIZE_MAX = alive. */
        std::size_t consumedStep = SIZE_MAX;
        /** Fixed marginal-prior row (not tied to a factor). */
        bool isPrior = false;
    };

    void relinearizeAll();
    SuffixSchedule buildSchedule(std::size_t start) const;
    void eliminateFrom(std::size_t start);
    void refreshDelta();
    std::size_t orderingPosition(Key key) const;

    IncrementalParams params_;
    FactorGraph graph_;
    std::vector<FactorPtr> pendingFactors_;

    Values linPoint_;                 //!< Fixed between batches.
    std::map<Key, Vector> delta_;     //!< Current tangent solution.
    std::vector<Key> ordering_;       //!< Elimination order.
    std::map<Key, std::size_t> position_;
    std::map<Key, std::size_t> dofs_;

    std::vector<RowRecord> rows_;
    std::vector<Conditional> conditionals_; //!< One per ordering slot.
    /** Fixed linear prior rows from marginalized-out variables. */
    std::vector<LinearRow> marginalPriors_;
    /** Per-factor: still relinearizable (not absorbed into priors). */
    std::vector<bool> factorActive_;

    SuffixSolver *solver_ = nullptr;
    /** Suffix deltas from the last solve, when the solver back-
     *  substituted on-device; consumed by refreshDelta(). */
    std::map<Key, Vector> deviceDeltas_;

    std::size_t updates_ = 0;
};

} // namespace orianna::fg
