#include "fg/values.hpp"

#include <stdexcept>
#include <string>

namespace orianna::fg {

namespace {

[[noreturn]] void
missingKey(Key key)
{
    throw std::out_of_range("Values: unknown key " + std::to_string(key));
}

} // namespace

void
Values::insert(Key key, Pose pose)
{
    if (!values_.emplace(key, std::move(pose)).second)
        throw std::invalid_argument("Values::insert: duplicate key " +
                                    std::to_string(key));
}

void
Values::insert(Key key, Vector vec)
{
    if (!values_.emplace(key, std::move(vec)).second)
        throw std::invalid_argument("Values::insert: duplicate key " +
                                    std::to_string(key));
}

void
Values::update(Key key, Pose pose)
{
    auto it = values_.find(key);
    if (it == values_.end())
        missingKey(key);
    if (!std::holds_alternative<Pose>(it->second))
        throw std::invalid_argument("Values::update: kind mismatch");
    it->second = std::move(pose);
}

void
Values::update(Key key, Vector vec)
{
    auto it = values_.find(key);
    if (it == values_.end())
        missingKey(key);
    if (!std::holds_alternative<Vector>(it->second))
        throw std::invalid_argument("Values::update: kind mismatch");
    it->second = std::move(vec);
}

const Value &
Values::get(Key key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        missingKey(key);
    return it->second;
}

bool
Values::isPose(Key key) const
{
    return std::holds_alternative<Pose>(get(key));
}

const Pose &
Values::pose(Key key) const
{
    const Value &v = get(key);
    if (!std::holds_alternative<Pose>(v))
        throw std::invalid_argument("Values::pose: variable " +
                                    std::to_string(key) + " is not a pose");
    return std::get<Pose>(v);
}

const Vector &
Values::vector(Key key) const
{
    const Value &v = get(key);
    if (!std::holds_alternative<Vector>(v))
        throw std::invalid_argument("Values::vector: variable " +
                                    std::to_string(key) +
                                    " is not a vector");
    return std::get<Vector>(v);
}

std::size_t
Values::dof(Key key) const
{
    const Value &v = get(key);
    if (std::holds_alternative<Pose>(v))
        return std::get<Pose>(v).dof();
    return std::get<Vector>(v).size();
}

void
Values::retract(Key key, const Vector &delta)
{
    auto it = values_.find(key);
    if (it == values_.end())
        missingKey(key);
    if (std::holds_alternative<Pose>(it->second)) {
        it->second = std::get<Pose>(it->second).retract(delta);
    } else {
        it->second = std::get<Vector>(it->second) + delta;
    }
}

void
Values::retractAll(const std::map<Key, Vector> &deltas)
{
    for (const auto &[key, delta] : deltas)
        retract(key, delta);
}

void
Values::erase(Key key)
{
    if (values_.erase(key) == 0)
        missingKey(key);
}

std::vector<Key>
Values::keys() const
{
    std::vector<Key> out;
    out.reserve(values_.size());
    for (const auto &[key, value] : values_)
        out.push_back(key);
    return out;
}

} // namespace orianna::fg
