#include "fg/sdf_map.hpp"

#include <limits>
#include <stdexcept>

namespace orianna::fg {

namespace {

/** Clearance reported when no obstacles exist. */
constexpr double kFarAway = 1e6;

} // namespace

void
SdfMap::addObstacle(Vector center, double radius)
{
    if (radius <= 0.0)
        throw std::invalid_argument("SdfMap::addObstacle: radius <= 0");
    obstacles_.push_back({std::move(center), radius});
}

std::vector<std::pair<Vector, double>>
SdfMap::obstacles() const
{
    std::vector<std::pair<Vector, double>> out;
    out.reserve(obstacles_.size());
    for (const Obstacle &obstacle : obstacles_)
        out.emplace_back(obstacle.center, obstacle.radius);
    return out;
}

double
SdfMap::distance(const Vector &point) const
{
    double best = kFarAway;
    for (const Obstacle &obstacle : obstacles_) {
        const double d =
            (point - obstacle.center).norm() - obstacle.radius;
        best = std::min(best, d);
    }
    return best;
}

Vector
SdfMap::gradient(const Vector &point) const
{
    double best = kFarAway;
    const Obstacle *closest = nullptr;
    for (const Obstacle &obstacle : obstacles_) {
        const double d =
            (point - obstacle.center).norm() - obstacle.radius;
        if (d < best) {
            best = d;
            closest = &obstacle;
        }
    }
    if (closest == nullptr)
        return Vector(point.size());
    Vector diff = point - closest->center;
    const double norm = diff.norm();
    if (norm < 1e-12)
        return Vector(point.size());
    return diff * (1.0 / norm);
}

} // namespace orianna::fg
