#include "fg/marginals.hpp"

#include <cmath>
#include <stdexcept>

#include "matrix/qr.hpp"

namespace orianna::fg {

Marginals::Marginals(const LinearSystem &system,
                     const std::vector<Key> &ordering)
{
    std::size_t ncols = 0;
    for (Key key : ordering) {
        offset_[key] = ncols;
        dof_[key] = system.dofs.at(key);
        ncols += system.dofs.at(key);
    }
    if (offset_.size() != system.dofs.size())
        throw std::invalid_argument(
            "Marginals: ordering must cover every variable once");

    // Square-root factor R from the stacked system.
    const Matrix a = system.toDense(ordering);
    const Vector b = system.stackedRhs();
    if (a.rows() < ncols)
        throw std::runtime_error("Marginals: rank-deficient system");
    mat::QrResult qr = mat::householderQr(a, b);
    const Matrix r = qr.r.block(0, 0, ncols, ncols);
    for (std::size_t i = 0; i < ncols; ++i)
        if (std::abs(r(i, i)) < 1e-10)
            throw std::runtime_error("Marginals: rank-deficient system");

    // R^-1 by back substitution on the identity columns, then
    // Sigma = R^-1 R^-T.
    Matrix rinv(ncols, ncols);
    for (std::size_t j = 0; j < ncols; ++j) {
        Vector e(ncols);
        e[j] = 1.0;
        const Vector col = mat::backSubstitute(r, e);
        for (std::size_t i = 0; i < ncols; ++i)
            rinv(i, j) = col[i];
    }
    covariance_ = rinv.timesTranspose(rinv);
}

Matrix
Marginals::marginalCovariance(Key key) const
{
    const std::size_t off = offset_.at(key);
    const std::size_t d = dof_.at(key);
    return covariance_.block(off, off, d, d);
}

Matrix
Marginals::jointCovariance(Key a, Key b) const
{
    return covariance_.block(offset_.at(a), offset_.at(b), dof_.at(a),
                             dof_.at(b));
}

Vector
Marginals::sigmas(Key key) const
{
    const Matrix cov = marginalCovariance(key);
    Vector out(cov.rows());
    for (std::size_t i = 0; i < cov.rows(); ++i)
        out[i] = std::sqrt(std::max(0.0, cov(i, i)));
    return out;
}

} // namespace orianna::fg
