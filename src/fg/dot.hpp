#pragma once

#include <string>

#include "fg/dfg.hpp"
#include "fg/graph.hpp"

namespace orianna::fg {

/**
 * Graphviz DOT rendering of a factor graph: circles for variables,
 * squares for factors (the visual language of Fig. 4 / Fig. 7).
 */
std::string graphToDot(const FactorGraph &graph);

/**
 * Graphviz DOT rendering of an MO-DFG: one node per primitive
 * operation with forward data-flow edges (the Fig. 10 / Fig. 11
 * pictures).
 */
std::string dfgToDot(const Dfg &dfg, const std::string &name = "modfg");

} // namespace orianna::fg
