#pragma once

#include <vector>

#include "fg/graph.hpp"

namespace orianna::fg {

/**
 * Elimination orderings. The paper assumes "a given variable
 * ordering" (Sec. 2.2); we provide the natural (key-ascending) order
 * and a greedy minimum-degree heuristic that keeps the elimination
 * fill-in — and therefore the accelerator's QR instruction sizes —
 * small.
 */
namespace ordering {

/** Keys in ascending order. */
std::vector<Key> natural(const FactorGraph &graph);

/**
 * Greedy minimum-degree ordering on the variable-adjacency graph
 * (two variables are adjacent when they share a factor). Ties break
 * toward smaller keys for determinism.
 */
std::vector<Key> minDegree(const FactorGraph &graph);

} // namespace ordering

} // namespace orianna::fg
