#pragma once

#include <memory>
#include <vector>

#include "matrix/dense.hpp"

namespace orianna::fg {

using mat::Vector;

/**
 * Signed distance field over a union of spherical obstacles.
 *
 * Collision-free factors (Tbl. 2) evaluate the clearance of trajectory
 * states against this map, exactly as GPMP2-style planners do. An
 * analytic union-of-spheres field keeps distance() and gradient()
 * exact, which the DFG autodiff and the finite-difference tests rely
 * on.
 */
class SdfMap
{
  public:
    /** Empty map: infinite clearance everywhere. */
    SdfMap() = default;

    /** Add a spherical (circular in 2-D) obstacle. */
    void addObstacle(Vector center, double radius);

    std::size_t obstacleCount() const { return obstacles_.size(); }

    /** Obstacles as (center, radius) pairs (for serialization). */
    std::vector<std::pair<Vector, double>> obstacles() const;

    /**
     * Signed distance from @p point to the closest obstacle surface
     * (positive outside). Returns a large constant for an empty map.
     */
    double distance(const Vector &point) const;

    /**
     * Gradient of distance() with respect to the point, as a row
     * vector. Zero at obstacle centers (where the field is not
     * differentiable) and for empty maps.
     */
    Vector gradient(const Vector &point) const;

  private:
    struct Obstacle
    {
        Vector center;
        double radius;
    };

    std::vector<Obstacle> obstacles_;
};

using SdfMapPtr = std::shared_ptr<const SdfMap>;

} // namespace orianna::fg
