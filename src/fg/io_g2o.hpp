#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fg/graph.hpp"

namespace orianna::fg {

/**
 * Pose-graph I/O in the g2o text format, the de-facto interchange
 * format for SLAM benchmarks (sphere2500, manhattan, parking-garage,
 * ...). Supported records:
 *
 *   VERTEX_SE2 id x y theta
 *   EDGE_SE2 i j dx dy dtheta  I11 I12 I13 I22 I23 I33
 *   VERTEX_SE3:QUAT id x y z qx qy qz qw
 *   EDGE_SE3:QUAT i j dx dy dz qx qy qz qw  I(6x6 upper triangle)
 *
 * Loaded edges become BetweenFactors; per-row sigmas come from the
 * information-matrix diagonal (sigma_i = 1/sqrt(I_ii)), the standard
 * diagonal approximation. A pose graph has gauge freedom, so
 * loadG2o() does not add a prior; anchor the first pose yourself.
 */
struct PoseGraphData
{
    FactorGraph graph;
    Values initial;

    /**
     * One entry per skipped record: unsupported-but-benign tags such
     * as FIX or VERTEX_XY (common in published benchmark files) do
     * not abort the load, they are collected here for the caller to
     * surface. Malformed records of a *supported* tag still throw.
     *
     * Also one entry (at most, per file) the first time an edge
     * carries non-trivial off-diagonal information: those correlated
     * terms are dropped by the diagonal approximation above, and
     * that loss should be visible rather than silent. Quaternions in
     * SE3 records are normalized before conversion, so slightly
     * denormalized real-world files load without drift.
     */
    std::vector<std::string> warnings;
};

/** Parse a g2o stream. @throws std::runtime_error on malformed input. */
PoseGraphData readG2o(std::istream &in);

/** Load a g2o file. @throws std::runtime_error when unreadable. */
PoseGraphData loadG2o(const std::string &path);

/**
 * Write poses and BetweenFactor edges of a pose graph as g2o.
 * Pose variables must all share one dimension (2-D or 3-D); non-pose
 * variables are rejected; factors that are not between factors
 * (e.g. priors) are skipped, since g2o has no record for them.
 */
void writeG2o(std::ostream &out, const FactorGraph &graph,
              const Values &values);

/** Save to a file. @throws std::runtime_error when unwritable. */
void saveG2o(const std::string &path, const FactorGraph &graph,
             const Values &values);

} // namespace orianna::fg
