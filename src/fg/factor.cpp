#include "fg/factor.hpp"

#include <cmath>
#include <stdexcept>

namespace orianna::fg {

void
Factor::finalize(Vector sigmas)
{
    if (dfg_.outputs().empty())
        throw std::logic_error("Factor::finalize: no outputs declared");
    for (std::size_t i = 0; i < sigmas.size(); ++i)
        if (sigmas[i] <= 0.0)
            throw std::invalid_argument("Factor: sigmas must be positive");
    keys_ = dfg_.variableKeys();
    sigmas_ = std::move(sigmas);
}

Vector
Factor::error(const Values &values) const
{
    DfgForward fwd = evalForward(dfg_, values);
    if (fwd.error.size() != dim())
        throw std::logic_error("Factor: error dim does not match sigmas");
    return fwd.error;
}

void
Factor::setRobust(double k)
{
    if (k <= 0.0)
        throw std::invalid_argument("Factor::setRobust: k must be > 0");
    robustK_ = k;
}

namespace {

/** sqrt of the Huber weight for a whitened residual norm. */
double
huberSqrtWeight(double norm, double k)
{
    if (k <= 0.0 || norm <= k)
        return 1.0;
    return std::sqrt(k / norm);
}

} // namespace

Vector
Factor::whitenedError(const Values &values) const
{
    Vector e = error(values);
    for (std::size_t i = 0; i < e.size(); ++i)
        e[i] /= sigmas_[i];
    const double w = huberSqrtWeight(e.norm(), robustK_);
    if (w != 1.0)
        e = e * w;
    return e;
}

std::map<Key, Matrix>
Factor::whitenedJacobians(const Values &values) const
{
    DfgForward fwd = evalForward(dfg_, values);
    std::map<Key, Matrix> jacobians = evalBackward(dfg_, values, fwd);
    double w = 1.0;
    if (robustK_ > 0.0) {
        Vector e = fwd.error;
        for (std::size_t i = 0; i < e.size(); ++i)
            e[i] /= sigmas_[i];
        w = huberSqrtWeight(e.norm(), robustK_);
    }
    for (auto &[key, j] : jacobians)
        for (std::size_t i = 0; i < j.rows(); ++i)
            for (std::size_t c = 0; c < j.cols(); ++c)
                j(i, c) = j(i, c) / sigmas_[i] * w;
    return jacobians;
}

double
Factor::cost(const Values &values) const
{
    const Vector e = whitenedError(values);
    return 0.5 * e.dot(e);
}

Vector
isotropicSigmas(std::size_t dim, double sigma)
{
    if (sigma <= 0.0)
        throw std::invalid_argument("isotropicSigmas: sigma must be > 0");
    Vector out(dim);
    for (std::size_t i = 0; i < dim; ++i)
        out[i] = sigma;
    return out;
}

} // namespace orianna::fg
