#pragma once

#include <map>
#include <memory>
#include <vector>

#include "fg/factor.hpp"
#include "matrix/block_sparse.hpp"

namespace orianna::fg {

/**
 * One linearized factor: whitened Jacobian blocks per key plus the
 * right-hand side b = -whitened error, so that solving J delta = b is
 * the Gauss-Newton step.
 */
struct LinearRow
{
    std::map<Key, Matrix> blocks;
    Vector rhs;
    std::size_t factorIndex = 0; //!< Index of the originating factor.
};

/**
 * The linearized system A delta = b in factor-row form. The row list
 * *is* the block-sparse structure of A; dense/ block-sparse
 * materializations are provided for the baselines and the Fig. 17/18
 * measurements.
 */
struct LinearSystem
{
    std::vector<LinearRow> rows;
    std::map<Key, std::size_t> dofs; //!< Tangent dim per variable.

    /** Total scalar rows. */
    std::size_t totalRows() const;

    /** Total scalar columns. */
    std::size_t totalCols() const;

    /**
     * Materialize as a block-sparse matrix with one block row per
     * factor and block columns ordered by @p ordering.
     */
    mat::BlockSparseMatrix toBlockSparse(
        const std::vector<Key> &ordering) const;

    /** Stacked dense [A] with columns ordered by @p ordering. */
    Matrix toDense(const std::vector<Key> &ordering) const;

    /** Stacked right-hand side in row order. */
    Vector stackedRhs() const;
};

/**
 * A factor graph: the user-facing container of Sec. 5.1's programming
 * model. Users start from an empty graph and add() factors; the
 * optimizer and the compiler both consume the same object.
 */
class FactorGraph
{
  public:
    /** Append a factor. */
    void add(FactorPtr factor);

    /** Construct a factor in place and append it. */
    template <typename FactorT, typename... Args>
    void
    emplace(Args &&...args)
    {
        add(std::make_shared<FactorT>(std::forward<Args>(args)...));
    }

    std::size_t size() const { return factors_.size(); }
    bool empty() const { return factors_.empty(); }

    const Factor &factor(std::size_t i) const { return *factors_[i]; }
    FactorPtr factorPtr(std::size_t i) const { return factors_[i]; }

    auto begin() const { return factors_.begin(); }
    auto end() const { return factors_.end(); }

    /** Sum of factor costs: the nonlinear objective of Equ. 1. */
    double totalError(const Values &values) const;

    /** All variable keys referenced by any factor, ascending. */
    std::vector<Key> allKeys() const;

    /** key -> indices of adjacent factors. */
    std::map<Key, std::vector<std::size_t>> adjacency() const;

    /**
     * Linearize every factor at @p values (the "construct linear
     * equations" phase of Fig. 3).
     */
    LinearSystem linearize(const Values &values) const;

  private:
    std::vector<FactorPtr> factors_;
};

} // namespace orianna::fg
