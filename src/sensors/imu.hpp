#pragma once

#include <random>
#include <vector>

#include "lie/pose.hpp"

namespace orianna::sensors {

using lie::Pose;
using mat::Vector;

/**
 * One inertial-odometry sample: body angular rate (gyroscope) and
 * body-frame linear velocity (gravity-compensated accelerometer
 * integrated once, or wheel/visual odometry), over a small dt.
 */
struct ImuSample
{
    Vector gyro;     //!< rad/s in the body frame (1-dim in 2-D).
    Vector velocity; //!< m/s in the body frame.
    double dt = 0.0; //!< Sample period in seconds.
};

/**
 * Preintegration of inertial samples between two keyframes into one
 * relative-pose measurement (the m4/m5 constants the Sec. 5.1 listing
 * feeds to IMUFactor):
 *
 *   R <- R Exp(omega dt),   p <- p + R v dt.
 *
 * Works for 2-D (1-dim gyro) and 3-D (3-dim gyro) bodies.
 */
class ImuPreintegrator
{
  public:
    /** @param space_dim 2 or 3. */
    explicit ImuPreintegrator(std::size_t space_dim);

    /** Integrate one sample. @throws on dimension mismatch. */
    void add(const ImuSample &sample);

    /** Accumulated relative pose since the last reset. */
    const Pose &delta() const { return delta_; }

    /** Total integrated time. */
    double elapsed() const { return elapsed_; }

    std::size_t count() const { return count_; }

    /** Start a new preintegration window. */
    void reset();

  private:
    std::size_t spaceDim_;
    Pose delta_;
    double elapsed_ = 0.0;
    std::size_t count_ = 0;
};

/**
 * Synthesize noisy inertial samples along the segment from @p a to
 * @p b: the exact body rates are recovered from the relative pose and
 * perturbed with white noise, so preintegrating them reproduces the
 * true motion up to integration and sensor error.
 */
std::vector<ImuSample> synthesizeImuSegment(const Pose &a, const Pose &b,
                                            std::size_t steps,
                                            double duration,
                                            std::mt19937 &rng,
                                            double gyro_noise,
                                            double velocity_noise);

} // namespace orianna::sensors
