#include "sensors/imu.hpp"

#include <stdexcept>

#include "lie/so.hpp"
#include "matrix/qr.hpp"

namespace orianna::sensors {

ImuPreintegrator::ImuPreintegrator(std::size_t space_dim)
    : spaceDim_(space_dim), delta_(Pose::identity(space_dim))
{
    lie::tangentDim(space_dim); // Validates 2 or 3.
}

void
ImuPreintegrator::add(const ImuSample &sample)
{
    if (sample.gyro.size() != lie::tangentDim(spaceDim_) ||
        sample.velocity.size() != spaceDim_)
        throw std::invalid_argument(
            "ImuPreintegrator::add: sample dimension mismatch");
    if (sample.dt <= 0.0)
        throw std::invalid_argument("ImuPreintegrator::add: dt <= 0");

    // Right-multiplicative integration over the window:
    //   delta <- delta (+) <Exp-step, v dt>.
    const Pose step(sample.gyro * sample.dt,
                    sample.velocity * sample.dt);
    delta_ = delta_.oplus(step);
    elapsed_ += sample.dt;
    ++count_;
}

void
ImuPreintegrator::reset()
{
    delta_ = Pose::identity(spaceDim_);
    elapsed_ = 0.0;
    count_ = 0;
}

std::vector<ImuSample>
synthesizeImuSegment(const Pose &a, const Pose &b, std::size_t steps,
                     double duration, std::mt19937 &rng,
                     double gyro_noise, double velocity_noise)
{
    if (steps == 0 || duration <= 0.0)
        throw std::invalid_argument(
            "synthesizeImuSegment: bad discretization");
    const Pose relative = b.ominus(a);
    const double dt = duration / static_cast<double>(steps);

    // Constant body rates reproducing the relative motion exactly:
    // with rotation steps R_k = Exp(k phi / n), the integrated
    // translation is (sum_k R_k) u, so the per-step body displacement
    // is u = (sum_k R_k)^-1 t.
    const double inv = 1.0 / static_cast<double>(steps);
    const Vector gyro = relative.phi() * (1.0 / duration);
    mat::Matrix s(a.spaceDim(), a.spaceDim());
    for (std::size_t k = 0; k < steps; ++k)
        s += lie::expSo(relative.phi() * (static_cast<double>(k) * inv));
    const Vector u = mat::leastSquares(s, relative.t());

    std::normal_distribution<double> gyro_dist(0.0, gyro_noise);
    std::normal_distribution<double> vel_dist(0.0, velocity_noise);

    std::vector<ImuSample> samples;
    samples.reserve(steps);
    for (std::size_t k = 0; k < steps; ++k) {
        ImuSample sample;
        sample.dt = dt;
        sample.gyro = gyro;
        for (std::size_t i = 0; i < sample.gyro.size(); ++i)
            sample.gyro[i] += gyro_dist(rng);
        sample.velocity = u * (1.0 / dt);
        for (std::size_t i = 0; i < sample.velocity.size(); ++i)
            sample.velocity[i] += vel_dist(rng);
        samples.push_back(std::move(sample));
    }
    return samples;
}

} // namespace orianna::sensors
