#pragma once

#include <random>
#include <vector>

#include "lie/pose.hpp"

namespace orianna::sensors {

using lie::Pose;
using mat::Vector;

/** A 2-D range scan: points in the sensor (body) frame. */
struct Scan
{
    std::vector<Vector> points;
};

/**
 * Render a scan of a 2-D point landmark map from @p pose: landmarks
 * within @p max_range are transformed into the body frame and
 * perturbed with isotropic noise.
 */
Scan renderScan(const Pose &pose, const std::vector<Vector> &landmarks,
                double max_range, double noise, std::mt19937 &rng);

/** Knobs of the ICP loop. */
struct IcpParams
{
    std::size_t maxIterations = 25;
    double tolerance = 1e-7;        //!< Step size to declare converged.
    double maxCorrespondence = 2.0; //!< Reject pairs farther apart.
};

/** Outcome of icp2d(). */
struct IcpResult
{
    Pose relative = Pose::identity(2); //!< Estimated motion from -> to.
    std::size_t iterations = 0;
    double meanResidual = 0.0;  //!< Mean point distance at the end.
    bool converged = false;
};

/**
 * Point-to-point 2-D ICP: estimate the sensor motion between two
 * scans (the LiDAR scan-matching front end that produces the
 * LiDARFactor measurements of Tbl. 2). Nearest-neighbor
 * correspondences alternate with the closed-form 2-D alignment
 * (centroid shift plus the cross-correlation angle).
 *
 * @param from          scan taken at the earlier pose.
 * @param to            scan taken at the later pose.
 * @param initial_guess motion prior (e.g. from odometry); identity
 *                      works for small motions.
 */
IcpResult icp2d(const Scan &from, const Scan &to,
                const Pose &initial_guess, const IcpParams &params = {});

} // namespace orianna::sensors
