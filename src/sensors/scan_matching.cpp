#include "sensors/scan_matching.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "lie/so.hpp"

namespace orianna::sensors {

Scan
renderScan(const Pose &pose, const std::vector<Vector> &landmarks,
           double max_range, double noise, std::mt19937 &rng)
{
    if (pose.spaceDim() != 2)
        throw std::invalid_argument("renderScan: pose must be planar");
    std::normal_distribution<double> dist(0.0, noise);
    const mat::Matrix rt = pose.rotation().transpose();

    Scan scan;
    for (const Vector &landmark : landmarks) {
        const Vector local = rt * (landmark - pose.t());
        if (local.norm() > max_range)
            continue;
        scan.points.push_back(
            local + Vector{dist(rng), dist(rng)});
    }
    return scan;
}

IcpResult
icp2d(const Scan &from, const Scan &to, const Pose &initial_guess,
      const IcpParams &params)
{
    if (from.points.empty() || to.points.empty())
        throw std::invalid_argument("icp2d: empty scan");

    IcpResult result;
    result.relative = initial_guess;

    for (std::size_t iter = 0; iter < params.maxIterations; ++iter) {
        ++result.iterations;
        const mat::Matrix r = result.relative.rotation();

        // Nearest-neighbor correspondences under the current motion.
        std::vector<std::pair<Vector, Vector>> pairs; // (from, to).
        double residual = 0.0;
        for (const Vector &q : to.points) {
            const Vector mapped = r * q + result.relative.t();
            double best = std::numeric_limits<double>::max();
            const Vector *match = nullptr;
            for (const Vector &p : from.points) {
                const double d = (mapped - p).norm();
                if (d < best) {
                    best = d;
                    match = &p;
                }
            }
            if (match != nullptr && best <= params.maxCorrespondence) {
                pairs.emplace_back(*match, q);
                residual += best;
            }
        }
        if (pairs.size() < 2)
            break; // Not enough overlap to align.
        result.meanResidual =
            residual / static_cast<double>(pairs.size());

        // Closed-form 2-D alignment of the correspondences.
        Vector p_bar(2);
        Vector q_bar(2);
        for (const auto &[p, q] : pairs) {
            p_bar += p;
            q_bar += q;
        }
        const double inv = 1.0 / static_cast<double>(pairs.size());
        p_bar = p_bar * inv;
        q_bar = q_bar * inv;
        double sxx = 0.0;
        double sxy = 0.0;
        for (const auto &[p, q] : pairs) {
            const Vector pc = p - p_bar;
            const Vector qc = q - q_bar;
            sxx += qc[0] * pc[0] + qc[1] * pc[1];
            sxy += qc[0] * pc[1] - qc[1] * pc[0];
        }
        const double theta = std::atan2(sxy, sxx);
        const mat::Matrix r_new = lie::expSo(Vector{theta});
        const Vector t_new = p_bar - r_new * q_bar;
        const Pose updated(Vector{theta}, t_new);

        const double step =
            lie::poseDistance(updated, result.relative);
        result.relative = updated;
        if (step < params.tolerance) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace orianna::sensors
