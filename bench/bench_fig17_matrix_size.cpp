// Reproduces Fig. 17: size of the matrix operations executed by
// VANILLA-HLS (one whole-system dense decomposition) versus ORIANNA
// (many small per-variable eliminations), for the three algorithms of
// the MobileRobot application.

#include <cstdio>

#include "bench_common.hpp"
#include "fg/eliminate.hpp"
#include "fg/ordering.hpp"

int
main()
{
    using namespace orianna;

    std::printf("Fig. 17: matrix-operation size, VANILLA-HLS vs "
                "ORIANNA (MobileRobot)\n");
    orianna::bench::rule(86);
    std::printf("%-14s | %16s | %16s %16s | %8s\n", "Algorithm",
                "HLS (rows x cols)", "Orianna max", "mean elems",
                "reduction");

    apps::BenchmarkApp bench =
        apps::buildMobileRobot(orianna::bench::kBenchSeed);
    for (std::size_t a = 0; a < bench.app.size(); ++a) {
        const core::Algorithm &algo = bench.app.algorithm(a);
        fg::LinearSystem system = algo.graph.linearize(algo.values);
        const auto ordering = fg::ordering::minDegree(algo.graph);

        fg::EliminationStats stats;
        (void)fg::solveLinearSystem(system, ordering, &stats);

        const std::size_t dense_rows = system.totalRows();
        const std::size_t dense_cols = system.totalCols();
        const double dense_elems =
            static_cast<double>(dense_rows * dense_cols);

        std::size_t max_rows = 0;
        std::size_t max_cols = 0;
        double mean_elems = 0.0;
        double max_elems = 0.0;
        for (const auto &op : stats.qrOps) {
            const double elems =
                static_cast<double>(op.rows * op.cols);
            if (elems > max_elems) {
                max_elems = elems;
                max_rows = op.rows;
                max_cols = op.cols;
            }
            mean_elems += elems;
        }
        mean_elems /= static_cast<double>(stats.qrOps.size());

        std::printf("%-14s | %7zu x %-7zu | %6zu x %-7zu %16.1f | "
                    "%7.1fx\n",
                    algo.name.c_str(), dense_rows, dense_cols, max_rows,
                    max_cols, mean_elems, dense_elems / mean_elems);
    }
    orianna::bench::rule(86);
    std::printf("paper: localization 147x90 dense vs 11.1x smaller "
                "average; planning max 41x12 (12.2x\n"
                "smaller); control 16.4x smaller.\n");
    return 0;
}
